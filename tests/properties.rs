//! Property-style tests over the core invariants, driven by deterministic
//! case sweeps (the offline build has no proptest).

use ditto::core::apps::CountPerKey;
use ditto::core::mapper::Mapper;
use ditto::prelude::*;

/// Deterministic 64-bit generator for test-case synthesis.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The pipeline never loses or duplicates tuples, for any key set and any
/// SecPE count.
#[test]
fn pipeline_conserves_tuples() {
    let mut s = 0x7u64;
    for x_sec in 0u32..8 {
        let len = 100 + (splitmix(&mut s) % 700) as usize;
        let data: Vec<Tuple> = (0..len)
            .map(|_| Tuple::from_key(splitmix(&mut s)))
            .collect();
        let n = data.len() as u64;
        let cfg = ArchConfig::new(4, 8, x_sec).with_pe_entries(8);
        let out = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), data, &cfg);
        assert_eq!(out.report.tuples, n, "x_sec {x_sec}");
        assert_eq!(out.output.iter().sum::<u64>(), n, "x_sec {x_sec}");
    }
}

/// The histogram pipeline equals the host reference for arbitrary keys.
#[test]
fn histogram_matches_reference() {
    let mut s = 0x1157u64;
    for x_sec in 0u32..8 {
        let len = 200 + (splitmix(&mut s) % 400) as usize;
        let data: Vec<Tuple> = (0..len)
            .map(|_| Tuple::from_key(splitmix(&mut s)))
            .collect();
        let app = HistoApp::new(64, 8);
        let cfg = ArchConfig::new(4, 8, x_sec).with_pe_entries(app.pe_entries());
        let expect = app.reference(&data);
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        assert_eq!(out.output, expect, "x_sec {x_sec}");
    }
}

/// Mapper round-robin is conservative: every redirect lands on the original
/// PriPE or one of its scheduled helpers, and the PriPE always stays in
/// rotation.
#[test]
fn mapper_redirects_stay_in_row() {
    let mut s = 0x3a9u64;
    for case in 0..64 {
        let n_pairs = (splitmix(&mut s) % 3) as usize;
        let pairs: Vec<u32> = (0..n_pairs)
            .map(|_| (splitmix(&mut s) % 4) as u32)
            .collect();
        let lookups = 1 + (splitmix(&mut s) % 63) as usize;
        let mut m = Mapper::new(4, 3);
        let mut helpers: Vec<Vec<u32>> = (0..4).map(|i| vec![i]).collect();
        for (i, &pri) in pairs.iter().enumerate() {
            let sec = 4 + i as u32;
            m.apply_pair(sec, pri);
            helpers[pri as usize].push(sec);
        }
        for dst in 0u32..4 {
            let mut saw_pri = false;
            for _ in 0..lookups {
                let got = m.redirect(dst);
                assert!(
                    helpers[dst as usize].contains(&got),
                    "case {case}: dst {dst} redirected to {got}"
                );
                saw_pri |= got == dst;
            }
            if lookups >= helpers[dst as usize].len() {
                assert!(saw_pri, "case {case}: PriPE {dst} never selected");
            }
        }
    }
}

/// The greedy plan never increases the maximum effective load as X grows,
/// and always schedules exactly X SecPEs.
#[test]
fn plan_monotone_and_complete() {
    let mut s = 0x9d2u64;
    for case in 0..64 {
        let m = 2 + (splitmix(&mut s) % 14) as u32;
        let workloads: Vec<u64> = (0..m).map(|_| splitmix(&mut s) % 10_000).collect();
        let mut prev = f64::INFINITY;
        for x in 0..m {
            let plan = SchedulingPlan::generate(&workloads, m, x);
            assert_eq!(plan.len(), x as usize, "case {case}");
            let max = plan
                .effective_loads(&workloads)
                .into_iter()
                .fold(0.0f64, f64::max);
            assert!(max <= prev + 1e-9, "case {case}: x {x}");
            prev = max;
        }
    }
}

/// Equation 2 is clamped, zero for uniform workloads and maximal for a
/// single hot PE, for any M.
#[test]
fn equation2_bounds() {
    let analyzer = SkewAnalyzer::paper();
    for m in 2u32..32 {
        for hot in [0u32, 1, m / 2, m - 1] {
            let uniform = vec![1_000u64; m as usize];
            assert_eq!(analyzer.recommend_from_workloads(&uniform, m), 0);
            let mut single = vec![0u64; m as usize];
            single[(hot % m) as usize] = 1_000_000;
            assert_eq!(analyzer.recommend_from_workloads(&single, m), m - 1);
        }
    }
}

/// Fixed-point addition is associative/commutative, so any processing order
/// of PR contributions yields identical ranks.
#[test]
fn fixed_point_sum_is_order_independent() {
    let mut s = 0xf1eedu64;
    for case in 0..64 {
        let len = 1 + (splitmix(&mut s) % 99) as usize;
        let fixed: Vec<Fixed> = (0..len)
            .map(|_| Fixed::from_bits((splitmix(&mut s) % 2_000_000) as i64 - 1_000_000))
            .collect();
        let forward: Fixed = fixed.iter().copied().sum();
        let mut shuffled = fixed.clone();
        // Deterministic shuffle from the case seed.
        let mut sh = splitmix(&mut s);
        for i in (1..shuffled.len()).rev() {
            sh = sh.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (sh >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let backward: Fixed = shuffled.into_iter().sum();
        assert_eq!(forward, backward, "case {case}");
    }
}

/// The CMS never under-estimates, whatever the update mix.
#[test]
fn cms_upper_bounds_counts() {
    let mut s = 0xc35u64;
    for case in 0..64 {
        let len = 1 + (splitmix(&mut s) % 199) as usize;
        let updates: Vec<(u64, u64)> = (0..len)
            .map(|_| (splitmix(&mut s) % 64, 1 + splitmix(&mut s) % 15))
            .collect();
        let mut cms = CountMinSketch::new(4, 128);
        let mut truth = std::collections::HashMap::new();
        for &(k, c) in &updates {
            cms.update(k, c);
            *truth.entry(k).or_insert(0u64) += c;
        }
        for (&k, &c) in &truth {
            assert!(cms.query(k) >= c, "case {case}: key {k}");
        }
    }
}

/// HLL merge is idempotent and commutative (a lattice join).
#[test]
fn hll_merge_lattice() {
    let mut s = 0x1a77u64;
    for case in 0..64 {
        let a_keys: Vec<u64> = (0..(splitmix(&mut s) % 300))
            .map(|_| splitmix(&mut s))
            .collect();
        let b_keys: Vec<u64> = (0..(splitmix(&mut s) % 300))
            .map(|_| splitmix(&mut s))
            .collect();
        let mut a = HyperLogLog::new(8);
        let mut b = HyperLogLog::new(8);
        for k in &a_keys {
            a.insert_hash(murmur3_u64(*k, 1));
        }
        for k in &b_keys {
            b.insert_hash(murmur3_u64(*k, 1));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(&ab, &ba, "case {case}");
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(&abb, &ab, "case {case}");
    }
}

/// Non-proptest structural check: the variant sweep covers the whole
/// BRAM-vs-robustness trade-off frontier.
#[test]
fn variant_frontier_is_monotone() {
    let model = ResourceModel::arria10();
    let profile = AppCostProfile::hll();
    let tuning = SystemGenerator::tune(1, 2, &Platform::intel_pac_a10());
    let variants = SystemGenerator::variants(tuning, &profile, &model);
    for pair in variants.windows(2) {
        assert!(pair[1].1.ram_blocks >= pair[0].1.ram_blocks);
        assert!(pair[1].0.x_sec == pair[0].0.x_sec + 1);
    }
}
