//! Property-based tests over the core invariants (proptest).

use ditto::core::apps::CountPerKey;
use ditto::core::mapper::Mapper;
use ditto::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pipeline never loses or duplicates tuples, for any key set and
    /// any SecPE count.
    #[test]
    fn pipeline_conserves_tuples(
        keys in prop::collection::vec(any::<u64>(), 100..800),
        x_sec in 0u32..8,
    ) {
        let data: Vec<Tuple> = keys.iter().map(|&k| Tuple::from_key(k)).collect();
        let n = data.len() as u64;
        let cfg = ArchConfig::new(4, 8, x_sec).with_pe_entries(8);
        let out = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), data, &cfg);
        prop_assert_eq!(out.report.tuples, n);
        prop_assert_eq!(out.output.iter().sum::<u64>(), n);
    }

    /// The histogram pipeline equals the host reference for arbitrary keys.
    #[test]
    fn histogram_matches_reference(
        keys in prop::collection::vec(any::<u64>(), 200..600),
        x_sec in 0u32..8,
    ) {
        let data: Vec<Tuple> = keys.iter().map(|&k| Tuple::from_key(k)).collect();
        let app = HistoApp::new(64, 8);
        let cfg = ArchConfig::new(4, 8, x_sec).with_pe_entries(app.pe_entries());
        let expect = app.reference(&data);
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        prop_assert_eq!(out.output, expect);
    }

    /// Mapper round-robin is conservative: every redirect lands on the
    /// original PriPE or one of its scheduled helpers, and the PriPE always
    /// stays in rotation.
    #[test]
    fn mapper_redirects_stay_in_row(
        pairs in prop::collection::vec((0u32..4), 0..3),
        lookups in 1usize..64,
    ) {
        let mut m = Mapper::new(4, 3);
        let mut helpers: Vec<Vec<u32>> = (0..4).map(|i| vec![i]).collect();
        for (i, &pri) in pairs.iter().enumerate() {
            let sec = 4 + i as u32;
            m.apply_pair(sec, pri);
            helpers[pri as usize].push(sec);
        }
        for dst in 0u32..4 {
            let mut saw_pri = false;
            for _ in 0..lookups {
                let got = m.redirect(dst);
                prop_assert!(helpers[dst as usize].contains(&got),
                    "dst {} redirected to {}", dst, got);
                saw_pri |= got == dst;
            }
            if lookups >= helpers[dst as usize].len() {
                prop_assert!(saw_pri, "PriPE {} never selected", dst);
            }
        }
    }

    /// The greedy plan never increases the maximum effective load as X
    /// grows, and always schedules exactly X SecPEs.
    #[test]
    fn plan_monotone_and_complete(
        workloads in prop::collection::vec(0u64..10_000, 2..16),
    ) {
        let m = workloads.len() as u32;
        let mut prev = f64::INFINITY;
        for x in 0..m {
            let plan = SchedulingPlan::generate(&workloads, m, x);
            prop_assert_eq!(plan.len(), x as usize);
            let max = plan
                .effective_loads(&workloads)
                .into_iter()
                .fold(0.0f64, f64::max);
            prop_assert!(max <= prev + 1e-9);
            prev = max;
        }
    }

    /// Equation 2 is clamped, zero for uniform workloads and maximal for a
    /// single hot PE, for any M.
    #[test]
    fn equation2_bounds(m in 2u32..32, hot in 0u32..32) {
        let analyzer = SkewAnalyzer::paper();
        let uniform = vec![1_000u64; m as usize];
        prop_assert_eq!(analyzer.recommend_from_workloads(&uniform, m), 0);
        let mut single = vec![0u64; m as usize];
        single[(hot % m) as usize] = 1_000_000;
        prop_assert_eq!(analyzer.recommend_from_workloads(&single, m), m - 1);
    }

    /// Fixed-point addition is associative/commutative, so any processing
    /// order of PR contributions yields identical ranks.
    #[test]
    fn fixed_point_sum_is_order_independent(
        values in prop::collection::vec(-1_000_000i64..1_000_000, 1..100),
        seed in any::<u64>(),
    ) {
        let fixed: Vec<Fixed> = values.iter().map(|&v| Fixed::from_bits(v)).collect();
        let forward: Fixed = fixed.iter().copied().sum();
        let mut shuffled = fixed.clone();
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let backward: Fixed = shuffled.into_iter().sum();
        prop_assert_eq!(forward, backward);
    }

    /// The CMS never under-estimates, whatever the update mix.
    #[test]
    fn cms_upper_bounds_counts(
        updates in prop::collection::vec((0u64..64, 1u64..16), 1..200),
    ) {
        let mut cms = CountMinSketch::new(4, 128);
        let mut truth = std::collections::HashMap::new();
        for &(k, c) in &updates {
            cms.update(k, c);
            *truth.entry(k).or_insert(0u64) += c;
        }
        for (&k, &c) in &truth {
            prop_assert!(cms.query(k) >= c);
        }
    }

    /// HLL merge is idempotent and commutative (a lattice join).
    #[test]
    fn hll_merge_lattice(
        a_keys in prop::collection::vec(any::<u64>(), 0..300),
        b_keys in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        let mut a = HyperLogLog::new(8);
        let mut b = HyperLogLog::new(8);
        for k in &a_keys { a.insert_hash(murmur3_u64(*k, 1)); }
        for k in &b_keys { b.insert_hash(murmur3_u64(*k, 1)); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut abb = ab.clone();
        abb.merge(&b);
        prop_assert_eq!(&abb, &ab);
    }
}

/// Non-proptest structural check: the variant sweep covers the whole
/// BRAM-vs-robustness trade-off frontier.
#[test]
fn variant_frontier_is_monotone() {
    let model = ResourceModel::arria10();
    let profile = AppCostProfile::hll();
    let tuning = SystemGenerator::tune(1, 2, &Platform::intel_pac_a10());
    let variants = SystemGenerator::variants(tuning, &profile, &model);
    for pair in variants.windows(2) {
        assert!(pair[1].1.ram_blocks >= pair[0].1.ram_blocks);
        assert!(pair[1].0.x_sec == pair[0].0.x_sec + 1);
    }
}
