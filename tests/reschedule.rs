//! The §IV-B reschedule protocol under evolving skew (the Fig. 9 machine).

use ditto::hls_sim::StreamSource;
use ditto::prelude::*;

fn online_cfg(threshold: f64, overhead: u64) -> ArchConfig {
    ArchConfig::new(4, 8, 7)
        .with_pe_entries(128)
        .with_reschedule(threshold, overhead)
        .with_profile_cycles(64)
        .with_monitor_window(256)
}

fn rotating_stream(interval: u64) -> EvolvingZipfStream {
    EvolvingZipfStream::new(3.0, 1 << 16, 41, interval, 4.0, None)
}

#[test]
fn reschedules_track_rotations_when_overhead_is_cheap() {
    let out = SkewObliviousPipeline::run_stream_for(
        ditto::core::apps::CountPerKey::new(8),
        Box::new(rotating_stream(5_000)),
        &online_cfg(0.5, 200),
        50_000,
    );
    assert!(
        out.report.reschedules >= 3,
        "10 rotations with cheap requeue should trigger several reschedules, got {}",
        out.report.reschedules
    );
    // Conservation: every processed tuple is accounted for after merges.
    assert_eq!(out.output.iter().sum::<u64>(), out.report.tuples);
}

#[test]
fn threshold_zero_disables_rescheduling() {
    let out = SkewObliviousPipeline::run_stream_for(
        ditto::core::apps::CountPerKey::new(8),
        Box::new(rotating_stream(5_000)),
        &online_cfg(0.0, 200),
        50_000,
    );
    assert_eq!(out.report.reschedules, 0);
    assert!(
        out.report.plans_generated >= 1,
        "the initial plan is still generated"
    );
}

#[test]
fn fast_rotation_auto_disables_rescheduling() {
    // Rotation much faster than the requeue overhead: the system must stop
    // rescheduling (Fig. 9's right region) instead of thrashing.
    let out = SkewObliviousPipeline::run_stream_for(
        ditto::core::apps::CountPerKey::new(8),
        Box::new(rotating_stream(300)),
        &online_cfg(0.5, 5_000),
        120_000,
    );
    assert!(
        out.report.reschedules <= 3,
        "rescheduling should auto-disable, got {}",
        out.report.reschedules
    );
    assert_eq!(out.output.iter().sum::<u64>(), out.report.tuples);
}

#[test]
fn rescheduling_improves_throughput_on_slowly_evolving_skew() {
    let interval = 20_000u64;
    let cycles = 100_000u64;
    let with = SkewObliviousPipeline::run_stream_for(
        ditto::core::apps::CountPerKey::new(8),
        Box::new(rotating_stream(interval)),
        &online_cfg(0.5, 500),
        cycles,
    );
    let without = SkewObliviousPipeline::run_stream_for(
        ditto::core::apps::CountPerKey::new(8),
        Box::new(rotating_stream(interval)),
        &ArchConfig::new(4, 8, 0).with_pe_entries(128),
        cycles,
    );
    assert!(
        with.report.tuples_per_cycle() > 1.5 * without.report.tuples_per_cycle(),
        "with: {} vs without: {}",
        with.report.tuples_per_cycle(),
        without.report.tuples_per_cycle()
    );
}

#[test]
fn evolving_stream_hot_pe_moves_across_epochs() {
    // Underpinning Fig. 9: the overloaded PE changes when the seed rotates.
    let stream = rotating_stream(1_000);
    let mut hot_pes = std::collections::HashSet::new();
    for epoch in 0..8 {
        hot_pes.insert(stream.hot_key(epoch) % 8);
    }
    assert!(hot_pes.len() >= 3, "hot PE should move, saw {hot_pes:?}");
}

#[test]
fn stream_respects_line_rate() {
    let mut s = rotating_stream(1_000);
    let mut got = 0usize;
    let mut buf = Vec::new();
    for cy in 0..10_000 {
        buf.clear();
        s.pull(cy, 64, &mut buf);
        got += buf.len();
    }
    let rate = got as f64 / 10_000.0;
    assert!((3.9..=4.1).contains(&rate), "rate {rate}");
}
