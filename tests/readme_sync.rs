//! Pins README content that is generated from (or promised by) code, so
//! documentation drift fails the suite instead of shipping.

static README: &str = include_str!("../README.md");

/// The env-override table in the README is the verbatim output of
/// [`ditto::obs::env::markdown_table`] — edit `obs::env::KNOWN`, then
/// paste the regenerated table.
#[test]
fn env_override_table_matches_registry() {
    let table = ditto::obs::env::markdown_table();
    assert!(
        README.contains(&table),
        "README env-override table is stale; regenerate it with \
         ditto_obs::env::markdown_table():\n{table}"
    );
}

/// Every `DITTO_*` variable the README mentions anywhere is a registered
/// knob — prose cannot reference an override the catalog doesn't know.
#[test]
fn readme_mentions_only_registered_knobs() {
    let known: Vec<&str> = ditto::obs::env::KNOWN.iter().map(|k| k.name).collect();
    let mut rest = README;
    while let Some(at) = rest.find("DITTO_") {
        let tail = &rest[at..];
        let end = tail
            .find(|c: char| !(c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
            .unwrap_or(tail.len());
        // Bare `DITTO_*` (glob prose) trims to `DITTO`; skip those.
        let var = tail[..end].trim_end_matches('_');
        if var.len() > "DITTO".len() {
            assert!(
                known.contains(&var),
                "README references unregistered env var {var}; add it to \
                 ditto_obs::env::KNOWN"
            );
        }
        rest = &rest[at + end..];
    }
}

/// The wire-protocol section documents the PR 7 telemetry frames with
/// their pinned discriminants.
#[test]
fn wire_protocol_docs_cover_metrics_frames() {
    for needle in ["`Metrics` (`0x05`", "`MetricsDump` (`0x85`"] {
        assert!(
            README.contains(needle),
            "README protocol kinds paragraph is missing {needle}"
        );
    }
}
