//! Fig. 7-shaped invariants at test scale: more SecPEs buy more skew
//! robustness; more PriPEs do not.

use ditto::prelude::*;

fn throughput(x_sec: u32, alpha: f64, m: u32, n: u32) -> f64 {
    let app = HistoApp::new(1_024, m);
    let data = ZipfGenerator::new(alpha, 1 << 18, 21).take_vec(30_000);
    let cfg = ArchConfig::new(n, m, x_sec).with_pe_entries((1_024 / u64::from(m)) as usize);
    SkewObliviousPipeline::run_dataset(app, data, &cfg)
        .report
        .tuples_per_cycle()
}

#[test]
fn throughput_is_monotone_in_secpes_under_extreme_skew() {
    let alpha = 3.0;
    let t0 = throughput(0, alpha, 16, 8);
    let t2 = throughput(2, alpha, 16, 8);
    let t8 = throughput(8, alpha, 16, 8);
    let t15 = throughput(15, alpha, 16, 8);
    assert!(t2 > 1.5 * t0, "2 SecPEs: {t2} vs {t0}");
    assert!(t8 > t2, "8 SecPEs: {t8} vs {t2}");
    assert!(t15 > t8 * 0.95, "15 SecPEs: {t15} vs {t8}");
    assert!(
        t15 > 6.0 * t0,
        "full SecPEs must recover most of the collapse"
    );
}

#[test]
fn more_pripes_do_not_help() {
    // The paper's 32P strawman: doubling PriPEs cannot fix per-PE overload.
    let alpha = 2.5;
    let t16 = throughput(0, alpha, 16, 8);
    let t32 = throughput(0, alpha, 32, 16);
    assert!(
        t32 < 2.0 * t16,
        "32P ({t32}) must not outrun 16P ({t16}) meaningfully under skew"
    );
}

#[test]
fn uniform_data_needs_no_secpes() {
    let t0 = throughput(0, 0.0, 16, 8);
    let t15 = throughput(15, 0.0, 16, 8);
    // SecPEs must not hurt uniform throughput much (they idle).
    assert!(t15 > 0.8 * t0, "uniform: {t15} vs {t0}");
    assert!(
        t0 > 6.0,
        "uniform 16P should run near the 8/cycle bandwidth: {t0}"
    );
}

#[test]
fn secpe_capacity_matches_plan_effectiveness() {
    // The profiler's greedy plan (Fig. 5) should leave max effective load
    // near total/(1+helpers) for the hot PE.
    let w = [10_000u64, 100, 100, 100, 100, 100, 100, 100];
    for x in [1u32, 3, 7] {
        let plan = SchedulingPlan::generate(&w, 8, x);
        let eff = plan.effective_loads(&w);
        let max = eff.into_iter().fold(0.0f64, f64::max);
        let ideal = 10_000.0 / f64::from(x + 1);
        assert!(
            max <= ideal + 101.0,
            "x={x}: max effective load {max} vs ideal {ideal}"
        );
    }
}

#[test]
fn workload_imbalance_drives_the_collapse() {
    let app = HistoApp::new(1_024, 16);
    let data = ZipfGenerator::new(2.5, 1 << 18, 31).take_vec(30_000);
    let cfg = ArchConfig::paper(0).with_pe_entries(app.pe_entries());
    let rep = SkewObliviousPipeline::run_dataset(app, data, &cfg).report;
    // Normalised workload (Fig. 2a) shows one dominant PE...
    let norm = rep.normalized_workload(16);
    let max = norm.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max > 5.0,
        "expected a dominant PE, max normalised load {max}"
    );
    // ...and throughput is inversely tied to it.
    assert!(rep.tuples_per_cycle() < 8.0 / (max / 2.0));
}
