//! End-to-end integration: the full framework workflow (tune → analyze →
//! select → run) for every application, validated against host references.

use ditto::prelude::*;

#[test]
fn equation1_tuning_matches_paper_platform() {
    let platform = Platform::intel_pac_a10();
    // HISTO-style apps: II_pre = 1, II_pri = 2 -> 8 PrePEs, 16 PriPEs.
    let t = SystemGenerator::tune(1, 2, &platform);
    assert_eq!((t.n_pre, t.m_pri), (8, 16));
    // DP: II_pri = 1 -> 8 PriPEs.
    let t = SystemGenerator::tune(1, 1, &platform);
    assert_eq!((t.n_pre, t.m_pri), (8, 8));
}

#[test]
fn histo_selected_implementation_is_correct_and_fast() {
    let data = ZipfGenerator::new(2.0, 1 << 20, 11).take_vec(60_000);
    let app = HistoApp::new(4_096, 16);
    let imp = select_implementation(
        &app,
        &data,
        &Platform::intel_pac_a10(),
        &AppCostProfile::histo(),
        &SkewAnalyzer::paper(),
    );
    assert!(imp.config.x_sec >= imp.recommended_x);
    let cfg = imp.config.clone().with_pe_entries(app.pe_entries());
    let selected = SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &cfg);
    assert_eq!(selected.output, app.reference(&data));

    let baseline = routing_noskew::run(app, data, &cfg);
    assert!(
        selected.report.tuples_per_cycle() > 1.5 * baseline.report.tuples_per_cycle(),
        "selected {} vs baseline {}",
        selected.report.tuples_per_cycle(),
        baseline.report.tuples_per_cycle()
    );
}

#[test]
fn all_five_apps_run_through_the_paper_shape() {
    let n = 20_000;
    let skew = ZipfGenerator::new(1.5, 1 << 18, 3).take_vec(n);

    // HISTO
    let histo = HistoApp::new(1_024, 16);
    let cfg = ArchConfig::paper(4).with_pe_entries(histo.pe_entries());
    let out = SkewObliviousPipeline::run_dataset(histo.clone(), skew.clone(), &cfg);
    assert_eq!(out.output, histo.reference(&skew));

    // DP (M = 8 per Equation 1)
    let dp = DataPartitionApp::new(256, 8);
    let cfg = ArchConfig::new(8, 8, 4).with_pe_entries(dp.pe_entries());
    let out = SkewObliviousPipeline::run_dataset(dp.clone(), skew.clone(), &cfg);
    let sizes: Vec<u64> = out.output.iter().map(|b| b.len() as u64).collect();
    assert_eq!(sizes, dp.reference_sizes(&skew));

    // HLL
    let hll = HllApp::new(12, 16);
    let cfg = ArchConfig::paper(4).with_pe_entries(hll.pe_entries());
    let out = SkewObliviousPipeline::run_dataset(hll.clone(), skew.clone(), &cfg);
    assert_eq!(out.output, hll.reference(&skew));

    // HHD
    let hhd = HhdApp::new(4, 512, 200, 16);
    let cfg = ArchConfig::paper(4).with_pe_entries(hhd.pe_entries());
    let out = SkewObliviousPipeline::run_dataset(hhd.clone(), skew.clone(), &cfg);
    for (key, count) in hhd.reference(&skew) {
        let est = out.output.iter().find(|&&(k, _)| k == key);
        assert!(est.is_some(), "missing heavy hitter {key} (count {count})");
    }

    // PR
    let g = generate::power_law(512, 8.0, 1.4, 5).to_undirected();
    let res = run_pagerank(&g, 0.85, 4, &ArchConfig::paper(7));
    assert_eq!(res.ranks, pagerank::pagerank(&g, 0.85, 4));
}

#[test]
fn bram_saving_scales_with_m() {
    // The headline Table II claim: data routing buffers 1/M of the state
    // per PE instead of a full replica.
    let histo = HistoApp::new(32_768, 16);
    let replica = StaticReplicationDesign::new(8, 16, 32_768);
    let saving = replica.entries_per_pe() as f64 / histo.pe_entries() as f64;
    assert_eq!(saving, 16.0);
}

#[test]
fn static_replication_needs_no_routing_but_loses_bram() {
    let data = ZipfGenerator::new(3.0, 1 << 16, 17).take_vec(20_000);
    let histo_ditto = HistoApp::new(1_024, 16);
    let cfg = ArchConfig::paper(15).with_pe_entries(histo_ditto.pe_entries());
    let ditto = SkewObliviousPipeline::run_dataset(histo_ditto, data.clone(), &cfg);

    let replica = StaticReplicationDesign::new(8, 16, 1_024);
    let stat = replica.run(HistoApp::new(1_024, 1), data);

    // Same histogram from both architectures.
    assert_eq!(ditto.output, stat.output);
    // The static design is skew-immune but pays 16x the per-PE buffer.
    assert!(stat.report.imbalance(16) < 1.2);
}
