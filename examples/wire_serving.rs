//! Network serving: the ditto cluster behind a real TCP socket, with
//! admission control shedding load under a forced overload.
//!
//! ```text
//! cargo run --release --example wire_serving
//! ```
//!
//! 1. Boot a wire server on a loopback port hosting two apps — HISTO and
//!    HLL — each on its own 2-shard cluster.
//! 2. Serve skewed request batches over the socket with request
//!    pipelining; read `Done` acks with wire-inclusive latencies.
//! 3. Finalize both apps over the wire and verify the decoded outputs
//!    equal single-engine offline runs of the same tuples.
//! 4. Re-run against a tiny admission watermark: the server sheds with
//!    explicit `Overloaded` responses instead of queueing unboundedly.

use ditto::prelude::*;
use ditto::wire::{
    app_id, AdmissionConfig, AppRegistry, Response, WireApp, WireClient, WireServer,
    WireServerConfig,
};

const SHARDS: usize = 2;
const BATCH_TUPLES: usize = 1_000;
const TUPLES: usize = 12_000;

fn serve_config(pe_entries: usize) -> ServeConfig {
    ServeConfig::new(SHARDS, ArchConfig::new(4, 8, 7).with_pe_entries(pe_entries))
}

fn main() {
    // 1. Two hosted apps behind one socket.
    let histo = HistoApp::new(1_024, 8);
    let hll = HllApp::new(12, 8);
    let mut registry = AppRegistry::new();
    registry.register(
        app_id::HISTO,
        histo.clone(),
        serve_config(histo.pe_entries()),
    );
    registry.register(app_id::HLL, hll.clone(), serve_config(hll.pe_entries()));
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new())
        .expect("bind wire server");
    println!(
        "wire server listening on {} ({} backend, {} I/O thread(s), budget {} connections)",
        server.local_addr(),
        server.backend().label(),
        server.io_threads(),
        AdmissionConfig::new().max_connections,
    );

    // 2. Pipelined serving over the socket.
    let data = ZipfGenerator::new(2.0, 1 << 18, 42).take_vec(TUPLES);
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    println!("ping: {:?}", client.ping().expect("ping"));
    let batches = split_into_batches(&data, BATCH_TUPLES);
    for batch in &batches {
        client.submit(app_id::HISTO, batch).expect("submit histo");
        client.submit(app_id::HLL, batch).expect("submit hll");
    }
    let mut acked = 0;
    let mut worst_wire_us = 0;
    while acked < 2 * batches.len() {
        let (_, app, resp) = client.recv().expect("completion");
        match resp {
            Response::Done {
                tuples, wall_us, ..
            } => {
                acked += 1;
                worst_wire_us = worst_wire_us.max(wall_us);
                if acked <= 3 {
                    println!("  app {app}: batch of {tuples} tuples done in {wall_us} µs");
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    println!(
        "served {} batches over TCP (worst wire-inclusive latency {worst_wire_us} µs)",
        acked
    );

    // 3. Finalize over the wire; verify against single-engine runs.
    let histo_out = histo
        .decode_output(&client.finalize(app_id::HISTO).expect("finalize histo"))
        .expect("decode histo");
    let hll_out = hll
        .decode_output(&client.finalize(app_id::HLL).expect("finalize hll"))
        .expect("decode hll");
    let histo_single = SkewObliviousPipeline::run_dataset(
        histo.clone(),
        data.clone(),
        &serve_config(histo.pe_entries()).arch,
    )
    .output;
    let hll_single = SkewObliviousPipeline::run_dataset(
        hll.clone(),
        data.clone(),
        &serve_config(hll.pe_entries()).arch,
    )
    .output;
    assert_eq!(histo_out, histo_single, "HISTO wire result diverged");
    assert_eq!(hll_out, hll_single, "HLL wire result diverged");
    println!(
        "wire-served outputs equal single-engine runs (HISTO sum {}, HLL estimate {:.0})",
        histo_out.iter().sum::<u64>(),
        hll_out.estimate()
    );
    drop(client);
    server.shutdown();

    // 4. Overload: a watermark below one batch shears the excess off.
    let mut registry = AppRegistry::new();
    registry.register(
        app_id::HISTO,
        histo.clone(),
        serve_config(histo.pe_entries()),
    );
    let strict = AdmissionConfig::new()
        .with_watermark(BATCH_TUPLES as u64 / 2)
        .with_defer(0, std::time::Duration::ZERO);
    let server = WireServer::bind(
        "127.0.0.1:0",
        registry,
        WireServerConfig::new().with_admission(strict),
    )
    .expect("bind overloaded server");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    for batch in &batches {
        client.submit(app_id::HISTO, batch).expect("submit");
    }
    let (mut done, mut shed) = (0u64, 0u64);
    for _ in 0..batches.len() {
        match client.recv().expect("response").2 {
            Response::Done { .. } => done += 1,
            Response::Overloaded {
                queue_depth,
                watermark,
            } => {
                if shed == 0 {
                    println!("  overloaded: queue depth {queue_depth} >= watermark {watermark}");
                }
                shed += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    let stats = client.stats(app_id::HISTO).expect("stats");
    println!(
        "overload run: {done} served, {shed} shed (server counted {}), queue peak {} tuples",
        stats.batches_shed, stats.queue_depth_peak
    );
    assert!(shed > 0, "forced overload must shed");
    assert_eq!(stats.batches_shed, shed);
    drop(client);
    server.shutdown();
    println!("graceful shutdown complete");
}
