//! Graph analytics: PageRank over hub-dominated (power-law) graphs — the
//! paper's Fig. 8 scenario, where high-degree vertices overload one PE.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use ditto::prelude::*;

fn main() {
    // A web-like graph: 4096 pages, average degree 12, strong hubs.
    let g = generate::power_law_bipolar(4_096, 12.0, 2.2, 1.8, 99).to_undirected();
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}, max in-degree {}",
        g.vertex_count(),
        g.edge_count(),
        g.avg_degree(),
        g.max_in_degree()
    );

    let iterations = 10;
    let baseline = run_pagerank(&g, 0.85, iterations, &ArchConfig::paper(0));
    let ditto = run_pagerank(&g, 0.85, iterations, &ArchConfig::paper(15));

    // Both compute the same fixed-point ranks, bit for bit.
    assert_eq!(baseline.ranks, ditto.ranks);

    let profile = AppCostProfile::pagerank();
    let model = ResourceModel::arria10();
    let f0 = model
        .estimate(PipelineShape::new(8, 16, 0), &profile)
        .freq_mhz;
    let f15 = model
        .estimate(PipelineShape::new(8, 16, 15), &profile)
        .freq_mhz;
    let base_mteps = mteps(baseline.edges_per_cycle(), f0);
    let ditto_mteps = mteps(ditto.edges_per_cycle(), f15);
    println!("\nChen et al. [8] (16P):   {base_mteps:.0} MTEPS");
    println!("Ditto (16P+15S):         {ditto_mteps:.0} MTEPS");
    println!("speedup:                 {:.1}x", ditto_mteps / base_mteps);

    // Top pages by rank.
    let mut ranked: Vec<(usize, Fixed)> = ditto.ranks.iter().copied().enumerate().collect();
    ranked.sort_by_key(|&(_, r)| std::cmp::Reverse(r));
    println!("\ntop 5 pages by rank:");
    for (v, r) in ranked.iter().take(5) {
        println!(
            "  vertex {v:>5}: rank {:.6} (in-degree {})",
            r.to_f64(),
            g.in_degree(*v)
        );
    }

    // Sanity: ranks form a probability distribution.
    let sum: f64 = ditto.ranks.iter().map(|r| r.to_f64()).sum();
    assert!((sum - 1.0).abs() < 1e-3, "ranks sum to {sum}");
    println!("\nranks verified (Σ = {sum:.6}) ✓");
}
