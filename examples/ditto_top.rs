//! `top` for a ditto serving fleet: poll the wire telemetry plane and
//! render live per-shard throughput, queue depth and tail latency.
//!
//! ```text
//! cargo run --release --example ditto_top
//! ```
//!
//! 1. Boot a wire server hosting two apps (HISTO and HLL) on loopback —
//!    HISTO replicated (`register_replicated`, `DITTO_REPLICAS` overrides
//!    the follower count), HLL plain, so the table shows both shapes.
//! 2. Spawn a background load generator that serves skewed batches over
//!    its own connection.
//! 3. From a second connection, poll the `MetricsDump` frame on an
//!    interval — one round-trip returns the merged cross-layer snapshot —
//!    and render a top-like table: per-shard qps (from successive
//!    `ditto_serve_tuples_total` deltas), live queue depth, and the
//!    cluster's bucketed batch-latency quantiles (p50/p99/p999).
//! 4. After the load drains, print the Prometheus text exposition of the
//!    same registry — what a real scraper would ingest.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ditto::obs::{MetricValue, MetricsSnapshot};
use ditto::prelude::*;
use ditto::wire::{app_id, AppRegistry, Response};

const SHARDS: usize = 2;
const BATCH_TUPLES: usize = 1_000;
const TUPLES: usize = 150_000;
const POLL_INTERVAL: Duration = Duration::from_millis(40);

fn serve_config(pe_entries: usize) -> ServeConfig {
    ServeConfig::new(SHARDS, ArchConfig::new(4, 8, 7).with_pe_entries(pe_entries))
}

/// Per-shard tuple totals for one app, keyed by shard id.
fn shard_tuples(snap: &MetricsSnapshot, app: u16) -> HashMap<usize, u64> {
    let mut out = HashMap::new();
    for shard in 0..SHARDS {
        if let Some(e) = snap.get(
            "ditto_serve_tuples_total",
            &[("app", &app.to_string()), ("shard", &shard.to_string())],
        ) {
            out.insert(shard, e.value.scalar());
        }
    }
    out
}

fn gauge(snap: &MetricsSnapshot, name: &str, app: u16, shard: usize) -> u64 {
    snap.get(
        name,
        &[("app", &app.to_string()), ("shard", &shard.to_string())],
    )
    .map_or(0, |e| e.value.scalar())
}

/// App-level gauge with no shard label (the HA plane's replica count).
fn app_gauge(snap: &MetricsSnapshot, name: &str, app: u16) -> Option<u64> {
    snap.get(name, &[("app", &app.to_string())])
        .map(|e| e.value.scalar())
}

fn latency(snap: &MetricsSnapshot, app: u16) -> Option<LatencyStats> {
    let e = snap.get(
        "ditto_cluster_batch_latency_cycles",
        &[("app", &app.to_string())],
    )?;
    match &e.value {
        MetricValue::Histogram(h) if h.count() > 0 => Some(h.stats()),
        _ => None,
    }
}

fn render(
    tick: usize,
    snap: &MetricsSnapshot,
    prev: &HashMap<(u16, usize), u64>,
    dt: f64,
) -> HashMap<(u16, usize), u64> {
    let mut now = HashMap::new();
    println!("── tick {tick} ──────────────────────────────────────────────");
    println!(
        "{:>5} {:>5} {:>12} {:>10} {:>7} {:>6} {:>4} {:>5} {:>5} {:>9} {:>9} {:>9}",
        "app",
        "shard",
        "tuples",
        "qps",
        "depth",
        "phase",
        "pes",
        "repl",
        "lag",
        "p50cyc",
        "p99cyc",
        "p999cyc"
    );
    for app in [app_id::HISTO, app_id::HLL] {
        let lat = latency(snap, app);
        // The HA plane: follower count per shard ("-" for plain hosts)
        // and per-shard replication lag in queued tuples.
        let replicas = app_gauge(snap, "ditto_ha_replicas", app);
        for (shard, total) in {
            let mut v: Vec<_> = shard_tuples(snap, app).into_iter().collect();
            v.sort();
            v
        } {
            let qps = prev
                .get(&(app, shard))
                .map_or(0.0, |&p| (total - p) as f64 / dt);
            let depth = gauge(snap, "ditto_serve_queue_depth", app, shard);
            // The plan plane: which execution phase the shard's engine is
            // in and how many PEs its current plan keeps active.
            let phase = gauge(snap, "ditto_plan_phase", app, shard);
            let pes = gauge(snap, "ditto_plan_active_pes", app, shard);
            let repl = replicas.map_or("-".into(), |r| r.to_string());
            let lag = if replicas.is_some() {
                gauge(snap, "ditto_ha_replication_lag", app, shard).to_string()
            } else {
                "-".into()
            };
            let (p50, p99, p999) = lat.as_ref().map_or((0, 0, 0), |s| (s.p50, s.p99, s.p999));
            println!(
                "{:>5} {:>5} {:>12} {:>10.0} {:>7} {:>6} {:>4} {:>5} {:>5} {:>9} {:>9} {:>9}",
                app, shard, total, qps, depth, phase, pes, repl, lag, p50, p99, p999
            );
            now.insert((app, shard), total);
        }
    }
    now
}

fn main() {
    // 1. Two hosted apps behind one socket.
    let histo = HistoApp::new(1_024, 8);
    let hll = HllApp::new(12, 8);
    let mut registry = AppRegistry::new();
    registry.register_replicated(
        app_id::HISTO,
        histo.clone(),
        serve_config(histo.pe_entries()),
        ditto::ha::env_replicas(1),
    );
    registry.register(app_id::HLL, hll.clone(), serve_config(hll.pe_entries()));
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new())
        .expect("bind wire server");
    let addr = server.local_addr();
    println!("ditto_top: wire server on {addr}");

    // 2. Background load: skewed batches over a dedicated connection.
    let load = std::thread::spawn(move || {
        let mut client = WireClient::connect(addr).expect("load connect");
        let data = ZipfGenerator::new(2.0, 1 << 18, 42).take_vec(TUPLES);
        let batches = split_into_batches(&data, BATCH_TUPLES);
        for batch in &batches {
            client.submit(app_id::HISTO, batch).expect("submit histo");
            client.submit(app_id::HLL, batch).expect("submit hll");
        }
        let mut tuples_acked = 0u64;
        for _ in 0..2 * batches.len() {
            let (_, _, resp) = client.recv().expect("completion");
            match resp {
                Response::Done { tuples, .. } => tuples_acked += tuples,
                other => panic!("unexpected response: {other:?}"),
            }
        }
        tuples_acked
    });

    // 3. The poller: one MetricsDump round-trip per tick.
    let mut poller = WireClient::connect(addr).expect("poller connect");
    let mut prev: HashMap<(u16, usize), u64> = HashMap::new();
    let mut last = Instant::now();
    for tick in 0.. {
        std::thread::sleep(POLL_INTERVAL);
        let snap = poller.metrics(0).expect("metrics dump");
        let dt = last.elapsed().as_secs_f64();
        last = Instant::now();
        prev = render(tick, &snap, &prev, dt);
        if load.is_finished() {
            break;
        }
    }
    let tuples_acked = load.join().expect("load generator");
    assert_eq!(tuples_acked, 2 * TUPLES as u64, "every tuple acknowledged");

    // 4. Final scrape, as Prometheus text.
    let text = poller.metrics_text(0).expect("prometheus scrape");
    let summary: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("ditto_cluster_batch_latency_cycles") || l.starts_with("# TYPE"))
        .collect();
    println!("── prometheus exposition (excerpt) ─────────────────────────");
    for line in summary.iter().take(16) {
        println!("{line}");
    }
    println!(
        "({} exposition lines total, {} tuples served)",
        text.lines().count(),
        tuples_acked
    );

    drop(poller);
    server.shutdown();
}
