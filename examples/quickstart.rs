//! Quickstart: the full Ditto workflow on a skewed histogram workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Generate a Zipf-skewed dataset.
//! 2. Let the framework tune the pipeline (Equation 1), analyze the skew
//!    (Equation 2) and select an implementation.
//! 3. Run the selected implementation cycle-accurately and compare it with
//!    the no-skew-handling baseline.

use ditto::prelude::*;

fn main() {
    // 1. Data: one million 8-byte tuples, Zipf factor 2 (heavily skewed).
    let alpha = 2.0;
    let data = ZipfGenerator::new(alpha, 1 << 20, 7).take_vec(1_000_000);
    println!("dataset: {} tuples, Zipf α = {alpha}", data.len());

    // 2. Framework: tune, analyze, select.
    let app = HistoApp::new(32_768, 16);
    let imp = select_implementation(
        &app,
        &data,
        &Platform::intel_pac_a10(),
        &AppCostProfile::histo(),
        &SkewAnalyzer::paper(),
    );
    println!(
        "selected implementation: {} (Equation 2 recommended X = {})",
        imp.config.label(),
        imp.recommended_x
    );
    println!("modelled resources:      {}", imp.estimate.table_row());

    // 3. Run selected vs baseline.
    let cfg = imp.config.clone().with_pe_entries(app.pe_entries());
    let selected = SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &cfg);
    let baseline = routing_noskew::run(app.clone(), data.clone(), &cfg);

    let sel_mtps = mtps(selected.report.tuples_per_cycle(), imp.estimate.freq_mhz);
    let base_freq = ResourceModel::arria10()
        .estimate(
            PipelineShape::new(cfg.n_pre, cfg.m_pri, 0),
            &AppCostProfile::histo(),
        )
        .freq_mhz;
    let base_mtps = mtps(baseline.report.tuples_per_cycle(), base_freq);

    println!("\n{:<22} {:>10} {:>12}", "", "MT/s", "imbalance");
    println!(
        "{:<22} {:>10.0} {:>12.2}",
        format!("baseline ({})", baseline.report.label),
        base_mtps,
        baseline.report.imbalance(16)
    );
    println!(
        "{:<22} {:>10.0} {:>12.2}",
        format!("Ditto ({})", selected.report.label),
        sel_mtps,
        selected.report.imbalance(16)
    );
    println!("\nspeedup: {:.1}x", sel_mtps / base_mtps);

    // Correctness: the pipeline histogram equals the host reference.
    assert_eq!(selected.output, app.reference(&data));
    println!("histogram verified against host reference ✓");
}
