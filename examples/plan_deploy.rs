//! The two-pass deployment planner, end to end: profile a bounded slice of
//! a live pipeline, search the shape × device space under a utilisation
//! budget, validate the winner in the cycle-level simulator.
//!
//! ```text
//! cargo run --release --example plan_deploy
//! ```
//!
//! 1. **Counts pass** — run a `DITTO_PLAN_SLICE`-cycle profiling slice of
//!    a HISTO-style pipeline at the 32-PriPE reference shape, once per
//!    skew level. The slice reduces to a [`CountsTrace`]: kernel steps by
//!    class, channel occupancy, per-PE workloads, per execution phase.
//! 2. **Estimates pass** — [`Planner::plan`] folds each traced workload
//!    onto every candidate shape, replays the runtime's SecPE scheduler to
//!    predict the steady-state rate, prices shapes on the device through
//!    the resource model (memoised across calls), and picks the best
//!    throughput under the `DITTO_PLAN_BUDGET` utilisation budget.
//! 3. **Validation** — the chosen `ArchConfig` is simulated on the same
//!    dataset; the example asserts the prediction lands within ±25 %.
//! 4. With `DITTO_PLAN_TRACE_OUT=/path.json`, the profiled phases are
//!    additionally exported as a Chrome `about:tracing` / Perfetto flame
//!    row on the cycle timeline.

use ditto::obs::env;
use ditto::prelude::*;

const REFERENCE_M: u32 = 32;
const TUPLES: usize = 60_000;

fn profile(label: &str, data: &[Tuple]) -> CountsTrace {
    let source = Box::new(SliceSource::new(
        data.to_vec(),
        Tuple::PAPER_WIDTH_BYTES,
        MemoryModel::new(64, 16),
    ));
    let mut pipeline = PersistentPipeline::new(
        ditto::core::apps::CountPerKey::new(REFERENCE_M),
        source,
        &ArchConfig::new(8, REFERENCE_M, 0),
    );
    let opts = SliceOptions::from_env();
    let trace = pipeline.profile_counts(opts);
    println!(
        "[counts] {label}: {} cycles traced, {} tuples, {:.2} t/c, {} phases, {} full stalls",
        trace.total_cycles(),
        trace.total_tuples(),
        trace.tuples_per_cycle(),
        trace.phases.len(),
        trace.total_full_stalls(),
    );

    // The same trace, through the telemetry plane (what a scraper sees).
    let mut reg = MetricsRegistry::new();
    trace.publish_metrics(&mut reg);
    let snap = reg.snapshot();
    println!(
        "[counts] {label}: ditto_plan_trace_tuples={} ditto_plan_trace_phases={}",
        snap.scalar("ditto_plan_trace_tuples").unwrap_or(0),
        snap.scalar("ditto_plan_trace_phases").unwrap_or(0),
    );

    // Optional Chrome-trace export of the phase timeline.
    if let Ok(path) = std::env::var("DITTO_PLAN_TRACE_OUT") {
        let mut journal = SpanJournal::new(1024);
        trace.record_spans(&mut journal);
        let json = chrome_trace_json(&journal.events());
        std::fs::write(&path, json).expect("write chrome trace");
        println!("[counts] {label}: phase timeline written to {path}");
    }
    trace
}

fn main() {
    env::log_active();
    let uniform = UniformGenerator::new(1 << 18, 11).take_vec(TUPLES);
    let zipf = ZipfGenerator::new(2.0, 1 << 18, 11).take_vec(TUPLES);

    let mut planner = Planner::new();
    let opts = PlannerOptions::paper_search();
    for (label, data) in [("uniform", &uniform), ("zipf-2.0", &zipf)] {
        let trace = profile(label, data);
        let plan = planner.plan(&trace, REFERENCE_M, &AppCostProfile::histo(), &opts);

        println!(
            "[plan]   {label}: search over {} candidates",
            plan.candidates.len()
        );
        let mut feasible: Vec<_> = plan.candidates.iter().filter(|c| c.feasible()).collect();
        feasible.sort_by(|a, b| b.mtps.total_cmp(&a.mtps));
        for c in feasible.iter().take(4) {
            println!(
                "[plan]   {label}:   {:>8} on {}: {:>6.0} MT/s ({:.3}/kALM, {} bound)",
                c.shape.label(),
                c.device,
                c.mtps,
                c.mtps_per_kalm,
                c.prediction.binding(),
            );
        }
        let rejected = plan.candidates.len() - feasible.len();
        println!(
            "[plan]   {label}: chose {} ({} candidates over budget)",
            plan.chosen.shape.label(),
            rejected
        );

        let v = validate(
            &plan,
            ditto::core::apps::CountPerKey::new(plan.config.m_pri),
            data.to_vec(),
        );
        println!(
            "[check]  {label}: predicted {:.2} t/c vs simulated {:.2} t/c ({:+.1}% error)",
            v.predicted_rate,
            v.simulated_rate,
            v.rel_error * 100.0
        );
        assert!(v.within(0.25), "prediction outside the ±25% acceptance bar");
    }

    let memo = planner.memo_stats();
    println!(
        "[memo]   {} estimate lookups, {} served from the repeated-fragment cache",
        memo.lookups, memo.hits
    );
}
