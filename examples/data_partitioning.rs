//! Data partitioning for hash joins: radix-partition a relation into 512
//! chunks — the paper's DP application, with a deliberately skewed key
//! column to show the SecPEs earning their BRAM.
//!
//! ```text
//! cargo run --release --example data_partitioning
//! ```

use ditto::prelude::*;

fn main() {
    let fan_out = 512u64;
    let m = 8u32; // DP's PE body is II=1, so Equation 1 gives M = 8
    let app = DataPartitionApp::new(fan_out, m);

    // A relation whose key column is Zipf-skewed (a few customers dominate).
    let relation = ZipfGenerator::new(1.8, 1 << 22, 555).take_vec(400_000);

    // How skewed is it, as the analyzer sees it?
    let rec = SkewAnalyzer::paper().recommend(&app, &relation, m);
    println!("Equation 2 recommends {rec} SecPE(s) for this relation");

    let cfg_base = ArchConfig::new(8, m, 0).with_pe_entries(app.pe_entries());
    let cfg_ditto = ArchConfig::new(8, m, rec.min(m - 1)).with_pe_entries(app.pe_entries());

    let base = routing_noskew::run(app.clone(), relation.clone(), &cfg_base);
    let ditto = SkewObliviousPipeline::run_dataset(app.clone(), relation.clone(), &cfg_ditto);

    println!(
        "\nbaseline ({}):  {:.2} tuples/cycle",
        base.report.label,
        base.report.tuples_per_cycle()
    );
    println!(
        "Ditto    ({}): {:.2} tuples/cycle  ({:.1}x)",
        ditto.report.label,
        ditto.report.tuples_per_cycle(),
        ditto.report.tuples_per_cycle() / base.report.tuples_per_cycle()
    );

    // Verify the partitioning: sizes match the reference and every tuple
    // is in the right chunk.
    let sizes: Vec<u64> = ditto.output.iter().map(|p| p.len() as u64).collect();
    assert_eq!(sizes, app.reference_sizes(&relation));
    for (p, bucket) in ditto.output.iter().enumerate() {
        for &(key, _) in bucket.iter().take(16) {
            assert_eq!(app.partition_of(key), p as u64);
        }
    }
    let largest = sizes.iter().copied().max().unwrap_or(0);
    let total: u64 = sizes.iter().sum();
    println!(
        "\npartitioned {} tuples into {} chunks; largest holds {:.1}% (skew!)",
        total,
        fan_out,
        largest as f64 / total as f64 * 100.0
    );
    println!("partitioning verified against host reference ✓");
}
