//! Failure recovery, end to end over a real loopback socket: a replicated
//! wire-served app survives a mid-run shard kill with zero lost tuples.
//!
//! ```text
//! cargo run --release --example failover_serving
//!
//! # Pick your poison (and replica budget):
//! DITTO_REPLICAS=2 DITTO_KILL_SHARD=0:3 \
//!   cargo run --release --example failover_serving
//! ```
//!
//! 1. Boot a wire server hosting one replicated HISTO cluster
//!    (`AppRegistry::register_replicated`; `DITTO_REPLICAS` sets the
//!    follower count, default 1) with a deterministic fault armed:
//!    `DITTO_KILL_SHARD=<shard>:<batches>` (default `1:2` when unset) —
//!    the shard thread panics mid-run, exactly as a real crash would.
//! 2. Serve skewed batches over loopback TCP. The server's completion
//!    pump runs the HA supervisor between frames: it notices the death,
//!    drains a follower replica, promotes its slice onto a live shard,
//!    re-routes the dead shard's slots and resubmits anything that raced
//!    the crash. Clients never see more than the recovery pause.
//! 3. Assert every batch came back `Done`, print the promotion record
//!    from the telemetry plane, and verify the finalized output equals
//!    the host-side reference — the failure is invisible in the result.

use ditto::prelude::*;
use ditto::serve::ShardFault;
use ditto::wire::{app_id, AppRegistry, Response};

const SHARDS: usize = 3;
const TUPLES: usize = 60_000;
const BATCH_TUPLES: usize = 1_000;

fn main() {
    ditto::obs::env::log_active();

    // 1. One replicated app with a deterministic kill armed.
    let app = HistoApp::new(1_024, 8);
    let fault = ShardFault::from_env().unwrap_or(ShardFault {
        shard: 1,
        after_batches: 2,
    });
    let replicas = ditto::ha::env_replicas(1);
    let config = ServeConfig::new(
        SHARDS,
        ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries()),
    )
    .with_fault(fault);
    println!(
        "failover_serving: {SHARDS} shards, {replicas} replica(s)/shard, \
         killing shard {} after {} served batches",
        fault.shard, fault.after_batches
    );
    let mut registry = AppRegistry::new();
    registry.register_replicated(app_id::HISTO, app.clone(), config, replicas);
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new())
        .expect("bind wire server");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    // 2. Skewed load over the socket, pipelined.
    let data = ZipfGenerator::new(2.5, 1 << 16, 7).take_vec(TUPLES);
    let batches = split_into_batches(&data, BATCH_TUPLES);
    for batch in &batches {
        client.submit(app_id::HISTO, batch).expect("submit");
    }
    let mut done = 0u64;
    let mut tuples_acked = 0u64;
    while done < batches.len() as u64 {
        let (_, _, resp) = client.recv().expect("completion");
        match resp {
            Response::Done { tuples, .. } => {
                tuples_acked += tuples;
                done += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(tuples_acked, TUPLES as u64, "a tuple went missing");
    println!("all {done} batches Done ({tuples_acked} tuples acknowledged)");

    // 3. The recovery shows in the telemetry plane...
    let snap = client.metrics(app_id::HISTO).expect("metrics");
    let label = app_id::HISTO.to_string();
    let scalar = |name: &str| {
        snap.get(name, &[("app", &label)])
            .map_or(0, |e| e.value.scalar())
    };
    let promotions = scalar("ditto_ha_promotions");
    assert_eq!(promotions, 1, "the armed fault must fire exactly once");
    println!(
        "promotions={promotions} replicas={} recoveries_recorded={}",
        scalar("ditto_ha_replicas"),
        scalar("ditto_ha_recovery_us"),
    );

    // ...and nowhere in the result.
    let bytes = client.finalize(app_id::HISTO).expect("finalize");
    let output = app.decode_output(&bytes).expect("decode output");
    assert_eq!(output, app.reference(&data), "failover changed the result");
    println!("finalized output matches the host reference bin-for-bin");

    drop(client);
    server.shutdown();
    println!("failover_serving: OK");
}
