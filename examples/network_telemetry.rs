//! Network telemetry (the paper's in-network processing motivation):
//! heavy-hitter detection and cardinality estimation over an evolving,
//! skewed packet stream at 100 Gbps line rate.
//!
//! ```text
//! cargo run --release --example network_telemetry
//! ```
//!
//! The stream's hot flows rotate every ~50 µs (an elephant flow appears and
//! disappears); the pipeline reschedules its SecPEs on the fly. The same
//! scenario drives the paper's Fig. 9.

use ditto::hls_sim::StreamSource;
use ditto::prelude::*;

fn main() {
    let m = 16u32;
    let freq_mhz = 200.0;
    let line_rate_tuples_per_cycle = 8.0; // 100 Gbps of 8-byte records at 200 MHz

    // --- Heavy hitters over a rotating-hot-key stream -------------------
    let interval_cycles = 10_000; // ~50 µs at 200 MHz
    let stream = EvolvingZipfStream::new(
        3.0,
        1 << 20,
        2026,
        interval_cycles,
        line_rate_tuples_per_cycle,
        None,
    );
    let hot0 = stream.hot_key(0);
    let app = HhdApp::new(4, 1024, 2_000, m);
    let cfg = ArchConfig::paper(15)
        .with_pe_entries(app.pe_entries())
        .with_reschedule(0.5, 2_000)
        .with_profile_cycles(256)
        .with_monitor_window(1_024);
    let run_cycles = 120_000;
    let out = SkewObliviousPipeline::run_stream_for(app, Box::new(stream), &cfg, run_cycles);

    let gbps = out.report.tuples_per_cycle() * 8.0 * 8.0 * freq_mhz / 1_000.0;
    println!(
        "heavy-hitter pipeline: {:.1} Gbps sustained, {} reschedules",
        gbps, out.report.reschedules
    );
    println!("detected {} heavy flows; top 3:", out.output.len());
    for (key, est) in out.output.iter().take(3) {
        let marker = if *key == hot0 {
            "  <- epoch-0 elephant flow"
        } else {
            ""
        };
        println!("  flow {key:#018x}: ~{est} packets{marker}");
    }
    assert!(
        out.output.iter().any(|&(k, _)| k == hot0),
        "the epoch-0 elephant flow must be detected"
    );

    // --- Cardinality of the same traffic --------------------------------
    let mut stream = EvolvingZipfStream::new(
        1.0,
        1 << 22,
        2027,
        interval_cycles,
        line_rate_tuples_per_cycle,
        Some(500_000),
    );
    let mut packets = Vec::new();
    let mut buf = Vec::new();
    let mut cy = 0;
    while !stream.exhausted() {
        buf.clear();
        stream.pull(cy, 64, &mut buf);
        packets.extend_from_slice(&buf);
        cy += 1;
    }
    let hll = HllApp::new(14, m);
    let cfg = ArchConfig::paper(0).with_pe_entries(hll.pe_entries());
    let out = SkewObliviousPipeline::run_dataset(hll, packets.clone(), &cfg);
    let est = out.output.estimate();
    let truth = {
        let mut keys: Vec<u64> = packets.iter().map(|t| t.key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len() as f64
    };
    println!(
        "\ndistinct flows: estimated {est:.0}, true {truth:.0} ({:+.1}% error)",
        (est / truth - 1.0) * 100.0
    );
    assert!(
        (est / truth - 1.0).abs() < 0.05,
        "HLL estimate should be within 5%"
    );
}
