//! Online serving: a sharded cluster of persistent pipelines under live,
//! skew-rotating traffic.
//!
//! ```text
//! cargo run --release --example online_serving
//! ```
//!
//! 1. Boot a 4-shard cluster (one simulated FPGA per shard, each with the
//!    paper's online provisioning X = M − 1 and rescheduling on).
//! 2. Stream Zipf(3) request batches whose hot key rotates every few
//!    epochs, rebalancing key ranges between shards as the balancer sees
//!    hot-shard windows.
//! 3. Snapshot live metrics (throughput, queue depth, p50/p99 latency).
//! 4. Finish: merge states across shards and verify the served result
//!    equals a single-engine offline run over the same tuples.

use ditto::prelude::*;

const SHARDS: usize = 4;
const EPOCHS: usize = 8;
const BATCHES_PER_EPOCH: usize = 4;
const BATCH_TUPLES: usize = 2_000;

fn main() {
    // 1. Cluster: HISTO over 1024 bins, 8 PriPEs + 7 SecPEs per shard.
    let app = HistoApp::new(1_024, 8);
    let config = ServeConfig::online(SHARDS, 4, 8).with_balancer(BalancerConfig {
        min_window_tuples: 1_024,
        ..BalancerConfig::default()
    });
    let mut config = config;
    config.arch = config.arch.with_pe_entries(app.pe_entries());
    let mut cluster = Cluster::new(app.clone(), &config);
    println!(
        "cluster: {SHARDS} shards × {} ({} routing slots)",
        config.arch.label(),
        cluster.router().slots(),
    );

    // 2. Traffic: the hot key set rotates every epoch (the Fig. 9 regime,
    //    lifted to request batches).
    let mut all_tuples = Vec::new();
    let mut migrations = 0usize;
    for epoch in 0..EPOCHS {
        let data = ZipfGenerator::new(3.0, 1 << 16, 1_000 + epoch as u64)
            .take_vec(BATCHES_PER_EPOCH * BATCH_TUPLES);
        for batch in split_into_batches(&data, BATCH_TUPLES) {
            cluster.submit(batch);
        }
        all_tuples.extend(data);
        let moves = cluster.rebalance();
        if !moves.is_empty() {
            println!(
                "epoch {epoch}: balancer migrated {} key-range slot(s): {:?}",
                moves.len(),
                moves
                    .iter()
                    .map(|m| format!("slot {} {}→{}", m.slot, m.from, m.to))
                    .collect::<Vec<_>>()
            );
            migrations += moves.len();
        }
    }
    cluster.drain();

    // 3. Live metrics.
    let snap = cluster.snapshot();
    println!(
        "\nserved {} batches / {} tuples; shard imbalance {:.2}, {} migrations",
        snap.batches_completed,
        snap.tuples_processed(),
        snap.shard_imbalance(),
        snap.migrations,
    );
    println!(
        "batch latency: p50 {} / p99 {} cycles ({} / {} µs wall)",
        snap.latency_cycles.p50,
        snap.latency_cycles.p99,
        snap.latency_wall_us.p50,
        snap.latency_wall_us.p99,
    );
    println!("\nshard  cycles     tuples   t/cyc  resched  plans");
    for s in &snap.shards {
        println!(
            "{:>5}  {:>9}  {:>7}  {:>6.3}  {:>7}  {:>5}",
            s.shard,
            s.cycles,
            s.tuples,
            s.tuples_per_cycle(),
            s.reschedules,
            s.plans_generated,
        );
    }

    // 4. Sharded == single engine.
    let served = cluster.finish();
    let single = SkewObliviousPipeline::run_dataset(app, all_tuples, &config.arch);
    assert_eq!(
        served.output, single.output,
        "sharded serving must preserve exact results"
    );
    println!(
        "\nverified: {SHARDS}-shard online result equals the single-engine offline run \
         ({} total migrations, {} per-shard reschedules)",
        migrations,
        served
            .snapshot
            .shards
            .iter()
            .map(|s| s.reschedules)
            .sum::<u64>(),
    );
}
