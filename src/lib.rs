//! # ditto — skew-oblivious data routing for data-intensive applications
//!
//! A comprehensive Rust reproduction of *"Skew-Oblivious Data Routing for
//! Data Intensive Applications on FPGAs with HLS"* (DAC 2021): the Ditto
//! framework and its skew-oblivious data routing architecture, rebuilt as a
//! cycle-level model on a kernels-and-channels simulator.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`hls_sim`] — the execution substrate (cycle-level kernels, bounded
//!   channels, memory models);
//! * [`core`] (`ditto-core`) — the skew-oblivious architecture: PrePEs,
//!   data routing, mappers, PriPEs/SecPEs, runtime profiler, merger;
//! * [`framework`] (`ditto-framework`) — Equation 1 tuning, SecPE variant
//!   generation, the Equation 2 skew analyzer and implementation selection;
//! * [`apps`] (`ditto-apps`) — HISTO, DP, PR, HLL and HHD;
//! * [`baselines`] (`ditto-baselines`) — the designs the paper compares
//!   against;
//! * [`serve`] (`ditto-serve`) — the sharded online serving layer:
//!   persistent pipeline shards behind a skew-aware router;
//! * [`wire`] (`ditto-wire`) — the zero-dependency TCP front-end over the
//!   serve cluster: binary frame protocol, admission control and load
//!   shedding;
//! * [`ha`] (`ditto-ha`) — replication and failure recovery for the serve
//!   cluster: replicated state handoff, N-way follower replicas, batch-log
//!   replay and shard promotion;
//! * [`obs`] (`ditto-obs`) — cross-layer observability: the metrics
//!   registry, bucketed latency histograms, the batch-span tracing journal
//!   and the Prometheus/binary exposition codecs;
//! * [`plan`] (`ditto-plan`) — the two-pass deployment planner: replays a
//!   counts-tracing profile (`ditto_core::profile_counts`) against the
//!   resource model to pick a deployable `ArchConfig` under a utilisation
//!   budget;
//! * [`sketches`], [`graph`], [`datagen`], [`fpga_model`] — algorithmic,
//!   graph, dataset and resource-model substrates.
//!
//! # Quickstart
//!
//! ```
//! use ditto::prelude::*;
//!
//! // A skewed dataset: Zipf(2.0) over 2^20 keys.
//! let data = ZipfGenerator::new(2.0, 1 << 20, 42).take_vec(30_000);
//!
//! // Let the framework pick an implementation for it...
//! let app = HistoApp::new(4096, 16);
//! let imp = select_implementation(
//!     &app,
//!     &data,
//!     &Platform::intel_pac_a10(),
//!     &AppCostProfile::histo(),
//!     &SkewAnalyzer::paper(),
//! );
//! assert!(imp.config.x_sec > 0, "skewed data should get SecPEs");
//!
//! // ...and run it cycle-accurately.
//! let cfg = imp.config.clone().with_pe_entries(app.pe_entries());
//! let outcome = SkewObliviousPipeline::run_dataset(app, data, &cfg);
//! assert_eq!(outcome.output.iter().sum::<u64>(), 30_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use datagen;
pub use ditto_apps as apps;
pub use ditto_baselines as baselines;
pub use ditto_core as core;
pub use ditto_framework as framework;
pub use ditto_graph as graph;
pub use ditto_ha as ha;
pub use ditto_obs as obs;
pub use ditto_plan as plan;
pub use ditto_serve as serve;
pub use ditto_wire as wire;
pub use fpga_model;
pub use hls_sim;
pub use sketches;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use datagen::{sample, EvolvingZipfStream, Tuple, UniformGenerator, ZipfGenerator};
    pub use ditto_apps::{
        run_pagerank, DataPartitionApp, HhdApp, HistoApp, HllApp, PageRankApp, PageRankResult,
    };
    pub use ditto_baselines::{
        routing_noskew, PriorDesign, SinglePeDesign, StaticReplicationDesign,
    };
    pub use ditto_core::{
        ArchConfig, DittoApp, ExecutionReport, MergeableOutput, PersistentPipeline, Routed,
        RunOutcome, SchedulingPlan, SkewObliviousPipeline, SliceOptions, StatSnapshot,
    };
    pub use ditto_framework::{
        select_implementation, Implementation, Platform, SkewAnalyzer, SystemGenerator,
    };
    pub use ditto_graph::{generate, pagerank, Csr};
    pub use ditto_ha::{BatchLog, HaCluster, Promotion, RecoverySource};
    pub use ditto_obs::{
        chrome_trace_json, CountsTrace, LatencyStats, LogHistogram, MetricsRegistry,
        MetricsSnapshot, SpanEvent, SpanJournal, SpanStage,
    };
    pub use ditto_plan::{validate, DeploymentPlan, Planner, PlannerOptions, WorkloadModel};
    pub use ditto_serve::{
        split_into_batches, AdmissionSnapshot, BalancerConfig, Cluster, ClusterSnapshot,
        ServeConfig,
    };
    pub use ditto_wire::{
        AdmissionConfig, AppRegistry, WireApp, WireClient, WireServer, WireServerConfig,
    };
    pub use fpga_model::{mteps, mtps, AppCostProfile, Device, PipelineShape, ResourceModel};
    pub use hls_sim::{
        CounterId, Engine, Kernel, MemoryModel, Progress, ReceiverId, SenderId, SimContext,
        SliceSource, StateId, StreamSource, WakeSet,
    };
    pub use sketches::{murmur3_32, murmur3_u64, CountMinSketch, Fixed, HyperLogLog};
}
