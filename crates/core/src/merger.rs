//! The merger module (§IV-B): folds SecPE partial buffers into PriPE
//! results according to the SecPE scheduling plan.

use std::sync::{Arc, Mutex};

use hls_sim::{Cycle, Kernel, Progress, SimContext};

use crate::app::DittoApp;
use crate::control::Control;
use crate::SchedulingPlan;

/// The merger kernel.
///
/// Holds shared handles to every destination PE's private buffer. On a
/// merge request (raised by the profiler once all SecPEs have drained) it
/// folds each scheduled SecPE's buffer into its PriPE's via the
/// application's `merge`, resets the SecPE buffer for its next assignment,
/// and acknowledges through the control block.
///
/// The same `merge_now` path is invoked once more at end of run before
/// `finalize` (the paper's offline flow: "the results of PriPEs and SecPEs
/// are merged by the merger module according to the SecPE scheduling plan").
pub struct MergerKernel<A: DittoApp> {
    name: String,
    app: Arc<A>,
    states: Vec<Arc<Mutex<A::State>>>,
    m_pri: u32,
    pe_entries: usize,
    plan: Arc<Mutex<SchedulingPlan>>,
    control: Arc<Control>,
    merges_done: u64,
}

impl<A: DittoApp> MergerKernel<A> {
    /// Creates the merger over all `M + X` destination-PE buffers
    /// (`states[0..M]` are PriPEs, the rest SecPEs).
    pub fn new(
        app: Arc<A>,
        states: Vec<Arc<Mutex<A::State>>>,
        m_pri: u32,
        pe_entries: usize,
        plan: Arc<Mutex<SchedulingPlan>>,
        control: Arc<Control>,
    ) -> Self {
        assert!(states.len() >= m_pri as usize, "need at least M states");
        MergerKernel {
            name: "merger".to_owned(),
            app,
            states,
            m_pri,
            pe_entries,
            plan,
            control,
            merges_done: 0,
        }
    }

    /// Performs the fold immediately (also used by the pipeline at end of
    /// run). SecPE buffers are reset to fresh states afterwards.
    pub fn merge_now(&mut self) {
        let plan = self.plan.lock().expect("uncontended").clone();
        debug_assert!(plan
            .pairs()
            .iter()
            .all(|&(_, pri)| (pri as usize) < self.m_pri as usize));
        fold_sec_states(&*self.app, &self.states, &plan, self.pe_entries);
        self.merges_done += 1;
    }

    /// Number of merge passes executed.
    pub fn merges_done(&self) -> u64 {
        self.merges_done
    }

    #[cfg(test)]
    pub(crate) fn control(&self) -> Arc<Control> {
        Arc::clone(&self.control)
    }
}

impl<A: DittoApp + 'static> Kernel for MergerKernel<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, _cy: Cycle, _ctx: &mut SimContext) -> Progress {
        if self.control.take_merge_request() {
            self.merge_now();
            self.control.set_merge_done();
        }
        // Merge requests arrive through the control block, not a channel;
        // the profiler wakes this kernel explicitly whenever it raises one,
        // so the merger parks in between.
        Progress::Sleep
    }

    fn is_idle(&self, _ctx: &SimContext) -> bool {
        true
    }
}

/// Folds each scheduled SecPE buffer into its PriPE's via the application's
/// `merge`, resetting the SecPE buffer to a fresh `pe_entries`-sized state —
/// the one fold used both by mid-run reschedules ([`MergerKernel`]) and the
/// pipeline's end-of-run pass.
pub fn fold_sec_states<A: DittoApp>(
    app: &A,
    states: &[Arc<Mutex<A::State>>],
    plan: &SchedulingPlan,
    pe_entries: usize,
) {
    for &(sec, pri) in plan.pairs() {
        let sec_state = std::mem::replace(
            &mut *states[sec as usize].lock().expect("uncontended"),
            app.new_state(pe_entries),
        );
        app.merge(
            &mut states[pri as usize].lock().expect("uncontended"),
            &sec_state,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::CountPerKey;
    use hls_sim::Engine;

    fn setup(plan_pairs: Vec<(u32, u32)>) -> (MergerKernel<CountPerKey>, Vec<Arc<Mutex<u64>>>) {
        let app = Arc::new(CountPerKey::new(2));
        let states: Vec<Arc<Mutex<u64>>> = (0..4).map(|i| Arc::new(Mutex::new(i * 10))).collect();
        let plan = Arc::new(Mutex::new(SchedulingPlan::from_pairs(plan_pairs)));
        let control = Control::new(2);
        let merger = MergerKernel::new(app, states.clone(), 2, 1, plan, control);
        (merger, states)
    }

    #[test]
    fn merges_sec_into_pri_and_resets_sec() {
        // PEs 0,1 primary (10*id), PEs 2,3 secondary; plan: 2->0, 3->1.
        let (mut merger, states) = setup(vec![(2, 0), (3, 1)]);
        merger.merge_now();
        assert_eq!(*states[0].lock().unwrap(), 20);
        assert_eq!(*states[1].lock().unwrap(), 10 + 30);
        assert_eq!(*states[2].lock().unwrap(), 0, "SecPE buffer reset");
        assert_eq!(*states[3].lock().unwrap(), 0);
    }

    #[test]
    fn merge_request_via_control() {
        let (mut merger, states) = setup(vec![(2, 1)]);
        let control = merger.control();
        let mut engine = Engine::new();
        control.request_merge();
        merger.step(0, engine.context_mut());
        assert!(control.merge_done());
        assert_eq!(*states[1].lock().unwrap(), 10 + 20);
        // A second step without a request does nothing.
        merger.step(1, engine.context_mut());
        assert_eq!(merger.merges_done(), 1);
    }

    #[test]
    fn empty_plan_merges_nothing() {
        let (mut merger, states) = setup(vec![]);
        merger.merge_now();
        for (i, s) in states.iter().enumerate() {
            assert_eq!(*s.lock().unwrap(), i as u64 * 10);
        }
    }
}
