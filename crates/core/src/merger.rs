//! The merger module (§IV-B): folds SecPE partial buffers into PriPE
//! results according to the SecPE scheduling plan.

use std::sync::Arc;

use hls_sim::{Cycle, Kernel, Progress, SimContext, StateId};

use crate::app::DittoApp;
use crate::control::ControlId;
use crate::SchedulingPlan;

/// The merger kernel.
///
/// Holds the arena handles of every destination PE's private buffer. On a
/// merge request (raised by the profiler once all SecPEs have drained) it
/// folds each scheduled SecPE's buffer into its PriPE's via the
/// application's `merge`, resets the SecPE buffer for its next assignment,
/// and acknowledges through the control block. All of that goes through the
/// `SimContext`: the PE buffers are state-arena registers this kernel and
/// the owning PEs address by the same `Copy` [`StateId`]s.
///
/// The same fold ([`fold_sec_states`]) runs once more at end of run before
/// `finalize` (the paper's offline flow: "the results of PriPEs and SecPEs
/// are merged by the merger module according to the SecPE scheduling plan").
pub struct MergerKernel<A: DittoApp> {
    name: String,
    app: Arc<A>,
    states: Vec<StateId<A::State>>,
    m_pri: u32,
    pe_entries: usize,
    plan: StateId<SchedulingPlan>,
    control: ControlId,
    merges_done: u64,
}

impl<A: DittoApp> MergerKernel<A> {
    /// Creates the merger over all `M + X` destination-PE buffers
    /// (`states[0..M]` are PriPEs, the rest SecPEs).
    pub fn new(
        app: Arc<A>,
        states: Vec<StateId<A::State>>,
        m_pri: u32,
        pe_entries: usize,
        plan: StateId<SchedulingPlan>,
        control: ControlId,
    ) -> Self {
        assert!(states.len() >= m_pri as usize, "need at least M states");
        MergerKernel {
            name: "merger".to_owned(),
            app,
            states,
            m_pri,
            pe_entries,
            plan,
            control,
            merges_done: 0,
        }
    }

    /// Performs the fold immediately (also used by the pipeline at end of
    /// run). SecPE buffers are reset to fresh states afterwards.
    pub fn merge_now(&mut self, ctx: &mut SimContext) {
        let plan = ctx.state(self.plan).clone();
        debug_assert!(plan
            .pairs()
            .iter()
            .all(|&(_, pri)| (pri as usize) < self.m_pri as usize));
        fold_sec_states(ctx, &*self.app, &self.states, &plan, self.pe_entries);
        self.merges_done += 1;
    }

    /// Number of merge passes executed.
    pub fn merges_done(&self) -> u64 {
        self.merges_done
    }
}

impl<A: DittoApp + 'static> Kernel for MergerKernel<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, _cy: Cycle, ctx: &mut SimContext) -> Progress {
        if ctx.state_mut(self.control).take_merge_request() {
            self.merge_now(ctx);
            ctx.state_mut(self.control).set_merge_done();
        }
        // Merge requests arrive through the control block, not a channel;
        // the profiler wakes this kernel explicitly whenever it raises one,
        // so the merger parks in between.
        Progress::Sleep
    }

    fn is_idle(&self, _ctx: &SimContext) -> bool {
        true
    }
}

/// Folds each scheduled SecPE buffer into its PriPE's via the application's
/// `merge`, resetting the SecPE buffer to a fresh `pe_entries`-sized state —
/// the one fold used both by mid-run reschedules ([`MergerKernel`]) and the
/// pipeline's end-of-run pass. The buffers are arena registers, so the fold
/// is a pair of indexed accesses per plan entry: take the SecPE state out,
/// merge it into the PriPE's.
pub fn fold_sec_states<A: DittoApp>(
    ctx: &mut SimContext,
    app: &A,
    states: &[StateId<A::State>],
    plan: &SchedulingPlan,
    pe_entries: usize,
) {
    for &(sec, pri) in plan.pairs() {
        let sec_state = std::mem::replace(
            ctx.state_mut(states[sec as usize]),
            app.new_state(pe_entries),
        );
        app.merge(ctx.state_mut(states[pri as usize]), &sec_state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::CountPerKey;
    use crate::control::Control;
    use hls_sim::Engine;

    fn setup(
        plan_pairs: Vec<(u32, u32)>,
    ) -> (
        Engine,
        MergerKernel<CountPerKey>,
        Vec<StateId<u64>>,
        ControlId,
    ) {
        let app = Arc::new(CountPerKey::new(2));
        let mut engine = Engine::new();
        let states: Vec<StateId<u64>> = (0..4u64).map(|i| engine.state(i * 10)).collect();
        let plan = engine.state(SchedulingPlan::from_pairs(plan_pairs));
        let control = engine.state(Control::new(2));
        let merger = MergerKernel::new(app, states.clone(), 2, 1, plan, control);
        (engine, merger, states, control)
    }

    #[test]
    fn merges_sec_into_pri_and_resets_sec() {
        // PEs 0,1 primary (10*id), PEs 2,3 secondary; plan: 2->0, 3->1.
        let (mut engine, mut merger, states, _) = setup(vec![(2, 0), (3, 1)]);
        merger.merge_now(engine.context_mut());
        let ctx = engine.context();
        assert_eq!(*ctx.state(states[0]), 20);
        assert_eq!(*ctx.state(states[1]), 10 + 30);
        assert_eq!(*ctx.state(states[2]), 0, "SecPE buffer reset");
        assert_eq!(*ctx.state(states[3]), 0);
    }

    #[test]
    fn merge_request_via_control() {
        let (mut engine, mut merger, states, control) = setup(vec![(2, 1)]);
        engine.context_mut().state_mut(control).request_merge();
        merger.step(0, engine.context_mut());
        assert!(engine.context().state(control).merge_done());
        assert_eq!(*engine.context().state(states[1]), 10 + 20);
        // A second step without a request does nothing.
        merger.step(1, engine.context_mut());
        assert_eq!(merger.merges_done(), 1);
    }

    #[test]
    fn empty_plan_merges_nothing() {
        let (mut engine, mut merger, states, _) = setup(vec![]);
        merger.merge_now(engine.context_mut());
        for (i, s) in states.iter().enumerate() {
            assert_eq!(*engine.context().state(*s), i as u64 * 10);
        }
    }
}
