//! The merger module (§IV-B): folds SecPE partial buffers into PriPE
//! results according to the SecPE scheduling plan.

use std::cell::RefCell;
use std::rc::Rc;

use hls_sim::{Cycle, Kernel};

use crate::app::DittoApp;
use crate::control::Control;
use crate::SchedulingPlan;

/// The merger kernel.
///
/// Holds shared handles to every destination PE's private buffer. On a
/// merge request (raised by the profiler once all SecPEs have drained) it
/// folds each scheduled SecPE's buffer into its PriPE's via the
/// application's `merge`, resets the SecPE buffer for its next assignment,
/// and acknowledges through the control block.
///
/// The same `merge_now` path is invoked once more at end of run before
/// `finalize` (the paper's offline flow: "the results of PriPEs and SecPEs
/// are merged by the merger module according to the SecPE scheduling plan").
pub struct MergerKernel<A: DittoApp> {
    name: String,
    app: Rc<A>,
    states: Vec<Rc<RefCell<A::State>>>,
    m_pri: u32,
    pe_entries: usize,
    plan: Rc<RefCell<SchedulingPlan>>,
    control: Rc<Control>,
    merges_done: u64,
}

impl<A: DittoApp> MergerKernel<A> {
    /// Creates the merger over all `M + X` destination-PE buffers
    /// (`states[0..M]` are PriPEs, the rest SecPEs).
    pub fn new(
        app: Rc<A>,
        states: Vec<Rc<RefCell<A::State>>>,
        m_pri: u32,
        pe_entries: usize,
        plan: Rc<RefCell<SchedulingPlan>>,
        control: Rc<Control>,
    ) -> Self {
        assert!(states.len() >= m_pri as usize, "need at least M states");
        MergerKernel {
            name: "merger".to_owned(),
            app,
            states,
            m_pri,
            pe_entries,
            plan,
            control,
            merges_done: 0,
        }
    }

    /// Performs the fold immediately (also used by the pipeline at end of
    /// run). SecPE buffers are reset to fresh states afterwards.
    pub fn merge_now(&mut self) {
        let plan = self.plan.borrow();
        for &(sec, pri) in plan.pairs() {
            let sec_idx = sec as usize;
            let pri_idx = pri as usize;
            debug_assert!(pri_idx < self.m_pri as usize);
            let sec_state = self.states[sec_idx].replace(self.app.new_state(self.pe_entries));
            self.app.merge(&mut self.states[pri_idx].borrow_mut(), &sec_state);
        }
        self.merges_done += 1;
    }

    /// Number of merge passes executed.
    pub fn merges_done(&self) -> u64 {
        self.merges_done
    }
}

impl<A: DittoApp + 'static> Kernel for MergerKernel<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, _cy: Cycle) {
        if self.control.take_merge_request() {
            self.merge_now();
            self.control.set_merge_done();
        }
    }

    fn is_idle(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::CountPerKey;

    fn setup(plan_pairs: Vec<(u32, u32)>) -> (MergerKernel<CountPerKey>, Vec<Rc<RefCell<u64>>>) {
        let app = Rc::new(CountPerKey::new(2));
        let states: Vec<Rc<RefCell<u64>>> =
            (0..4).map(|i| Rc::new(RefCell::new(i * 10))).collect();
        let plan = Rc::new(RefCell::new(SchedulingPlan::from_pairs(plan_pairs)));
        let control = Control::new(2);
        let merger =
            MergerKernel::new(app, states.clone(), 2, 1, plan, control);
        (merger, states)
    }

    #[test]
    fn merges_sec_into_pri_and_resets_sec() {
        // PEs 0,1 primary (10*id), PEs 2,3 secondary; plan: 2->0, 3->1.
        let (mut merger, states) = setup(vec![(2, 0), (3, 1)]);
        merger.merge_now();
        assert_eq!(*states[0].borrow(), 0 + 20);
        assert_eq!(*states[1].borrow(), 10 + 30);
        assert_eq!(*states[2].borrow(), 0, "SecPE buffer reset");
        assert_eq!(*states[3].borrow(), 0);
    }

    #[test]
    fn merge_request_via_control() {
        let (mut merger, states) = setup(vec![(2, 1)]);
        let control = Rc::clone(&merger.control);
        control.request_merge();
        merger.step(0);
        assert!(control.merge_done());
        assert_eq!(*states[1].borrow(), 10 + 20);
        // A second step without a request does nothing.
        merger.step(1);
        assert_eq!(merger.merges_done(), 1);
    }

    #[test]
    fn empty_plan_merges_nothing() {
        let (mut merger, states) = setup(vec![]);
        merger.merge_now();
        for (i, s) in states.iter().enumerate() {
            assert_eq!(*s.borrow(), i as u64 * 10);
        }
    }
}
