//! # ditto-core — the skew-oblivious data routing architecture
//!
//! This crate is the paper's primary contribution (§IV), reproduced as a
//! cycle-level model on the [`hls_sim`] substrate. Every module of the
//! paper's Fig. 3 is one simulated kernel:
//!
//! ```text
//! MemoryReader ─lane 0..N─► PrePE_i ─► Mapper_i ─► Combiner ═wide word═►
//!    {Decoder+Filter}_j ─► ProcPE_j (PriPE j<M / SecPE j≥M) ─► Merger
//!    Mapper_i ─PriPE-id feed─► RuntimeProfiler ─plan/reschedule─► Mappers, SecPEs
//! ```
//!
//! * [`DittoApp`] — the programming interface (the paper's Listing 2): an
//!   application provides `preprocess` (PrePE logic: compute `⟨dst, value⟩`),
//!   `process` (PriPE/SecPE logic against the private buffer), `merge`
//!   (fold a SecPE partial into its PriPE) and `finalize`.
//! * [`SkewObliviousPipeline`] — assembles and runs the full architecture
//!   for a given [`ArchConfig`] (N PrePEs, M PriPEs, X SecPEs, channel
//!   depths, profiling window, reschedule threshold and kernel-requeue
//!   overhead).
//! * [`mapper::Mapper`] — the mapping table + counter array with round-robin
//!   workload redirecting (§IV-C2, Fig. 4).
//! * [`profiler`] — workload histogram profiling, greedy SecPE plan
//!   generation (§IV-C3, Fig. 5) and throughput-drop triggered rescheduling
//!   (§IV-B) including the kernel re-enqueue overhead the paper measures in
//!   Fig. 9.
//!
//! # Example
//!
//! Build a 4-PrePE / 8-PriPE / 3-SecPE histogram pipeline and run it over a
//! skewed dataset:
//!
//! ```
//! use ditto_core::{ArchConfig, SkewObliviousPipeline};
//! use ditto_core::apps::CountPerKey;
//! use datagen::ZipfGenerator;
//!
//! let data = ZipfGenerator::new(2.0, 1 << 12, 7).take_vec(20_000);
//! let config = ArchConfig::new(4, 8, 3);
//! let app = CountPerKey::new(8);
//! let outcome = SkewObliviousPipeline::run_dataset(app, data, &config);
//! assert_eq!(outcome.output.iter().sum::<u64>(), 20_000);
//! assert!(outcome.report.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
pub mod apps;
mod arch;
mod config;
mod control;
pub mod counts;
pub mod mapper;
mod mask;
pub mod merger;
pub mod pe;
pub mod phase;
pub mod plan;
pub mod profiler;
pub mod reader;
mod report;
pub mod routing;

pub use app::{DittoApp, MergeableOutput, Routed};
pub use arch::{PersistentPipeline, RunOutcome, SkewObliviousPipeline};
pub use config::ArchConfig;
pub use control::{Control, ControlId, SecPhase};
pub use counts::{profile_counts, SliceOptions};
pub use mask::MaskTable;
pub use phase::PhasePlan;
pub use plan::SchedulingPlan;
pub use report::{ChannelTotals, ExecutionReport, StatSnapshot};
pub use routing::{WideWord, MAX_DEST_PES, MAX_WORD_SLOTS};

/// Identifier of a destination PE: `0..M` are PriPEs, `M..M+X` are SecPEs.
pub type PeId = u32;

pub use datagen::Tuple;
