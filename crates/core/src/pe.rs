//! Processing elements: PrePEs and destination PEs (PriPE/SecPE).

use std::sync::Arc;

use hls_sim::{
    CounterId, Cycle, Kernel, Progress, ReceiverId, SenderId, SimContext, StateId, WakeSet,
};

use crate::app::{DittoApp, Routed};
use crate::control::{ControlId, SecPhase};
use crate::Tuple;

/// A PrePE: reads raw tuples from its lane, applies the application's
/// `preprocess` (Listing 2's PrePE body) at `ii_pre` cycles per tuple, and
/// emits `⟨dst, value⟩` records to its mapper.
pub struct PrePeKernel<A: DittoApp> {
    name: String,
    app: Arc<A>,
    m_pri: u32,
    input: ReceiverId<Tuple>,
    output: SenderId<Routed<A::Value>>,
    busy_until: Cycle,
}

impl<A: DittoApp> PrePeKernel<A> {
    /// Creates PrePE `lane`.
    pub fn new(
        lane: usize,
        app: Arc<A>,
        m_pri: u32,
        input: ReceiverId<Tuple>,
        output: SenderId<Routed<A::Value>>,
    ) -> Self {
        PrePeKernel {
            name: format!("prepe#{lane}"),
            app,
            m_pri,
            input,
            output,
            busy_until: 0,
        }
    }
}

impl<A: DittoApp + 'static> Kernel for PrePeKernel<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        let parked = |ctx: &SimContext| {
            // No new input or no downstream room: only channel events can
            // change either, so park. An II wait with buffered input spins.
            if ctx.is_empty(self.input) || !ctx.can_send(self.output) {
                Progress::Sleep
            } else {
                Progress::Busy
            }
        };
        if cy < self.busy_until || !ctx.can_send(self.output) {
            return parked(ctx);
        }
        if let Some(tuple) = ctx.try_recv(cy, self.input) {
            let routed = self.app.preprocess(tuple, self.m_pri);
            assert!(
                routed.dst < self.m_pri,
                "application routed to PE {} but M = {}",
                routed.dst,
                self.m_pri
            );
            ctx.try_send(cy, self.output, routed)
                .unwrap_or_else(|_| unreachable!("checked"));
            self.busy_until = cy + Cycle::from(self.app.ii_pre());
            Progress::Busy
        } else {
            parked(ctx)
        }
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        ctx.is_empty(self.input)
    }

    fn hold_until(&self, cy: Cycle, ctx: &SimContext) -> Option<Cycle> {
        if cy < self.busy_until {
            // II wait: steps in between neither receive nor send.
            return Some(self.busy_until);
        }
        if !ctx.can_send(self.output) {
            // Blocked on downstream room; only a pop event changes that.
            return Some(Cycle::MAX);
        }
        match ctx.recv_visible_at(self.input) {
            None => Some(Cycle::MAX),     // empty: wait for a push event
            Some(t) if t > cy => Some(t), // item in flight, invisible yet
            Some(_) => None,              // visible work this cycle
        }
    }

    fn wake_set(&self) -> WakeSet {
        WakeSet::new()
            .after_push_on(self.input)
            .after_pop_on(self.output)
    }
}

/// Role of a destination PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeRole {
    /// Primary PE `0..M`: always running, owns a distinct key range.
    Primary,
    /// Secondary PE `M..M+X` (with its 0-based SecPE index): enqueued and
    /// dequeued dynamically by the reschedule protocol.
    Secondary(usize),
}

/// A destination PE (PriPE or SecPE): consumes routed values at `ii_pri`
/// cycles per tuple and applies the application's `process` against its
/// private buffer.
///
/// The private buffer is a register in the engine's **state arena**: this
/// kernel and the merger hold the same `Copy` [`StateId`] and resolve it
/// through the `SimContext` — the in-simulation equivalent of the merger
/// reading the PE's BRAM after it exits. Processed-tuple accounting goes
/// through plain arena counters the same way, so the per-tuple hot path is
/// two indexed arena accesses, with no locks and no atomics anywhere.
pub struct ProcPeKernel<A: DittoApp> {
    name: String,
    app: Arc<A>,
    role: PeRole,
    input: ReceiverId<A::Value>,
    state: StateId<A::State>,
    processed: CounterId,
    total_processed: CounterId,
    control: ControlId,
    busy_until: Cycle,
}

impl<A: DittoApp> ProcPeKernel<A> {
    /// Creates destination PE `id` with the given `role`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        role: PeRole,
        app: Arc<A>,
        input: ReceiverId<A::Value>,
        state: StateId<A::State>,
        processed: CounterId,
        total_processed: CounterId,
        control: ControlId,
    ) -> Self {
        let name = match role {
            PeRole::Primary => format!("pripe#{id}"),
            PeRole::Secondary(_) => format!("secpe#{id}"),
        };
        ProcPeKernel {
            name,
            app,
            role,
            input,
            state,
            processed,
            total_processed,
            control,
            busy_until: 0,
        }
    }

    /// This PE's per-PE processed-tuple counter.
    pub fn processed(&self) -> CounterId {
        self.processed
    }
}

impl<A: DittoApp + 'static> Kernel for ProcPeKernel<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        if let PeRole::Secondary(idx) = self.role {
            let control = ctx.state(self.control);
            match control.sec_phase(idx) {
                SecPhase::Running => {}
                SecPhase::Draining => {
                    // §IV-B's drain protocol: keep consuming (at the normal
                    // II) until every tuple routed to this SecPE anywhere in
                    // the datapath has been consumed, then exit. Stay hot
                    // for the whole drain so the transition fires the cycle
                    // the last in-flight tuple lands.
                    if control.sec_inflight(idx) == 0 {
                        ctx.state_mut(self.control)
                            .set_sec_phase(idx, SecPhase::Exited);
                        return Progress::Sleep;
                    }
                }
                // Parked until the profiler re-enqueues it (the profiler
                // wakes this kernel explicitly on restart, §IV-B).
                SecPhase::Exited => return Progress::Sleep,
            }
        }
        if cy < self.busy_until {
            return Progress::Busy;
        }
        if let Some(value) = ctx.try_recv(cy, self.input) {
            self.app.process(ctx.state_mut(self.state), &value);
            ctx.counter_incr(self.processed);
            ctx.counter_incr(self.total_processed);
            if let PeRole::Secondary(idx) = self.role {
                ctx.state_mut(self.control).sec_inflight_dec(idx);
            }
            self.busy_until = cy + Cycle::from(self.app.ii_pri());
            return Progress::Busy;
        }
        if ctx.is_empty(self.input) {
            // Sleeping is safe for SecPEs too: phase transitions that need
            // a step (drain command, restart) arrive with an explicit wake
            // from the profiler, and new tuples wake via the channel.
            Progress::Sleep
        } else {
            Progress::Busy
        }
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        ctx.is_empty(self.input)
    }

    fn hold_until(&self, cy: Cycle, ctx: &SimContext) -> Option<Cycle> {
        if let PeRole::Secondary(idx) = self.role {
            match ctx.state(self.control).sec_phase(idx) {
                SecPhase::Running => {}
                // Draining transitions phases from inside step; simulate it.
                SecPhase::Draining => return None,
                SecPhase::Exited => return Some(Cycle::MAX),
            }
        }
        if cy < self.busy_until {
            return Some(self.busy_until);
        }
        match ctx.recv_visible_at(self.input) {
            None => Some(Cycle::MAX),
            Some(t) if t > cy => Some(t),
            Some(_) => None,
        }
    }

    fn wake_set(&self) -> WakeSet {
        WakeSet::new().after_push_on(self.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::CountPerKey;
    use crate::control::Control;
    use hls_sim::Engine;

    #[test]
    fn prepe_applies_ii() {
        let app = Arc::new(CountPerKey::new(4));
        let mut engine = Engine::new();
        let (in_tx, in_rx) = engine.channel("in", 64);
        let (out_tx, _out_rx) = engine.channel::<Routed<()>>("out", 64);
        for k in 0..10u64 {
            engine
                .context_mut()
                .try_send(0, in_tx, Tuple::from_key(k))
                .unwrap();
        }
        engine.add_kernel(PrePeKernel::new(0, app, 4, in_rx, out_tx));
        engine.run_cycles(5);
        // II = 1, latency 1: ~4 tuples forwarded after 5 cycles.
        let pushes = |e: &Engine| {
            e.channel_stats()
                .iter()
                .find(|s| s.name == "out")
                .unwrap()
                .pushes
        };
        let forwarded = pushes(&engine);
        assert!((3..=5).contains(&forwarded), "{forwarded}");
        engine.run_cycles(20);
        assert_eq!(pushes(&engine), 10);
    }

    #[test]
    fn procpe_ii_two_halves_rate() {
        let app = Arc::new(CountPerKey::new(4));
        let mut engine = Engine::new();
        let (in_tx, in_rx) = engine.channel("in", 256);
        for _ in 0..100 {
            engine.context_mut().try_send(0, in_tx, ()).unwrap();
        }
        let state = engine.state(0u64);
        let control = engine.state(Control::new(0));
        let processed = engine.counter();
        let total = engine.counter();
        engine.add_kernel(ProcPeKernel::new(
            0,
            PeRole::Primary,
            app,
            in_rx,
            state,
            processed,
            total,
            control,
        ));
        engine.run_cycles(41);
        // II = 2: about 20 tuples in 41 cycles.
        let done = *engine.context().state(state);
        assert!((19..=21).contains(&done), "{done}");
    }

    #[test]
    fn secpe_drains_then_exits() {
        let app = Arc::new(CountPerKey::new(4));
        let mut engine = Engine::new();
        let (in_tx, in_rx) = engine.channel("in", 256);
        for _ in 0..5 {
            engine.context_mut().try_send(0, in_tx, ()).unwrap();
        }
        let control = engine.state(Control::new(1));
        // The mapper-side accounting would have counted these five tuples.
        for _ in 0..5 {
            engine.context_mut().state_mut(control).sec_inflight_inc(0);
        }
        let state = engine.state(0u64);
        let processed = engine.counter();
        let total = engine.counter();
        engine.add_kernel(ProcPeKernel::new(
            4,
            PeRole::Secondary(0),
            app,
            in_rx,
            state,
            processed,
            total,
            control,
        ));
        engine.context_mut().state_mut(control).drain_all_secs();
        engine.run_cycles(100);
        let ctx = engine.context();
        assert_eq!(*ctx.state(state), 5, "drained all queued tuples");
        assert_eq!(ctx.state(control).sec_phase(0), SecPhase::Exited);
    }

    #[test]
    fn exited_secpe_ignores_input() {
        let app = Arc::new(CountPerKey::new(4));
        let mut engine = Engine::new();
        let (in_tx, in_rx) = engine.channel("in", 16);
        engine.context_mut().try_send(0, in_tx, ()).unwrap();
        let control = engine.state(Control::new(1));
        engine
            .context_mut()
            .state_mut(control)
            .set_sec_phase(0, SecPhase::Exited);
        let state = engine.state(0u64);
        let processed = engine.counter();
        let total = engine.counter();
        engine.add_kernel(ProcPeKernel::new(
            4,
            PeRole::Secondary(0),
            app,
            in_rx,
            state,
            processed,
            total,
            control,
        ));
        engine.run_cycles(10);
        assert_eq!(*engine.context().state(state), 0);
    }
}
