//! Processing elements: PrePEs and destination PEs (PriPE/SecPE).

use std::cell::RefCell;
use std::rc::Rc;

use hls_sim::{Counter, Cycle, Kernel, Receiver, Sender};

use crate::app::{DittoApp, Routed};
use crate::control::{Control, SecPhase};
use crate::Tuple;

/// A PrePE: reads raw tuples from its lane, applies the application's
/// `preprocess` (Listing 2's PrePE body) at `ii_pre` cycles per tuple, and
/// emits `⟨dst, value⟩` records to its mapper.
pub struct PrePeKernel<A: DittoApp> {
    name: String,
    app: Rc<A>,
    m_pri: u32,
    input: Receiver<Tuple>,
    output: Sender<Routed<A::Value>>,
    busy_until: Cycle,
}

impl<A: DittoApp> PrePeKernel<A> {
    /// Creates PrePE `lane`.
    pub fn new(
        lane: usize,
        app: Rc<A>,
        m_pri: u32,
        input: Receiver<Tuple>,
        output: Sender<Routed<A::Value>>,
    ) -> Self {
        PrePeKernel { name: format!("prepe#{lane}"), app, m_pri, input, output, busy_until: 0 }
    }
}

impl<A: DittoApp + 'static> Kernel for PrePeKernel<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle) {
        if cy < self.busy_until || !self.output.can_send() {
            return;
        }
        if let Some(tuple) = self.input.try_recv(cy) {
            let routed = self.app.preprocess(tuple, self.m_pri);
            assert!(
                routed.dst < self.m_pri,
                "application routed to PE {} but M = {}",
                routed.dst,
                self.m_pri
            );
            self.output.try_send(cy, routed).unwrap_or_else(|_| unreachable!("checked"));
            self.busy_until = cy + Cycle::from(self.app.ii_pre());
        }
    }

    fn is_idle(&self) -> bool {
        self.input.is_empty()
    }
}

/// Role of a destination PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeRole {
    /// Primary PE `0..M`: always running, owns a distinct key range.
    Primary,
    /// Secondary PE `M..M+X` (with its 0-based SecPE index): enqueued and
    /// dequeued dynamically by the reschedule protocol.
    Secondary(usize),
}

/// A destination PE (PriPE or SecPE): consumes routed values at `ii_pri`
/// cycles per tuple and applies the application's `process` against its
/// private buffer.
///
/// The private buffer is shared with the merger through an
/// `Rc<RefCell<State>>` — the in-simulation equivalent of the merger reading
/// the PE's BRAM after it exits.
pub struct ProcPeKernel<A: DittoApp> {
    name: String,
    app: Rc<A>,
    role: PeRole,
    input: Receiver<A::Value>,
    state: Rc<RefCell<A::State>>,
    processed: Counter,
    total_processed: Counter,
    control: Rc<Control>,
    busy_until: Cycle,
}

impl<A: DittoApp> ProcPeKernel<A> {
    /// Creates destination PE `id` with the given `role`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        role: PeRole,
        app: Rc<A>,
        input: Receiver<A::Value>,
        state: Rc<RefCell<A::State>>,
        processed: Counter,
        total_processed: Counter,
        control: Rc<Control>,
    ) -> Self {
        let name = match role {
            PeRole::Primary => format!("pripe#{id}"),
            PeRole::Secondary(_) => format!("secpe#{id}"),
        };
        ProcPeKernel {
            name,
            app,
            role,
            input,
            state,
            processed,
            total_processed,
            control,
            busy_until: 0,
        }
    }

    /// This PE's per-PE processed-tuple counter.
    pub fn processed(&self) -> Counter {
        self.processed.clone()
    }
}

impl<A: DittoApp + 'static> Kernel for ProcPeKernel<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle) {
        if let PeRole::Secondary(idx) = self.role {
            match self.control.sec_phase(idx) {
                SecPhase::Running => {}
                SecPhase::Draining => {
                    // §IV-B's drain protocol: keep consuming (at the normal
                    // II) until every tuple routed to this SecPE anywhere in
                    // the datapath has been consumed, then exit.
                    if self.control.sec_inflight(idx) == 0 {
                        self.control.set_sec_phase(idx, SecPhase::Exited);
                        return;
                    }
                }
                SecPhase::Exited => return,
            }
        }
        if cy < self.busy_until {
            return;
        }
        if let Some(value) = self.input.try_recv(cy) {
            self.app.process(&mut self.state.borrow_mut(), &value);
            self.processed.incr();
            self.total_processed.incr();
            if let PeRole::Secondary(idx) = self.role {
                self.control.sec_inflight_dec(idx);
            }
            self.busy_until = cy + Cycle::from(self.app.ii_pri());
        }
    }

    fn is_idle(&self) -> bool {
        self.input.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::CountPerKey;
    use hls_sim::{Channel, Engine};

    #[test]
    fn prepe_applies_ii() {
        let app = Rc::new(CountPerKey::new(4));
        let in_ch = Channel::new("in", 64);
        let out_ch = Channel::new("out", 64);
        for k in 0..10u64 {
            in_ch.sender().try_send(0, Tuple::from_key(k)).unwrap();
        }
        let mut engine = Engine::new();
        engine.add_kernel(PrePeKernel::new(0, app, 4, in_ch.receiver(), out_ch.sender()));
        engine.run_cycles(5);
        // II = 1, latency 1: ~4 tuples forwarded after 5 cycles.
        let forwarded = out_ch.stats().pushes;
        assert!((3..=5).contains(&forwarded), "{forwarded}");
        engine.run_cycles(20);
        assert_eq!(out_ch.stats().pushes, 10);
    }

    #[test]
    fn procpe_ii_two_halves_rate() {
        let app = Rc::new(CountPerKey::new(4));
        let in_ch = Channel::new("in", 256);
        for _ in 0..100 {
            in_ch.sender().try_send(0, ()).unwrap();
        }
        let state = Rc::new(RefCell::new(0u64));
        let control = Control::new(0);
        let mut engine = Engine::new();
        engine.add_kernel(ProcPeKernel::new(
            0,
            PeRole::Primary,
            app,
            in_ch.receiver(),
            state.clone(),
            Counter::new(),
            Counter::new(),
            control,
        ));
        engine.run_cycles(41);
        // II = 2: about 20 tuples in 41 cycles.
        let done = *state.borrow();
        assert!((19..=21).contains(&done), "{done}");
    }

    #[test]
    fn secpe_drains_then_exits() {
        let app = Rc::new(CountPerKey::new(4));
        let in_ch = Channel::new("in", 256);
        for _ in 0..5 {
            in_ch.sender().try_send(0, ()).unwrap();
        }
        let control = Control::new(1);
        // The mapper-side accounting would have counted these five tuples.
        for _ in 0..5 {
            control.sec_inflight_inc(0);
        }
        let state = Rc::new(RefCell::new(0u64));
        let mut pe = ProcPeKernel::new(
            4,
            PeRole::Secondary(0),
            app,
            in_ch.receiver(),
            state.clone(),
            Counter::new(),
            Counter::new(),
            control.clone(),
        );
        control.set_sec_phase(0, SecPhase::Draining);
        for cy in 1..100 {
            pe.step(cy);
        }
        assert_eq!(*state.borrow(), 5, "drained all queued tuples");
        assert_eq!(control.sec_phase(0), SecPhase::Exited);
    }

    #[test]
    fn exited_secpe_ignores_input() {
        let app = Rc::new(CountPerKey::new(4));
        let in_ch = Channel::new("in", 16);
        in_ch.sender().try_send(0, ()).unwrap();
        let control = Control::new(1);
        control.set_sec_phase(0, SecPhase::Exited);
        let state = Rc::new(RefCell::new(0u64));
        let mut pe = ProcPeKernel::new(
            4,
            PeRole::Secondary(0),
            app,
            in_ch.receiver(),
            state.clone(),
            Counter::new(),
            Counter::new(),
            control,
        );
        for cy in 1..10 {
            pe.step(cy);
        }
        assert_eq!(*state.borrow(), 0);
    }
}
