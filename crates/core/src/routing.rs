//! The data routing logic (§IV-C1): combiner, decoder and filter.

use std::rc::Rc;

use hls_sim::{Cycle, Kernel, Receiver, Sender};

use crate::app::Routed;
use crate::mask::MaskTable;
use crate::PeId;

/// A wide word: up to N routed records gathered in one cycle, shared
/// (by `Rc`) across the M+X datapaths the combiner duplicates it to.
pub type WideWord<V> = Rc<Vec<Routed<V>>>;

/// The combiner: "gathers N tuples together with their destination PE IDs
/// and duplicates them for M+X datapaths each owned by a destination PE".
///
/// The broadcast is atomic: the word is sent only when *every* datapath
/// channel has space. This is the stall point through which one overloaded
/// PE back-pressures the whole pipeline — the mechanism behind Fig. 2b.
pub struct CombinerKernel<V> {
    name: String,
    inputs: Vec<Receiver<Routed<V>>>,
    outputs: Vec<Sender<WideWord<V>>>,
}

impl<V> CombinerKernel<V> {
    /// Creates the combiner over `inputs` (one per mapper lane) and
    /// `outputs` (one per destination PE datapath).
    pub fn new(inputs: Vec<Receiver<Routed<V>>>, outputs: Vec<Sender<WideWord<V>>>) -> Self {
        CombinerKernel { name: "combiner".to_owned(), inputs, outputs }
    }
}

impl<V: Clone + 'static> Kernel for CombinerKernel<V> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle) {
        // Stall unless every datapath can accept the word.
        if !self.outputs.iter().all(Sender::can_send) {
            return;
        }
        let mut word = Vec::with_capacity(self.inputs.len());
        for rx in &self.inputs {
            if let Some(routed) = rx.try_recv(cy) {
                word.push(routed);
            }
        }
        if word.is_empty() {
            return;
        }
        let word = Rc::new(word);
        for tx in &self.outputs {
            tx.try_send(cy, Rc::clone(&word)).unwrap_or_else(|_| unreachable!("checked"));
        }
    }

    fn is_idle(&self) -> bool {
        self.inputs.iter().all(Receiver::is_empty)
    }
}

/// One decoder + filter pair (one per destination PE datapath).
///
/// The decoder compares the word's destination ids against this PE's id and
/// looks the resulting mask up in the preset [`MaskTable`]; the filter then
/// forwards the selected records to the PE's input queue, one per cycle —
/// this serialisation is why a PE that attracts many records per word
/// becomes the bottleneck under skew.
pub struct DecoderFilterKernel<V> {
    name: String,
    pe_id: PeId,
    table: Rc<MaskTable>,
    input: Receiver<WideWord<V>>,
    output: Sender<V>,
    /// Records decoded from the current word, not yet forwarded.
    pending: Vec<V>,
    pending_next: usize,
}

impl<V: Clone> DecoderFilterKernel<V> {
    /// Creates the datapath for destination PE `pe_id`.
    pub fn new(
        pe_id: PeId,
        table: Rc<MaskTable>,
        input: Receiver<WideWord<V>>,
        output: Sender<V>,
    ) -> Self {
        DecoderFilterKernel {
            name: format!("filter#{pe_id}"),
            pe_id,
            table,
            input,
            output,
            pending: Vec::new(),
            pending_next: 0,
        }
    }

    fn decode(&mut self, word: &[Routed<V>]) {
        // Build the N-bit mask and run it through the preset table, exactly
        // like the hardware decoder (§IV-C1).
        let mut mask: u32 = 0;
        for (slot, routed) in word.iter().enumerate() {
            if routed.dst == self.pe_id {
                mask |= 1 << slot;
            }
        }
        let (count, positions) = self.table.decode(mask);
        self.pending.clear();
        self.pending_next = 0;
        for &pos in &positions[..count as usize] {
            self.pending.push(word[pos as usize].value.clone());
        }
    }
}

impl<V: Clone + 'static> Kernel for DecoderFilterKernel<V> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle) {
        // Pending drained: decode the next word. Decode overlaps with the
        // first forward (the hardware decoder+filter is pipelined), so a
        // word with k matches occupies this datapath for max(k, 1) cycles.
        if self.pending_next >= self.pending.len() {
            if let Some(word) = self.input.try_recv(cy) {
                self.decode(&word);
            }
        }
        // Forward one record per cycle.
        if self.pending_next < self.pending.len() {
            let v = self.pending[self.pending_next].clone();
            if self.output.try_send(cy, v).is_ok() {
                self.pending_next += 1;
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.input.is_empty() && self.pending_next >= self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_sim::{Channel, Engine};

    fn word(dsts: &[u32]) -> WideWord<u32> {
        Rc::new(dsts.iter().map(|&d| Routed::new(d, d * 10)).collect())
    }

    #[test]
    fn combiner_gathers_and_broadcasts() {
        let in_a = Channel::new("a", 8);
        let in_b = Channel::new("b", 8);
        let out_x = Channel::new("x", 8);
        let out_y = Channel::new("y", 8);
        in_a.sender().try_send(0, Routed::new(0u32, 1u32)).unwrap();
        in_b.sender().try_send(0, Routed::new(1u32, 2u32)).unwrap();
        let mut engine = Engine::new();
        engine.add_kernel(CombinerKernel::new(
            vec![in_a.receiver(), in_b.receiver()],
            vec![out_x.sender(), out_y.sender()],
        ));
        engine.run_cycles(3);
        let wx = out_x.receiver().try_recv(5).expect("word on x");
        let wy = out_y.receiver().try_recv(5).expect("word on y");
        assert_eq!(wx.len(), 2);
        assert!(Rc::ptr_eq(&wx, &wy), "broadcast shares one word");
    }

    #[test]
    fn combiner_stalls_when_any_output_full() {
        let input = Channel::new("in", 8);
        let free = Channel::new("free", 8);
        let full = Channel::new("full", 1);
        full.sender().try_send(0, word(&[9])).unwrap(); // pre-fill
        input.sender().try_send(0, Routed::new(0u32, 5u32)).unwrap();
        let mut engine = Engine::new();
        engine.add_kernel(CombinerKernel::new(
            vec![input.receiver()],
            vec![free.sender(), full.sender()],
        ));
        engine.run_cycles(5);
        assert_eq!(free.stats().pushes, 0, "stalled broadcast must be atomic");
        assert_eq!(input.receiver().len(), 1, "input not consumed while stalled");
    }

    #[test]
    fn filter_extracts_only_matching_slots() {
        let table = Rc::new(MaskTable::new(4));
        let in_ch = Channel::new("in", 8);
        let out_ch = Channel::new("out", 8);
        in_ch.sender().try_send(0, word(&[2, 1, 2, 3])).unwrap();
        let mut engine = Engine::new();
        engine.add_kernel(DecoderFilterKernel::new(
            2,
            table,
            in_ch.receiver(),
            out_ch.sender(),
        ));
        engine.run_cycles(6);
        let rx = out_ch.receiver();
        assert_eq!(rx.try_recv(10), Some(20));
        assert_eq!(rx.try_recv(10), Some(20));
        assert_eq!(rx.try_recv(10), None);
    }

    #[test]
    fn filter_serialises_one_record_per_cycle() {
        let table = Rc::new(MaskTable::new(4));
        let in_ch = Channel::new("in", 8);
        let out_ch = Channel::new("out", 16);
        in_ch.sender().try_send(0, word(&[7, 7, 7, 7])).unwrap();
        let mut f = DecoderFilterKernel::new(7, table, in_ch.receiver(), out_ch.sender());
        // cycle 1: decode + first push (pipelined); cycles 2..=4: one each.
        for cy in 1..=3 {
            f.step(cy);
        }
        assert_eq!(out_ch.stats().pushes, 3);
        for cy in 4..=6 {
            f.step(cy);
        }
        assert_eq!(out_ch.stats().pushes, 4);
    }

    #[test]
    fn filter_respects_downstream_backpressure() {
        let table = Rc::new(MaskTable::new(2));
        let in_ch = Channel::new("in", 8);
        let out_ch = Channel::new("out", 1);
        in_ch.sender().try_send(0, word(&[5, 5])).unwrap();
        let mut f = DecoderFilterKernel::new(5, table, in_ch.receiver(), out_ch.sender());
        for cy in 1..20 {
            f.step(cy);
        }
        // Only one record fits downstream; the second stays pending.
        assert_eq!(out_ch.stats().pushes, 1);
        assert!(!f.is_idle());
    }
}
