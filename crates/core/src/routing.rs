//! The data routing logic (§IV-C1): combiner, decoder and filter.
//!
//! The hot path is allocation-free: the combiner gathers each cycle's
//! records into a fixed-width inline [`WideWord`] (no per-word `Rc<Vec>`)
//! and broadcasts it once through the engine's broadcast channel (stored a
//! single time regardless of the M+X datapath fan-out); each decoder/filter
//! looks its destination mask up in the preset [`MaskTable`] and copies only
//! its matching values into a reusable inline pending buffer.

use std::sync::Arc;

use hls_sim::{
    BcastReceiverId, BcastSenderId, Cycle, Kernel, Progress, ReceiverId, SenderId, SimContext,
    TapRecv, WakeSet,
};

use crate::app::Routed;
use crate::mask::MaskTable;
use crate::PeId;

/// Widest wide-word the routing fabric supports: one slot per PrePE lane,
/// bounded by the decoder's preset-table width (§IV-C1 materialises a 2^N
/// table, so N is small by construction).
pub const MAX_WORD_SLOTS: usize = 16;

/// Largest number of destination PEs (M + X) a wide word carries masks for.
pub const MAX_DEST_PES: usize = 64;

/// A wide word: up to [`MAX_WORD_SLOTS`] routed records gathered in one
/// cycle, stored inline (no heap allocation) in structure-of-arrays form —
/// a contiguous destination-id lane next to a contiguous value lane,
/// mirroring the hardware wide word's field packing.
///
/// In hardware the combiner emits the records plus their destination ids and
/// every decoder compares all N ids against its own. The word stores exactly
/// that: one `u8` destination per slot. [`mask_for`](Self::mask_for) derives
/// a decoder's slot mask with a single pass over the (at most
/// [`MAX_WORD_SLOTS`]-byte) id lane, cheap-rejected by the `dest_taps`
/// relevance bitmask — so the per-word broadcast copy moves N + 9 bytes of
/// routing metadata instead of a materialised `M + X`-row mask table, while
/// the common cold-datapath lookup stays O(1).
#[derive(Debug, Clone)]
pub struct WideWord<V> {
    len: u8,
    /// Slot payloads (the value lane). Slots past `len` hold defaults.
    values: [V; MAX_WORD_SLOTS],
    /// Slot destination PE ids (the key lane), parallel to `values`.
    dsts: [u8; MAX_WORD_SLOTS],
    /// Bit `p` set ⇔ some slot targets destination PE `p` — the word's tap
    /// relevance mask, maintained while gathering so the broadcast core
    /// classifies the word for all M+X datapaths in one load.
    dest_taps: u64,
}

impl<V: Default> Default for WideWord<V> {
    fn default() -> Self {
        WideWord {
            len: 0,
            values: std::array::from_fn(|_| V::default()),
            dsts: [0; MAX_WORD_SLOTS],
            dest_taps: 0,
        }
    }
}

impl<V: Default> WideWord<V> {
    /// An empty word.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a routed record to the next slot.
    ///
    /// # Panics
    ///
    /// Panics if the word is full or `record.dst` exceeds [`MAX_DEST_PES`].
    pub fn push(&mut self, record: Routed<V>) {
        let slot = usize::from(self.len);
        assert!(
            slot < MAX_WORD_SLOTS,
            "wide word exceeds {MAX_WORD_SLOTS} slots"
        );
        assert!(
            (record.dst as usize) < MAX_DEST_PES,
            "destination PE {} exceeds the wide-word mask range",
            record.dst
        );
        self.dsts[slot] = record.dst as u8;
        self.dest_taps |= 1 << record.dst;
        self.values[slot] = record.value;
        self.len += 1;
    }

    /// Number of records gathered into this word.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// `true` when the word holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The N-bit mask of slots destined for PE `pe` (bit `i` set ⇔ slot `i`
    /// targets `pe`), derived by scanning the destination-id lane.
    ///
    /// # Panics
    ///
    /// Panics if `pe` exceeds [`MAX_DEST_PES`].
    pub fn mask_for(&self, pe: PeId) -> u16 {
        assert!(
            (pe as usize) < MAX_DEST_PES,
            "destination PE {pe} exceeds the wide-word mask range"
        );
        if self.dest_taps & (1u64 << pe) == 0 {
            return 0;
        }
        let mut mask = 0u16;
        for (slot, &d) in self.dsts[..usize::from(self.len)].iter().enumerate() {
            mask |= u16::from(PeId::from(d) == pe) << slot;
        }
        mask
    }

    /// The destination-PE bitmask (bit `p` set ⇔ some slot targets PE
    /// `p`) — the word's relevance mask for the broadcast datapaths.
    pub fn dest_taps(&self) -> u64 {
        self.dest_taps
    }

    /// The payload in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not occupied.
    pub fn value(&self, slot: usize) -> &V {
        assert!(slot < usize::from(self.len), "slot {slot} not occupied");
        &self.values[slot]
    }

    /// Iterates the occupied slots' payloads in gather order.
    pub fn iter(&self) -> impl Iterator<Item = &V> {
        self.values[..usize::from(self.len)].iter()
    }
}

/// The combiner: "gathers N tuples together with their destination PE IDs
/// and duplicates them for M+X datapaths each owned by a destination PE".
///
/// The broadcast is atomic: the word is sent only when *every* datapath
/// channel has space. This is the stall point through which one overloaded
/// PE back-pressures the whole pipeline — the mechanism behind Fig. 2b.
pub struct CombinerKernel<V> {
    name: String,
    inputs: Vec<ReceiverId<Routed<V>>>,
    output: BcastSenderId<WideWord<V>>,
}

impl<V> CombinerKernel<V> {
    /// Creates the combiner over `inputs` (one per mapper lane) and the
    /// broadcast `output` fanning out to the destination-PE datapaths.
    ///
    /// # Panics
    ///
    /// Panics if there are more input lanes than [`MAX_WORD_SLOTS`].
    pub fn new(inputs: Vec<ReceiverId<Routed<V>>>, output: BcastSenderId<WideWord<V>>) -> Self {
        assert!(
            inputs.len() <= MAX_WORD_SLOTS,
            "combiner gathers at most {MAX_WORD_SLOTS} lanes per word"
        );
        CombinerKernel {
            name: "combiner".to_owned(),
            inputs,
            output,
        }
    }
}

impl<V: Clone + Default + Send + 'static> Kernel for CombinerKernel<V> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        // Stall unless every datapath can accept the word.
        if !ctx.bcast_can_send(self.output) {
            // Blocked: only a datapath pop can unblock us.
            return Progress::Sleep;
        }
        let mut word = WideWord::new();
        for &rx in &self.inputs {
            if let Some(routed) = ctx.try_recv(cy, rx) {
                word.push(routed);
            }
        }
        if word.is_empty() {
            // Park only when the lanes are structurally empty; in-flight
            // items (pushed, not yet visible) arrive without a new event.
            return if self.inputs.iter().all(|&rx| ctx.is_empty(rx)) {
                Progress::Sleep
            } else {
                Progress::Busy
            };
        }
        ctx.bcast_try_send(cy, self.output, word)
            .unwrap_or_else(|_| unreachable!("checked"));
        Progress::Busy
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        self.inputs.iter().all(|&rx| ctx.is_empty(rx))
    }

    fn hold_until(&self, cy: Cycle, ctx: &SimContext) -> Option<Cycle> {
        if !ctx.bcast_can_send(self.output) {
            // Stalled broadcast: only a datapath pop event unblocks it.
            return Some(Cycle::MAX);
        }
        let mut earliest = Cycle::MAX;
        for &rx in &self.inputs {
            match ctx.recv_visible_at(rx) {
                None => {}
                Some(t) if t > cy => earliest = earliest.min(t),
                Some(_) => return None, // a lane has work this cycle
            }
        }
        Some(earliest)
    }

    fn wake_set(&self) -> WakeSet {
        let mut ws = WakeSet::new().after_pop_on_bcast(self.output);
        for &rx in &self.inputs {
            ws = ws.after_push_on(rx);
        }
        ws
    }
}

/// One decoder + filter pair (one per destination PE datapath).
///
/// The decoder compares the word's destination ids against this PE's id and
/// looks the resulting mask up in the preset [`MaskTable`]; the filter then
/// forwards the selected records to the PE's input queue, one per cycle —
/// this serialisation is why a PE that attracts many records per word
/// becomes the bottleneck under skew.
pub struct DecoderFilterKernel<V> {
    name: String,
    pe_id: PeId,
    table: Arc<MaskTable>,
    input: BcastReceiverId<WideWord<V>>,
    output: SenderId<V>,
    /// Records decoded from the current word, not yet forwarded. Reused
    /// across words — no per-word allocation.
    pending: [Option<V>; MAX_WORD_SLOTS],
    pending_len: u8,
    pending_next: u8,
}

impl<V: Clone> DecoderFilterKernel<V> {
    /// Creates the datapath for destination PE `pe_id`, decoding
    /// `word_width`-slot words.
    ///
    /// # Panics
    ///
    /// Panics if `word_width` exceeds the preset table's lane count — a
    /// silent mask overflow in hardware — or [`MAX_WORD_SLOTS`].
    pub fn new(
        pe_id: PeId,
        word_width: u32,
        table: Arc<MaskTable>,
        input: BcastReceiverId<WideWord<V>>,
        output: SenderId<V>,
    ) -> Self {
        assert!(
            word_width as usize <= MAX_WORD_SLOTS,
            "word width {word_width} exceeds {MAX_WORD_SLOTS} slots"
        );
        assert!(
            word_width <= table.lanes(),
            "word width {word_width} exceeds the {}-lane mask table — masks would overflow",
            table.lanes()
        );
        DecoderFilterKernel {
            name: format!("filter#{pe_id}"),
            pe_id,
            table,
            input,
            output,
            pending: [const { None }; MAX_WORD_SLOTS],
            pending_len: 0,
            pending_next: 0,
        }
    }
}

impl<V: Clone + Default + Send + 'static> Kernel for DecoderFilterKernel<V> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        // Pending drained: decode the next word. Decode overlaps with the
        // first forward (the hardware decoder+filter is pipelined), so a
        // word with k matches occupies this datapath for max(k, 1) cycles.
        if self.pending_next >= self.pending_len {
            let pe_id = self.pe_id;
            let table = &self.table;
            let pending = &mut self.pending;
            let mut len = 0u8;
            let decoded = ctx.bcast_recv_or_empty(cy, self.input, |word| {
                // Look the word's destination mask up in the preset table,
                // exactly like the hardware decoder (§IV-C1), and copy the
                // matching values into the reusable pending buffer.
                debug_assert!(word.len() as u32 <= table.lanes());
                let (count, positions) = table.decode(u32::from(word.mask_for(pe_id)));
                for (i, &pos) in positions[..usize::from(count)].iter().enumerate() {
                    pending[i] = Some(word.value(usize::from(pos)).clone());
                }
                len = count;
            });
            match decoded {
                TapRecv::Got {
                    out: (),
                    tap_now_empty,
                } => {
                    self.pending_len = len;
                    self.pending_next = 0;
                    if len == 0 {
                        // Nothing for this PE in that word: park right away
                        // when the tap drained, saving a wake-up lap for
                        // the (majority) cold datapaths under skew. The
                        // parked tap auto-advances past further zero-mask
                        // words without stepping this kernel at all.
                        return if tap_now_empty {
                            ctx.bcast_park(self.input);
                            Progress::Sleep
                        } else {
                            Progress::Busy
                        };
                    }
                }
                TapRecv::NotVisible => return Progress::Busy,
                TapRecv::Empty => {
                    ctx.bcast_park(self.input);
                    return Progress::Sleep;
                }
            }
        }
        // Forward one record per cycle.
        if self.pending_next < self.pending_len {
            let slot = usize::from(self.pending_next);
            let v = self.pending[slot].as_ref().expect("decoded").clone();
            if ctx.try_send(cy, self.output, v).is_ok() {
                self.pending[slot] = None;
                self.pending_next += 1;
            }
        }
        // Backpressured or freshly decoded either way: retry every cycle
        // while anything is pending — failed sends count as full stalls,
        // exactly like the original engine.
        Progress::Busy
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        ctx.bcast_is_empty(self.input) && self.pending_next >= self.pending_len
    }

    fn hold_until(&self, cy: Cycle, ctx: &SimContext) -> Option<Cycle> {
        if self.pending_next < self.pending_len {
            // Forwarding retries every cycle (counting stalls when
            // backpressured): never skippable.
            return None;
        }
        match ctx.bcast_recv_visible_at(self.input) {
            None => Some(Cycle::MAX), // tap empty: wait for a push event
            Some(t) if t > cy => Some(t),
            Some(_) => None, // word decodable this cycle
        }
    }

    fn wake_set(&self) -> WakeSet {
        WakeSet::new().after_push_on_bcast(self.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_sim::Engine;

    fn word(dsts: &[u32]) -> WideWord<u32> {
        let mut w = WideWord::new();
        for &d in dsts {
            w.push(Routed::new(d, d * 10));
        }
        w
    }

    #[test]
    fn wide_word_tracks_masks() {
        let w = word(&[2, 1, 2, 3]);
        assert_eq!(w.len(), 4);
        assert_eq!(w.mask_for(2), 0b0101);
        assert_eq!(w.mask_for(1), 0b0010);
        assert_eq!(w.mask_for(3), 0b1000);
        assert_eq!(w.mask_for(0), 0);
        assert_eq!(w.value(1), &10);
        assert_eq!(w.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn wide_word_rejects_overflow() {
        let mut w = WideWord::new();
        for _ in 0..=MAX_WORD_SLOTS {
            w.push(Routed::new(0u32, 0u32));
        }
    }

    #[test]
    fn combiner_gathers_and_broadcasts() {
        let mut engine = Engine::new();
        let (in_a_tx, in_a) = engine.channel("a", 8);
        let (in_b_tx, in_b) = engine.channel("b", 8);
        let (word_tx, word_rx) = engine.broadcast_channel::<WideWord<u32>>("w", 2, 8);
        engine
            .context_mut()
            .try_send(0, in_a_tx, Routed::new(0u32, 1u32))
            .unwrap();
        engine
            .context_mut()
            .try_send(0, in_b_tx, Routed::new(1u32, 2u32))
            .unwrap();
        engine.add_kernel(CombinerKernel::new(vec![in_a, in_b], word_tx));
        engine.run_cycles(3);
        let ctx = engine.context_mut();
        let wx = ctx.bcast_recv_map(5, word_rx[0], |w| (w.len(), w.mask_for(0), w.mask_for(1)));
        let wy = ctx.bcast_recv_map(5, word_rx[1], |w| w.len());
        assert_eq!(wx, Some((2, 0b01, 0b10)));
        assert_eq!(wy, Some(2), "broadcast shares one word across datapaths");
    }

    #[test]
    fn combiner_stalls_when_any_output_full() {
        let mut engine = Engine::new();
        let (in_tx, in_rx) = engine.channel("in", 8);
        let (word_tx, word_rx) = engine.broadcast_channel::<WideWord<u32>>("w", 2, 1);
        // Pre-fill: reader 1 never drains, so the group is at capacity.
        engine
            .context_mut()
            .bcast_try_send(0, word_tx, word(&[9]))
            .unwrap();
        engine
            .context_mut()
            .bcast_recv_map(1, word_rx[0], |_| ())
            .unwrap();
        engine
            .context_mut()
            .try_send(0, in_tx, Routed::new(0u32, 5u32))
            .unwrap();
        engine.add_kernel(CombinerKernel::new(vec![in_rx], word_tx));
        engine.run_cycles(5);
        let stats = engine.channel_stats();
        let w0 = stats.iter().find(|s| s.name == "w0").unwrap();
        assert_eq!(w0.pushes, 1, "stalled broadcast must be atomic");
        let input = stats.iter().find(|s| s.name == "in").unwrap();
        assert_eq!(input.pops, 0, "input not consumed while stalled");
    }

    #[test]
    fn filter_extracts_only_matching_slots() {
        let table = Arc::new(MaskTable::new(4));
        let mut engine = Engine::new();
        let (word_tx, word_rx) = engine.broadcast_channel::<WideWord<u32>>("w", 1, 8);
        let (out_tx, out_rx) = engine.channel("out", 8);
        engine
            .context_mut()
            .bcast_try_send(0, word_tx, word(&[2, 1, 2, 3]))
            .unwrap();
        engine.add_kernel(DecoderFilterKernel::new(2, 4, table, word_rx[0], out_tx));
        engine.run_cycles(6);
        let ctx = engine.context_mut();
        assert_eq!(ctx.try_recv(10, out_rx), Some(20));
        assert_eq!(ctx.try_recv(10, out_rx), Some(20));
        assert_eq!(ctx.try_recv(10, out_rx), None);
    }

    #[test]
    fn filter_serialises_one_record_per_cycle() {
        let table = Arc::new(MaskTable::new(4));
        let mut engine = Engine::new();
        let (word_tx, word_rx) = engine.broadcast_channel::<WideWord<u32>>("w", 1, 8);
        let (out_tx, _out_rx) = engine.channel::<u32>("out", 16);
        engine
            .context_mut()
            .bcast_try_send(0, word_tx, word(&[7, 7, 7, 7]))
            .unwrap();
        engine.add_kernel(DecoderFilterKernel::new(7, 4, table, word_rx[0], out_tx));
        // cycle 1: decode + first push (pipelined); cycles 2..=4: one each.
        engine.run_cycles(4); // cycles 0..=3
        let pushes = |e: &Engine| {
            e.channel_stats()
                .iter()
                .find(|s| s.name == "out")
                .unwrap()
                .pushes
        };
        assert_eq!(pushes(&engine), 3);
        engine.run_cycles(3);
        assert_eq!(pushes(&engine), 4);
    }

    #[test]
    fn filter_respects_downstream_backpressure() {
        let table = Arc::new(MaskTable::new(2));
        let mut engine = Engine::new();
        let (word_tx, word_rx) = engine.broadcast_channel::<WideWord<u32>>("w", 1, 8);
        let (out_tx, _out_rx) = engine.channel::<u32>("out", 1);
        engine
            .context_mut()
            .bcast_try_send(0, word_tx, word(&[5, 5]))
            .unwrap();
        engine.add_kernel(DecoderFilterKernel::new(5, 2, table, word_rx[0], out_tx));
        engine.run_cycles(20);
        // Only one record fits downstream; the second stays pending, and
        // every retry counts a stall like the original engine.
        let stats = engine.channel_stats();
        let out = stats.iter().find(|s| s.name == "out").unwrap();
        assert_eq!(out.pushes, 1);
        assert!(out.full_stalls > 10, "stalls {}", out.full_stalls);
    }

    #[test]
    #[should_panic(expected = "masks would overflow")]
    fn decoder_rejects_word_wider_than_table() {
        let table = Arc::new(MaskTable::new(4));
        let mut engine = Engine::new();
        let (_word_tx, word_rx) = engine.broadcast_channel::<WideWord<u32>>("w", 1, 8);
        let (out_tx, _out_rx) = engine.channel::<u32>("out", 1);
        let _ = DecoderFilterKernel::new(0, 8, table, word_rx[0], out_tx);
    }
}
