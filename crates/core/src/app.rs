//! The [`DittoApp`] programming interface — the paper's Listing 2.

use crate::{PeId, Tuple};

/// A routed record: the `⟨dst, value⟩` pair a PrePE emits (§IV-A).
///
/// `dst` is always a *PriPE* id in `0..M`; the mapper may later redirect the
/// record to a SecPE according to the scheduling plan, but the application
/// never sees SecPE ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Routed<V> {
    /// Destination PriPE id, in `0..M`.
    pub dst: PeId,
    /// Application payload processed against the destination's buffer.
    pub value: V,
}

impl<V> Routed<V> {
    /// Creates a routed record.
    pub fn new(dst: PeId, value: V) -> Self {
        Routed { dst, value }
    }
}

/// High-level application specification (the paper's Listing 2).
///
/// With Ditto, "developers only need to write high-level specifications
/// without touching hardware design details". An implementation provides:
///
/// * [`preprocess`](DittoApp::preprocess) — the PrePE body: turn an input
///   tuple into `⟨dst, value⟩` where `dst ∈ 0..M` picks the PriPE whose
///   private buffer holds the tuple's key range;
/// * [`process`](DittoApp::process) — the PriPE/SecPE body: combine the
///   value with the private buffer (e.g. `hist[idx] += 1`);
/// * [`merge`](DittoApp::merge) — fold a SecPE's partial buffer into its
///   PriPE's (the merger module, §IV-B). Decomposable applications merge by
///   sum/max; non-decomposable ones (data partitioning) append staged
///   output, which is equivalent to "output results to their own memory
///   space of the global memory";
/// * [`finalize`](DittoApp::finalize) — assemble the M PriPE buffers into
///   the application output.
///
/// The initiation intervals feed the framework's Equation 1 tuning: a
/// HISTO-style PE that reads and writes its buffer each tuple has
/// `ii_pri() == 2` (the paper's motivating example).
pub trait DittoApp: Send + Sync {
    /// Payload type routed from PrePEs to destination PEs.
    type Value: Clone + Default + Send + 'static;
    /// Per-PE private buffer contents (the BRAM state).
    type State: Send + 'static;
    /// Final application output.
    type Output;

    /// Application name for reports.
    fn name(&self) -> &str;

    /// Initiation interval of the PrePE logic, in cycles per tuple.
    fn ii_pre(&self) -> u32 {
        1
    }

    /// Initiation interval of the PriPE/SecPE logic, in cycles per tuple.
    fn ii_pri(&self) -> u32 {
        2
    }

    /// PrePE body: compute the destination PriPE (`0..m_pri`) and payload.
    fn preprocess(&self, tuple: Tuple, m_pri: u32) -> Routed<Self::Value>;

    /// Allocates one destination PE's private buffer.
    ///
    /// `pe_entries` is the number of buffered entries this PE may own —
    /// the framework sizes it as `capacity / (M + X)` per §V-C.
    fn new_state(&self, pe_entries: usize) -> Self::State;

    /// PriPE/SecPE body: combine `value` with the private buffer.
    fn process(&self, state: &mut Self::State, value: &Self::Value);

    /// Folds a SecPE partial buffer into the PriPE buffer it helped.
    fn merge(&self, pri: &mut Self::State, sec: &Self::State);

    /// Assembles the M PriPE buffers (post-merge) into the output.
    fn finalize(&self, pri_states: Vec<Self::State>) -> Self::Output;
}

/// Applications whose *outputs* can be combined across independent pipeline
/// instances.
///
/// [`DittoApp::merge`] folds *states* (one SecPE partial into its PriPE
/// buffer, or one shard's PriPE buffer into another's — the cross-shard
/// merge path uses it for exact results). `MergeableOutput` additionally
/// folds *finalized outputs*, which is what a serving layer needs when each
/// shard finalizes locally (partial results streamed to clients, per-shard
/// result caching) and a combined view is assembled later.
///
/// For decomposable applications the two paths agree exactly (element-wise
/// sum/max commutes with `finalize`); for non-decomposable ones (data
/// partitioning) the combined output is order-insensitive — equal as
/// per-partition multisets.
pub trait MergeableOutput: DittoApp {
    /// Folds `part` (another instance's output over a disjoint share of the
    /// input) into `acc`.
    fn merge_outputs(&self, acc: &mut Self::Output, part: Self::Output);

    /// Combines any number of partial outputs; returns `None` for an empty
    /// set (no shards produced output).
    fn combine_outputs<I: IntoIterator<Item = Self::Output>>(
        &self,
        parts: I,
    ) -> Option<Self::Output> {
        let mut iter = parts.into_iter();
        let mut acc = iter.next()?;
        for part in iter {
            self.merge_outputs(&mut acc, part);
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::CountPerKey;

    #[test]
    fn routed_constructor() {
        let r = Routed::new(3, 42u64);
        assert_eq!(r.dst, 3);
        assert_eq!(r.value, 42);
    }

    #[test]
    fn default_iis_match_the_papers_histo_example() {
        let app = CountPerKey::new(4);
        assert_eq!(app.ii_pre(), 1);
        assert_eq!(app.ii_pri(), 2);
    }
}
