//! The memory access engine (§IV-C4): streams tuples into the PrePE lanes.

use hls_sim::{CounterId, Cycle, Kernel, Progress, SenderId, SimContext, StreamSource};

use crate::Tuple;

/// Streams tuples from a [`StreamSource`] into the N PrePE lane channels,
/// round-robin, respecting the source's bandwidth budget and the lanes'
/// backpressure.
///
/// Models the paper's memory access engine, which "coalesces memory
/// requests and accesses the global memory in a burst manner": the source
/// enforces the `Wmem/Wtuple` per-cycle budget (and burst latency), and a
/// small staging buffer absorbs the mismatch between burst arrival and lane
/// acceptance — when the lanes stall, the staging buffer fills and the
/// engine stops pulling, exactly like DMA backpressure.
pub struct MemoryReaderKernel {
    name: String,
    source: Box<dyn StreamSource<Tuple>>,
    lanes: Vec<SenderId<Tuple>>,
    /// Staging buffer: `staging[staged..]` are the queued tuples. The
    /// source appends at the tail; the lane distributor consumes from
    /// `staged`, and the vector is reset once fully drained — FIFO
    /// semantics without ring-buffer bookkeeping or an intermediate copy.
    staging: Vec<Tuple>,
    staged: usize,
    staging_cap: usize,
    next_lane: usize,
    issued: CounterId,
}

impl MemoryReaderKernel {
    /// Creates a reader feeding `lanes`; `issued` counts tuples entering
    /// the pipeline (used by the run report).
    pub fn new(
        source: Box<dyn StreamSource<Tuple>>,
        lanes: Vec<SenderId<Tuple>>,
        issued: CounterId,
    ) -> Self {
        let staging_cap = lanes.len() * 4;
        MemoryReaderKernel {
            name: "memory-reader".to_owned(),
            source,
            lanes,
            staging: Vec::with_capacity(staging_cap),
            staged: 0,
            staging_cap,
            next_lane: 0,
            issued,
        }
    }

    fn staging_len(&self) -> usize {
        self.staging.len() - self.staged
    }

    /// `true` once the source is exhausted and the staging buffer drained.
    pub fn drained(&self) -> bool {
        self.source.exhausted() && self.staging_len() == 0
    }
}

impl Kernel for MemoryReaderKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        // Reset the drained staging vector so the source appends at the
        // front again, then pull this cycle's burst (the source
        // rate-limits) straight into it — no intermediate buffer.
        if self.staged == self.staging.len() {
            self.staging.clear();
            self.staged = 0;
        } else if self.staged >= self.staging_cap * 4 {
            // Steady-state compaction: shift the few queued tuples to the
            // front so the vector stays bounded (amortised O(1) per tuple).
            self.staging.drain(..self.staged);
            self.staged = 0;
        }
        let room = self.staging_cap - self.staging_len();
        if room > 0 && !self.source.exhausted() {
            self.source.pull(cy, room, &mut self.staging);
        }

        // Distribute round-robin: at most one tuple per lane per cycle
        // (each PrePE reads one tuple per cycle at best).
        let lanes = self.lanes.len();
        for _ in 0..lanes {
            let Some(&tuple) = self.staging.get(self.staged) else {
                break;
            };
            let lane = self.next_lane;
            if ctx.try_send(cy, self.lanes[lane], tuple).is_ok() {
                self.staged += 1;
                ctx.counter_incr(self.issued);
            }
            // Advance even when the lane stalls: hardware lane FIFOs fill
            // independently and a single busy lane must not starve the rest.
            self.next_lane = (self.next_lane + 1) % lanes;
        }

        // The reader only parks once the source is exhausted and staging is
        // drained — a permanent condition, so no wake subscription is
        // needed. While staging holds tuples it must retry every cycle so
        // lane stalls keep being counted, exactly like the original engine.
        if self.drained() {
            Progress::Sleep
        } else {
            Progress::Busy
        }
    }

    fn is_idle(&self, _ctx: &SimContext) -> bool {
        self.drained()
    }

    fn hold_until(&self, cy: Cycle, _ctx: &SimContext) -> Option<Cycle> {
        if self.staging_len() > 0 {
            // Queued tuples retry the lanes every cycle (counting stalls):
            // never skippable.
            return None;
        }
        if self.source.exhausted() {
            return Some(Cycle::MAX);
        }
        // Staging is empty: until the source's next grant, every step is a
        // zero pull followed by an empty distribution loop.
        let next = self.source.next_pull_at(cy);
        (next > cy).then_some(next)
    }

    fn is_quiescence_gate(&self) -> bool {
        // The pipeline cannot drain while the source still has tuples, so
        // the engine can skip the full idle scan until the reader drains.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_sim::{Engine, MemoryModel, SliceSource};

    #[test]
    fn distributes_all_tuples_round_robin() {
        let n = 4;
        let mut engine = Engine::new();
        let senders = (0..n)
            .map(|i| engine.channel::<Tuple>(&format!("lane{i}"), 64).0)
            .collect();
        let data: Vec<Tuple> = (0..100).map(Tuple::from_key).collect();
        let src = SliceSource::new(data, 8, MemoryModel::new(32, 0)); // 4/cycle
        let issued = engine.counter();
        engine.add_kernel(MemoryReaderKernel::new(Box::new(src), senders, issued));
        engine.run_cycles(200);
        assert_eq!(engine.context().counter(issued), 100);
        let per_lane: Vec<u64> = engine.channel_stats().iter().map(|s| s.pushes).collect();
        assert_eq!(per_lane, vec![25, 25, 25, 25]);
    }

    #[test]
    fn backpressure_stops_pulling() {
        let mut engine = Engine::new();
        let (lane_tx, _lane_rx) = engine.channel::<Tuple>("lane", 4);
        let data: Vec<Tuple> = (0..1000).map(Tuple::from_key).collect();
        let src = SliceSource::new(data, 8, MemoryModel::new(64, 0));
        let issued = engine.counter();
        let mut reader = MemoryReaderKernel::new(Box::new(src), vec![lane_tx], issued);
        let ctx = engine.context_mut();
        for cy in 0..100 {
            reader.step(cy, ctx);
        }
        // Lane capacity 4, staging 4: nothing downstream consumes, so at
        // most capacity + staging tuples leave the source.
        assert!(ctx.counter(issued) <= 4);
        assert!(!reader.drained());
    }
}
