//! The memory access engine (§IV-C4): streams tuples into the PrePE lanes.

use hls_sim::{Counter, Cycle, Kernel, Sender, StreamSource};

use crate::Tuple;

/// Streams tuples from a [`StreamSource`] into the N PrePE lane channels,
/// round-robin, respecting the source's bandwidth budget and the lanes'
/// backpressure.
///
/// Models the paper's memory access engine, which "coalesces memory
/// requests and accesses the global memory in a burst manner": the source
/// enforces the `Wmem/Wtuple` per-cycle budget (and burst latency), and a
/// small staging buffer absorbs the mismatch between burst arrival and lane
/// acceptance — when the lanes stall, the staging buffer fills and the
/// engine stops pulling, exactly like DMA backpressure.
pub struct MemoryReaderKernel {
    name: String,
    source: Box<dyn StreamSource<Tuple>>,
    lanes: Vec<Sender<Tuple>>,
    staging: std::collections::VecDeque<Tuple>,
    staging_cap: usize,
    next_lane: usize,
    issued: Counter,
    pull_buf: Vec<Tuple>,
}

impl MemoryReaderKernel {
    /// Creates a reader feeding `lanes`; `issued` counts tuples entering
    /// the pipeline (used by the run report).
    pub fn new(
        source: Box<dyn StreamSource<Tuple>>,
        lanes: Vec<Sender<Tuple>>,
        issued: Counter,
    ) -> Self {
        let staging_cap = lanes.len() * 4;
        MemoryReaderKernel {
            name: "memory-reader".to_owned(),
            source,
            lanes,
            staging: std::collections::VecDeque::with_capacity(staging_cap),
            staging_cap,
            next_lane: 0,
            issued,
            pull_buf: Vec::new(),
        }
    }

    /// `true` once the source is exhausted and the staging buffer drained.
    pub fn drained(&self) -> bool {
        self.source.exhausted() && self.staging.is_empty()
    }
}

impl Kernel for MemoryReaderKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle) {
        // Pull this cycle's burst into staging (the source rate-limits).
        let room = self.staging_cap - self.staging.len();
        if room > 0 && !self.source.exhausted() {
            self.pull_buf.clear();
            self.source.pull(cy, room, &mut self.pull_buf);
            self.staging.extend(self.pull_buf.iter().copied());
        }

        // Distribute round-robin: at most one tuple per lane per cycle
        // (each PrePE reads one tuple per cycle at best).
        let lanes = self.lanes.len();
        for _ in 0..lanes {
            let Some(&tuple) = self.staging.front() else { break };
            let lane = self.next_lane;
            if self.lanes[lane].try_send(cy, tuple).is_ok() {
                self.staging.pop_front();
                self.issued.incr();
            }
            // Advance even when the lane stalls: hardware lane FIFOs fill
            // independently and a single busy lane must not starve the rest.
            self.next_lane = (self.next_lane + 1) % lanes;
        }
    }

    fn is_idle(&self) -> bool {
        self.drained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_sim::{Channel, Engine, MemoryModel, SliceSource};

    #[test]
    fn distributes_all_tuples_round_robin() {
        let n = 4;
        let channels: Vec<Channel<Tuple>> =
            (0..n).map(|i| Channel::new(&format!("lane{i}"), 64)).collect();
        let senders = channels.iter().map(|c| c.sender()).collect();
        let data: Vec<Tuple> = (0..100).map(Tuple::from_key).collect();
        let src = SliceSource::new(data, 8, MemoryModel::new(32, 0)); // 4/cycle
        let issued = Counter::new();
        let mut engine = Engine::new();
        engine.add_kernel(MemoryReaderKernel::new(Box::new(src), senders, issued.clone()));
        engine.run_cycles(200);
        assert_eq!(issued.get(), 100);
        let per_lane: Vec<u64> = channels.iter().map(|c| c.stats().pushes).collect();
        assert_eq!(per_lane, vec![25, 25, 25, 25]);
    }

    #[test]
    fn backpressure_stops_pulling() {
        let ch = Channel::new("lane", 4);
        let data: Vec<Tuple> = (0..1000).map(Tuple::from_key).collect();
        let src = SliceSource::new(data, 8, MemoryModel::new(64, 0));
        let issued = Counter::new();
        let mut reader = MemoryReaderKernel::new(Box::new(src), vec![ch.sender()], issued.clone());
        for cy in 0..100 {
            reader.step(cy);
        }
        // Lane capacity 4, staging 4: nothing downstream consumes, so at
        // most capacity + staging tuples leave the source.
        assert!(issued.get() <= 4);
        assert!(!reader.drained());
    }
}
