//! Phase-compiled execution plans.
//!
//! The dataflow-HLS literature compiles static dataflow structure into
//! execution schedules instead of re-discovering it at runtime; the
//! in-simulation analogue is to compile each profiler scheduling plan —
//! together with the workload histogram it was generated from — into a
//! [`PhasePlan`]: the set of destination PEs the coming phase can route
//! tuples to, and therefore which datapath taps are predicted zero-mask
//! ("cold") and which kernels can stay parked for the whole phase.
//!
//! The plan is applied to the shared [`Control`](crate::control::Control)
//! block at every reschedule boundary (initial build, plan distribution,
//! drain completion), where serving layers and reports read it. The plan
//! itself moves no data: the engine's cold-tap auto-advance and idle-set
//! scheduler *mechanically* realise the predicted schedule, and the plan
//! is the compiled, queryable description of it — snapshots expose the
//! predicted active set, and tests assert that predicted-parked kernels
//! are indeed asleep in steady state.

use hls_sim::KernelId;

use crate::{PeId, SchedulingPlan};

/// The compiled execution plan of one pipeline phase.
///
/// A *phase* spans the stretch between two reschedule boundaries: from a
/// scheduling plan landing in the mappers to the next drain, or from a
/// drain completing to the next plan. Within a phase the mapping tables
/// are static, so the set of reachable destination PEs — and with it the
/// set of guaranteed-idle datapaths — is fixed and can be compiled once.
///
/// `active` entries for PriPEs are a *prediction* from the profiling
/// window (a PriPE that received nothing while profiling is expected to
/// stay cold); SecPE entries are exact (a SecPE not scheduled to an
/// active PriPE receives nothing while the plan holds, and after a drain
/// no SecPE receives anything at all).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhasePlan {
    /// Phase sequence number, stamped by
    /// [`Control::apply_phase_plan`](crate::control::Control::apply_phase_plan).
    phase: u64,
    /// One flag per destination PE (`M + X` entries): can this PE receive
    /// tuples during the phase?
    active: Vec<bool>,
    /// Kernels expected to stay parked for the whole phase (the cold
    /// datapaths' decoders and PEs), when known to the compiler.
    parked_kernels: Vec<KernelId>,
}

impl PhasePlan {
    /// The phase every pipeline starts in (and returns to after a drain):
    /// every PriPE reachable, every SecPE cold.
    pub fn pri_only(m_pri: u32, x_sec: u32) -> Self {
        let mut active = vec![true; (m_pri + x_sec) as usize];
        active[m_pri as usize..].fill(false);
        PhasePlan {
            phase: 0,
            active,
            parked_kernels: Vec::new(),
        }
    }

    /// Compiles a profiler scheduling plan into the phase it starts.
    ///
    /// `workloads` is the per-PriPE tuple count of the profiling window
    /// the plan was generated from: a PriPE that received nothing is
    /// predicted cold for the phase, and a SecPE is active exactly when
    /// the PriPE it helps is.
    ///
    /// # Panics
    ///
    /// Panics if a plan pair references an out-of-range PE id.
    pub fn compile(workloads: &[u64], plan: &SchedulingPlan, x_sec: u32) -> Self {
        let m_pri = workloads.len();
        let mut active = vec![false; m_pri + x_sec as usize];
        for (pe, &w) in workloads.iter().enumerate() {
            active[pe] = w > 0;
        }
        for &(sec, pri) in plan.pairs() {
            active[sec as usize] = active[pri as usize];
        }
        PhasePlan {
            phase: 0,
            active,
            parked_kernels: Vec::new(),
        }
    }

    /// Attaches the kernel ids expected to stay parked this phase — the
    /// inactive datapaths' decoder and PE kernels, as mapped by the
    /// caller (the profiler knows the pipeline's kernel registration).
    pub fn with_parked_kernels(mut self, kernels: Vec<KernelId>) -> Self {
        self.parked_kernels = kernels;
        self
    }

    /// The phase sequence number (0 = initial build).
    pub fn phase(&self) -> u64 {
        self.phase
    }

    pub(crate) fn set_phase(&mut self, phase: u64) {
        self.phase = phase;
    }

    /// Whether destination PE `pe` can receive tuples this phase.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn is_active(&self, pe: PeId) -> bool {
        self.active[pe as usize]
    }

    /// Number of destination PEs the phase can route to.
    pub fn active_pes(&self) -> u32 {
        self.active.iter().filter(|&&a| a).count() as u32
    }

    /// Total destination PEs covered by the plan (`M + X`), zero for the
    /// default (unapplied) plan.
    pub fn pe_count(&self) -> usize {
        self.active.len()
    }

    /// The datapath taps guaranteed (SecPEs) or predicted (PriPEs) to
    /// carry only zero-mask words this phase, in PE order.
    pub fn cold_taps(&self) -> Vec<PeId> {
        self.active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| !a)
            .map(|(pe, _)| pe as PeId)
            .collect()
    }

    /// Kernels expected to stay parked for the whole phase.
    pub fn parked_kernels(&self) -> &[KernelId] {
        &self.parked_kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pri_only_activates_exactly_the_pripes() {
        let p = PhasePlan::pri_only(4, 3);
        assert_eq!(p.pe_count(), 7);
        assert_eq!(p.active_pes(), 4);
        for pe in 0..4 {
            assert!(p.is_active(pe));
        }
        for pe in 4..7 {
            assert!(!p.is_active(pe));
        }
        assert_eq!(p.cold_taps(), vec![4, 5, 6]);
    }

    #[test]
    fn compile_marks_unfed_pripes_and_their_secs_cold() {
        // One dominant PriPE: the greedy plan sends every SecPE there.
        let workloads = [0u64, 900, 0, 0];
        let plan = SchedulingPlan::generate(&workloads, 4, 3);
        assert!(plan.pairs().iter().all(|&(_, pri)| pri == 1));
        let p = PhasePlan::compile(&workloads, &plan, 3);
        assert_eq!(p.active_pes(), 4, "hot PriPE + its three SecPEs");
        assert!(p.is_active(1));
        assert!(p.is_active(4) && p.is_active(5) && p.is_active(6));
        assert_eq!(p.cold_taps(), vec![0, 2, 3]);
    }

    #[test]
    fn compile_keeps_secs_of_cold_pris_cold() {
        // All-zero window (no traffic while profiling): everything cold.
        let workloads = [0u64, 0, 0, 0];
        let plan = SchedulingPlan::generate(&workloads, 4, 2);
        let p = PhasePlan::compile(&workloads, &plan, 2);
        assert_eq!(p.active_pes(), 0);
        assert_eq!(p.cold_taps().len(), 6);
    }

    #[test]
    fn parked_kernels_attach() {
        let p = PhasePlan::pri_only(2, 1).with_parked_kernels(vec![7, 9]);
        assert_eq!(p.parked_kernels(), &[7, 9]);
    }

    #[test]
    fn default_plan_is_empty() {
        let p = PhasePlan::default();
        assert_eq!(p.phase(), 0);
        assert_eq!(p.pe_count(), 0);
        assert_eq!(p.active_pes(), 0);
    }
}
