//! Minimal built-in applications used by tests, docs and benches.
//!
//! The five full applications of the paper live in the `ditto-apps` crate;
//! the specs here are deliberately tiny so `ditto-core` can be tested and
//! benchmarked in isolation.

use crate::{DittoApp, MergeableOutput, Routed, Tuple};

/// Counts tuples per destination PE — the simplest possible decomposable
/// application (a 1-bin histogram per PE). Routing is `key mod M`, exactly
/// Listing 2's `dst = tuple.key & 0xf` rule generalised to any M.
///
/// # Example
///
/// ```
/// use ditto_core::apps::CountPerKey;
/// use ditto_core::DittoApp;
/// use datagen::Tuple;
///
/// let app = CountPerKey::new(8);
/// let routed = app.preprocess(Tuple::from_key(13), 8);
/// assert_eq!(routed.dst, 5);
/// ```
#[derive(Debug, Clone)]
pub struct CountPerKey {
    m_pri: u32,
}

impl CountPerKey {
    /// Creates a counter app for `m_pri` PriPEs.
    ///
    /// # Panics
    ///
    /// Panics if `m_pri` is zero.
    pub fn new(m_pri: u32) -> Self {
        assert!(m_pri > 0, "need at least one PriPE");
        CountPerKey { m_pri }
    }
}

impl DittoApp for CountPerKey {
    type Value = ();
    type State = u64;
    type Output = Vec<u64>;

    fn name(&self) -> &str {
        "count-per-key"
    }

    fn preprocess(&self, tuple: Tuple, m_pri: u32) -> Routed<()> {
        debug_assert!(
            m_pri == self.m_pri || self.m_pri == 1,
            "pipeline M differs from app M"
        );
        Routed::new((tuple.key % u64::from(m_pri)) as u32, ())
    }

    fn new_state(&self, _pe_entries: usize) -> u64 {
        0
    }

    fn process(&self, state: &mut u64, _value: &()) {
        *state += 1;
    }

    fn merge(&self, pri: &mut u64, sec: &u64) {
        *pri += *sec;
    }

    fn finalize(&self, pri_states: Vec<u64>) -> Vec<u64> {
        pri_states
    }
}

impl MergeableOutput for CountPerKey {
    fn merge_outputs(&self, acc: &mut Vec<u64>, part: Vec<u64>) {
        for (a, p) in acc.iter_mut().zip(part) {
            *a += p;
        }
    }
}

/// A small modular histogram: `bins` bins interleaved across PEs
/// (bin `b` lives on PriPE `b mod M` at local index `b / M`). This is the
/// motivating HISTO of the paper's §II scaled down for tests.
#[derive(Debug, Clone)]
pub struct ModHistogram {
    bins: u64,
}

impl ModHistogram {
    /// Creates a histogram with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn new(bins: u64) -> Self {
        assert!(bins > 0, "need at least one bin");
        ModHistogram { bins }
    }

    /// Number of bins.
    pub fn bins(&self) -> u64 {
        self.bins
    }
}

impl DittoApp for ModHistogram {
    /// The global bin index.
    type Value = u64;
    /// Local bin counts for this PE's residue class.
    type State = Vec<u64>;
    /// Global histogram.
    type Output = Vec<u64>;

    fn name(&self) -> &str {
        "mod-histogram"
    }

    fn preprocess(&self, tuple: Tuple, m_pri: u32) -> Routed<u64> {
        let bin = tuple.key % self.bins;
        Routed::new((bin % u64::from(m_pri)) as u32, bin)
    }

    fn new_state(&self, pe_entries: usize) -> Vec<u64> {
        vec![0; pe_entries]
    }

    fn process(&self, state: &mut Vec<u64>, bin: &u64) {
        let local = (*bin as usize) / crate::apps::infer_m(state.len(), self.bins as usize);
        state[local] += 1;
    }

    fn merge(&self, pri: &mut Vec<u64>, sec: &Vec<u64>) {
        for (p, s) in pri.iter_mut().zip(sec) {
            *p += *s;
        }
    }

    fn finalize(&self, pri_states: Vec<Vec<u64>>) -> Vec<u64> {
        let m = pri_states.len();
        let mut out = vec![0; self.bins as usize];
        for (pe, state) in pri_states.iter().enumerate() {
            for (local, &count) in state.iter().enumerate() {
                let global = local * m + pe;
                if global < out.len() {
                    out[global] = count;
                }
            }
        }
        out
    }
}

impl MergeableOutput for ModHistogram {
    fn merge_outputs(&self, acc: &mut Vec<u64>, part: Vec<u64>) {
        for (a, p) in acc.iter_mut().zip(part) {
            *a += p;
        }
    }
}

/// Recovers M from the per-PE entry count (`entries = ceil(bins / M)`).
///
/// Kept crate-public for the test apps only; real applications carry M in
/// their own state.
pub(crate) fn infer_m(entries: usize, bins: usize) -> usize {
    bins.div_ceil(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_per_key_routes_by_modulo() {
        let app = CountPerKey::new(4);
        for k in 0..16u64 {
            assert_eq!(app.preprocess(Tuple::from_key(k), 4).dst, (k % 4) as u32);
        }
    }

    #[test]
    fn count_per_key_merge_adds() {
        let app = CountPerKey::new(4);
        let mut a = 5u64;
        app.merge(&mut a, &7);
        assert_eq!(a, 12);
    }

    #[test]
    fn mergeable_outputs_combine_elementwise() {
        let app = CountPerKey::new(2);
        let combined = app
            .combine_outputs(vec![vec![1, 2], vec![10, 20], vec![100, 200]])
            .expect("non-empty");
        assert_eq!(combined, vec![111, 222]);
        assert_eq!(app.combine_outputs(Vec::new()), None);
    }

    #[test]
    fn histogram_round_trips_bin_indices() {
        let app = ModHistogram::new(32);
        let m = 8u32;
        // Simulate: 2 tuples to bin 9 (PE 1, local 1).
        let r = app.preprocess(Tuple::from_key(9), m);
        assert_eq!(r.dst, 1);
        let entries = 32 / 8;
        let mut state = app.new_state(entries);
        app.process(&mut state, &r.value);
        app.process(&mut state, &r.value);
        assert_eq!(state[1], 2);
    }

    #[test]
    fn histogram_finalize_interleaves() {
        let app = ModHistogram::new(8);
        let m = 4usize;
        let mut states: Vec<Vec<u64>> = (0..m).map(|_| app.new_state(2)).collect();
        // Put count = global bin index everywhere.
        for bin in 0..8u64 {
            let pe = (bin % 4) as usize;
            let local = (bin / 4) as usize;
            states[pe][local] = bin;
        }
        let out = app.finalize(states);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
