//! The counts-tracing profiling pass: runs a bounded slice of a live
//! pipeline and reduces it to a [`CountsTrace`].
//!
//! This is the simulator-side hook of the two-pass deployment planner
//! (qdk-style: a *counts* pass feeds a separate *estimates* pass). The
//! runner drives a [`PersistentPipeline`] in fixed cycle chunks and diffs
//! the engine's existing counters at each chunk boundary — per-kernel step
//! counts (the engine's opt-in [`hls_sim::Engine::enable_step_counts`]
//! hook, classified by kernel name), the allocation-free channel
//! aggregate, the per-PE workload counters and the reschedule/plan
//! counters — attributing each chunk to the execution phase observed at
//! its end. Phase attribution is therefore chunk-granular; with the
//! default 256-cycle chunk that is finer than any profiling window in the
//! stack.
//!
//! Tracing is strictly opt-in: an untraced pipeline never touches the
//! per-kernel counters (the engine keeps them `None`), so the disabled
//! mode is bit-invisible to the cycle-equivalence goldens, and the enabled
//! overhead is one indexed increment per executed kernel step plus a
//! per-chunk snapshot (guarded ≤ 2 % of the hotpath wall in BENCH_10).

use ditto_obs::counts::{CountsTrace, KernelClass, PhaseCounts};

use crate::{DittoApp, PersistentPipeline};

/// Options for one bounded profiling slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceOptions {
    /// Total cycles to trace.
    pub cycles: u64,
    /// Chunk length between counter samples (also the phase-attribution
    /// granularity).
    pub chunk: u64,
}

impl SliceOptions {
    /// A slice of `cycles` with the default 256-cycle sampling chunk.
    pub fn new(cycles: u64) -> Self {
        SliceOptions { cycles, chunk: 256 }
    }

    /// Overrides the sampling chunk.
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        self.chunk = chunk;
        self
    }

    /// The slice length from `DITTO_PLAN_SLICE` (default 20 000 cycles).
    pub fn from_env() -> Self {
        let cycles = std::env::var("DITTO_PLAN_SLICE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_000);
        Self::new(cycles)
    }
}

impl Default for SliceOptions {
    fn default() -> Self {
        Self::new(20_000)
    }
}

/// Runs a bounded counts-tracing slice over `pipeline` and returns the
/// per-phase ledger. The pipeline stays live (tracing keeps accumulating
/// on the engine, but a second call simply diffs from the current
/// counters, so repeated slices are independent).
pub fn profile_counts<A: DittoApp + 'static>(
    pipeline: &mut PersistentPipeline<A>,
    opts: SliceOptions,
) -> CountsTrace {
    pipeline.engine_mut().enable_step_counts();
    let classes: Vec<usize> = pipeline
        .engine()
        .kernel_names()
        .iter()
        .map(|n| KernelClass::classify(n).index())
        .collect();

    let mut trace = CountsTrace::new(pipeline.label());
    let mut prev = pipeline.snapshot();
    let mut prev_steps = pipeline
        .engine()
        .step_counts()
        .expect("just enabled")
        .to_vec();
    let mut prev_agg = pipeline.engine().context().channel_aggregate();
    let pes = prev.per_pe_processed.len();
    let mut open: Option<PhaseCounts> = None;

    let start = pipeline.cycle();
    while pipeline.cycle() - start < opts.cycles {
        let chunk = opts.chunk.min(opts.cycles - (pipeline.cycle() - start));
        pipeline.step_cycles(chunk);

        let snap = pipeline.snapshot();
        let agg = pipeline.engine().context().channel_aggregate();
        let steps = pipeline.engine().step_counts().expect("enabled").to_vec();

        let entry = match &mut open {
            Some(p) if p.phase == snap.phase => p,
            _ => {
                if let Some(done) = open.take() {
                    trace.push(done);
                }
                open = Some(PhaseCounts {
                    phase: snap.phase,
                    start_cycle: prev.cycles,
                    per_pe_processed: vec![0; pes],
                    active_pes: snap.phase_active_pes,
                    ..Default::default()
                });
                open.as_mut().expect("just set")
            }
        };

        entry.cycles += snap.cycles - prev.cycles;
        entry.tuples += snap.tuples - prev.tuples;
        entry.reschedules += snap.reschedules - prev.reschedules;
        entry.plans_generated += snap.plans_generated - prev.plans_generated;
        entry.active_pes = snap.phase_active_pes;
        for (j, (now, before)) in snap
            .per_pe_processed
            .iter()
            .zip(&prev.per_pe_processed)
            .enumerate()
        {
            entry.per_pe_processed[j] += now - before;
        }
        for ((now, before), &class) in steps.iter().zip(&prev_steps).zip(&classes) {
            entry.steps_by_class[class] += now - before;
        }
        entry.channel_pushes += agg.pushes - prev_agg.pushes;
        entry.channel_pops += agg.pops - prev_agg.pops;
        entry.channel_full_stalls += agg.full_stalls - prev_agg.full_stalls;
        // Total buffered items across every channel is pushes − pops; the
        // rectangle rule over the chunk approximates ∫ occupancy dt.
        entry.occupancy_integral += (agg.pushes - agg.pops) * chunk;

        prev = snap;
        prev_steps = steps;
        prev_agg = agg;
    }
    if let Some(done) = open.take() {
        trace.push(done);
    }
    trace
}

impl<A: DittoApp + 'static> PersistentPipeline<A> {
    /// Method sugar for [`profile_counts`].
    pub fn profile_counts(&mut self, opts: SliceOptions) -> CountsTrace {
        profile_counts(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::CountPerKey;
    use crate::ArchConfig;
    use datagen::{Tuple, UniformGenerator, ZipfGenerator};
    use hls_sim::{MemoryModel, SliceSource};

    fn pipeline(data: Vec<Tuple>, cfg: &ArchConfig) -> PersistentPipeline<CountPerKey> {
        let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
        PersistentPipeline::new(CountPerKey::new(8), Box::new(source), cfg)
    }

    #[test]
    fn trace_totals_match_pipeline_counters() {
        let data = UniformGenerator::new(1 << 16, 3).take_vec(8_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let mut p = pipeline(data, &cfg);
        let trace = p.profile_counts(SliceOptions::new(2_048));
        let snap = p.snapshot();
        assert_eq!(trace.total_cycles(), 2_048);
        assert_eq!(trace.total_tuples(), snap.tuples);
        assert_eq!(trace.pri_workloads(8), snap.per_pe_processed[..8]);
        let total_steps: u64 = trace.phases.iter().map(|p| p.total_steps()).sum();
        assert_eq!(total_steps, snap.kernel_steps);
        assert!(trace.steps_of(KernelClass::Other) == 0, "all kernels known");
        assert!(trace.steps_of(KernelClass::PriPe) > 0);
        assert!(trace.steps_of(KernelClass::Reader) > 0);
    }

    #[test]
    fn phase_transitions_open_new_ledgers() {
        // Skewed data with aggressive rescheduling: the profiler generates
        // plans, so the slice must observe more than one phase.
        let data = ZipfGenerator::new(3.0, 1 << 16, 7).take_vec(12_000);
        let cfg = ArchConfig::new(4, 8, 7)
            .with_reschedule(0.5, 200)
            .with_profile_cycles(64)
            .with_monitor_window(256);
        let mut p = pipeline(data, &cfg);
        let trace = p.profile_counts(SliceOptions::new(8_192).with_chunk(64));
        assert!(
            trace.phases.len() > 1,
            "expected phase transitions, got {}",
            trace.phases.len()
        );
        let phases: Vec<u64> = trace.phases.iter().map(|p| p.phase).collect();
        let mut sorted = phases.clone();
        sorted.sort_unstable();
        assert_eq!(phases, sorted, "phases observed in order");
        assert!(
            trace.phases.iter().map(|p| p.plans_generated).sum::<u64>() >= 1,
            "plan events recorded"
        );
        assert!(trace.steps_of(KernelClass::SecPe) > 0, "SecPEs stepped");
    }

    #[test]
    fn repeated_slices_diff_independently() {
        let data = UniformGenerator::new(1 << 16, 9).take_vec(8_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let mut p = pipeline(data, &cfg);
        let a = p.profile_counts(SliceOptions::new(1_024));
        let b = p.profile_counts(SliceOptions::new(1_024));
        assert_eq!(a.total_cycles(), 1_024);
        assert_eq!(b.total_cycles(), 1_024);
        assert_eq!(
            a.total_tuples() + b.total_tuples(),
            p.snapshot().tuples,
            "second slice counts only its own tuples"
        );
    }
}
