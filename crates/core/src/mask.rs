//! The decoder's preset mask table (§IV-C1).
//!
//! The paper's decoder "generates an N bits mask code, which marks the
//! tuples to be processed. It then outputs the positions and the number of
//! tuples to be processed according to a preset table with the mask code as
//! input." This module materialises exactly that table: indexed by the
//! N-bit mask, each entry stores the count and slot positions, so the
//! filter's extraction is a single lookup — the property that lets the
//! hardware run at II = 1.

/// Preset decode table for wide words of up to `N` slots.
///
/// # Example
///
/// ```
/// use ditto_core::MaskTable;
///
/// let table = MaskTable::new(4);
/// let (count, positions) = table.decode(0b1010);
/// assert_eq!(count, 2);
/// assert_eq!(&positions[..2], &[1, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct MaskTable {
    n: u32,
    /// `counts[mask]` = number of set bits.
    counts: Vec<u8>,
    /// `positions[mask * n .. mask * n + counts[mask]]` = set-bit indices.
    positions: Vec<u8>,
}

/// Largest lane count for which the full 2^N table is materialised; wider
/// words would need a hierarchical decoder in hardware too.
pub const MAX_TABLE_LANES: u32 = 16;

impl MaskTable {
    /// Builds the table for `n`-slot wide words.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 16` (a 2^16-entry table is the largest a
    /// single BRAM-backed decoder stage would realistically hold).
    pub fn new(n: u32) -> Self {
        assert!(
            (1..=MAX_TABLE_LANES).contains(&n),
            "mask table supports 1..=16 lanes"
        );
        let entries = 1usize << n;
        let mut counts = vec![0u8; entries];
        let mut positions = vec![0u8; entries * n as usize];
        for mask in 0..entries {
            let mut c = 0u8;
            for bit in 0..n {
                if mask & (1 << bit) != 0 {
                    positions[mask * n as usize + c as usize] = bit as u8;
                    c += 1;
                }
            }
            counts[mask] = c;
        }
        MaskTable {
            n,
            counts,
            positions,
        }
    }

    /// Lane count N.
    pub fn lanes(&self) -> u32 {
        self.n
    }

    /// Looks up `(count, positions)` for `mask`; `positions` has `n` slots,
    /// of which the first `count` are valid.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has bits above lane `n`.
    pub fn decode(&self, mask: u32) -> (u8, &[u8]) {
        assert!(mask < (1u32 << self.n), "mask wider than table");
        let m = mask as usize;
        (
            self.counts[m],
            &self.positions[m * self.n as usize..(m + 1) * self.n as usize],
        )
    }

    /// Number of table entries (2^N) — feeds the resource model.
    pub fn entries(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_all_masks_for_small_n() {
        let t = MaskTable::new(6);
        for mask in 0u32..64 {
            let (count, pos) = t.decode(mask);
            assert_eq!(u32::from(count), mask.count_ones());
            for &p in &pos[..count as usize] {
                assert!(mask & (1 << p) != 0, "mask {mask:#b} pos {p}");
            }
            // positions are strictly increasing
            for w in pos[..count as usize].windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn full_and_empty_masks() {
        let t = MaskTable::new(8);
        assert_eq!(t.decode(0).0, 0);
        let (c, p) = t.decode(0xff);
        assert_eq!(c, 8);
        assert_eq!(&p[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn entries_scale_with_lanes() {
        assert_eq!(MaskTable::new(4).entries(), 16);
        assert_eq!(MaskTable::new(8).entries(), 256);
    }

    #[test]
    #[should_panic(expected = "wider than table")]
    fn wide_mask_rejected() {
        MaskTable::new(4).decode(0x10);
    }
}
