//! The runtime profiler (§IV-C3): workload profiling, SecPE plan
//! generation, throughput monitoring and the reschedule protocol (§IV-B).

use std::collections::VecDeque;

use hls_sim::{
    CounterId, Cycle, Engine, Kernel, KernelId, Progress, ReceiverId, SenderId, SimContext,
    StateId, ThroughputWindow,
};

use crate::control::ControlId;
use crate::phase::PhasePlan;
use crate::{PeId, SchedulingPlan};

/// Tuning parameters of the profiler.
#[derive(Debug, Clone)]
pub struct ProfilerParams {
    /// PriPE count M.
    pub m_pri: u32,
    /// SecPE count X.
    pub x_sec: u32,
    /// Profiling window length in cycles (the paper's example uses 256).
    pub profile_cycles: u64,
    /// Throughput-monitoring window in clock ticks.
    pub monitor_window: u64,
    /// Reschedule when the monitored rate falls below this fraction of the
    /// peak rate seen since the last plan. `0.0` disables rescheduling —
    /// "the predefined threshold can be set to zero to stop the SecPE
    /// rescheduling" (§IV-C3).
    pub reschedule_threshold: f64,
    /// Kernel dequeue + enqueue overhead in cycles: the time between the
    /// profiler exiting and the CPU having re-enqueued profiler + SecPEs.
    pub requeue_overhead_cycles: u64,
    /// After this many *consecutive* reschedules that re-trigger faster than
    /// twice the requeue overhead, stop rescheduling for good (the adaptive
    /// form of setting the threshold to zero that Fig. 9's right side
    /// exercises).
    pub auto_disable_after: u32,
}

/// Internal protocol state.
#[derive(Debug)]
enum Phase {
    /// Counting PriPE ids into the per-lane hist instances.
    Profiling { remaining: u64 },
    /// Streaming the generated plan to the mappers, one pair per cycle.
    Distributing { queue: VecDeque<(PeId, PeId)> },
    /// Watching the throughput window for a skew change.
    Monitoring { since: Cycle, peak: f64 },
    /// Waiting for all SecPEs to drain and exit.
    Draining,
    /// Waiting for the merger to fold SecPE partials.
    AwaitMerge,
    /// Modelling the CPU-side kernel re-enqueue overhead.
    Requeue { until: Cycle },
    /// Rescheduling permanently off (threshold 0 or auto-disabled).
    Disabled,
}

/// The runtime profiler kernel.
///
/// It "receives N PriPE IDs from the mappers in one cycle with N independent
/// hist instances"; after the profiling window it serially merges the
/// partial hists, generates the SecPE scheduling plan greedily (Fig. 5) and
/// transfers it to the mappers and the merger. It then monitors system
/// throughput with a local clock tick; a drop below the threshold starts
/// the reschedule protocol: mappers stop routing to SecPEs, SecPEs drain
/// and exit, the merger folds their partials, and after the kernel
/// re-enqueue overhead the profiler starts a fresh profiling window.
///
/// All cross-kernel state — the current plan, the control block, the
/// processed-tuple count driving the throughput monitor and the
/// plans-generated count — lives in the engine's state arena; the profiler
/// holds `Copy` handles and resolves them through the `SimContext`.
pub struct ProfilerKernel {
    name: String,
    params: ProfilerParams,
    phase: Phase,
    feeds: Vec<ReceiverId<PeId>>,
    plan_txs: Vec<SenderId<(PeId, PeId)>>,
    /// N independent hist instances (one per mapper lane), M bins each.
    hists: Vec<Vec<u64>>,
    current_plan: StateId<SchedulingPlan>,
    control: ControlId,
    /// Global processed-tuple counter driving the throughput monitor.
    processed: CounterId,
    window: ThroughputWindow,
    plans_generated: CounterId,
    /// Consecutive reschedules that re-triggered faster than the requeue
    /// overhead can amortise.
    fast_retriggers: u32,
    /// SecPE kernel ids woken on drain/restart commands (§IV-B side-band
    /// signals produce no channel event, so the profiler wakes the sleeping
    /// kernels explicitly in the cycle it mutates the control block).
    sec_kernels: Vec<KernelId>,
    /// Merger kernel id woken on merge requests.
    merger_kernel: Option<KernelId>,
    /// Decoder kernel ids, indexed by destination PE — the datapath half
    /// of a phase plan's parked-kernel set.
    decoder_kernels: Vec<KernelId>,
    /// Destination-PE kernel ids, indexed by destination PE.
    pe_kernels: Vec<KernelId>,
}

impl ProfilerKernel {
    /// Creates the profiler against `engine`'s state arena.
    ///
    /// `feeds` carry original PriPE ids from each mapper lane; `plan_txs`
    /// deliver plan pairs back to each mapper; `processed` is the global
    /// processed-tuple counter driving the throughput monitor;
    /// `current_plan` is shared with the merger and `control` with the
    /// whole pipeline. A fresh plans-generated counter is allocated in the
    /// arena (see [`plans_generated`](Self::plans_generated)), and the
    /// mappers' profiler feed is switched on.
    ///
    /// # Panics
    ///
    /// Panics if `params.x_sec == 0` (a pipeline without SecPEs has nothing
    /// to schedule — don't instantiate a profiler) or if `feeds` and
    /// `plan_txs` lengths differ.
    pub fn new(
        engine: &mut Engine,
        params: ProfilerParams,
        feeds: Vec<ReceiverId<PeId>>,
        plan_txs: Vec<SenderId<(PeId, PeId)>>,
        processed: CounterId,
        current_plan: StateId<SchedulingPlan>,
        control: ControlId,
    ) -> Self {
        assert!(params.x_sec > 0, "profiler requires at least one SecPE");
        assert!(
            params.profile_cycles > 0,
            "profiling window must be nonzero"
        );
        assert_eq!(
            feeds.len(),
            plan_txs.len(),
            "one plan channel per mapper lane"
        );
        let lanes = feeds.len();
        let plans_generated = engine.counter();
        engine
            .context_mut()
            .state_mut(control)
            .set_feed_profiler(true);
        ProfilerKernel {
            name: "runtime-profiler".to_owned(),
            window: ThroughputWindow::new(params.monitor_window),
            phase: Phase::Profiling {
                remaining: params.profile_cycles,
            },
            hists: vec![vec![0; params.m_pri as usize]; lanes],
            feeds,
            plan_txs,
            current_plan,
            control,
            processed,
            params,
            plans_generated,
            fast_retriggers: 0,
            sec_kernels: Vec::new(),
            merger_kernel: None,
            decoder_kernels: Vec::new(),
            pe_kernels: Vec::new(),
        }
    }

    /// Counter of generated plans (observable by reports/tests).
    pub fn plans_generated(&self) -> CounterId {
        self.plans_generated
    }

    /// Registers the kernels this profiler must wake when it drives the
    /// §IV-B protocol through the shared control block: the SecPE kernels
    /// (drain + restart commands) and the merger (merge requests). Without
    /// this, those kernels must stay awake polling the control block.
    pub fn with_protocol_wakes(
        mut self,
        sec_kernels: Vec<KernelId>,
        merger_kernel: Option<KernelId>,
    ) -> Self {
        self.sec_kernels = sec_kernels;
        self.merger_kernel = merger_kernel;
        self
    }

    /// Registers the datapath kernel ids (decoder and PE per destination
    /// PE, in PE order) so compiled phase plans can name the kernels
    /// expected to stay parked. Without this, phase plans carry only the
    /// active-PE prediction.
    pub fn with_datapath_kernels(
        mut self,
        decoder_kernels: Vec<KernelId>,
        pe_kernels: Vec<KernelId>,
    ) -> Self {
        self.decoder_kernels = decoder_kernels;
        self.pe_kernels = pe_kernels;
        self
    }

    /// Maps a compiled plan's cold datapaths to their kernel ids.
    fn parked_kernels_of(&self, plan: &PhasePlan) -> Vec<KernelId> {
        let mut parked = Vec::new();
        for pe in plan.cold_taps() {
            if let Some(&k) = self.decoder_kernels.get(pe as usize) {
                parked.push(k);
            }
            if let Some(&k) = self.pe_kernels.get(pe as usize) {
                parked.push(k);
            }
        }
        parked
    }

    fn wake_secs(&self, ctx: &mut SimContext) {
        for &k in &self.sec_kernels {
            ctx.wake_kernel(k);
        }
    }

    /// Merges the per-lane hists into the global workload histogram —
    /// "serially executed to reduce the resource consumption".
    fn merged_workloads(&self) -> Vec<u64> {
        let m = self.params.m_pri as usize;
        let mut global = vec![0u64; m];
        for hist in &self.hists {
            for (g, h) in global.iter_mut().zip(hist) {
                *g += *h;
            }
        }
        global
    }

    fn reset_hists(&mut self) {
        for hist in &mut self.hists {
            hist.fill(0);
        }
    }
}

impl Kernel for ProfilerKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        match &mut self.phase {
            Phase::Profiling { remaining } => {
                // One id per lane per cycle into the lane's hist instance.
                for (lane, &feed) in self.feeds.iter().enumerate() {
                    if let Some(pri) = ctx.try_recv(cy, feed) {
                        self.hists[lane][pri as usize] += 1;
                    }
                }
                *remaining -= 1;
                if *remaining == 0 {
                    ctx.state_mut(self.control).set_feed_profiler(false);
                    let workloads = self.merged_workloads();
                    let plan =
                        SchedulingPlan::generate(&workloads, self.params.m_pri, self.params.x_sec);
                    // Compile the plan + the window it was generated from
                    // into the coming phase's execution plan and apply it
                    // at this reschedule boundary.
                    let compiled = PhasePlan::compile(&workloads, &plan, self.params.x_sec);
                    let parked = self.parked_kernels_of(&compiled);
                    ctx.state_mut(self.control)
                        .apply_phase_plan(compiled.with_parked_kernels(parked));
                    let queue: VecDeque<_> = plan.pairs().to_vec().into();
                    *ctx.state_mut(self.current_plan) = plan;
                    ctx.counter_incr(self.plans_generated);
                    self.phase = Phase::Distributing { queue };
                }
            }
            Phase::Distributing { queue } => {
                // One pair per cycle to every mapper (each mapper applies
                // one pair per cycle, §IV-C2).
                if let Some(&pair) = queue.front() {
                    let all_ok = self.plan_txs.iter().all(|&tx| ctx.can_send(tx));
                    if all_ok {
                        for &tx in &self.plan_txs {
                            ctx.try_send(cy, tx, pair)
                                .unwrap_or_else(|_| unreachable!("checked"));
                        }
                        queue.pop_front();
                    }
                }
                if queue.is_empty() {
                    self.window.restart(cy, ctx.counter(self.processed));
                    self.phase = Phase::Monitoring {
                        since: cy,
                        peak: 0.0,
                    };
                }
            }
            Phase::Monitoring { since, peak } => {
                if self.params.reschedule_threshold <= 0.0 {
                    // Rescheduling disabled: monitoring is a permanent
                    // no-op, so the profiler can park for good.
                    return Progress::Sleep;
                }
                if let Some(rate) = self.window.tick(cy, ctx.counter(self.processed)) {
                    if rate > *peak {
                        *peak = rate;
                    }
                    let triggered = *peak > 0.0 && rate < self.params.reschedule_threshold * *peak;
                    if triggered {
                        let steady = cy - *since;
                        if steady < 2 * self.params.requeue_overhead_cycles {
                            self.fast_retriggers += 1;
                            if self.fast_retriggers >= self.params.auto_disable_after {
                                // The workload distribution changes faster
                                // than kernels can be re-enqueued: stop
                                // rescheduling for good (the threshold-to-
                                // zero behaviour Fig. 9's right side shows).
                                self.phase = Phase::Disabled;
                                return Progress::Sleep;
                            }
                        } else {
                            self.fast_retriggers = 0;
                        }
                        let control = ctx.state_mut(self.control);
                        control.set_route_to_sec(false);
                        control.drain_all_secs();
                        self.wake_secs(ctx);
                        self.phase = Phase::Draining;
                    }
                }
            }
            Phase::Draining => {
                if ctx.state(self.control).all_secs_exited() {
                    // Drain boundary: every SecPE has exited and nothing
                    // is in flight to them — the phase until the next
                    // plan distribution routes to PriPEs only.
                    let pri_only = PhasePlan::pri_only(self.params.m_pri, self.params.x_sec);
                    let parked = self.parked_kernels_of(&pri_only);
                    ctx.state_mut(self.control)
                        .apply_phase_plan(pri_only.with_parked_kernels(parked));
                    ctx.state_mut(self.control).request_merge();
                    if let Some(k) = self.merger_kernel {
                        ctx.wake_kernel(k);
                    }
                    self.phase = Phase::AwaitMerge;
                }
            }
            Phase::AwaitMerge => {
                if ctx.state(self.control).merge_done() {
                    ctx.state_mut(self.control).count_reschedule();
                    self.phase = Phase::Requeue {
                        until: cy + self.params.requeue_overhead_cycles,
                    };
                }
            }
            Phase::Requeue { until } => {
                if cy >= *until {
                    // CPU has re-enqueued profiler + SecPEs (§IV-B).
                    let control = ctx.state_mut(self.control);
                    control.bump_generation();
                    control.restart_all_secs();
                    control.set_route_to_sec(true);
                    control.set_feed_profiler(true);
                    self.wake_secs(ctx);
                    self.reset_hists();
                    self.phase = Phase::Profiling {
                        remaining: self.params.profile_cycles,
                    };
                }
            }
            Phase::Disabled => return Progress::Sleep,
        }
        // Every live phase carries an internal clock (profiling countdown,
        // plan distribution, throughput windows, requeue timer), so the
        // profiler steps every cycle while any of them is in flight.
        Progress::Busy
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        match &self.phase {
            Phase::Profiling { .. } => self.feeds.iter().all(|&f| ctx.is_empty(f)),
            Phase::Distributing { queue } => queue.is_empty(),
            Phase::Monitoring { .. } | Phase::Disabled => true,
            // Mid-protocol states must complete before the engine may stop.
            Phase::Draining | Phase::AwaitMerge | Phase::Requeue { .. } => false,
        }
    }

    fn hold_until(&self, cy: Cycle, _ctx: &SimContext) -> Option<Cycle> {
        match &self.phase {
            // Reschedule-boundary phases tick an internal clock or watch
            // cross-kernel state every cycle: the detector refuses to
            // fast-forward across them.
            Phase::Profiling { .. }
            | Phase::Distributing { .. }
            | Phase::Draining
            | Phase::AwaitMerge => None,
            Phase::Monitoring { .. } => {
                if self.params.reschedule_threshold <= 0.0 {
                    // Permanent no-op (the step parks the kernel anyway).
                    return Some(Cycle::MAX);
                }
                // Ticks strictly before the window boundary return `None`
                // without mutating the observer.
                let boundary = self.window.next_boundary();
                (boundary > cy).then_some(boundary)
            }
            Phase::Requeue { until } => (*until > cy).then_some(*until),
            Phase::Disabled => Some(Cycle::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::SecPhase;

    fn params(x: u32) -> ProfilerParams {
        ProfilerParams {
            m_pri: 4,
            x_sec: x,
            profile_cycles: 16,
            monitor_window: 32,
            reschedule_threshold: 0.0,
            requeue_overhead_cycles: 100,
            auto_disable_after: 3,
        }
    }

    #[test]
    fn profiles_then_distributes_plan() {
        let mut engine = Engine::new();
        let (feed_tx, feed_rx) = engine.channel::<u32>("feed", 64);
        let (plan_tx, plan_rx) = engine.channel::<(u32, u32)>("plan", 8);
        let control = engine.state(Control::new(2));
        let plan = engine.state(SchedulingPlan::empty());
        let processed = engine.counter();
        let mut prof = ProfilerKernel::new(
            &mut engine,
            params(2),
            vec![feed_rx],
            vec![plan_tx],
            processed,
            plan,
            control,
        );
        // All workload on PriPE 3.
        for _ in 0..10 {
            engine.context_mut().try_send(0, feed_tx, 3u32).unwrap();
        }
        let ctx = engine.context_mut();
        for cy in 1..64 {
            prof.step(cy, ctx);
        }
        assert_eq!(ctx.state(plan).pairs(), &[(4, 3), (5, 3)]);
        // Mapper received both pairs.
        assert_eq!(ctx.try_recv(100, plan_rx), Some((4, 3)));
        assert_eq!(ctx.try_recv(100, plan_rx), Some((5, 3)));
        assert!(
            !ctx.state(control).feed_profiler(),
            "feed stops after profiling window"
        );
        assert!(prof.is_idle(ctx));
    }

    #[test]
    fn hists_are_per_lane_and_merged() {
        let mut engine = Engine::new();
        let feeds: Vec<_> = (0..2)
            .map(|i| engine.channel::<u32>(&format!("f{i}"), 64))
            .collect();
        let plans: Vec<_> = (0..2)
            .map(|i| engine.channel::<(u32, u32)>(&format!("p{i}"), 8))
            .collect();
        let control = engine.state(Control::new(1));
        let plan = engine.state(SchedulingPlan::empty());
        let processed = engine.counter();
        let mut prof = ProfilerKernel::new(
            &mut engine,
            params(1),
            feeds.iter().map(|&(_, rx)| rx).collect(),
            plans.iter().map(|&(tx, _)| tx).collect(),
            processed,
            plan,
            control,
        );
        // Lane 0 votes PriPE 1, lane 1 votes PriPE 2 — but lane 1 votes more.
        let ctx = engine.context_mut();
        for i in 0..6 {
            ctx.try_send(i, feeds[0].0, 1u32).unwrap();
        }
        for i in 0..12 {
            ctx.try_send(i, feeds[1].0, 2u32).unwrap();
        }
        for cy in 1..40 {
            prof.step(cy, ctx);
        }
        assert_eq!(ctx.state(plan).pairs(), &[(4, 2)]);
    }

    #[test]
    fn threshold_zero_never_reschedules() {
        let mut engine = Engine::new();
        let (_feed_tx, feed_rx) = engine.channel::<u32>("feed", 64);
        let (plan_tx, _plan_rx) = engine.channel::<(u32, u32)>("plan", 8);
        let control = engine.state(Control::new(1));
        let plan = engine.state(SchedulingPlan::empty());
        let processed = engine.counter();
        let mut prof = ProfilerKernel::new(
            &mut engine,
            params(1),
            vec![feed_rx],
            vec![plan_tx],
            processed,
            plan,
            control,
        );
        // Throughput collapses to zero after the plan, but threshold is 0.
        let ctx = engine.context_mut();
        for cy in 1..2_000 {
            prof.step(cy, ctx);
        }
        assert_eq!(ctx.state(control).reschedules(), 0);
        assert!(ctx.state(control).route_to_sec());
    }

    #[test]
    fn hold_refuses_reschedule_boundary_phases() {
        // The fast-forward detector must never jump across a phase whose
        // steps drive the reschedule protocol: while profiling (and in every
        // other boundary phase) the profiler opts out of fast-forward.
        let mut engine = Engine::new();
        let (feed_tx, feed_rx) = engine.channel::<u32>("feed", 64);
        let (plan_tx, _plan_rx) = engine.channel::<(u32, u32)>("plan", 8);
        let control = engine.state(Control::new(1));
        let plan = engine.state(SchedulingPlan::empty());
        let processed = engine.counter();
        let mut p = params(1);
        p.reschedule_threshold = 0.5;
        let mut prof = ProfilerKernel::new(
            &mut engine,
            p,
            vec![feed_rx],
            vec![plan_tx],
            processed,
            plan,
            control,
        );
        let ctx = engine.context_mut();
        ctx.try_send(0, feed_tx, 0u32).unwrap();
        // Profiling: every cycle counts ids and ticks the window countdown.
        assert_eq!(prof.hold_until(1, ctx), None, "profiling must step");
        let mut cy = 1;
        // Drive through the profiling window and the plan distribution.
        for _ in 0..20 {
            prof.step(cy, ctx);
            cy += 1;
        }
        // Monitoring with a live threshold: holdable only to the window
        // boundary, where the throughput tick fires.
        let hold = prof.hold_until(cy, ctx).expect("monitoring is holdable");
        assert!(hold > cy && hold < Cycle::MAX, "hold {hold} at cy {cy}");
        // Stepping up to (but not past) the boundary leaves the hold fixed.
        prof.step(cy, ctx);
        assert_eq!(prof.hold_until(cy + 1, ctx), Some(hold));
    }

    #[test]
    fn reschedule_protocol_completes() {
        let mut engine = Engine::new();
        let (feed_tx, feed_rx) = engine.channel::<u32>("feed", 256);
        let (plan_tx, _plan_rx) = engine.channel::<(u32, u32)>("plan", 8);
        let control = engine.state(Control::new(1));
        let plan = engine.state(SchedulingPlan::empty());
        let processed = engine.counter();
        let mut p = params(1);
        p.reschedule_threshold = 0.5;
        p.requeue_overhead_cycles = 50;
        let mut prof = ProfilerKernel::new(
            &mut engine,
            p,
            vec![feed_rx],
            vec![plan_tx],
            processed,
            plan,
            control,
        );
        // Phase 1: profile (16 cycles), distribute, then healthy rate.
        let ctx = engine.context_mut();
        let mut cy = 1;
        for _ in 0..16 {
            ctx.try_send(cy, feed_tx, 0u32).ok();
            prof.step(cy, ctx);
            cy += 1;
        }
        // Healthy throughput for several windows (processed grows fast)...
        for _ in 0..400 {
            ctx.counter_add(processed, 4);
            prof.step(cy, ctx);
            cy += 1;
        }
        assert_eq!(ctx.state(control).reschedules(), 0);
        // ...then collapse: rate goes to ~0 -> trigger.
        for _ in 0..200 {
            prof.step(cy, ctx);
            cy += 1;
            // SecPE cooperates with the drain request.
            if ctx.state(control).sec_phase(0) == SecPhase::Draining {
                ctx.state_mut(control).set_sec_phase(0, SecPhase::Exited);
            }
            // Merger cooperates.
            if ctx.state_mut(control).take_merge_request() {
                ctx.state_mut(control).set_merge_done();
            }
        }
        assert_eq!(
            ctx.state(control).reschedules(),
            1,
            "one reschedule completed"
        );
        // After the requeue overhead the profiler must be profiling again.
        for _ in 0..100 {
            prof.step(cy, ctx);
            cy += 1;
        }
        assert!(
            ctx.state(control).route_to_sec(),
            "routing re-enabled after requeue"
        );
        assert!(ctx.state(control).generation() > 0, "mappers told to reset");
    }
}
