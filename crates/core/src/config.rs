//! Architecture configuration.

/// Configuration of one generated implementation.
///
/// `n_pre`/`m_pri` come from the framework's Equation 1 tuning; `x_sec`
/// selects the skew-handling capacity (the paper generates variants with
/// X = 0..M−1 and the skew analyzer picks one). The remaining knobs model
/// channel depths and the runtime-profiler parameters.
///
/// # Example
///
/// ```
/// use ditto_core::ArchConfig;
///
/// let cfg = ArchConfig::new(8, 16, 4)
///     .with_pe_entries(2048)
///     .with_reschedule(0.5, 100_000);
/// assert_eq!(cfg.label(), "16P+4S");
/// assert_eq!(cfg.words_per_cycle(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Number of PrePEs (and mapper lanes), N.
    pub n_pre: u32,
    /// Number of PriPEs, M.
    pub m_pri: u32,
    /// Number of SecPEs, X (bounded by M−1).
    pub x_sec: u32,
    /// Entries in each destination PE's private buffer.
    pub pe_entries: usize,
    /// Depth of each PE input queue (filter → PE).
    pub pe_queue_depth: usize,
    /// Depth of the wide-word channels (combiner → filter).
    pub word_queue_depth: usize,
    /// Depth of lane channels (reader → PrePE → mapper → combiner).
    pub lane_queue_depth: usize,
    /// Profiling window, cycles (the paper's example: 256).
    pub profile_cycles: u64,
    /// Throughput-monitoring window, cycles.
    pub monitor_window: u64,
    /// Reschedule threshold as a fraction of peak rate; 0 disables.
    pub reschedule_threshold: f64,
    /// Kernel dequeue/enqueue overhead modelled on reschedule, cycles.
    pub requeue_overhead_cycles: u64,
    /// Consecutive too-fast reschedules before auto-disabling.
    pub auto_disable_after: u32,
    /// When `true` (the default), the wide-word broadcast uses the
    /// engine's cold-tap auto-advance: words carrying nothing for a
    /// parked datapath are consumed by bookkeeping instead of waking the
    /// decoder kernel. `false` reproduces the pre-phase-plan schedule
    /// (every push wakes every decoder) — same simulated behaviour,
    /// deterministically more kernel steps; kept as the in-binary
    /// baseline for the hot-path bench.
    pub cold_tap_auto_advance: bool,
    /// When `true`, the engine's steady-state fast-forward is enabled:
    /// whenever every awake kernel can prove its next cycles are
    /// observational no-ops, the engine jumps the cycle counter straight
    /// to the next event horizon instead of stepping through the gap.
    /// Bit-identical to cycle stepping (cycles, per-PE workloads, channel
    /// statistics) by construction; defaults to `false` so the
    /// cycle-equivalence goldens pin both modes against each other.
    pub steady_state_fast_forward: bool,
}

impl ArchConfig {
    /// Creates a configuration with the paper-inspired defaults: 512-deep
    /// PE queues, 64-deep wide-word channels (deep enough to absorb
    /// short-term skew bursts, §VI-D), 256-cycle profiling window,
    /// rescheduling disabled (offline mode).
    ///
    /// # Panics
    ///
    /// Panics if `n_pre` or `m_pri` is zero, or `x_sec >= m_pri`.
    pub fn new(n_pre: u32, m_pri: u32, x_sec: u32) -> Self {
        assert!(n_pre > 0, "need at least one PrePE");
        assert!(m_pri > 0, "need at least one PriPE");
        assert!(x_sec < m_pri, "X is bounded by M-1 (§V-C)");
        ArchConfig {
            n_pre,
            m_pri,
            x_sec,
            pe_entries: 1024,
            pe_queue_depth: 512,
            word_queue_depth: 64,
            lane_queue_depth: 8,
            profile_cycles: 256,
            monitor_window: 2_048,
            reschedule_threshold: 0.0,
            requeue_overhead_cycles: 200_000,
            auto_disable_after: 3,
            cold_tap_auto_advance: true,
            steady_state_fast_forward: false,
        }
    }

    /// The paper's evaluation shape: 8 PrePEs, 16 PriPEs (8-byte tuples on
    /// a 64-byte interface, II_pri = 2) and `x_sec` SecPEs.
    pub fn paper(x_sec: u32) -> Self {
        Self::new(8, 16, x_sec)
    }

    /// Sets the per-PE buffer entry count.
    pub fn with_pe_entries(mut self, entries: usize) -> Self {
        self.pe_entries = entries;
        self
    }

    /// Enables online rescheduling with the given threshold fraction and
    /// kernel requeue overhead in cycles.
    pub fn with_reschedule(mut self, threshold: f64, overhead_cycles: u64) -> Self {
        self.reschedule_threshold = threshold;
        self.requeue_overhead_cycles = overhead_cycles;
        self
    }

    /// Sets the profiling window length.
    pub fn with_profile_cycles(mut self, cycles: u64) -> Self {
        self.profile_cycles = cycles;
        self
    }

    /// Sets the throughput-monitoring window length.
    pub fn with_monitor_window(mut self, cycles: u64) -> Self {
        self.monitor_window = cycles;
        self
    }

    /// Sets the PE input queue depth.
    pub fn with_pe_queue_depth(mut self, depth: usize) -> Self {
        self.pe_queue_depth = depth;
        self
    }

    /// Enables or disables the cold-tap auto-advance (see the field docs).
    pub fn with_cold_tap_auto_advance(mut self, on: bool) -> Self {
        self.cold_tap_auto_advance = on;
        self
    }

    /// Enables or disables steady-state fast-forward (see the field docs).
    pub fn with_steady_state_fast_forward(mut self, on: bool) -> Self {
        self.steady_state_fast_forward = on;
        self
    }

    /// Total destination PEs (M + X).
    pub fn destination_pes(&self) -> u32 {
        self.m_pri + self.x_sec
    }

    /// Peak input words (tuples) per cycle the reader injects — equals N
    /// for II_pre = 1.
    pub fn words_per_cycle(&self) -> u32 {
        self.n_pre
    }

    /// Table III style label (`16P`, `16P+4S`, …).
    pub fn label(&self) -> String {
        if self.x_sec == 0 {
            format!("{}P", self.m_pri)
        } else {
            format!("{}P+{}S", self.m_pri, self.x_sec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape() {
        let cfg = ArchConfig::paper(15);
        assert_eq!(cfg.n_pre, 8);
        assert_eq!(cfg.m_pri, 16);
        assert_eq!(cfg.destination_pes(), 31);
        assert_eq!(cfg.label(), "16P+15S");
    }

    #[test]
    fn builders_chain() {
        let cfg = ArchConfig::new(4, 8, 2)
            .with_pe_entries(64)
            .with_reschedule(0.4, 1_000)
            .with_profile_cycles(128)
            .with_monitor_window(512)
            .with_pe_queue_depth(32);
        assert_eq!(cfg.pe_entries, 64);
        assert_eq!(cfg.reschedule_threshold, 0.4);
        assert_eq!(cfg.requeue_overhead_cycles, 1_000);
        assert_eq!(cfg.profile_cycles, 128);
        assert_eq!(cfg.monitor_window, 512);
        assert_eq!(cfg.pe_queue_depth, 32);
    }

    #[test]
    #[should_panic(expected = "bounded by M-1")]
    fn x_bound() {
        let _ = ArchConfig::new(8, 16, 16);
    }
}
