//! The mapper module (§IV-C2, Fig. 4): mapping table, counter array and
//! round-robin workload redirecting.

use hls_sim::{Cycle, Kernel, Progress, ReceiverId, SenderId, SimContext, WakeSet};

use crate::app::Routed;
use crate::control::ControlId;
use crate::PeId;

/// The pure mapping-table state machine, separated from the kernel shell so
/// it can be unit-tested against the paper's Fig. 4 walk-through.
///
/// Each mapper maintains an `M × (X+1)` mapping table and an `M`-entry
/// counter array. Row `i` starts as `[i, i, …, i]` with counter 1; applying
/// a scheduling-plan pair `(sec → pri)` writes `sec` at index `counter[pri]`
/// of row `pri` and increments the counter. Redirecting looks up row `dst`
/// round-robin over its first `counter[dst]` entries.
///
/// # Example
///
/// The exact sequence of the paper's Fig. 4 (four PriPEs, three SecPEs,
/// plan `4→2; 5→2; 6→0`):
///
/// ```
/// use ditto_core::mapper::Mapper;
///
/// let mut m = Mapper::new(4, 3);
/// m.apply_pair(4, 2);
/// m.apply_pair(5, 2);
/// m.apply_pair(6, 0);
/// // PriPE 0 alternates 0, 6, 0, 6, ...
/// assert_eq!([m.redirect(0), m.redirect(0), m.redirect(0), m.redirect(0)], [0, 6, 0, 6]);
/// // PriPE 2 round-robins 2, 4, 5, 2, ...
/// assert_eq!([m.redirect(2), m.redirect(2), m.redirect(2), m.redirect(2)], [2, 4, 5, 2]);
/// // Unhelped PriPEs map to themselves.
/// assert_eq!(m.redirect(1), 1);
/// assert_eq!(m.redirect(3), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Mapper {
    pub(crate) m_pri: u32,
    x_sec: u32,
    /// `M` rows of `X+1` destination PE ids.
    table: Vec<Vec<PeId>>,
    /// Available PEs per row, counted from the left (init 1).
    counter: Vec<u8>,
    /// Round-robin cursor per row.
    cursor: Vec<u8>,
}

impl Mapper {
    /// Creates the initial mapping table for `m_pri` PriPEs and `x_sec`
    /// schedulable SecPEs.
    ///
    /// # Panics
    ///
    /// Panics if `m_pri` is zero.
    pub fn new(m_pri: u32, x_sec: u32) -> Self {
        assert!(m_pri > 0, "need at least one PriPE");
        Mapper {
            m_pri,
            x_sec,
            table: (0..m_pri).map(|i| vec![i; x_sec as usize + 1]).collect(),
            counter: vec![1; m_pri as usize],
            cursor: vec![0; m_pri as usize],
        }
    }

    /// Applies one `(SecPE → PriPE)` scheduling pair (one per cycle in
    /// hardware, "for better timing").
    ///
    /// # Panics
    ///
    /// Panics if `pri >= M`, if `sec` is not a SecPE id (`M..M+X`), or if
    /// the row is already full.
    pub fn apply_pair(&mut self, sec: PeId, pri: PeId) {
        assert!(pri < self.m_pri, "pri {pri} out of range");
        assert!(
            sec >= self.m_pri && sec < self.m_pri + self.x_sec,
            "sec {sec} is not a SecPE id"
        );
        let row = &mut self.table[pri as usize];
        let c = &mut self.counter[pri as usize];
        assert!(
            (*c as usize) < row.len(),
            "row {pri} already has X+1 entries"
        );
        row[*c as usize] = sec;
        *c += 1;
    }

    /// Redirects a tuple destined for PriPE `dst`, advancing the row's
    /// round-robin cursor.
    ///
    /// # Panics
    ///
    /// Panics if `dst >= M`.
    pub fn redirect(&mut self, dst: PeId) -> PeId {
        let row = dst as usize;
        let c = self.counter[row];
        let idx = self.cursor[row];
        self.cursor[row] = (idx + 1) % c;
        self.table[row][idx as usize]
    }

    /// Looks up without advancing the cursor (identity when no SecPE is
    /// attached).
    pub fn peek(&self, dst: PeId) -> PeId {
        self.table[dst as usize][self.cursor[dst as usize] as usize]
    }

    /// Resets the table to identity and the counters to one — executed when
    /// the profiler announces a new generation.
    pub fn reset(&mut self) {
        for (i, row) in self.table.iter_mut().enumerate() {
            row.fill(i as PeId);
        }
        self.counter.fill(1);
        self.cursor.fill(0);
    }

    /// Number of destination PEs (incl. SecPEs) row `dst` currently cycles
    /// through.
    pub fn fan_out(&self, dst: PeId) -> u8 {
        self.counter[dst as usize]
    }
}

/// The mapper kernel: one per PrePE lane (Fig. 3 instantiates mapper
/// `#0..#N-1`).
///
/// Per cycle it:
/// 1. applies at most one scheduling-plan pair from the profiler,
/// 2. pops at most one routed record from its PrePE, redirects the
///    destination through the mapping table (unless SecPE routing is
///    suspended) and forwards it to the combiner lane,
/// 3. feeds the *original* PriPE id to the profiler while profiling is on.
pub struct MapperKernel<V> {
    name: String,
    mapper: Mapper,
    generation: u64,
    control: ControlId,
    plan_rx: ReceiverId<(PeId, PeId)>,
    input: ReceiverId<Routed<V>>,
    output: SenderId<Routed<V>>,
    profiler_feed: SenderId<PeId>,
}

impl<V> MapperKernel<V> {
    /// Creates a mapper kernel for lane `lane`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        lane: usize,
        m_pri: u32,
        x_sec: u32,
        control: ControlId,
        plan_rx: ReceiverId<(PeId, PeId)>,
        input: ReceiverId<Routed<V>>,
        output: SenderId<Routed<V>>,
        profiler_feed: SenderId<PeId>,
    ) -> Self {
        MapperKernel {
            name: format!("mapper#{lane}"),
            mapper: Mapper::new(m_pri, x_sec),
            generation: 0,
            control,
            plan_rx,
            input,
            output,
            profiler_feed,
        }
    }
}

impl<V: Clone + Send + 'static> MapperKernel<V> {
    /// `Sleep` is safe exactly when no plan pair is waiting and either there
    /// is nothing to forward or downstream has no room: a generation bump
    /// while parked is applied on wake, before any tuple is processed —
    /// indistinguishable from applying it during the idle cycles.
    fn parked(&self, ctx: &SimContext) -> Progress {
        if ctx.is_empty(self.plan_rx) && (ctx.is_empty(self.input) || !ctx.can_send(self.output)) {
            Progress::Sleep
        } else {
            Progress::Busy
        }
    }
}

impl<V: Clone + Send + 'static> Kernel for MapperKernel<V> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        // One control-block resolution per step: the flags only change
        // inside other kernels' steps, never mid-step, so reading them all
        // up front is exact.
        let control = ctx.state(self.control);
        let gen = control.generation();
        let route_to_sec = control.route_to_sec();
        let feed_profiler = control.feed_profiler();

        // Generation change: reset to identity before anything else.
        if gen != self.generation {
            self.mapper.reset();
            self.generation = gen;
        }

        // One scheduling-plan pair per cycle.
        if let Some((sec, pri)) = ctx.try_recv(cy, self.plan_rx) {
            self.mapper.apply_pair(sec, pri);
        }

        // One tuple per cycle, gated by downstream space.
        if !ctx.can_send(self.output) {
            return self.parked(ctx);
        }
        if let Some(routed) = ctx.try_recv(cy, self.input) {
            let original = routed.dst;
            let redirected = if route_to_sec {
                self.mapper.redirect(original)
            } else {
                original
            };
            if redirected >= self.mapper.m_pri {
                // Exact in-flight accounting for the drain protocol.
                ctx.state_mut(self.control)
                    .sec_inflight_inc((redirected - self.mapper.m_pri) as usize);
            }
            ctx.try_send(cy, self.output, Routed::new(redirected, routed.value))
                .unwrap_or_else(|_| unreachable!("checked can_send"));
            if feed_profiler {
                // Drop the feed if the profiler queue is full; the hardware
                // hist port accepts one id per lane per cycle by design.
                let _ = ctx.try_send(cy, self.profiler_feed, original);
            }
            Progress::Busy
        } else {
            self.parked(ctx)
        }
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        ctx.is_empty(self.input)
    }

    fn hold_until(&self, cy: Cycle, ctx: &SimContext) -> Option<Cycle> {
        if ctx.state(self.control).generation() != self.generation {
            // A pending table reset changes routing: simulate it.
            return None;
        }
        // The earliest cycle a queued plan pair becomes applicable.
        let plan_at = match ctx.recv_visible_at(self.plan_rx) {
            None => Cycle::MAX,
            Some(t) if t > cy => t,
            Some(_) => return None, // pair applies this cycle
        };
        if !ctx.can_send(self.output) {
            // Tuples can't move; only a plan arrival or a pop event can.
            return Some(plan_at);
        }
        match ctx.recv_visible_at(self.input) {
            None => Some(plan_at),
            Some(t) if t > cy => Some(plan_at.min(t)),
            Some(_) => None,
        }
    }

    fn wake_set(&self) -> WakeSet {
        WakeSet::new()
            .after_push_on(self.plan_rx)
            .after_push_on(self.input)
            .after_pop_on(self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_table_is_identity() {
        let mut m = Mapper::new(4, 3);
        for dst in 0..4 {
            assert_eq!(m.redirect(dst), dst);
            assert_eq!(m.redirect(dst), dst); // stays identity
            assert_eq!(m.fan_out(dst), 1);
        }
    }

    #[test]
    fn fig4_walkthrough() {
        // Fig. 4b/4c: plan 4->2; 5->2; 6->0 with four PriPEs, three SecPEs.
        let mut m = Mapper::new(4, 3);
        m.apply_pair(4, 2);
        m.apply_pair(5, 2);
        m.apply_pair(6, 0);
        assert_eq!(m.fan_out(2), 3);
        assert_eq!(m.fan_out(0), 2);
        // Row 2 cycles 2, 4, 5 (Fig. 4c's mapping sequence for PriPE 2).
        let seq: Vec<_> = (0..6).map(|_| m.redirect(2)).collect();
        assert_eq!(seq, vec![2, 4, 5, 2, 4, 5]);
        // Row 0 alternates 0, 6.
        let seq: Vec<_> = (0..4).map(|_| m.redirect(0)).collect();
        assert_eq!(seq, vec![0, 6, 0, 6]);
    }

    #[test]
    fn reset_restores_identity() {
        let mut m = Mapper::new(4, 2);
        m.apply_pair(4, 1);
        m.redirect(1);
        m.reset();
        for dst in 0..4 {
            assert_eq!(m.redirect(dst), dst);
            assert_eq!(m.fan_out(dst), 1);
        }
    }

    #[test]
    fn round_robin_balances_exactly() {
        let mut m = Mapper::new(2, 3);
        m.apply_pair(2, 0);
        m.apply_pair(3, 0);
        m.apply_pair(4, 0);
        let mut counts = [0u32; 5];
        for _ in 0..400 {
            counts[m.redirect(0) as usize] += 1;
        }
        assert_eq!(counts[0], 100);
        assert_eq!(counts[2], 100);
        assert_eq!(counts[3], 100);
        assert_eq!(counts[4], 100);
    }

    #[test]
    #[should_panic(expected = "not a SecPE id")]
    fn rejects_pri_as_sec() {
        Mapper::new(4, 2).apply_pair(1, 0);
    }

    #[test]
    #[should_panic(expected = "already has")]
    fn rejects_row_overflow() {
        let mut m = Mapper::new(2, 1);
        m.apply_pair(2, 0);
        m.apply_pair(2, 0);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut m = Mapper::new(2, 1);
        m.apply_pair(2, 0);
        assert_eq!(m.peek(0), 0);
        assert_eq!(m.peek(0), 0);
        assert_eq!(m.redirect(0), 0);
        assert_eq!(m.peek(0), 2);
    }
}
