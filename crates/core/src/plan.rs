//! SecPE scheduling plans (§IV-C3, Fig. 5).

use crate::PeId;

/// A SecPE scheduling plan: the array of `SecPE id → PriPE id` pairs the
/// runtime profiler transfers to the mappers and the merger.
///
/// # Example
///
/// ```
/// use ditto_core::SchedulingPlan;
///
/// // The paper's Fig. 4/5 example: 4 PriPEs, 3 SecPEs, PriPE 2 overloaded.
/// let plan = SchedulingPlan::generate(&[40, 20, 90, 10], 4, 3);
/// assert_eq!(plan.pairs(), &[(4, 2), (5, 2), (6, 0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchedulingPlan {
    pairs: Vec<(PeId, PeId)>,
}

impl SchedulingPlan {
    /// An empty plan (no SecPEs scheduled).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a plan from explicit `(SecPE id, PriPE id)` pairs.
    pub fn from_pairs(pairs: Vec<(PeId, PeId)>) -> Self {
        SchedulingPlan { pairs }
    }

    /// The `(SecPE id, PriPE id)` pairs in scheduling order.
    pub fn pairs(&self) -> &[(PeId, PeId)] {
        &self.pairs
    }

    /// Number of scheduled SecPEs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no SecPE is scheduled.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The PriPE a given SecPE helps, if scheduled.
    pub fn pri_of_sec(&self, sec: PeId) -> Option<PeId> {
        self.pairs.iter().find(|&&(s, _)| s == sec).map(|&(_, p)| p)
    }

    /// Greedy plan generation — the algorithm of Fig. 5.
    ///
    /// The profiler "assigns a SecPE to the PriPE whose workload is maximal
    /// and recalculates the workload distribution with assuming the original
    /// workload is evenly shared with the attached SecPEs. This process is
    /// repeated until all SecPEs are scheduled."
    ///
    /// `workloads[i]` is PriPE i's tuple count over the profiling window;
    /// SecPE ids are assigned `m_pri..m_pri + x_sec` in scheduling order.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != m_pri as usize`.
    pub fn generate(workloads: &[u64], m_pri: u32, x_sec: u32) -> Self {
        assert_eq!(
            workloads.len(),
            m_pri as usize,
            "one workload entry per PriPE"
        );
        let mut helpers = vec![1u64; workloads.len()];
        let mut pairs = Vec::with_capacity(x_sec as usize);
        for sec in 0..x_sec {
            // Effective load = original / (1 + attached SecPEs).
            let (target, _) = workloads
                .iter()
                .enumerate()
                .map(|(i, &w)| (i, w as f64 / helpers[i] as f64))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                .expect("m_pri > 0");
            helpers[target] += 1;
            pairs.push((m_pri + sec, target as PeId));
        }
        SchedulingPlan { pairs }
    }

    /// Effective per-PriPE load after applying this plan: `w[i] / (1 + h_i)`
    /// where `h_i` counts SecPEs assigned to PriPE i. Used by tests and by
    /// the analyzer's what-if reasoning.
    pub fn effective_loads(&self, workloads: &[u64]) -> Vec<f64> {
        let mut helpers = vec![1u64; workloads.len()];
        for &(_, pri) in &self.pairs {
            helpers[pri as usize] += 1;
        }
        workloads
            .iter()
            .zip(&helpers)
            .map(|(&w, &h)| w as f64 / h as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_example() {
        // Fig. 5: four PriPEs; PriPE 2 dominates (90), gets two SecPEs
        // (90 -> 45 -> 30); the third SecPE then goes to PriPE 0 (40).
        // Plan: 4->2, 5->2, 6->0 — the example of Figs. 4 and 5.
        let plan = SchedulingPlan::generate(&[40, 20, 90, 10], 4, 3);
        assert_eq!(plan.pairs(), &[(4, 2), (5, 2), (6, 0)]);
    }

    #[test]
    fn extreme_skew_gets_all_secpes() {
        let plan = SchedulingPlan::generate(&[1000, 1, 1, 1], 4, 3);
        assert_eq!(plan.pairs(), &[(4, 0), (5, 0), (6, 0)]);
        let eff = plan.effective_loads(&[1000, 1, 1, 1]);
        assert!((eff[0] - 250.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_load_spreads_secpes() {
        let plan = SchedulingPlan::generate(&[100, 100, 100, 100], 4, 3);
        // Each SecPE goes to a distinct PriPE (ties broken deterministically).
        let mut targets: Vec<_> = plan.pairs().iter().map(|&(_, p)| p).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), 3);
    }

    #[test]
    fn effective_load_is_reduced_only_for_helped_pes() {
        let w = [80u64, 40, 10, 10];
        let plan = SchedulingPlan::generate(&w, 4, 2);
        let eff = plan.effective_loads(&w);
        assert!(eff[0] < 80.0);
        assert_eq!(eff[2], 10.0);
        assert_eq!(eff[3], 10.0);
    }

    #[test]
    fn max_effective_load_never_increases_with_more_secpes() {
        let w = [500u64, 300, 150, 50, 25, 12, 6, 3];
        let mut prev_max = f64::INFINITY;
        for x in 0..8u32 {
            let plan = SchedulingPlan::generate(&w, 8, x);
            let max = plan.effective_loads(&w).into_iter().fold(0.0f64, f64::max);
            assert!(max <= prev_max + 1e-9, "x={x}: {max} > {prev_max}");
            prev_max = max;
        }
    }

    #[test]
    fn pri_of_sec_lookup() {
        let plan = SchedulingPlan::from_pairs(vec![(4, 2), (5, 0)]);
        assert_eq!(plan.pri_of_sec(4), Some(2));
        assert_eq!(plan.pri_of_sec(5), Some(0));
        assert_eq!(plan.pri_of_sec(6), None);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a = SchedulingPlan::generate(&[10, 10], 2, 1);
        let b = SchedulingPlan::generate(&[10, 10], 2, 1);
        assert_eq!(a, b);
    }
}
