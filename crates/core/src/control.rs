//! Shared control state wiring the profiler, mappers, SecPEs and merger.
//!
//! In the paper these are side-band signals between kernels ("the runtime
//! profiler ... informs SecPEs and mappers and exits itself", §IV-B). We
//! model them as a shared, single-threaded control block every kernel holds
//! an `Rc` to; all mutations happen inside `step` calls of the owning
//! kernels, so the protocol stays cycle-accurate and deterministic.

use std::cell::Cell;
use std::rc::Rc;

/// Lifecycle of a SecPE kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecPhase {
    /// Enqueued and processing tuples.
    Running,
    /// Told to exit: consume remaining channel items, then exit
    /// ("The SecPEs exit the execution after all the tuples in the channels
    /// whose upstream is the data routing logic are consumed", §IV-B).
    Draining,
    /// Exited; waiting for the host to enqueue it again.
    Exited,
}

/// Shared control block (one per pipeline).
#[derive(Debug)]
pub struct Control {
    /// When `false`, mappers route every tuple to its original PriPE —
    /// "the mappers will prevent the tuples from being routed to SecPEs".
    route_to_sec: Cell<bool>,
    /// When `true`, mappers feed original PriPE ids to the profiler.
    feed_profiler: Cell<bool>,
    /// Bumped on every reschedule; mappers reset their tables when they
    /// observe a generation change.
    generation: Cell<u64>,
    /// Per-SecPE phase, indexed by `sec_index = pe_id - M`.
    sec_phases: Vec<Cell<SecPhase>>,
    /// Tuples routed to each SecPE (by the mappers) and not yet processed.
    /// The drain protocol exits a SecPE only when this reaches zero, which
    /// is the exact form of "all the tuples in the channels whose upstream
    /// is the data routing logic are consumed" (§IV-B).
    sec_inflight: Vec<Cell<u64>>,
    /// Request flag for the merger to fold SecPE partials.
    merge_request: Cell<bool>,
    /// Set by the merger once the fold completed.
    merge_done: Cell<bool>,
    /// Completed reschedules.
    reschedules: Cell<u64>,
}

impl Control {
    /// Creates the control block for `x_sec` SecPEs, with routing enabled.
    pub fn new(x_sec: u32) -> Rc<Self> {
        Rc::new(Control {
            route_to_sec: Cell::new(true),
            feed_profiler: Cell::new(false),
            generation: Cell::new(0),
            sec_phases: (0..x_sec).map(|_| Cell::new(SecPhase::Running)).collect(),
            sec_inflight: (0..x_sec).map(|_| Cell::new(0)).collect(),
            merge_request: Cell::new(false),
            merge_done: Cell::new(false),
            reschedules: Cell::new(0),
        })
    }

    /// Number of SecPEs.
    pub fn x_sec(&self) -> u32 {
        self.sec_phases.len() as u32
    }

    /// Whether mappers may redirect tuples to SecPEs.
    pub fn route_to_sec(&self) -> bool {
        self.route_to_sec.get()
    }

    /// Enables/disables SecPE routing.
    pub fn set_route_to_sec(&self, on: bool) {
        self.route_to_sec.set(on);
    }

    /// Whether mappers should feed PriPE ids to the profiler.
    pub fn feed_profiler(&self) -> bool {
        self.feed_profiler.get()
    }

    /// Turns the profiler feed on or off.
    pub fn set_feed_profiler(&self, on: bool) {
        self.feed_profiler.set(on);
    }

    /// Current mapper-table generation.
    pub fn generation(&self) -> u64 {
        self.generation.get()
    }

    /// Starts a new generation (mappers reset to identity on observing it).
    pub fn bump_generation(&self) {
        self.generation.set(self.generation.get() + 1);
    }

    /// Phase of SecPE `sec_index` (0-based, *not* the PE id).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_phase(&self, sec_index: usize) -> SecPhase {
        self.sec_phases[sec_index].get()
    }

    /// Sets the phase of SecPE `sec_index`.
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn set_sec_phase(&self, sec_index: usize, phase: SecPhase) {
        self.sec_phases[sec_index].set(phase);
    }

    /// Moves every running SecPE to [`SecPhase::Draining`].
    pub fn drain_all_secs(&self) {
        for c in &self.sec_phases {
            if c.get() == SecPhase::Running {
                c.set(SecPhase::Draining);
            }
        }
    }

    /// Re-enqueues all SecPEs ([`SecPhase::Running`]).
    pub fn restart_all_secs(&self) {
        for c in &self.sec_phases {
            c.set(SecPhase::Running);
        }
    }

    /// `true` when every SecPE has exited (vacuously true with X = 0).
    pub fn all_secs_exited(&self) -> bool {
        self.sec_phases.iter().all(|c| c.get() == SecPhase::Exited)
    }

    /// Records a tuple routed towards SecPE `sec_index` (mapper side).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_inflight_inc(&self, sec_index: usize) {
        let c = &self.sec_inflight[sec_index];
        c.set(c.get() + 1);
    }

    /// Records a tuple consumed by SecPE `sec_index` (PE side).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range or the count would go negative.
    pub fn sec_inflight_dec(&self, sec_index: usize) {
        let c = &self.sec_inflight[sec_index];
        assert!(c.get() > 0, "in-flight underflow for SecPE {sec_index}");
        c.set(c.get() - 1);
    }

    /// Tuples currently in flight towards SecPE `sec_index`.
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_inflight(&self, sec_index: usize) -> u64 {
        self.sec_inflight[sec_index].get()
    }

    /// Asks the merger to fold SecPE partials into PriPE buffers.
    pub fn request_merge(&self) {
        self.merge_done.set(false);
        self.merge_request.set(true);
    }

    /// Consumed by the merger: returns `true` exactly once per request.
    pub fn take_merge_request(&self) -> bool {
        let req = self.merge_request.get();
        if req {
            self.merge_request.set(false);
        }
        req
    }

    /// Marks the requested merge as complete.
    pub fn set_merge_done(&self) {
        self.merge_done.set(true);
    }

    /// `true` once the last requested merge completed.
    pub fn merge_done(&self) -> bool {
        self.merge_done.get()
    }

    /// Number of completed reschedules.
    pub fn reschedules(&self) -> u64 {
        self.reschedules.get()
    }

    /// Counts one completed reschedule.
    pub fn count_reschedule(&self) {
        self.reschedules.set(self.reschedules.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec_phase_lifecycle() {
        let c = Control::new(3);
        assert!(!c.all_secs_exited());
        c.drain_all_secs();
        for i in 0..3 {
            assert_eq!(c.sec_phase(i), SecPhase::Draining);
            c.set_sec_phase(i, SecPhase::Exited);
        }
        assert!(c.all_secs_exited());
        c.restart_all_secs();
        assert_eq!(c.sec_phase(0), SecPhase::Running);
    }

    #[test]
    fn zero_secpes_are_vacuously_exited() {
        let c = Control::new(0);
        assert!(c.all_secs_exited());
    }

    #[test]
    fn merge_request_is_consumed_once() {
        let c = Control::new(1);
        c.request_merge();
        assert!(c.take_merge_request());
        assert!(!c.take_merge_request());
        assert!(!c.merge_done());
        c.set_merge_done();
        assert!(c.merge_done());
    }

    #[test]
    fn generation_bumps() {
        let c = Control::new(1);
        assert_eq!(c.generation(), 0);
        c.bump_generation();
        c.bump_generation();
        assert_eq!(c.generation(), 2);
    }
}
