//! Shared control state wiring the profiler, mappers, SecPEs and merger.
//!
//! In the paper these are side-band signals between kernels ("the runtime
//! profiler ... informs SecPEs and mappers and exits itself", §IV-B). We
//! model them as a control block living in the engine's **state arena**:
//! every participating kernel holds the same `Copy` [`ControlId`] handle and
//! resolves it through the `&mut SimContext` its `step` receives. All
//! mutations happen inside `step` calls of the owning kernels, so the
//! protocol stays cycle-accurate and deterministic — and because the arena
//! is engine-owned plain data, reading a flag is a field load, not an
//! atomic, and the whole engine stays `Send` for free.

use hls_sim::StateId;

use crate::phase::PhasePlan;

/// Handle to a pipeline's [`Control`] block in the engine's state arena.
pub type ControlId = StateId<Control>;

/// Lifecycle of a SecPE kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecPhase {
    /// Enqueued and processing tuples.
    Running,
    /// Told to exit: consume remaining channel items, then exit
    /// ("The SecPEs exit the execution after all the tuples in the channels
    /// whose upstream is the data routing logic are consumed", §IV-B).
    Draining,
    /// Exited; waiting for the host to enqueue it again.
    Exited,
}

/// Control block (one per pipeline), allocated in the state arena via
/// [`Engine::state`](hls_sim::Engine::state).
#[derive(Debug, Clone)]
pub struct Control {
    /// When `false`, mappers route every tuple to its original PriPE —
    /// "the mappers will prevent the tuples from being routed to SecPEs".
    route_to_sec: bool,
    /// When `true`, mappers feed original PriPE ids to the profiler.
    feed_profiler: bool,
    /// Bumped on every reschedule; mappers reset their tables when they
    /// observe a generation change.
    generation: u64,
    /// Per-SecPE phase, indexed by `sec_index = pe_id - M`.
    sec_phases: Vec<SecPhase>,
    /// Tuples routed to each SecPE (by the mappers) and not yet processed.
    /// The drain protocol exits a SecPE only when this reaches zero, which
    /// is the exact form of "all the tuples in the channels whose upstream
    /// is the data routing logic are consumed" (§IV-B).
    sec_inflight: Vec<u64>,
    /// Request flag for the merger to fold SecPE partials.
    merge_request: bool,
    /// Set by the merger once the fold completed.
    merge_done: bool,
    /// Completed reschedules.
    reschedules: u64,
    /// The compiled execution plan of the current phase, applied at every
    /// reschedule boundary (see [`PhasePlan`]).
    phase_plan: PhasePlan,
    /// Phase sequence stamped onto the next applied plan.
    next_phase: u64,
}

impl Control {
    /// Creates the control block for `x_sec` SecPEs, with routing enabled.
    pub fn new(x_sec: u32) -> Self {
        Control {
            route_to_sec: true,
            feed_profiler: false,
            generation: 0,
            sec_phases: vec![SecPhase::Running; x_sec as usize],
            sec_inflight: vec![0; x_sec as usize],
            merge_request: false,
            merge_done: false,
            reschedules: 0,
            phase_plan: PhasePlan::default(),
            next_phase: 0,
        }
    }

    /// Number of SecPEs.
    pub fn x_sec(&self) -> u32 {
        self.sec_phases.len() as u32
    }

    /// Whether mappers may redirect tuples to SecPEs.
    pub fn route_to_sec(&self) -> bool {
        self.route_to_sec
    }

    /// Enables/disables SecPE routing.
    pub fn set_route_to_sec(&mut self, on: bool) {
        self.route_to_sec = on;
    }

    /// Whether mappers should feed PriPE ids to the profiler.
    pub fn feed_profiler(&self) -> bool {
        self.feed_profiler
    }

    /// Turns the profiler feed on or off.
    pub fn set_feed_profiler(&mut self, on: bool) {
        self.feed_profiler = on;
    }

    /// Current mapper-table generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Starts a new generation (mappers reset to identity on observing it).
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Phase of SecPE `sec_index` (0-based, *not* the PE id).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_phase(&self, sec_index: usize) -> SecPhase {
        self.sec_phases[sec_index]
    }

    /// Sets the phase of SecPE `sec_index`.
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn set_sec_phase(&mut self, sec_index: usize, phase: SecPhase) {
        self.sec_phases[sec_index] = phase;
    }

    /// Moves every running SecPE to [`SecPhase::Draining`].
    pub fn drain_all_secs(&mut self) {
        for p in &mut self.sec_phases {
            if *p == SecPhase::Running {
                *p = SecPhase::Draining;
            }
        }
    }

    /// Re-enqueues all SecPEs ([`SecPhase::Running`]).
    pub fn restart_all_secs(&mut self) {
        self.sec_phases.fill(SecPhase::Running);
    }

    /// `true` when every SecPE has exited (vacuously true with X = 0).
    pub fn all_secs_exited(&self) -> bool {
        self.sec_phases.iter().all(|&p| p == SecPhase::Exited)
    }

    /// Records a tuple routed towards SecPE `sec_index` (mapper side).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_inflight_inc(&mut self, sec_index: usize) {
        self.sec_inflight[sec_index] += 1;
    }

    /// Records a tuple consumed by SecPE `sec_index` (PE side).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range or the count would go negative.
    pub fn sec_inflight_dec(&mut self, sec_index: usize) {
        let count = &mut self.sec_inflight[sec_index];
        assert!(*count > 0, "in-flight underflow for SecPE {sec_index}");
        *count -= 1;
    }

    /// Tuples currently in flight towards SecPE `sec_index`.
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_inflight(&self, sec_index: usize) -> u64 {
        self.sec_inflight[sec_index]
    }

    /// Asks the merger to fold SecPE partials into PriPE buffers.
    pub fn request_merge(&mut self) {
        self.merge_done = false;
        self.merge_request = true;
    }

    /// Consumed by the merger: returns `true` exactly once per request.
    pub fn take_merge_request(&mut self) -> bool {
        std::mem::take(&mut self.merge_request)
    }

    /// Marks the requested merge as complete.
    pub fn set_merge_done(&mut self) {
        self.merge_done = true;
    }

    /// `true` once the last requested merge completed.
    pub fn merge_done(&self) -> bool {
        self.merge_done
    }

    /// The compiled execution plan of the current phase.
    pub fn phase_plan(&self) -> &PhasePlan {
        &self.phase_plan
    }

    /// Installs `plan` as the new phase, stamping it with the next phase
    /// sequence number (0 for the initial build-time plan). Called at
    /// every reschedule boundary: pipeline assembly, plan distribution,
    /// drain completion.
    pub fn apply_phase_plan(&mut self, mut plan: PhasePlan) {
        plan.set_phase(self.next_phase);
        self.next_phase += 1;
        self.phase_plan = plan;
    }

    /// Number of completed reschedules.
    pub fn reschedules(&self) -> u64 {
        self.reschedules
    }

    /// Counts one completed reschedule.
    pub fn count_reschedule(&mut self) {
        self.reschedules += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec_phase_lifecycle() {
        let mut c = Control::new(3);
        assert!(!c.all_secs_exited());
        c.drain_all_secs();
        for i in 0..3 {
            assert_eq!(c.sec_phase(i), SecPhase::Draining);
            c.set_sec_phase(i, SecPhase::Exited);
        }
        assert!(c.all_secs_exited());
        c.restart_all_secs();
        assert_eq!(c.sec_phase(0), SecPhase::Running);
    }

    #[test]
    fn drain_does_not_resurrect_exited_secs() {
        let mut c = Control::new(2);
        c.set_sec_phase(0, SecPhase::Exited);
        c.drain_all_secs();
        assert_eq!(c.sec_phase(0), SecPhase::Exited);
        assert_eq!(c.sec_phase(1), SecPhase::Draining);
    }

    #[test]
    fn zero_secpes_are_vacuously_exited() {
        let c = Control::new(0);
        assert!(c.all_secs_exited());
    }

    #[test]
    fn merge_request_is_consumed_once() {
        let mut c = Control::new(1);
        c.request_merge();
        assert!(c.take_merge_request());
        assert!(!c.take_merge_request());
        assert!(!c.merge_done());
        c.set_merge_done();
        assert!(c.merge_done());
    }

    #[test]
    fn phase_plans_stamp_sequential_phases() {
        let mut c = Control::new(2);
        assert_eq!(c.phase_plan().phase(), 0);
        assert_eq!(c.phase_plan().pe_count(), 0, "default plan is empty");
        c.apply_phase_plan(PhasePlan::pri_only(4, 2));
        assert_eq!(c.phase_plan().phase(), 0);
        assert_eq!(c.phase_plan().active_pes(), 4);
        c.apply_phase_plan(PhasePlan::pri_only(4, 2));
        assert_eq!(c.phase_plan().phase(), 1);
    }

    #[test]
    fn generation_bumps() {
        let mut c = Control::new(1);
        assert_eq!(c.generation(), 0);
        c.bump_generation();
        c.bump_generation();
        assert_eq!(c.generation(), 2);
    }

    #[test]
    fn control_in_arena_is_send() {
        fn assert_send<T: Send>(_t: &T) {}
        let mut engine = hls_sim::Engine::new();
        let id = engine.state(Control::new(2));
        assert_send(&engine);
        assert_eq!(engine.context().state(id).x_sec(), 2);
    }
}
