//! Shared control state wiring the profiler, mappers, SecPEs and merger.
//!
//! In the paper these are side-band signals between kernels ("the runtime
//! profiler ... informs SecPEs and mappers and exits itself", §IV-B). We
//! model them as a shared control block every kernel holds an `Arc` to; all
//! mutations happen inside `step` calls of the owning kernels, so the
//! protocol stays cycle-accurate and deterministic. The block uses relaxed
//! atomics purely so the whole engine is `Send` — each simulation remains
//! single-threaded.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Lifecycle of a SecPE kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecPhase {
    /// Enqueued and processing tuples.
    Running,
    /// Told to exit: consume remaining channel items, then exit
    /// ("The SecPEs exit the execution after all the tuples in the channels
    /// whose upstream is the data routing logic are consumed", §IV-B).
    Draining,
    /// Exited; waiting for the host to enqueue it again.
    Exited,
}

impl SecPhase {
    fn encode(self) -> u8 {
        match self {
            SecPhase::Running => 0,
            SecPhase::Draining => 1,
            SecPhase::Exited => 2,
        }
    }

    fn decode(v: u8) -> Self {
        match v {
            0 => SecPhase::Running,
            1 => SecPhase::Draining,
            2 => SecPhase::Exited,
            _ => unreachable!("invalid SecPhase encoding {v}"),
        }
    }
}

/// Shared control block (one per pipeline).
#[derive(Debug)]
pub struct Control {
    /// When `false`, mappers route every tuple to its original PriPE —
    /// "the mappers will prevent the tuples from being routed to SecPEs".
    route_to_sec: AtomicBool,
    /// When `true`, mappers feed original PriPE ids to the profiler.
    feed_profiler: AtomicBool,
    /// Bumped on every reschedule; mappers reset their tables when they
    /// observe a generation change.
    generation: AtomicU64,
    /// Per-SecPE phase, indexed by `sec_index = pe_id - M`.
    sec_phases: Vec<AtomicU8>,
    /// Tuples routed to each SecPE (by the mappers) and not yet processed.
    /// The drain protocol exits a SecPE only when this reaches zero, which
    /// is the exact form of "all the tuples in the channels whose upstream
    /// is the data routing logic are consumed" (§IV-B).
    sec_inflight: Vec<AtomicU64>,
    /// Request flag for the merger to fold SecPE partials.
    merge_request: AtomicBool,
    /// Set by the merger once the fold completed.
    merge_done: AtomicBool,
    /// Completed reschedules.
    reschedules: AtomicU64,
}

impl Control {
    /// Creates the control block for `x_sec` SecPEs, with routing enabled.
    pub fn new(x_sec: u32) -> Arc<Self> {
        Arc::new(Control {
            route_to_sec: AtomicBool::new(true),
            feed_profiler: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            sec_phases: (0..x_sec)
                .map(|_| AtomicU8::new(SecPhase::Running.encode()))
                .collect(),
            sec_inflight: (0..x_sec).map(|_| AtomicU64::new(0)).collect(),
            merge_request: AtomicBool::new(false),
            merge_done: AtomicBool::new(false),
            reschedules: AtomicU64::new(0),
        })
    }

    /// Number of SecPEs.
    pub fn x_sec(&self) -> u32 {
        self.sec_phases.len() as u32
    }

    /// Whether mappers may redirect tuples to SecPEs.
    pub fn route_to_sec(&self) -> bool {
        self.route_to_sec.load(Ordering::Relaxed)
    }

    /// Enables/disables SecPE routing.
    pub fn set_route_to_sec(&self, on: bool) {
        self.route_to_sec.store(on, Ordering::Relaxed);
    }

    /// Whether mappers should feed PriPE ids to the profiler.
    pub fn feed_profiler(&self) -> bool {
        self.feed_profiler.load(Ordering::Relaxed)
    }

    /// Turns the profiler feed on or off.
    pub fn set_feed_profiler(&self, on: bool) {
        self.feed_profiler.store(on, Ordering::Relaxed);
    }

    /// Current mapper-table generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Starts a new generation (mappers reset to identity on observing it).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Phase of SecPE `sec_index` (0-based, *not* the PE id).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_phase(&self, sec_index: usize) -> SecPhase {
        SecPhase::decode(self.sec_phases[sec_index].load(Ordering::Relaxed))
    }

    /// Sets the phase of SecPE `sec_index`.
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn set_sec_phase(&self, sec_index: usize, phase: SecPhase) {
        self.sec_phases[sec_index].store(phase.encode(), Ordering::Relaxed);
    }

    /// Moves every running SecPE to [`SecPhase::Draining`].
    pub fn drain_all_secs(&self) {
        for c in &self.sec_phases {
            let _ = c.compare_exchange(
                SecPhase::Running.encode(),
                SecPhase::Draining.encode(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Re-enqueues all SecPEs ([`SecPhase::Running`]).
    pub fn restart_all_secs(&self) {
        for c in &self.sec_phases {
            c.store(SecPhase::Running.encode(), Ordering::Relaxed);
        }
    }

    /// `true` when every SecPE has exited (vacuously true with X = 0).
    pub fn all_secs_exited(&self) -> bool {
        self.sec_phases
            .iter()
            .all(|c| c.load(Ordering::Relaxed) == SecPhase::Exited.encode())
    }

    /// Records a tuple routed towards SecPE `sec_index` (mapper side).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_inflight_inc(&self, sec_index: usize) {
        self.sec_inflight[sec_index].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a tuple consumed by SecPE `sec_index` (PE side).
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range or the count would go negative.
    pub fn sec_inflight_dec(&self, sec_index: usize) {
        let prev = self.sec_inflight[sec_index].fetch_sub(1, Ordering::Relaxed);
        assert!(prev > 0, "in-flight underflow for SecPE {sec_index}");
    }

    /// Tuples currently in flight towards SecPE `sec_index`.
    ///
    /// # Panics
    ///
    /// Panics if `sec_index` is out of range.
    pub fn sec_inflight(&self, sec_index: usize) -> u64 {
        self.sec_inflight[sec_index].load(Ordering::Relaxed)
    }

    /// Asks the merger to fold SecPE partials into PriPE buffers.
    pub fn request_merge(&self) {
        self.merge_done.store(false, Ordering::Relaxed);
        self.merge_request.store(true, Ordering::Relaxed);
    }

    /// Consumed by the merger: returns `true` exactly once per request.
    pub fn take_merge_request(&self) -> bool {
        self.merge_request.swap(false, Ordering::Relaxed)
    }

    /// Marks the requested merge as complete.
    pub fn set_merge_done(&self) {
        self.merge_done.store(true, Ordering::Relaxed);
    }

    /// `true` once the last requested merge completed.
    pub fn merge_done(&self) -> bool {
        self.merge_done.load(Ordering::Relaxed)
    }

    /// Number of completed reschedules.
    pub fn reschedules(&self) -> u64 {
        self.reschedules.load(Ordering::Relaxed)
    }

    /// Counts one completed reschedule.
    pub fn count_reschedule(&self) {
        self.reschedules.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec_phase_lifecycle() {
        let c = Control::new(3);
        assert!(!c.all_secs_exited());
        c.drain_all_secs();
        for i in 0..3 {
            assert_eq!(c.sec_phase(i), SecPhase::Draining);
            c.set_sec_phase(i, SecPhase::Exited);
        }
        assert!(c.all_secs_exited());
        c.restart_all_secs();
        assert_eq!(c.sec_phase(0), SecPhase::Running);
    }

    #[test]
    fn drain_does_not_resurrect_exited_secs() {
        let c = Control::new(2);
        c.set_sec_phase(0, SecPhase::Exited);
        c.drain_all_secs();
        assert_eq!(c.sec_phase(0), SecPhase::Exited);
        assert_eq!(c.sec_phase(1), SecPhase::Draining);
    }

    #[test]
    fn zero_secpes_are_vacuously_exited() {
        let c = Control::new(0);
        assert!(c.all_secs_exited());
    }

    #[test]
    fn merge_request_is_consumed_once() {
        let c = Control::new(1);
        c.request_merge();
        assert!(c.take_merge_request());
        assert!(!c.take_merge_request());
        assert!(!c.merge_done());
        c.set_merge_done();
        assert!(c.merge_done());
    }

    #[test]
    fn generation_bumps() {
        let c = Control::new(1);
        assert_eq!(c.generation(), 0);
        c.bump_generation();
        c.bump_generation();
        assert_eq!(c.generation(), 2);
    }

    #[test]
    fn control_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>(_t: &T) {}
        assert_send_sync(&*Control::new(2));
    }
}
