//! Pipeline assembly: builds and runs the full Fig. 3 architecture.

use std::cell::RefCell;
use std::rc::Rc;

use hls_sim::{Channel, Counter, Engine, MemoryModel, SliceSource, StreamSource};

use crate::app::{DittoApp, Routed};
use crate::config::ArchConfig;
use crate::control::Control;
use crate::mapper::MapperKernel;
use crate::mask::MaskTable;
use crate::merger::MergerKernel;
use crate::pe::{PeRole, PrePeKernel, ProcPeKernel};
use crate::profiler::{ProfilerKernel, ProfilerParams};
use crate::reader::MemoryReaderKernel;
use crate::report::ExecutionReport;
use crate::routing::{CombinerKernel, DecoderFilterKernel, WideWord};
use crate::{PeId, SchedulingPlan, Tuple};

/// Result of a pipeline run: the application output plus measurements.
#[derive(Debug)]
pub struct RunOutcome<O> {
    /// The application's finalized output (e.g. the global histogram).
    pub output: O,
    /// Cycle counts, throughput and workload statistics.
    pub report: ExecutionReport,
}

/// Builder/runner for the skew-oblivious data routing architecture.
///
/// See the [crate-level documentation](crate) for the module diagram. The
/// two entry points are [`run_dataset`](Self::run_dataset) (offline: stream
/// a dataset from "global memory", drain, merge, finalize) and
/// [`run_stream_for`](Self::run_stream_for) (online: run a rate-limited
/// source for a fixed number of cycles — the Fig. 9 scenario).
pub struct SkewObliviousPipeline;

struct BuiltPipeline<A: DittoApp> {
    engine: Engine,
    app: Rc<A>,
    states: Vec<Rc<RefCell<A::State>>>,
    per_pe_counters: Vec<Counter>,
    processed: Counter,
    plan: Rc<RefCell<SchedulingPlan>>,
    control: Rc<Control>,
    plans_generated: Counter,
    label: String,
}

impl SkewObliviousPipeline {
    /// Runs `app` over an in-memory dataset streamed through the default
    /// memory interface (64-byte wide, the paper's platform), draining the
    /// pipeline completely, then merging and finalizing.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to drain within an internal cycle
    /// budget proportional to the dataset size — which would indicate a
    /// deadlock bug, not a data property.
    pub fn run_dataset<A: DittoApp + 'static>(
        app: A,
        data: Vec<Tuple>,
        config: &ArchConfig,
    ) -> RunOutcome<A::Output> {
        let tuples = data.len() as u64;
        // Worst case is every tuple serialised through one PE at ii_pri
        // cycles each, plus generous pipeline/profiling slack.
        let budget = tuples * (u64::from(app.ii_pri()) + 2) + 500_000;
        let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
        Self::run_source(app, Box::new(source), config, budget, true)
    }

    /// Runs `app` over an arbitrary source for exactly `cycles` cycles
    /// (online processing: the source typically outlives the run), then
    /// merges and finalizes whatever has been processed.
    pub fn run_stream_for<A: DittoApp + 'static>(
        app: A,
        source: Box<dyn StreamSource<Tuple>>,
        config: &ArchConfig,
        cycles: u64,
    ) -> RunOutcome<A::Output> {
        Self::run_source(app, source, config, cycles, false)
    }

    /// Shared driver. With `drain = true` the run ends at quiescence (or
    /// panics at the cycle budget); with `drain = false` it runs exactly
    /// `cycles` cycles.
    pub fn run_source<A: DittoApp + 'static>(
        app: A,
        source: Box<dyn StreamSource<Tuple>>,
        config: &ArchConfig,
        cycles: u64,
        drain: bool,
    ) -> RunOutcome<A::Output> {
        let mut built = Self::build(app, source, config);
        let completed = if drain {
            let rep = built.engine.run_until_quiescent(cycles);
            assert!(
                rep.completed,
                "pipeline failed to drain within {cycles} cycles — deadlock?"
            );
            true
        } else {
            built.engine.run_cycles(cycles);
            true
        };
        let total_cycles = built.engine.cycle();

        // Tear down the engine so the shared state handles become unique.
        drop(built.engine);

        // Final merge (the offline flow's single merger pass) + finalize.
        let app = built.app;
        let plan = built.plan.borrow().clone();
        for &(sec, pri) in plan.pairs() {
            let sec_state = built.states[sec as usize]
                .replace(app.new_state(config.pe_entries));
            app.merge(&mut built.states[pri as usize].borrow_mut(), &sec_state);
        }
        let pri_states: Vec<A::State> = built
            .states
            .drain(..)
            .take(config.m_pri as usize)
            .map(|rc| {
                Rc::try_unwrap(rc)
                    .unwrap_or_else(|_| unreachable!("engine dropped, state unaliased"))
                    .into_inner()
            })
            .collect();
        let output = app.finalize(pri_states);

        let report = ExecutionReport {
            label: built.label,
            cycles: total_cycles,
            tuples: built.processed.get(),
            reschedules: built.control.reschedules(),
            plans_generated: built.plans_generated.get(),
            per_pe_processed: built.per_pe_counters.iter().map(Counter::get).collect(),
            completed,
        };
        RunOutcome { output, report }
    }

    /// Assembles all kernels and channels for one run.
    fn build<A: DittoApp + 'static>(
        app: A,
        source: Box<dyn StreamSource<Tuple>>,
        config: &ArchConfig,
    ) -> BuiltPipeline<A> {
        let app = Rc::new(app);
        let n = config.n_pre as usize;
        let pes = config.destination_pes() as usize;
        let m = config.m_pri;
        let control = Control::new(config.x_sec);
        let processed = Counter::new();
        let issued = Counter::new();
        let plan = Rc::new(RefCell::new(SchedulingPlan::empty()));
        let mask = Rc::new(MaskTable::new(config.n_pre));

        let lane_in: Vec<Channel<Tuple>> =
            (0..n).map(|i| Channel::new(&format!("lane{i}"), config.lane_queue_depth)).collect();
        let pre_out: Vec<Channel<Routed<A::Value>>> =
            (0..n).map(|i| Channel::new(&format!("pre{i}"), config.lane_queue_depth)).collect();
        let map_out: Vec<Channel<Routed<A::Value>>> =
            (0..n).map(|i| Channel::new(&format!("map{i}"), config.lane_queue_depth)).collect();
        let word_ch: Vec<Channel<WideWord<A::Value>>> =
            (0..pes).map(|j| Channel::new(&format!("word{j}"), config.word_queue_depth)).collect();
        let pe_in: Vec<Channel<A::Value>> =
            (0..pes).map(|j| Channel::new(&format!("pein{j}"), config.pe_queue_depth)).collect();
        let plan_ch: Vec<Channel<(PeId, PeId)>> = (0..n)
            .map(|i| Channel::new(&format!("plan{i}"), config.x_sec as usize + 1))
            .collect();
        let feed_ch: Vec<Channel<PeId>> =
            (0..n).map(|i| Channel::new(&format!("feed{i}"), 4)).collect();

        let states: Vec<Rc<RefCell<A::State>>> =
            (0..pes).map(|_| Rc::new(RefCell::new(app.new_state(config.pe_entries)))).collect();
        let per_pe_counters: Vec<Counter> = (0..pes).map(|_| Counter::new()).collect();

        let mut engine = Engine::new();
        engine.add_kernel(MemoryReaderKernel::new(
            source,
            lane_in.iter().map(Channel::sender).collect(),
            issued,
        ));
        for i in 0..n {
            engine.add_kernel(PrePeKernel::new(
                i,
                Rc::clone(&app),
                m,
                lane_in[i].receiver(),
                pre_out[i].sender(),
            ));
        }
        for i in 0..n {
            engine.add_kernel(MapperKernel::new(
                i,
                m,
                config.x_sec,
                Rc::clone(&control),
                plan_ch[i].receiver(),
                pre_out[i].receiver(),
                map_out[i].sender(),
                feed_ch[i].sender(),
            ));
        }
        engine.add_kernel(CombinerKernel::new(
            map_out.iter().map(Channel::receiver).collect(),
            word_ch.iter().map(Channel::sender).collect(),
        ));
        for (j, (word, pein)) in word_ch.iter().zip(&pe_in).enumerate() {
            engine.add_kernel(DecoderFilterKernel::new(
                j as PeId,
                Rc::clone(&mask),
                word.receiver(),
                pein.sender(),
            ));
        }
        for (j, (pein, state)) in pe_in.iter().zip(&states).enumerate() {
            let role = if (j as u32) < m {
                PeRole::Primary
            } else {
                PeRole::Secondary(j - m as usize)
            };
            engine.add_kernel(ProcPeKernel::new(
                j as PeId,
                role,
                Rc::clone(&app),
                pein.receiver(),
                Rc::clone(state),
                per_pe_counters[j].clone(),
                processed.clone(),
                Rc::clone(&control),
            ));
        }

        let plans_generated = if config.x_sec > 0 {
            let profiler = ProfilerKernel::new(
                ProfilerParams {
                    m_pri: m,
                    x_sec: config.x_sec,
                    profile_cycles: config.profile_cycles,
                    monitor_window: config.monitor_window,
                    reschedule_threshold: config.reschedule_threshold,
                    requeue_overhead_cycles: config.requeue_overhead_cycles,
                    auto_disable_after: config.auto_disable_after,
                },
                feed_ch.iter().map(Channel::receiver).collect(),
                plan_ch.iter().map(Channel::sender).collect(),
                processed.clone(),
                Rc::clone(&plan),
                Rc::clone(&control),
            );
            let counter = profiler.plans_generated();
            engine.add_kernel(profiler);
            engine.add_kernel(MergerKernel::new(
                Rc::clone(&app),
                states.clone(),
                m,
                config.pe_entries,
                Rc::clone(&plan),
                Rc::clone(&control),
            ));
            counter
        } else {
            Counter::new()
        };

        BuiltPipeline {
            engine,
            app,
            states,
            per_pe_counters,
            processed,
            plan,
            control,
            plans_generated,
            label: config.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{CountPerKey, ModHistogram};
    use datagen::{UniformGenerator, ZipfGenerator};

    #[test]
    fn uniform_dataset_processes_everything() {
        let data = UniformGenerator::new(1 << 16, 1).take_vec(10_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let out = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), data, &cfg);
        assert_eq!(out.output.iter().sum::<u64>(), 10_000);
        assert_eq!(out.report.tuples, 10_000);
        assert!(out.report.completed);
        // Near-peak throughput: 4 lanes, II=2, 8 PEs -> ~4 tuples/cycle.
        assert!(out.report.tuples_per_cycle() > 2.0, "{}", out.report.tuples_per_cycle());
    }

    #[test]
    fn histogram_matches_reference() {
        let data = ZipfGenerator::new(1.2, 1 << 10, 3).take_vec(8_000);
        let bins = 64u64;
        let m = 8u32;
        let mut expect = vec![0u64; bins as usize];
        for t in &data {
            expect[(t.key % bins) as usize] += 1;
        }
        let cfg = ArchConfig::new(4, m, 3).with_pe_entries((bins / u64::from(m)) as usize);
        let out = SkewObliviousPipeline::run_dataset(ModHistogram::new(bins), data, &cfg);
        assert_eq!(out.output, expect, "pipeline histogram must equal reference");
    }

    #[test]
    fn skew_collapses_throughput_without_secpes() {
        let uniform = UniformGenerator::new(1 << 20, 5).take_vec(8_000);
        let skewed = ZipfGenerator::new(3.0, 1 << 20, 5).take_vec(8_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let u = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), uniform, &cfg);
        let s = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), skewed, &cfg);
        let ratio = u.report.tuples_per_cycle() / s.report.tuples_per_cycle();
        // The paper observes ~M× slowdown (all tuples to one PE, II = 2).
        assert!(ratio > 4.0, "slowdown only {ratio:.2}x");
    }

    #[test]
    fn secpes_restore_throughput_under_extreme_skew() {
        let skewed = ZipfGenerator::new(3.0, 1 << 20, 5).take_vec(8_000);
        let base_cfg = ArchConfig::new(4, 8, 0);
        let full_cfg = ArchConfig::new(4, 8, 7);
        let base =
            SkewObliviousPipeline::run_dataset(CountPerKey::new(8), skewed.clone(), &base_cfg);
        let full = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), skewed, &full_cfg);
        let speedup = full.report.tuples_per_cycle() / base.report.tuples_per_cycle();
        assert!(speedup > 3.0, "speedup only {speedup:.2}x");
        assert_eq!(full.report.tuples, 8_000, "no tuples lost through SecPEs");
        assert_eq!(full.output.iter().sum::<u64>(), 8_000, "merge preserved counts");
        assert!(full.report.plans_generated >= 1);
    }

    #[test]
    fn per_pe_workload_reflects_skew() {
        let skewed = ZipfGenerator::new(2.5, 1 << 16, 9).take_vec(6_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let out = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), skewed, &cfg);
        assert!(out.report.imbalance(8) > 3.0, "imbalance {}", out.report.imbalance(8));
    }

    #[test]
    fn online_run_with_rescheduling_counts_reschedules() {
        use datagen::EvolvingZipfStream;
        // Hot key rotates every 4000 cycles; reschedule overhead is small so
        // the profiler can keep up and must re-plan at least once.
        let stream = EvolvingZipfStream::new(3.0, 1 << 16, 11, 4_000, 4.0, None);
        let cfg = ArchConfig::new(4, 8, 7)
            .with_reschedule(0.5, 200)
            .with_profile_cycles(64)
            .with_monitor_window(256);
        let out = SkewObliviousPipeline::run_stream_for(
            CountPerKey::new(8),
            Box::new(stream),
            &cfg,
            40_000,
        );
        assert!(out.report.tuples > 0);
        assert!(
            out.report.reschedules >= 1,
            "expected at least one reschedule, got {}",
            out.report.reschedules
        );
        assert_eq!(out.output.iter().sum::<u64>(), out.report.tuples);
    }
}
