//! Pipeline assembly: builds and runs the full Fig. 3 architecture.

use std::sync::Arc;

use hls_sim::{ChannelStats, CounterId, Engine, MemoryModel, SliceSource, StateId, StreamSource};

use crate::app::DittoApp;
use crate::config::ArchConfig;
use crate::control::{Control, ControlId};
use crate::mapper::MapperKernel;
use crate::mask::MaskTable;
use crate::merger::MergerKernel;
use crate::pe::{PeRole, PrePeKernel, ProcPeKernel};
use crate::phase::PhasePlan;
use crate::profiler::{ProfilerKernel, ProfilerParams};
use crate::reader::MemoryReaderKernel;
use crate::report::{ChannelTotals, ExecutionReport, StatSnapshot};
use crate::routing::{CombinerKernel, DecoderFilterKernel, WideWord, MAX_DEST_PES};
use crate::{PeId, SchedulingPlan, Tuple};

/// Result of a pipeline run: the application output plus measurements.
#[derive(Debug)]
pub struct RunOutcome<O> {
    /// The application's finalized output (e.g. the global histogram).
    pub output: O,
    /// Cycle counts, throughput and workload statistics.
    pub report: ExecutionReport,
    /// Per-channel statistics at end of run, in creation order (lanes,
    /// PrePE outputs, mapper outputs, wide-word datapaths, PE inputs, plan
    /// and profiler-feed channels).
    pub channels: Vec<ChannelStats>,
}

/// Builder/runner for the skew-oblivious data routing architecture.
///
/// See the [crate-level documentation](crate) for the module diagram. The
/// two entry points are [`run_dataset`](Self::run_dataset) (offline: stream
/// a dataset from "global memory", drain, merge, finalize) and
/// [`run_stream_for`](Self::run_stream_for) (online: run a rate-limited
/// source for a fixed number of cycles — the Fig. 9 scenario). Both are thin
/// run-to-completion wrappers around [`PersistentPipeline`], which serving
/// layers drive incrementally instead.
///
/// Runs are `Send` end to end — the engine, every kernel and all shared
/// state cross thread boundaries — so scenario sweeps (one run per
/// app × skew × configuration point) parallelise with plain scoped threads.
pub struct SkewObliviousPipeline;

/// A fully assembled pipeline that can be driven incrementally.
///
/// This is the long-lived form of the architecture: an engine plus the
/// arena handles (`M + X` PE buffer registers, the scheduling plan, the
/// control block and the processed-tuple counters) that a serving layer
/// needs to keep one simulated FPGA alive across many requests. Everything
/// behind those handles lives in the engine's state arena — the pipeline
/// holds only `Copy` ids and resolves them on demand, so keeping a
/// pipeline alive costs nothing and moving it across threads is a plain
/// move. One `ditto-serve` shard owns exactly one `PersistentPipeline` and
/// steps it between batch admissions; the offline entry points build one,
/// run it to completion and tear it down in a single call.
///
/// The lifecycle is: [`new`](Self::new) → any number of
/// [`step_cycles`](Self::step_cycles) / [`snapshot`](Self::snapshot) calls →
/// [`drain`](Self::drain) once the source is exhausted → one of the
/// consuming finishers ([`finish`](Self::finish) or
/// [`finish_states`](Self::finish_states)).
pub struct PersistentPipeline<A: DittoApp> {
    engine: Engine,
    app: Arc<A>,
    states: Vec<StateId<A::State>>,
    per_pe_counters: Vec<CounterId>,
    processed: CounterId,
    plan: StateId<SchedulingPlan>,
    control: ControlId,
    plans_generated: CounterId,
    label: String,
    m_pri: u32,
    pe_entries: usize,
    /// `false` once a bounded drain gave up — reported, not asserted, so
    /// callers can attribute the failure themselves.
    drained_ok: bool,
}

/// Resolves the effective steady-state fast-forward setting: the
/// `DITTO_FAST_FORWARD` environment variable (`1`/`true` to force on, `0`
/// to force off; read once per process) overrides the configuration flag.
/// The escape hatch lets CI re-run the cycle-equivalence goldens with
/// fast-forward enabled without touching every construction site.
fn fast_forward_enabled(config: &ArchConfig) -> bool {
    static OVERRIDE: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    let forced = OVERRIDE.get_or_init(|| match std::env::var("DITTO_FAST_FORWARD") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some(true),
        Ok(v) if v == "0" => Some(false),
        _ => None,
    });
    forced.unwrap_or(config.steady_state_fast_forward)
}

impl SkewObliviousPipeline {
    /// Runs `app` over an in-memory dataset streamed through the default
    /// memory interface (64-byte wide, the paper's platform), draining the
    /// pipeline completely, then merging and finalizing.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to drain within an internal cycle
    /// budget proportional to the dataset size — which would indicate a
    /// deadlock bug, not a data property.
    pub fn run_dataset<A: DittoApp + 'static>(
        app: A,
        data: Vec<Tuple>,
        config: &ArchConfig,
    ) -> RunOutcome<A::Output> {
        let tuples = data.len() as u64;
        // Worst case is every tuple serialised through one PE at ii_pri
        // cycles each, plus generous pipeline/profiling slack.
        let budget = tuples * (u64::from(app.ii_pri()) + 2) + 500_000;
        let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
        Self::run_source(app, Box::new(source), config, budget, true)
    }

    /// Runs `app` over an arbitrary source for exactly `cycles` cycles
    /// (online processing: the source typically outlives the run), then
    /// merges and finalizes whatever has been processed.
    pub fn run_stream_for<A: DittoApp + 'static>(
        app: A,
        source: Box<dyn StreamSource<Tuple>>,
        config: &ArchConfig,
        cycles: u64,
    ) -> RunOutcome<A::Output> {
        Self::run_source(app, source, config, cycles, false)
    }

    /// Shared driver. With `drain = true` the run ends at quiescence (or
    /// panics at the cycle budget); with `drain = false` it runs exactly
    /// `cycles` cycles.
    pub fn run_source<A: DittoApp + 'static>(
        app: A,
        source: Box<dyn StreamSource<Tuple>>,
        config: &ArchConfig,
        cycles: u64,
        drain: bool,
    ) -> RunOutcome<A::Output> {
        let mut built = PersistentPipeline::new(app, source, config);
        if drain {
            built.expect_drained(cycles);
        } else {
            built.step_cycles(cycles);
        }
        built.finish()
    }
}

impl<A: DittoApp + 'static> PersistentPipeline<A> {
    /// Assembles all kernels and channels for one pipeline instance fed by
    /// `source`.
    ///
    /// # Panics
    ///
    /// Panics if `config.destination_pes()` exceeds the wide word's
    /// destination-mask range.
    pub fn new(app: A, source: Box<dyn StreamSource<Tuple>>, config: &ArchConfig) -> Self {
        let app = Arc::new(app);
        let n = config.n_pre as usize;
        let pes = config.destination_pes() as usize;
        assert!(
            pes <= MAX_DEST_PES,
            "M + X = {pes} exceeds the wide word's {MAX_DEST_PES}-destination mask range"
        );
        let m = config.m_pri;
        let mask = Arc::new(MaskTable::new(config.n_pre));

        let mut engine = Engine::new();
        let control = engine.state(Control::new(config.x_sec));
        let processed = engine.counter();
        let issued = engine.counter();
        let plan = engine.state(SchedulingPlan::empty());
        let lane_in: Vec<_> = (0..n)
            .map(|i| engine.channel::<Tuple>(&format!("lane{i}"), config.lane_queue_depth))
            .collect();
        let pre_out: Vec<_> = (0..n)
            .map(|i| {
                engine
                    .channel::<crate::Routed<A::Value>>(&format!("pre{i}"), config.lane_queue_depth)
            })
            .collect();
        let map_out: Vec<_> = (0..n)
            .map(|i| {
                engine
                    .channel::<crate::Routed<A::Value>>(&format!("map{i}"), config.lane_queue_depth)
            })
            .collect();
        // One broadcast group stands in for the M+X wide-word datapath
        // channels: stored once, per-datapath cursors and statistics. The
        // relevance mask is the word's destination-PE bitmask, so words
        // carrying nothing for a parked datapath are auto-advanced inside
        // the broadcast core without waking the decoder — under skew the
        // cold datapaths never step.
        let (word_tx, word_rx) = if config.cold_tap_auto_advance {
            engine.broadcast_channel_with_relevance::<WideWord<A::Value>>(
                "word",
                pes,
                config.word_queue_depth,
                |word| word.dest_taps(),
            )
        } else {
            engine.broadcast_channel::<WideWord<A::Value>>("word", pes, config.word_queue_depth)
        };
        let pe_in: Vec<_> = (0..pes)
            .map(|j| engine.channel::<A::Value>(&format!("pein{j}"), config.pe_queue_depth))
            .collect();
        let plan_ch: Vec<_> = (0..n)
            .map(|i| engine.channel::<(PeId, PeId)>(&format!("plan{i}"), config.x_sec as usize + 1))
            .collect();
        let feed_ch: Vec<_> = (0..n)
            .map(|i| engine.channel::<PeId>(&format!("feed{i}"), 4))
            .collect();

        let states: Vec<StateId<A::State>> = (0..pes)
            .map(|_| engine.state(app.new_state(config.pe_entries)))
            .collect();
        let per_pe_counters: Vec<CounterId> = (0..pes).map(|_| engine.counter()).collect();

        engine.add_kernel(MemoryReaderKernel::new(
            source,
            lane_in.iter().map(|&(tx, _)| tx).collect(),
            issued,
        ));
        for i in 0..n {
            engine.add_kernel(PrePeKernel::new(
                i,
                Arc::clone(&app),
                m,
                lane_in[i].1,
                pre_out[i].0,
            ));
        }
        for i in 0..n {
            engine.add_kernel(MapperKernel::new(
                i,
                m,
                config.x_sec,
                control,
                plan_ch[i].1,
                pre_out[i].1,
                map_out[i].0,
                feed_ch[i].0,
            ));
        }
        engine.add_kernel(CombinerKernel::new(
            map_out.iter().map(|&(_, rx)| rx).collect(),
            word_tx,
        ));
        let mut decoder_kernel_ids = Vec::new();
        for (j, &word) in word_rx.iter().enumerate() {
            decoder_kernel_ids.push(engine.add_kernel(DecoderFilterKernel::new(
                j as PeId,
                config.n_pre,
                Arc::clone(&mask),
                word,
                pe_in[j].0,
            )));
        }
        let mut pe_kernel_ids = Vec::new();
        let mut sec_kernel_ids = Vec::new();
        for (j, &state) in states.iter().enumerate() {
            let role = if (j as u32) < m {
                PeRole::Primary
            } else {
                PeRole::Secondary(j - m as usize)
            };
            let kernel_id = engine.add_kernel(ProcPeKernel::new(
                j as PeId,
                role,
                Arc::clone(&app),
                pe_in[j].1,
                state,
                per_pe_counters[j],
                processed,
                control,
            ));
            pe_kernel_ids.push(kernel_id);
            if (j as u32) >= m {
                sec_kernel_ids.push(kernel_id);
            }
        }

        let plans_generated = if config.x_sec > 0 {
            // The profiler and merger are registered next, in this order.
            let merger_kernel_id = engine.kernel_count() as u32 + 1;
            let profiler = ProfilerKernel::new(
                &mut engine,
                ProfilerParams {
                    m_pri: m,
                    x_sec: config.x_sec,
                    profile_cycles: config.profile_cycles,
                    monitor_window: config.monitor_window,
                    reschedule_threshold: config.reschedule_threshold,
                    requeue_overhead_cycles: config.requeue_overhead_cycles,
                    auto_disable_after: config.auto_disable_after,
                },
                feed_ch.iter().map(|&(_, rx)| rx).collect(),
                plan_ch.iter().map(|&(tx, _)| tx).collect(),
                processed,
                plan,
                control,
            )
            .with_protocol_wakes(sec_kernel_ids, Some(merger_kernel_id))
            .with_datapath_kernels(decoder_kernel_ids.clone(), pe_kernel_ids.clone());
            let counter = profiler.plans_generated();
            engine.add_kernel(profiler);
            let actual_merger_id = engine.add_kernel(MergerKernel::new(
                Arc::clone(&app),
                states.clone(),
                m,
                config.pe_entries,
                plan,
                control,
            ));
            assert_eq!(
                actual_merger_id, merger_kernel_id,
                "merger wake target must match its registration index"
            );
            counter
        } else {
            engine.counter()
        };

        engine.set_fast_forward(fast_forward_enabled(config));

        // Initial phase (boundary zero): route to PriPEs only; every
        // SecPE datapath is cold until the first scheduling plan lands.
        let initial = PhasePlan::pri_only(m, config.x_sec);
        let parked = initial
            .cold_taps()
            .into_iter()
            .flat_map(|pe| [decoder_kernel_ids[pe as usize], pe_kernel_ids[pe as usize]])
            .collect();
        engine
            .context_mut()
            .state_mut(control)
            .apply_phase_plan(initial.with_parked_kernels(parked));

        PersistentPipeline {
            engine,
            app,
            states,
            per_pe_counters,
            processed,
            plan,
            control,
            plans_generated,
            label: config.label(),
            m_pri: m,
            pe_entries: config.pe_entries,
            drained_ok: true,
        }
    }

    /// Prefixes the report label (e.g. with a shard name) so failures in
    /// multi-pipeline deployments stay attributable.
    pub fn with_label_prefix(mut self, prefix: &str) -> Self {
        self.label = format!("{prefix}:{}", self.label);
        self
    }

    /// The configuration label, including any prefix set via
    /// [`with_label_prefix`](Self::with_label_prefix).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The application this pipeline runs (e.g. for initiation-interval
    /// based cycle budgeting by a serving layer).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.engine.cycle()
    }

    /// Read access to the underlying engine (active-set inspection,
    /// channel statistics mid-run).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access for the counts-tracing profiling pass (see
    /// [`profile_counts`](crate::counts::profile_counts)).
    pub(crate) fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The compiled execution plan of the pipeline's current phase (see
    /// [`PhasePlan`]), as applied at the last reschedule boundary.
    pub fn phase_plan(&self) -> PhasePlan {
        self.engine
            .context()
            .state(self.control)
            .phase_plan()
            .clone()
    }

    /// Tuples processed by destination PEs so far.
    pub fn processed(&self) -> u64 {
        self.engine.context().counter(self.processed)
    }

    /// Steps the engine `n` cycles unconditionally.
    pub fn step_cycles(&mut self, n: u64) {
        self.engine.run_cycles(n);
    }

    /// Runs until the pipeline quiesces (source exhausted and every kernel
    /// idle) or `max_cycles` elapse in this call; returns `true` on
    /// quiescence. A `false` result is also latched into the final report's
    /// `completed` flag.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        let ok = self.engine.run_until_quiescent(max_cycles).completed;
        self.drained_ok = self.drained_ok && ok;
        ok
    }

    /// [`drain`](Self::drain), panicking with an attributable message on
    /// cycle-budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to quiesce within `max_cycles` — the
    /// message names the pipeline label and the processed-tuple count so a
    /// failing shard in a sharded run can be identified.
    pub fn expect_drained(&mut self, max_cycles: u64) {
        assert!(
            self.drain(max_cycles),
            "pipeline '{}' failed to drain within {} cycles ({} tuples processed) — deadlock?",
            self.label,
            max_cycles,
            self.processed(),
        );
    }

    /// Mid-run statistics: cheap (no channel scan), safe to call between
    /// steps at any time.
    pub fn snapshot(&self) -> StatSnapshot {
        let ctx = self.engine.context();
        let phase_plan = ctx.state(self.control).phase_plan();
        StatSnapshot {
            cycles: self.engine.cycle(),
            tuples: ctx.counter(self.processed),
            reschedules: ctx.state(self.control).reschedules(),
            plans_generated: ctx.counter(self.plans_generated),
            per_pe_processed: self
                .per_pe_counters
                .iter()
                .map(|&c| ctx.counter(c))
                .collect(),
            kernel_steps: self.engine.steps_executed(),
            phase: phase_plan.phase(),
            phase_active_pes: phase_plan.active_pes(),
        }
    }

    /// Tears the pipeline down, folds SecPE partials into the PriPE buffers
    /// (the offline flow's final merger pass) and returns the `M` PriPE
    /// states plus measurements — the raw parts a cross-shard merge path
    /// folds before a single cluster-level `finalize`.
    ///
    /// The PE buffers are taken straight out of the state arena; nothing is
    /// cloned and no teardown ordering is involved.
    pub fn finish_states(mut self) -> (Vec<A::State>, ExecutionReport, Vec<ChannelStats>) {
        let total_cycles = self.engine.cycle();
        let kernel_steps = self.engine.steps_executed();
        let channels = self.engine.channel_stats();

        let ctx = self.engine.context_mut();
        let plan = ctx.state(self.plan).clone();
        crate::merger::fold_sec_states(ctx, &*self.app, &self.states, &plan, self.pe_entries);
        let pri_states: Vec<A::State> = self.states[..self.m_pri as usize]
            .iter()
            .map(|&id| ctx.take_state(id))
            .collect();

        let report = ExecutionReport {
            label: std::mem::take(&mut self.label),
            cycles: total_cycles,
            tuples: ctx.counter(self.processed),
            reschedules: ctx.state(self.control).reschedules(),
            plans_generated: ctx.counter(self.plans_generated),
            per_pe_processed: self
                .per_pe_counters
                .iter()
                .map(|&c| ctx.counter(c))
                .collect(),
            completed: self.drained_ok,
            channel_totals: ChannelTotals::aggregate(&channels),
            kernel_steps,
        };
        (pri_states, report, channels)
    }

    /// Extracts the accumulated PE state backing every key-range slot this
    /// pipeline currently serves, leaving the engine live and serving from
    /// fresh `new_state` buffers — the state-handoff primitive.
    ///
    /// The handoff granularity is deliberately the pipeline's *whole*
    /// accumulated slice: `DittoApp` states are mergeable aggregates
    /// (histogram bins, sketch registers, fixed-point sums), not
    /// key-addressable tables, so a finer key-sliced split of one PriPE
    /// buffer does not exist in general — one histogram bin mixes
    /// contributions from many router slots. Whole-slice extraction is
    /// still exact at cluster level because `merge` is associative and
    /// commutative: it never matters *which* engine's buffers a tuple's
    /// contribution sits in, only that it sits in exactly one. Extraction
    /// moves every contribution this engine holds; installing the returned
    /// states elsewhere ([`install_slots`](Self::install_slots)) relocates
    /// the history without changing the merged total.
    ///
    /// SecPE partials are folded into the PriPE buffers first (the same
    /// merge pass [`finish_states`](Self::finish_states) runs), so exactly
    /// `M` states are returned and the SecPEs restart clean. Callers that
    /// need the extract to cover everything *admitted* (not just everything
    /// processed) must step the engine to its admission watermark first —
    /// tuples still in flight at extraction time land in the fresh buffers
    /// and merge exactly all the same.
    pub fn extract_slots(&mut self) -> Vec<A::State> {
        let ctx = self.engine.context_mut();
        let plan = ctx.state(self.plan).clone();
        crate::merger::fold_sec_states(ctx, &*self.app, &self.states, &plan, self.pe_entries);
        self.states[..self.m_pri as usize]
            .iter()
            .map(|&id| std::mem::replace(ctx.state_mut(id), self.app.new_state(self.pe_entries)))
            .collect()
    }

    /// Folds a previously extracted slice of `M` PriPE states into this
    /// pipeline's PriPE buffers through the application's own `merge` —
    /// the receiving half of a state handoff. The engine keeps running;
    /// index `j` merges into PriPE `j`, mirroring how a cross-shard merge
    /// treats a remote shard as a super-SecPE.
    ///
    /// # Panics
    ///
    /// Panics if `states` does not hold exactly `M` entries.
    pub fn install_slots(&mut self, states: Vec<A::State>) {
        assert_eq!(
            states.len(),
            self.m_pri as usize,
            "pipeline '{}' expects {} PriPE states, got {}",
            self.label,
            self.m_pri,
            states.len()
        );
        let ctx = self.engine.context_mut();
        for (&id, incoming) in self.states.iter().zip(&states) {
            self.app.merge(ctx.state_mut(id), incoming);
        }
    }

    /// Final merge + finalize: consumes the pipeline and produces the
    /// application output with measurements.
    pub fn finish(self) -> RunOutcome<A::Output> {
        let app = Arc::clone(&self.app);
        let (pri_states, report, channels) = self.finish_states();
        RunOutcome {
            output: app.finalize(pri_states),
            report,
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{CountPerKey, ModHistogram};
    use datagen::{UniformGenerator, ZipfGenerator};

    #[test]
    fn uniform_dataset_processes_everything() {
        let data = UniformGenerator::new(1 << 16, 1).take_vec(10_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let out = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), data, &cfg);
        assert_eq!(out.output.iter().sum::<u64>(), 10_000);
        assert_eq!(out.report.tuples, 10_000);
        assert!(out.report.completed);
        // Near-peak throughput: 4 lanes, II=2, 8 PEs -> ~4 tuples/cycle.
        assert!(
            out.report.tuples_per_cycle() > 2.0,
            "{}",
            out.report.tuples_per_cycle()
        );
    }

    #[test]
    fn histogram_matches_reference() {
        let data = ZipfGenerator::new(1.2, 1 << 10, 3).take_vec(8_000);
        let bins = 64u64;
        let m = 8u32;
        let mut expect = vec![0u64; bins as usize];
        for t in &data {
            expect[(t.key % bins) as usize] += 1;
        }
        let cfg = ArchConfig::new(4, m, 3).with_pe_entries((bins / u64::from(m)) as usize);
        let out = SkewObliviousPipeline::run_dataset(ModHistogram::new(bins), data, &cfg);
        assert_eq!(
            out.output, expect,
            "pipeline histogram must equal reference"
        );
    }

    #[test]
    fn skew_collapses_throughput_without_secpes() {
        let uniform = UniformGenerator::new(1 << 20, 5).take_vec(8_000);
        let skewed = ZipfGenerator::new(3.0, 1 << 20, 5).take_vec(8_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let u = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), uniform, &cfg);
        let s = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), skewed, &cfg);
        let ratio = u.report.tuples_per_cycle() / s.report.tuples_per_cycle();
        // The paper observes ~M× slowdown (all tuples to one PE, II = 2).
        assert!(ratio > 4.0, "slowdown only {ratio:.2}x");
    }

    #[test]
    fn secpes_restore_throughput_under_extreme_skew() {
        let skewed = ZipfGenerator::new(3.0, 1 << 20, 5).take_vec(8_000);
        let base_cfg = ArchConfig::new(4, 8, 0);
        let full_cfg = ArchConfig::new(4, 8, 7);
        let base =
            SkewObliviousPipeline::run_dataset(CountPerKey::new(8), skewed.clone(), &base_cfg);
        let full = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), skewed, &full_cfg);
        let speedup = full.report.tuples_per_cycle() / base.report.tuples_per_cycle();
        assert!(speedup > 3.0, "speedup only {speedup:.2}x");
        assert_eq!(full.report.tuples, 8_000, "no tuples lost through SecPEs");
        assert_eq!(
            full.output.iter().sum::<u64>(),
            8_000,
            "merge preserved counts"
        );
        assert!(full.report.plans_generated >= 1);
    }

    #[test]
    fn per_pe_workload_reflects_skew() {
        let skewed = ZipfGenerator::new(2.5, 1 << 16, 9).take_vec(6_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let out = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), skewed, &cfg);
        assert!(
            out.report.imbalance(8) > 3.0,
            "imbalance {}",
            out.report.imbalance(8)
        );
    }

    #[test]
    fn online_run_with_rescheduling_counts_reschedules() {
        use datagen::EvolvingZipfStream;
        // Hot key rotates every 4000 cycles; reschedule overhead is small so
        // the profiler can keep up and must re-plan at least once.
        let stream = EvolvingZipfStream::new(3.0, 1 << 16, 11, 4_000, 4.0, None);
        let cfg = ArchConfig::new(4, 8, 7)
            .with_reschedule(0.5, 200)
            .with_profile_cycles(64)
            .with_monitor_window(256);
        let out = SkewObliviousPipeline::run_stream_for(
            CountPerKey::new(8),
            Box::new(stream),
            &cfg,
            40_000,
        );
        assert!(out.report.tuples > 0);
        assert!(
            out.report.reschedules >= 1,
            "expected at least one reschedule, got {}",
            out.report.reschedules
        );
        assert_eq!(out.output.iter().sum::<u64>(), out.report.tuples);
    }

    #[test]
    fn channel_stats_are_reported() {
        let data = UniformGenerator::new(1 << 16, 2).take_vec(2_000);
        let cfg = ArchConfig::new(4, 8, 2);
        let out = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), data, &cfg);
        // 4 lanes + 4 pre + 4 map + 10 word taps + 10 pein + 4 plan + 4 feed.
        assert_eq!(out.channels.len(), 40);
        let lane0 = out.channels.iter().find(|s| s.name == "lane0").unwrap();
        assert_eq!(lane0.pushes, 500);
        assert!(out.report.channel_totals.pushes > 0);
        assert_eq!(
            out.report.channel_totals.pushes,
            out.channels.iter().map(|s| s.pushes).sum::<u64>()
        );
    }

    #[test]
    fn persistent_pipeline_steps_incrementally() {
        let data = UniformGenerator::new(1 << 16, 4).take_vec(4_000);
        let cfg = ArchConfig::new(4, 8, 2);
        let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
        let mut p = PersistentPipeline::new(CountPerKey::new(8), Box::new(source), &cfg)
            .with_label_prefix("shard0");
        assert_eq!(p.label(), "shard0:8P+2S");
        p.step_cycles(200);
        let early = p.snapshot();
        assert!(early.tuples < 4_000, "4k tuples can't finish in 200 cycles");
        assert_eq!(early.cycles, 200);
        p.expect_drained(100_000);
        let late = p.snapshot();
        assert_eq!(late.tuples, 4_000);
        assert!(late.cycles > early.cycles);
        let out = p.finish();
        assert_eq!(out.output.iter().sum::<u64>(), 4_000);
        assert!(out.report.completed);
        assert_eq!(out.report.label, "shard0:8P+2S");
    }

    #[test]
    fn finish_states_returns_post_merge_pri_states() {
        let data = ZipfGenerator::new(2.0, 1 << 12, 7).take_vec(5_000);
        let cfg = ArchConfig::new(4, 8, 7);
        let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
        let mut p = PersistentPipeline::new(CountPerKey::new(8), Box::new(source), &cfg);
        p.expect_drained(200_000);
        let (states, report, channels) = p.finish_states();
        assert_eq!(states.len(), 8, "exactly M PriPE states");
        assert_eq!(states.iter().sum::<u64>(), 5_000, "SecPE partials folded");
        assert_eq!(report.tuples, 5_000);
        assert!(!channels.is_empty());
    }

    #[test]
    fn extract_install_moves_state_between_pipelines() {
        // Two engines each drain half of a dataset; handing pipeline A's
        // slice to pipeline B must make B's finish equal the single-engine
        // run over the whole dataset, and leave A holding nothing.
        let data = ZipfGenerator::new(1.5, 1 << 12, 13).take_vec(6_000);
        let cfg = ArchConfig::new(4, 8, 7);
        let single = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), data.clone(), &cfg);

        let (half_a, half_b) = data.split_at(3_000);
        let build = |half: &[Tuple]| {
            let source = SliceSource::new(
                half.to_vec(),
                Tuple::PAPER_WIDTH_BYTES,
                MemoryModel::new(64, 16),
            );
            let mut p = PersistentPipeline::new(CountPerKey::new(8), Box::new(source), &cfg);
            p.expect_drained(200_000);
            p
        };
        let mut a = build(half_a);
        let mut b = build(half_b);
        let slice = a.extract_slots();
        assert_eq!(slice.len(), 8, "exactly M PriPE states extracted");
        assert_eq!(slice.iter().sum::<u64>(), 3_000, "SecPE partials folded in");
        b.install_slots(slice);
        assert_eq!(b.finish().output.iter().sum::<u64>(), 6_000);
        assert_eq!(
            a.finish().output.iter().sum::<u64>(),
            0,
            "extraction must leave the source empty"
        );
        assert_eq!(single.output.iter().sum::<u64>(), 6_000);
    }

    #[test]
    fn mid_run_extract_reinstall_is_identity() {
        // Extracting mid-run (tuples still in flight) and reinstalling into
        // the same engine must not change the final output: in-flight
        // tuples land in the fresh buffers and merge exactly.
        let data = ZipfGenerator::new(2.0, 1 << 12, 5).take_vec(5_000);
        let bins = 64u64;
        let cfg = ArchConfig::new(4, 8, 3).with_pe_entries(8);
        let reference =
            SkewObliviousPipeline::run_dataset(ModHistogram::new(bins), data.clone(), &cfg);
        let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
        let mut p = PersistentPipeline::new(ModHistogram::new(bins), Box::new(source), &cfg);
        p.step_cycles(400);
        assert!(p.processed() > 0, "mid-run point must have progress");
        let slice = p.extract_slots();
        p.install_slots(slice);
        p.expect_drained(200_000);
        assert_eq!(p.finish().output, reference.output);
    }

    #[test]
    #[should_panic(expected = "expects 8 PriPE states, got 3")]
    fn install_rejects_wrong_arity() {
        let cfg = ArchConfig::new(2, 8, 0);
        let source = SliceSource::new(
            Vec::new(),
            Tuple::PAPER_WIDTH_BYTES,
            MemoryModel::new(64, 16),
        );
        let mut p = PersistentPipeline::new(CountPerKey::new(8), Box::new(source), &cfg);
        p.install_slots(vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "pipeline 'stuck:8P' failed to drain within 10 cycles")]
    fn drain_panic_names_the_pipeline() {
        let data = UniformGenerator::new(1 << 16, 4).take_vec(1_000);
        let cfg = ArchConfig::new(4, 8, 0);
        let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
        let mut p = PersistentPipeline::new(CountPerKey::new(8), Box::new(source), &cfg)
            .with_label_prefix("stuck");
        // 10 cycles cannot drain 1000 tuples: the panic must carry the label.
        p.expect_drained(10);
    }
}
