//! Phase-compiled execution plans, observed end to end: under single-key
//! skew the compiled plan predicts the active set, the predicted-parked
//! kernels are genuinely asleep in steady state, and the cold datapath
//! taps keep consuming zero-mask words through the broadcast core's
//! auto-advance without their decoders ever stepping.

use datagen::Tuple;
use ditto_core::apps::CountPerKey;
use ditto_core::{ArchConfig, PersistentPipeline};
use hls_sim::{MemoryModel, SliceSource};

/// Single hot key: every tuple routes to one PriPE, the plan assigns all
/// SecPEs to it, and every other datapath is compiled cold.
#[test]
fn single_hot_key_compiles_and_parks_the_cold_datapaths() {
    let m = 8u32;
    let x = 3u32;
    let data = vec![Tuple::from_key(5); 40_000];
    let hot_pri = 5 % m; // CountPerKey routes key % M
    let cfg = ArchConfig::new(4, m, x)
        .with_pe_entries(64)
        .with_profile_cycles(64);
    let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
    let mut p = PersistentPipeline::new(CountPerKey::new(m), Box::new(source), &cfg);

    // Build-time phase: boundary zero, PriPEs only, SecPEs compiled cold.
    let initial = p.phase_plan();
    assert_eq!(initial.phase(), 0);
    assert_eq!(initial.active_pes(), m);
    assert_eq!(initial.cold_taps(), vec![8, 9, 10]);
    assert_eq!(
        initial.parked_kernels().len(),
        2 * x as usize,
        "decoder + PE kernel per cold SecPE datapath"
    );

    // Run past the profiling window into the plan's steady state.
    p.step_cycles(200);
    let snap = p.snapshot();
    assert!(snap.plans_generated >= 1, "plan landed");
    p.step_cycles(2_000);

    // The compiled phase: hot PriPE + its three SecPE helpers.
    let plan = p.phase_plan();
    assert_eq!(plan.phase(), 1, "one reschedule boundary after build");
    assert_eq!(plan.active_pes(), 1 + x, "hot PriPE and its helpers");
    assert!(plan.is_active(hot_pri));
    for sec in m..m + x {
        assert!(plan.is_active(sec), "scheduled SecPE {sec} is active");
    }
    assert_eq!(
        plan.cold_taps().len(),
        (m - 1) as usize,
        "every other PriPE datapath compiled cold"
    );
    assert_eq!(plan.parked_kernels().len(), 2 * (m - 1) as usize);

    let snap = p.snapshot();
    assert_eq!(snap.phase, 1);
    assert_eq!(snap.phase_active_pes, 1 + x);

    // Mid-stream (the source still has tuples), every predicted-parked
    // kernel is asleep and the engine's active set is a strict subset of
    // the population.
    assert!(snap.tuples < 40_000, "still mid-stream");
    let engine = p.engine();
    for &k in plan.parked_kernels() {
        assert!(
            !engine.kernel_awake(k),
            "predicted-parked kernel {k} is awake in steady state"
        );
    }
    assert!(
        engine.active_kernels() < engine.kernel_count(),
        "active set must be a strict subset under single-key skew"
    );

    // The cold taps keep consuming every broadcast word — cursor and pop
    // bookkeeping through the auto-advance — without their decoders ever
    // waking: pops on a cold tap track the hot tap's pops (within the
    // in-flight window) despite the kernels being asleep.
    let stats = engine.context().channel_stats();
    let tap = |pe: u32| {
        stats
            .iter()
            .find(|s| s.name == format!("word{pe}"))
            .unwrap_or_else(|| panic!("word{pe} stats"))
    };
    let hot = tap(hot_pri);
    let cold_pe = (hot_pri + 1) % m;
    let cold = tap(cold_pe);
    assert!(hot.pushes > 1_000, "words flowed ({})", hot.pushes);
    assert_eq!(cold.pushes, hot.pushes, "broadcast pushes are atomic");
    assert!(
        cold.pops + 2 >= cold.pushes,
        "cold tap auto-advanced through the word stream ({} of {})",
        cold.pops,
        cold.pushes
    );

    // Drain and finish: output unaffected by any of the scheduling.
    p.expect_drained(400_000);
    let out = p.finish();
    assert_eq!(out.output.iter().sum::<u64>(), 40_000);
    assert!(out.report.per_pe_processed[hot_pri as usize] > 0);
}

/// The drain boundary (every SecPE exited) compiles a pri-only phase, and
/// the next plan starts a fresh one — phases count reschedule boundaries.
#[test]
fn reschedule_boundaries_advance_the_phase() {
    use datagen::EvolvingZipfStream;
    let cfg = ArchConfig::new(4, 8, 7)
        .with_reschedule(0.5, 200)
        .with_profile_cycles(64)
        .with_monitor_window(256);
    let stream = EvolvingZipfStream::new(3.0, 1 << 16, 11, 4_000, 4.0, None);
    let mut p = PersistentPipeline::new(CountPerKey::new(8), Box::new(stream), &cfg);
    let mut max_phase = 0;
    for _ in 0..40 {
        p.step_cycles(1_000);
        max_phase = max_phase.max(p.snapshot().phase);
    }
    let snap = p.snapshot();
    assert!(snap.reschedules >= 1, "at least one reschedule completed");
    // Each reschedule crosses two boundaries (drain completion + next
    // plan), plus the initial plan's boundary.
    assert!(
        max_phase > 2 * snap.reschedules,
        "phase {} must count boundaries ({} reschedules)",
        max_phase,
        snap.reschedules
    );
}
