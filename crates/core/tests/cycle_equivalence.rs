//! Cycle-equivalence regression: the arena engine (typed channel arena,
//! idle-set scheduler, broadcast wide words) must reproduce the original
//! `Rc<RefCell>`-channel step-everyone engine *bit for bit* — same cycle
//! counts, same per-PE workloads, same per-channel statistics including
//! stall counts and occupancy high-water marks.
//!
//! The golden values below were captured by running these exact scenarios
//! on the seed engine (PR 1, commit that introduced the workspace
//! manifests) before the arena refactor. Any scheduling or channel-protocol
//! deviation shows up here as a hard mismatch.

use datagen::{EvolvingZipfStream, Tuple, ZipfGenerator};
use ditto_core::apps::{CountPerKey, ModHistogram};
use ditto_core::{ArchConfig, DittoApp, PersistentPipeline, SkewObliviousPipeline};
use hls_sim::{ChannelStats, MemoryModel, SliceSource};

fn channel<'a>(channels: &'a [ChannelStats], name: &str) -> &'a ChannelStats {
    channels
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("channel {name}"))
}

#[track_caller]
fn assert_channel(channels: &[ChannelStats], name: &str, golden: (u64, u64, u64, usize)) {
    let s = channel(channels, name);
    assert_eq!(
        (s.pushes, s.pops, s.full_stalls, s.max_occupancy),
        golden,
        "channel {name}: (pushes, pops, stalls, max_occupancy) diverged from seed semantics"
    );
}

/// Offline, moderately skewed, 3 SecPEs: exercises profiling, plan
/// distribution, SecPE routing and the end-of-run merge.
#[test]
fn offline_skewed_with_secpes_matches_seed() {
    let data = ZipfGenerator::new(1.5, 1 << 12, 7).take_vec(6_000);
    let cfg = ArchConfig::new(4, 8, 3).with_pe_entries(8);
    let out = SkewObliviousPipeline::run_dataset(ModHistogram::new(64), data, &cfg);

    assert_eq!(out.report.cycles, 2_114);
    assert_eq!(out.report.tuples, 6_000);
    assert_eq!(out.report.plans_generated, 1);
    assert_eq!(out.report.reschedules, 0);
    assert_eq!(
        out.report.per_pe_processed,
        vec![334, 290, 538, 238, 236, 862, 390, 1043, 706, 659, 704]
    );
    assert_eq!(out.output.iter().sum::<u64>(), 6_000);

    let t = out.report.channel_totals;
    assert_eq!(
        (t.pushes, t.pops, t.full_stalls, t.max_occupancy_sum),
        (41_328, 41_324, 784, 586)
    );

    assert_channel(&out.channels, "lane0", (1_500, 1_500, 196, 8));
    assert_channel(&out.channels, "word5", (1_500, 1_500, 0, 40));
    assert_channel(&out.channels, "word7", (1_500, 1_500, 0, 64));
    assert_channel(&out.channels, "pein7", (1_043, 1_043, 0, 166));
    assert_channel(&out.channels, "feed0", (204, 203, 0, 2));
}

/// The persistent (serving) API — step → snapshot → drain → `finish_states`
/// — must be observationally identical to the one-shot `run_dataset` path
/// over the same dataset: same completion cycle, same per-PE workloads and
/// channel statistics, same post-merge PriPE states, and mid-run snapshots
/// that are exact prefixes of the final counts. Pinned on the same scenario
/// as [`offline_skewed_with_secpes_matches_seed`] so the persistent path is
/// transitively pinned to the seed goldens too.
#[test]
fn persistent_pipeline_matches_run_dataset() {
    let data = ZipfGenerator::new(1.5, 1 << 12, 7).take_vec(6_000);
    let cfg = ArchConfig::new(4, 8, 3).with_pe_entries(8);
    let app = ModHistogram::new(64);

    let oneshot = SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &cfg);

    let source = SliceSource::new(data, Tuple::PAPER_WIDTH_BYTES, MemoryModel::new(64, 16));
    let mut p = PersistentPipeline::new(app.clone(), Box::new(source), &cfg)
        .with_label_prefix("persistent");
    let mut last_tuples = 0;
    for chunk in 0..4 {
        p.step_cycles(200);
        let snap = p.snapshot();
        assert_eq!(snap.cycles, 200 * (chunk + 1));
        assert!(snap.tuples >= last_tuples, "processed count is monotonic");
        assert_eq!(
            snap.per_pe_processed.iter().sum::<u64>(),
            snap.tuples,
            "per-PE counts always sum to the total"
        );
        last_tuples = snap.tuples;
    }
    assert!(last_tuples < 6_000, "6k tuples cannot finish in 800 cycles");
    p.expect_drained(100_000);
    let final_snap = p.snapshot();
    let (states, report, channels) = p.finish_states();

    // Snapshot at quiescence equals the final report's counters.
    assert_eq!(final_snap.cycles, report.cycles);
    assert_eq!(final_snap.tuples, report.tuples);
    assert_eq!(final_snap.per_pe_processed, report.per_pe_processed);

    // Bit-identical to the one-shot path (and therefore to the seed
    // goldens): completion cycle, workloads, channel statistics, output.
    assert_eq!(report.cycles, oneshot.report.cycles);
    assert_eq!(report.cycles, 2_114, "seed golden");
    assert_eq!(report.tuples, oneshot.report.tuples);
    assert_eq!(report.per_pe_processed, oneshot.report.per_pe_processed);
    assert_eq!(report.plans_generated, oneshot.report.plans_generated);
    assert_eq!(report.reschedules, oneshot.report.reschedules);
    assert_eq!(report.channel_totals, oneshot.report.channel_totals);
    assert!(report.completed);
    for (a, b) in channels.iter().zip(&oneshot.channels) {
        assert_eq!(
            (a.pushes, a.pops, a.full_stalls, a.max_occupancy),
            (b.pushes, b.pops, b.full_stalls, b.max_occupancy),
            "channel {} diverged between persistent and one-shot runs",
            a.name
        );
    }
    assert_eq!(states.len(), 8, "exactly M post-merge PriPE states");
    assert_eq!(
        app.finalize(states),
        oneshot.output,
        "post-merge PriPE states must finalize to the one-shot output"
    );
}

/// Offline, extreme skew, no SecPEs: the pure collapse path with heavy
/// backpressure (lane stalls, hot-PE queue at capacity).
#[test]
fn offline_extreme_skew_without_secpes_matches_seed() {
    let data = ZipfGenerator::new(3.0, 1 << 20, 5).take_vec(6_000);
    let cfg = ArchConfig::new(4, 8, 0);
    let out = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), data, &cfg);

    assert_eq!(out.report.cycles, 9_869);
    assert_eq!(out.report.tuples, 6_000);
    assert_eq!(out.report.plans_generated, 0);
    assert_eq!(
        out.report.per_pe_processed,
        vec![1, 77, 4921, 2, 28, 209, 757, 5]
    );
    assert_eq!(out.output.iter().sum::<u64>(), 6_000);

    let t = out.report.channel_totals;
    assert_eq!(
        (t.pushes, t.pops, t.full_stalls, t.max_occupancy_sum),
        (36_000, 36_000, 30_960, 703)
    );

    assert_channel(&out.channels, "lane0", (1_500, 1_500, 6_766, 8));
    assert_channel(&out.channels, "word2", (1_500, 1_500, 0, 64));
    assert_channel(&out.channels, "pein2", (4_921, 4_921, 3_896, 512));
}

/// The offline skewed golden, re-run with steady-state fast-forward
/// enabled: event-horizon stepping must reproduce the seed goldens bit for
/// bit — same completion cycle, workloads and per-channel statistics.
#[test]
fn offline_skewed_with_fast_forward_matches_seed() {
    let data = ZipfGenerator::new(1.5, 1 << 12, 7).take_vec(6_000);
    let cfg = ArchConfig::new(4, 8, 3)
        .with_pe_entries(8)
        .with_steady_state_fast_forward(true);
    let out = SkewObliviousPipeline::run_dataset(ModHistogram::new(64), data, &cfg);

    assert_eq!(out.report.cycles, 2_114);
    assert_eq!(out.report.tuples, 6_000);
    assert_eq!(out.report.plans_generated, 1);
    assert_eq!(
        out.report.per_pe_processed,
        vec![334, 290, 538, 238, 236, 862, 390, 1043, 706, 659, 704]
    );

    let t = out.report.channel_totals;
    assert_eq!(
        (t.pushes, t.pops, t.full_stalls, t.max_occupancy_sum),
        (41_328, 41_324, 784, 586)
    );

    assert_channel(&out.channels, "lane0", (1_500, 1_500, 196, 8));
    assert_channel(&out.channels, "word7", (1_500, 1_500, 0, 64));
    assert_channel(&out.channels, "pein7", (1_043, 1_043, 0, 166));
}

/// Online, evolving skew, 7 SecPEs with rescheduling: exercises the full
/// §IV-B protocol — drain, merge, requeue — eight times over.
#[test]
fn online_evolving_skew_reschedules_match_seed() {
    let stream = EvolvingZipfStream::new(3.0, 1 << 16, 11, 4_000, 4.0, None);
    let cfg = ArchConfig::new(4, 8, 7)
        .with_reschedule(0.5, 200)
        .with_profile_cycles(64)
        .with_monitor_window(256);
    let out =
        SkewObliviousPipeline::run_stream_for(CountPerKey::new(8), Box::new(stream), &cfg, 40_000);

    assert_eq!(out.report.cycles, 40_000);
    assert_eq!(out.report.tuples, 132_606);
    assert_eq!(out.report.plans_generated, 9);
    assert_eq!(out.report.reschedules, 8);
    assert_eq!(
        out.report.per_pe_processed,
        vec![
            8089, 1417, 5361, 5129, 3330, 2432, 5054, 3494, 14522, 14516, 14510, 14507, 13750,
            12745, 13750
        ]
    );
    assert_eq!(out.output.iter().sum::<u64>(), 132_606);

    let t = out.report.channel_totals;
    assert_eq!(
        (t.pushes, t.pops, t.full_stalls, t.max_occupancy_sum),
        (1_030_821, 1_030_433, 27_064, 3_220)
    );

    assert_channel(&out.channels, "lane0", (33_234, 33_227, 6_766, 8));
    assert_channel(&out.channels, "word0", (33_213, 33_212, 0, 64));
    assert_channel(&out.channels, "pein8", (14_523, 14_522, 0, 3));
    assert_channel(&out.channels, "plan0", (63, 63, 0, 1));
    assert_channel(&out.channels, "feed0", (211, 211, 0, 2));
}
