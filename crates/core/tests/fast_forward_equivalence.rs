//! Fast-forward equivalence: the steady-state fast-forward engine must be
//! *bit-identical* to cycle stepping — same completion cycles, same per-PE
//! workloads, same per-channel statistics including stall counts and
//! occupancy high-water marks — across randomized scenarios (deterministic
//! op-sequence synthesis, same idiom as `hls-sim`'s channel properties;
//! the offline build has no proptest).
//!
//! `kernel_steps` is deliberately NOT compared: skipping no-op cycles is
//! the whole point, so the step count is the one counter allowed to differ.

use datagen::{EvolvingZipfStream, Tuple, ZipfGenerator};
use ditto_core::apps::ModHistogram;
use ditto_core::{ArchConfig, PersistentPipeline, RunOutcome};
use hls_sim::{MemoryModel, PacedSource, SliceSource, StreamSource};

/// Deterministic 64-bit generator for scenario synthesis.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct ModeResult {
    outcome: RunOutcome<Vec<u64>>,
    ff_jumps: u64,
    ff_cycles_skipped: u64,
}

/// Drains one pipeline built from `make_source` with fast-forward on or
/// off, returning the outcome plus the fast-forward counters.
fn drain_mode(
    cfg: &ArchConfig,
    make_source: &dyn Fn() -> Box<dyn StreamSource<Tuple>>,
    fast_forward: bool,
) -> ModeResult {
    let cfg = cfg.clone().with_steady_state_fast_forward(fast_forward);
    let mut p = PersistentPipeline::new(ModHistogram::new(64), make_source(), &cfg);
    p.expect_drained(5_000_000);
    let ff_jumps = p.engine().ff_jumps();
    let ff_cycles_skipped = p.engine().ff_cycles_skipped();
    ModeResult {
        outcome: p.finish(),
        ff_jumps,
        ff_cycles_skipped,
    }
}

#[track_caller]
fn assert_bit_identical(base: &ModeResult, ff: &ModeResult, label: &str) {
    let (b, f) = (&base.outcome.report, &ff.outcome.report);
    assert_eq!(b.cycles, f.cycles, "{label}: completion cycle diverged");
    assert_eq!(b.tuples, f.tuples, "{label}: tuple count diverged");
    assert_eq!(
        b.per_pe_processed, f.per_pe_processed,
        "{label}: per-PE workloads diverged"
    );
    assert_eq!(
        b.plans_generated, f.plans_generated,
        "{label}: plans diverged"
    );
    assert_eq!(
        b.reschedules, f.reschedules,
        "{label}: reschedules diverged"
    );
    assert_eq!(
        b.channel_totals, f.channel_totals,
        "{label}: channel totals diverged"
    );
    assert_eq!(
        base.outcome.output, ff.outcome.output,
        "{label}: application output diverged"
    );
    for (a, c) in base.outcome.channels.iter().zip(&ff.outcome.channels) {
        assert_eq!(
            (a.pushes, a.pops, a.full_stalls, a.max_occupancy),
            (c.pushes, c.pops, c.full_stalls, c.max_occupancy),
            "{label}: channel {} diverged",
            a.name
        );
    }
}

/// Randomized offline scenarios: skew exponent, SecPE count, dataset size
/// and queue depths all vary; every one must be bit-identical between the
/// cycle-stepped and fast-forward engines.
#[test]
fn random_offline_scenarios_are_bit_identical() {
    let mut s = 0xd17704u64;
    for case in 0..10 {
        let zipf = 1.0 + (splitmix(&mut s) % 21) as f64 / 10.0; // 1.0..3.0
        let seed = splitmix(&mut s);
        let x_sec = (splitmix(&mut s) % 8) as u32; // 0..=7
        let tuples = 1_000 + (splitmix(&mut s) % 4_000) as usize;
        let pe_queue = 32 << (splitmix(&mut s) % 3); // 32, 64, 128
        let data = ZipfGenerator::new(zipf, 1 << 14, seed).take_vec(tuples);
        let cfg = ArchConfig::new(4, 8, x_sec)
            .with_pe_entries(8)
            .with_pe_queue_depth(pe_queue);
        let make = move || -> Box<dyn StreamSource<Tuple>> {
            Box::new(SliceSource::new(
                data.clone(),
                Tuple::PAPER_WIDTH_BYTES,
                MemoryModel::new(64, 16),
            ))
        };
        let base = drain_mode(&cfg, &make, false);
        let ff = drain_mode(&cfg, &make, true);
        let label = format!("case {case} (zipf {zipf}, X={x_sec}, n={tuples})");
        assert_bit_identical(&base, &ff, &label);
        assert_eq!(base.ff_cycles_skipped, 0, "{label}: baseline must step");
    }
}

/// Bursty (paced) sources leave the pipeline provably idle between bursts:
/// fast-forward must engage there — and still be bit-identical.
#[test]
fn paced_scenarios_fast_forward_and_stay_bit_identical() {
    let mut s = 0xbeefu64;
    for case in 0..4 {
        let zipf = 1.5 + (splitmix(&mut s) % 16) as f64 / 10.0;
        let seed = splitmix(&mut s);
        let burst = 16 + (splitmix(&mut s) % 49) as usize; // 16..=64
        let period = 512 + (splitmix(&mut s) % 1_024); // 512..1536
        let data = ZipfGenerator::new(zipf, 1 << 14, seed).take_vec(2_048);
        let cfg = ArchConfig::new(4, 8, 3).with_pe_entries(8);
        let make = move || -> Box<dyn StreamSource<Tuple>> {
            Box::new(PacedSource::new(data.clone(), burst, period, 16))
        };
        let base = drain_mode(&cfg, &make, false);
        let ff = drain_mode(&cfg, &make, true);
        let label = format!("paced case {case} (burst {burst}, period {period})");
        assert_bit_identical(&base, &ff, &label);
        assert!(
            ff.ff_cycles_skipped > base.outcome.report.cycles / 2,
            "{label}: fast-forward skipped only {} of {} cycles",
            ff.ff_cycles_skipped,
            base.outcome.report.cycles
        );
        assert!(ff.ff_jumps > 0, "{label}: no jumps taken");
    }
}

/// The online reschedule scenario (the full §IV-B protocol, eight times
/// over) must also be bit-identical: the detector refuses to jump across
/// reschedule-boundary phases, so the protocol timing is untouched.
#[test]
fn online_rescheduling_is_bit_identical() {
    let run = |fast_forward: bool| {
        let cfg = ArchConfig::new(4, 8, 7)
            .with_reschedule(0.5, 200)
            .with_profile_cycles(64)
            .with_monitor_window(256)
            .with_steady_state_fast_forward(fast_forward);
        let stream = EvolvingZipfStream::new(3.0, 1 << 16, 11, 4_000, 4.0, None);
        let mut p = PersistentPipeline::new(ModHistogram::new(64), Box::new(stream), &cfg);
        p.step_cycles(40_000);
        let ff_jumps = p.engine().ff_jumps();
        let ff_cycles_skipped = p.engine().ff_cycles_skipped();
        ModeResult {
            outcome: p.finish(),
            ff_jumps,
            ff_cycles_skipped,
        }
    };
    let base = run(false);
    let ff = run(true);
    assert_bit_identical(&base, &ff, "online reschedule");
    assert_eq!(base.outcome.report.reschedules, 8, "seed golden");
}
