//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The container this repository builds in has no network access, so the
//! real `criterion` crate cannot be pulled from crates.io. This shim
//! implements the API subset the `ditto-bench` benches use — benchmark
//! groups, `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock sampler: each benchmark runs `sample_size` timed iterations
//! after one warm-up and reports min/mean/max (plus elements/s when a
//! throughput is set).
//!
//! Environment knobs:
//!
//! * `BENCH_SAMPLES` — override every group's sample count (e.g. `3` for a
//!   quick smoke run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (plus one
    /// untimed warm-up iteration).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
}

fn run_one(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let sample_size = env_samples().unwrap_or(sample_size).max(1);
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("nonempty");
    let max = *b.samples.iter().max().expect("nonempty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{group}/{id}: mean {:.3} ms  min {:.3} ms  max {:.3} ms  ({} samples){rate}",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        b.samples.len(),
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &self.name,
            &id.id,
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.id,
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (prints nothing in the shim; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one("bench", &id.id, 10, None, &mut f);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 3);
        assert_eq!(count, 4, "three timed + one warm-up");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("alpha", 2.5).to_string(), "alpha/2.5");
        assert_eq!(BenchmarkId::from_parameter("histo").to_string(), "histo");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.sample_size(1)
            .bench_function(BenchmarkId::from_parameter("x"), |b| {
                b.iter(|| {});
                ran = true;
            });
        g.finish();
        assert!(ran);
    }
}
