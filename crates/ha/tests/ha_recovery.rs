//! The three HA goldens, end to end on real shard threads:
//!
//! * **(b) replication**: a follower replica's slice is bit-identical to a
//!   from-scratch replay of the leader's batch log, and two replays of the
//!   same log are bit-identical to each other.
//! * **(c) recovery**: a mid-run shard kill followed by promotion
//!   converges to the same final output as a single engine that never saw
//!   a failure — whether the state comes back from a replica or from log
//!   replay, and whether the kill is explicit or injected by the
//!   `DITTO_KILL_SHARD`-style fault hook.
//! * **crash during handoff**: the migration source dying mid-protocol
//!   (after the balancer decided, before the install) forfeits nothing —
//!   its replica still covers the full history.

use datagen::{Tuple, ZipfGenerator};
use ditto_apps::{HhdApp, HistoApp};
use ditto_core::{ArchConfig, DittoApp, SkewObliviousPipeline};
use ditto_ha::{HaCluster, RecoverySource};
use ditto_serve::{split_into_batches, BalancerConfig, ServeConfig, ShardFault};

const TUPLES: usize = 8_000;
const BATCH: usize = 1_000;
const SHARDS: usize = 3;

fn zipf3(seed: u64) -> Vec<Tuple> {
    ZipfGenerator::new(3.0, 1 << 16, seed).take_vec(TUPLES)
}

fn histo_config() -> (HistoApp, ServeConfig) {
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    (app, ServeConfig::new(SHARDS, arch))
}

fn single<A: DittoApp + 'static>(app: A, data: &[Tuple], arch: &ArchConfig) -> A::Output {
    SkewObliviousPipeline::run_dataset(app, data.to_vec(), arch).output
}

#[test]
fn follower_slice_equals_batch_log_replay_bit_for_bit() {
    let (app, config) = histo_config();
    let data = zipf3(91);
    let mut ha = HaCluster::new(app, &config, 2);
    for batch in split_into_batches(&data, BATCH) {
        ha.submit(batch);
    }
    ha.drain();
    for shard in 0..SHARDS {
        assert!(ha.log(shard).is_complete());
        let replayed = ha.replay_log(shard);
        let replayed_again = ha.replay_log(shard);
        assert_eq!(
            replayed, replayed_again,
            "two replays of shard {shard}'s log diverged — replay is not deterministic"
        );
        for replica in 0..2 {
            let follower = ha.follower_snapshot(shard, replica);
            assert_eq!(
                follower, replayed,
                "shard {shard} replica {replica} is not a bit-identical mirror"
            );
        }
    }
    // Consistency checks must not perturb the result.
    assert_eq!(ha.finish().output, {
        let (app, config) = histo_config();
        single(app, &data, &config.arch)
    });
}

#[test]
fn hhd_followers_mirror_their_leader() {
    // Same golden on the sketch-valued state (CMS cells + candidates).
    let app = HhdApp::new(4, 512, 300, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch);
    let data = zipf3(92);
    let mut ha = HaCluster::new(app, &config, 1);
    for batch in split_into_batches(&data, BATCH) {
        ha.submit(batch);
    }
    ha.drain();
    for shard in 0..SHARDS {
        assert_eq!(
            ha.follower_snapshot(shard, 0),
            ha.replay_log(shard),
            "HHD replica diverged from log replay on shard {shard}"
        );
    }
}

#[test]
fn kill_and_promotion_from_replica_converges_to_single_engine() {
    let (app, config) = histo_config();
    let data = zipf3(93);
    let mut ha = HaCluster::new(app.clone(), &config, 1);
    let batches = split_into_batches(&data, BATCH);
    let midpoint = batches.len() / 2;
    for (i, batch) in batches.into_iter().enumerate() {
        if i == midpoint {
            let failure = ha.kill_shard(1, "operator-injected mid-run kill");
            let promotion = ha.promote(&failure);
            assert_eq!(promotion.dead, 1);
            assert_eq!(promotion.source, RecoverySource::Replica);
            assert!(
                !promotion.moves.is_empty(),
                "the corpse's slots must re-home"
            );
        }
        ha.submit(batch);
    }
    ha.drain();
    assert_eq!(ha.promotions_total(), 1);
    let outcome = ha.finish();
    assert_eq!(
        outcome.output,
        single(app, &data, &config.arch),
        "failover changed the result"
    );
}

#[test]
fn kill_with_zero_replicas_recovers_through_log_replay() {
    let (app, config) = histo_config();
    let data = zipf3(94);
    let mut ha = HaCluster::new(app.clone(), &config, 0);
    let batches = split_into_batches(&data, BATCH);
    for (i, batch) in batches.into_iter().enumerate() {
        if i == 3 {
            let failure = ha.kill_shard(0, "kill with no replica standing by");
            let promotion = ha.promote(&failure);
            assert_eq!(promotion.source, RecoverySource::LogReplay);
        }
        ha.submit(batch);
    }
    ha.drain();
    let outcome = ha.finish();
    assert_eq!(outcome.output, single(app, &data, &config.arch));
}

#[test]
fn injected_fault_heals_transparently_inside_submit() {
    // The DITTO_KILL_SHARD code path: the fault hook panics the shard
    // thread mid-stream; the next submit notices the death and heals
    // without any caller involvement.
    let (app, mut config) = histo_config();
    config = config.with_fault(ShardFault {
        shard: 1,
        after_batches: 2,
    });
    let data = zipf3(95);
    let mut ha = HaCluster::new(app.clone(), &config, 1);
    for batch in split_into_batches(&data, BATCH) {
        ha.submit(batch);
    }
    ha.drain();
    ha.heal(); // in case the fault fired after the last submit
    let promotions = ha.take_promotions();
    assert_eq!(
        promotions.len(),
        1,
        "the fault must have fired exactly once"
    );
    assert!(promotions[0].failure.message.contains("DITTO_KILL_SHARD"));
    let outcome = ha.finish();
    assert_eq!(outcome.output, single(app, &data, &config.arch));
}

#[test]
fn source_crash_during_handoff_is_covered_by_its_replica() {
    // The handoff hazard: the source dies after the balancer committed to
    // migrating its slots but before its slice reached the target. The
    // extraction fails, the replicated handoff aborts, and the follower —
    // which still mirrors every tuple the leader ever accepted — covers
    // the promotion. Nothing is lost, nothing doubled.
    let (app, config) = histo_config();
    let data = zipf3(96);
    let mut ha = HaCluster::new(app.clone(), &config, 1);
    let batches = split_into_batches(&data, BATCH);
    let midpoint = batches.len() / 2;
    for (i, batch) in batches.into_iter().enumerate() {
        if i == midpoint {
            // Kill the would-be migration source, then run the balancing
            // round that wanted to move its slots: extract_shard fails
            // mid-protocol and heal() promotes from the replica instead.
            ha.kill_shard(0, "crashed between handoff pause and install");
            ha.rebalance();
            let promotions = ha.heal();
            assert_eq!(promotions.len(), 1);
            assert_eq!(promotions[0].dead, 0);
            assert_eq!(promotions[0].source, RecoverySource::Replica);
        }
        ha.submit(batch);
    }
    ha.drain();
    let outcome = ha.finish();
    assert_eq!(
        outcome.output,
        single(app, &data, &config.arch),
        "crash-during-handoff lost or doubled tuples"
    );
}

#[test]
fn replicated_rebalance_moves_state_and_keeps_logs_honest() {
    // A full replicated handoff driven by the balancer: hot traffic pinned
    // to shard 0 forces a migration; the source's slice moves to the
    // target and its followers; the source's log resets (its state is
    // fresh again) while the target's is marked incomplete (its state no
    // longer derives from its own log); and the total count is exact.
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone()).with_balancer(BalancerConfig {
        min_window_tuples: 64,
        ..BalancerConfig::default()
    });
    let mut ha = HaCluster::new(app.clone(), &config, 1);
    let hot_keys: Vec<u64> = (0u64..)
        .filter(|&k| ha.router().shard_of_key(k) == 0)
        .take(32)
        .collect();
    let mut all = Vec::new();
    let mut handoffs = Vec::new();
    for _ in 0..8 {
        let batch: Vec<Tuple> = hot_keys
            .iter()
            .cycle()
            .take(2_000)
            .map(|&k| Tuple::from_key(k))
            .collect();
        all.extend(batch.iter().copied());
        ha.submit(batch);
        ha.drain();
        ha.rebalance();
        handoffs.extend(ha.take_handoffs());
        if !handoffs.is_empty() {
            break;
        }
    }
    assert!(!handoffs.is_empty(), "hot shard never handed state off");
    let handoff = &handoffs[0];
    assert!(handoff.tuples_moved > 0, "the slice should carry history");
    assert!(
        ha.log(handoff.from).is_empty() && ha.log(handoff.from).is_complete(),
        "source log must reset to match its now-fresh state"
    );
    assert!(
        !ha.log(handoff.to).is_complete(),
        "target log must admit it no longer derives the state"
    );
    // After the handoff the target's replica still mirrors its leader.
    assert_eq!(
        ha.follower_snapshot(handoff.to, 0).len(),
        8,
        "replica slice has the M PriPE states"
    );
    let outcome = ha.finish();
    assert_eq!(
        outcome.output,
        single(app, &all, &arch),
        "replicated handoff lost or doubled tuples"
    );
}

#[test]
fn metrics_expose_the_ha_plane() {
    let (app, config) = histo_config();
    let data = zipf3(98);
    let mut ha = HaCluster::new(app, &config, 2);
    for batch in split_into_batches(&data, BATCH) {
        ha.submit(batch);
    }
    let failure = ha.kill_shard(2, "metrics probe kill");
    ha.promote(&failure);
    ha.drain();
    let snap = ha.metrics();
    let get = |name: &str| {
        snap.entries
            .iter()
            .find(|e| e.desc.name == name)
            .unwrap_or_else(|| panic!("missing metric {name}"))
    };
    assert_eq!(get("ditto_ha_replicas").value.scalar(), 2);
    assert_eq!(get("ditto_ha_promotions").value.scalar(), 1);
    let lag_entries = snap
        .entries
        .iter()
        .filter(|e| e.desc.name == "ditto_ha_replication_lag")
        .count();
    assert_eq!(lag_entries, SHARDS, "one lag gauge per shard");
}
