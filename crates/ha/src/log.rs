//! The per-shard batch log: the ordered record of every sub-batch a
//! leader shard accepted, and the deterministic replay that proves a
//! replica equals its leader.

use datagen::Tuple;
use ditto_core::DittoApp;
use ditto_serve::{BatchId, Cluster, ServeConfig};

/// An ordered log of the sub-batches one leader shard accepted.
///
/// Because the simulation engines are deterministic in their *state*
/// content — a PriPE buffer is a pure fold of the tuples admitted to it,
/// independent of wall-clock polling cadence — replaying this log through
/// a fresh single-shard cluster reproduces the leader's accumulated slice
/// bit for bit. That makes the log both the replication transport (every
/// appended entry was also mirrored to the followers) and the recovery
/// floor when no follower exists.
///
/// A log is *complete* while the leader's state is derivable from it
/// alone. Installing externally extracted state on the leader (the target
/// half of a handoff, or a promotion) breaks that derivation:
/// [`mark_incomplete`](Self::mark_incomplete) records the fact and
/// [`replay`](Self::replay) refuses rather than silently reconstructing a
/// subset of the state.
#[derive(Debug, Clone, Default)]
pub struct BatchLog {
    entries: Vec<(BatchId, Vec<Tuple>)>,
    incomplete: bool,
}

impl BatchLog {
    /// An empty, complete log.
    pub fn new() -> Self {
        BatchLog::default()
    }

    /// Appends one delivered sub-batch.
    pub fn append(&mut self, batch: BatchId, tuples: Vec<Tuple>) {
        self.entries.push((batch, tuples));
    }

    /// Number of logged sub-batches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no sub-batch is logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tuples covered by the log.
    pub fn tuples(&self) -> u64 {
        self.entries.iter().map(|(_, t)| t.len() as u64).sum()
    }

    /// `true` while the leader's state is a pure fold of this log.
    pub fn is_complete(&self) -> bool {
        !self.incomplete
    }

    /// Records that state not derived from this log was installed on the
    /// leader (handoff target, promotion inheritor): replay no longer
    /// reconstructs the leader.
    pub fn mark_incomplete(&mut self) {
        self.incomplete = true;
    }

    /// Clears the log and restores completeness — matching a leader whose
    /// accumulated slice was just extracted away (its state is literally
    /// fresh, which an empty log derives exactly).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.incomplete = false;
    }

    /// Deterministically replays the log through a fresh single-shard
    /// cluster — push one sub-batch, step to its watermark, repeat — and
    /// returns the resulting post-merge PriPE slice. No wall clock enters
    /// the procedure, so two replays of the same log are bit-identical,
    /// and both equal the leader's own slice at the moment the last entry
    /// was appended.
    ///
    /// # Panics
    ///
    /// Panics if the log was [marked incomplete](Self::mark_incomplete) —
    /// replaying it would reconstruct only part of the leader's state.
    pub fn replay<A: DittoApp + Clone + 'static>(
        &self,
        app: &A,
        config: &ServeConfig,
    ) -> Vec<A::State> {
        assert!(
            self.is_complete(),
            "batch log no longer derives its leader's state \
             (externally extracted state was installed); \
             recover from a follower instead"
        );
        let mut cluster = Cluster::new(app.clone(), config);
        for (_, tuples) in &self.entries {
            if tuples.is_empty() {
                continue;
            }
            cluster.submit(tuples.clone());
            cluster.drain();
        }
        cluster
            .extract_shard(0)
            .expect("fresh local replay cluster cannot die")
            .states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::ZipfGenerator;
    use ditto_core::apps::CountPerKey;
    use ditto_core::ArchConfig;

    fn config() -> ServeConfig {
        ServeConfig::new(1, ArchConfig::new(4, 8, 3))
    }

    #[test]
    fn replay_reproduces_a_directly_served_cluster() {
        let app = CountPerKey::new(8);
        let mut log = BatchLog::new();
        let mut direct = Cluster::new(app.clone(), &config());
        for seed in 0..4u64 {
            let tuples = ZipfGenerator::new(2.0, 1 << 10, seed).take_vec(500);
            let id = direct.submit(tuples.clone());
            log.append(id, tuples);
        }
        direct.drain();
        let direct_states = direct.extract_shard(0).unwrap().states;
        assert_eq!(log.len(), 4);
        assert_eq!(log.tuples(), 2_000);
        assert_eq!(log.replay(&app, &config()), direct_states);
        // Determinism: a second replay is bit-identical.
        assert_eq!(log.replay(&app, &config()), direct_states);
    }

    #[test]
    fn reset_restores_completeness() {
        let mut log = BatchLog::new();
        assert!(log.is_complete() && log.is_empty());
        log.append(1, vec![Tuple::from_key(7)]);
        log.mark_incomplete();
        assert!(!log.is_complete());
        log.reset();
        assert!(log.is_complete() && log.is_empty());
    }

    #[test]
    #[should_panic(expected = "no longer derives")]
    fn replaying_an_incomplete_log_panics() {
        let mut log = BatchLog::new();
        log.mark_incomplete();
        log.replay(&CountPerKey::new(8), &config());
    }
}
