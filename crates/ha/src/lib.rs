//! # ditto-ha — replication and failure recovery for the serve cluster
//!
//! The paper's decomposability argument — per-PE partial states merge
//! exactly into the global result — is usually read as a *throughput*
//! property. This crate reads it as a *durability* property: if state
//! merges exactly, it also extracts, transfers and replays exactly, so a
//! serving cluster can survive the death of a shard without losing a
//! tuple. Three mechanisms, all proven by bit-identical replay on the
//! deterministic engines:
//!
//! ```text
//!                 submit(batch)
//!                      │
//!            ┌─────────▼──────────┐   per-shard sub-batches
//!            │     HaCluster      ├──────────────┐
//!            └─────────┬──────────┘              │ (clones of the
//!               leader  │                        │  delivered parts)
//!            ┌─────────▼──────────┐     ┌────────▼────────┐
//!            │  Cluster (serve)   │     │ BatchLog[shard] │
//!            │ shard 0  1  2  ... │     └────────┬────────┘
//!            └─────────┬──────────┘     ┌────────▼────────┐
//!                      │                │ followers[shard]│  N replicas,
//!               ShardEvent::Failed      │ (1-shard serve  │  same parts,
//!                      │                │  clusters)      │  same order
//!            ┌─────────▼──────────┐     └────────┬────────┘
//!            │      promote       │◄─────────────┘
//!            │ drain follower →   │   extract replica slice →
//!            │ install on heir →  │   reassign slots → resubmit
//!            │ resume serving     │   raced sub-batches
//!            └────────────────────┘
//! ```
//!
//! * **State handoff** ([`HaCluster::rebalance`]): when the balancer
//!   migrates hot slots, the source shard's accumulated slice moves with
//!   them — extracted at the admission watermark, installed on the target
//!   *and its followers* via the application's own `merge`. Because merge
//!   is associative and commutative, which shard folds the history is
//!   immaterial to the cluster-level result: the handoff run is
//!   bit-identical to the no-migration run.
//! * **N-way replication** ([`HaCluster::submit`]): every delivered
//!   per-shard sub-batch is appended to that shard's [`BatchLog`] and
//!   mirrored to its followers — independent 1-shard clusters fed the same
//!   parts in the same order. Deterministic engines make a follower a
//!   *proof-carrying* replica: replaying the leader's log from scratch
//!   reproduces its state bit for bit ([`BatchLog::replay`]).
//! * **Failure recovery** ([`HaCluster::heal`]): a dead shard thread (its
//!   drop-guard streams the panic payload immediately) is recovered by
//!   draining one follower, installing its slice on a live inheritor (and
//!   the inheritor's followers), reassigning every slot the corpse owned,
//!   resolving its in-flight batches (their tuples are in the replica) and
//!   resubmitting sub-batches that raced the death without ever reaching
//!   an engine. The cluster converges to the same final output as a run
//!   with no failure at all.
//!
//! Environment knobs (announced by `ditto_obs::env::log_active`):
//! `DITTO_REPLICAS` sets the follower count per shard; `DITTO_KILL_SHARD`
//! (`<shard>:<batches>`) arms the deterministic fault injection hook in
//! the serve layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod log;

pub use cluster::{HaCluster, Promotion, RecoverySource};
pub use log::BatchLog;

/// Reads the `DITTO_REPLICAS` environment knob: the number of follower
/// replicas per shard. Returns `default` when unset or malformed.
pub fn env_replicas(default: usize) -> usize {
    std::env::var("DITTO_REPLICAS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}
