//! The replicated cluster: leader + N followers per shard, replicated
//! handoff on rebalance, and promotion-based failure recovery.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use datagen::Tuple;
use ditto_core::DittoApp;
use ditto_obs::{LogHistogram, MetricsRegistry, MetricsSnapshot, SpanEvent};
use ditto_serve::{
    AdmissionSnapshot, BatchId, Cluster, ClusterOutcome, ClusterSnapshot, CompletedBatch,
    HandoffReport, ServeConfig, ShardFailure, SlotMove,
};

use crate::log::BatchLog;

/// Where a promotion reconstructed the dead shard's state from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// A follower replica was drained and its slice promoted.
    Replica,
    /// No follower existed; the leader's batch log was replayed from
    /// scratch (only possible while the log is complete).
    LogReplay,
}

/// The record of one shard promotion.
#[derive(Debug, Clone)]
pub struct Promotion {
    /// The shard that died.
    pub dead: usize,
    /// The live shard that inherited its state and slots.
    pub inheritor: usize,
    /// The death notice (panic payload) that triggered the promotion.
    pub failure: ShardFailure,
    /// Where the state came back from.
    pub source: RecoverySource,
    /// Routing moves applied (every slot the corpse owned).
    pub moves: Vec<SlotMove>,
    /// Tuples of history restored onto the inheritor.
    pub tuples_recovered: u64,
    /// Tuples that raced the death without reaching any engine and were
    /// resubmitted through the post-recovery routing.
    pub tuples_resubmitted: u64,
    /// Wall-clock recovery time: death observed → slots serving again.
    pub recovery: Duration,
}

/// A serve [`Cluster`] wrapped with N-way replication, replicated state
/// handoff and automatic failure recovery.
///
/// Every shard of the inner cluster (the *leader*) is shadowed by
/// `replicas` follower clusters — single-shard deployments of the same
/// app and architecture, fed exactly the sub-batches the leader's shard
/// accepted, in the same order, via [`submit`](Self::submit)'s
/// replication tap. Deterministic engines make followers bit-identical
/// mirrors, so promotion after a shard death loses nothing.
///
/// The inner cluster runs with its own per-migration state handoff
/// disabled: [`rebalance`](Self::rebalance) performs the *replicated*
/// handoff protocol instead (leader slice and follower slices move
/// together, logs reset/mark to stay truthful).
pub struct HaCluster<A>
where
    A: DittoApp + Clone + 'static,
    A::State: Clone,
{
    app: A,
    inner: Cluster<A>,
    /// `replicas` follower clusters per shard (may be empty).
    followers: Vec<Vec<Cluster<A>>>,
    /// One batch log per shard.
    logs: Vec<BatchLog>,
    follower_config: ServeConfig,
    replicas: usize,
    promotions: Vec<Promotion>,
    promotions_total: u64,
    recovery_us: LogHistogram,
    handoffs: Vec<HandoffReport>,
    handoffs_total: u64,
    handoff_pause_us: LogHistogram,
    /// Resubmitted batch → the root batch whose raced sub-batch it carries.
    resubmits: HashMap<BatchId, BatchId>,
    /// Root batches with resubmitted children still in flight: their
    /// completion records are held back and emitted merged, so a front-end
    /// sees one completion covering every tuple the request carried.
    outstanding: HashMap<BatchId, ResubmitAgg>,
}

/// The in-progress merge of a root batch's completion with its
/// resubmitted children's.
#[derive(Debug, Default)]
struct ResubmitAgg {
    children: usize,
    tuples: u64,
    latency_cycles: u64,
    wall: Duration,
    record: Option<CompletedBatch>,
}

impl<A> HaCluster<A>
where
    A: DittoApp + Clone + 'static,
    A::State: Clone,
{
    /// Boots the leader cluster per `config` plus `replicas` followers per
    /// shard. Followers run the same architecture as a 1-shard deployment
    /// with no balancer, no journal and no fault injection — the
    /// `DITTO_KILL_SHARD` hook kills leaders, never the replicas that
    /// recovery depends on.
    pub fn new(app: A, config: &ServeConfig, replicas: usize) -> Self {
        let leader_config = config.clone().with_state_handoff(false);
        let mut follower_config = ServeConfig::new(1, config.arch.clone())
            .with_cycles_per_poll(config.cycles_per_poll)
            .with_ingress_rate(config.ingress_rate)
            .with_journal_capacity(0);
        follower_config.fault = None;
        let inner = Cluster::new(app.clone(), &leader_config);
        let followers = (0..config.shards)
            .map(|_| {
                (0..replicas)
                    .map(|_| Cluster::new(app.clone(), &follower_config))
                    .collect()
            })
            .collect();
        HaCluster {
            inner,
            followers,
            logs: vec![BatchLog::new(); config.shards],
            follower_config,
            replicas,
            app,
            promotions: Vec::new(),
            promotions_total: 0,
            recovery_us: LogHistogram::new(),
            handoffs: Vec::new(),
            handoffs_total: 0,
            handoff_pause_us: LogHistogram::new(),
            resubmits: HashMap::new(),
            outstanding: HashMap::new(),
        }
    }

    /// Number of leader shards.
    pub fn shards(&self) -> usize {
        self.followers.len()
    }

    /// Configured followers per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Read access to a shard's batch log.
    pub fn log(&self, shard: usize) -> &BatchLog {
        &self.logs[shard]
    }

    /// Admits one batch: the leader splits and serves it, and every
    /// *delivered* per-shard sub-batch is appended to that shard's log and
    /// mirrored to its followers. If the admission races a shard death,
    /// recovery runs immediately ([`heal`](Self::heal)) and the raced
    /// sub-batches are resubmitted — no tuple is lost or doubled.
    pub fn submit(&mut self, tuples: Vec<Tuple>) -> BatchId {
        let id = self.dispatch(tuples);
        if !self.inner.failed_shards().is_empty() {
            self.heal();
        }
        id
    }

    /// The replication tap without the heal check (promotion resubmits
    /// through this to avoid recursing into itself).
    fn dispatch(&mut self, tuples: Vec<Tuple>) -> BatchId {
        let (id, parts) = self.inner.submit_with_parts(tuples);
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            for follower in &mut self.followers[shard] {
                follower.submit(part.clone());
            }
            self.logs[shard].append(id, part);
        }
        id
    }

    /// Follows the resubmission chain back to the batch a client submitted.
    /// A resubmitted child that itself races another death spawns
    /// grandchildren; they must be attributed to the canonical root, not
    /// the intermediate child.
    fn root_of(&self, batch: BatchId) -> BatchId {
        let mut b = batch;
        while let Some(&parent) = self.resubmits.get(&b) {
            b = parent;
        }
        b
    }

    /// Death notices of dead, unrecovered leader shards (non-blocking).
    pub fn poll_failures(&mut self) -> Vec<ShardFailure> {
        self.inner.failed_shards()
    }

    /// Recovers every dead, unrecovered shard by promotion; returns the
    /// promotions performed (empty when the cluster is healthy). This is
    /// the supervisor the wire layer's pump calls between submissions, so
    /// failover is transparent to connected clients.
    pub fn heal(&mut self) -> Vec<Promotion> {
        let mut out = Vec::new();
        loop {
            let Some(failure) = self.inner.failed_shards().into_iter().next() else {
                break out;
            };
            out.push(self.promote(&failure));
        }
    }

    /// Promotes a replica of the dead shard onto a live inheritor:
    ///
    /// 1. reconstruct the corpse's slice — drain one follower and extract
    ///    it, or (with no replicas) replay the batch log;
    /// 2. install the slice on the inheritor *and its followers* (they
    ///    must stay mirrors), marking the inheritor's log incomplete;
    /// 3. reassign every slot the corpse owned and resolve its in-flight
    ///    batches (their tuples live in the promoted slice);
    /// 4. resubmit sub-batches that raced the death without reaching any
    ///    engine.
    ///
    /// # Panics
    ///
    /// Panics if every other shard is also dead, or if no follower exists
    /// and the log cannot reconstruct the state (see [`BatchLog::replay`]).
    pub fn promote(&mut self, failure: &ShardFailure) -> Promotion {
        let start = Instant::now();
        let dead = failure.shard;
        let inheritor = self.choose_inheritor(dead);
        let (states, source) = match self.followers[dead].pop() {
            Some(mut follower) => {
                follower.drain();
                let s = follower
                    .extract_shard(0)
                    .expect("local follower cluster cannot die");
                (s.states, RecoverySource::Replica)
            }
            None => (
                self.logs[dead].replay(&self.app, &self.follower_config),
                RecoverySource::LogReplay,
            ),
        };
        let tuples_recovered = self.logs[dead].tuples();
        self.install_replicated(inheritor, states);
        let moves = self.inner.recover_shard(dead, inheritor);
        // The corpse's remaining followers and log are useless now: its
        // history lives in the inheritor.
        self.followers[dead].clear();
        self.logs[dead].reset();
        // Sub-batches that raced the death never reached an engine;
        // resubmitting them through the post-recovery routing loses
        // nothing and doubles nothing. Each resubmission is attributed
        // back to the batch that carried it: the root's completion record
        // is held until every child completes, then emitted merged
        // (see take_completed), so a front-end's per-request tuple
        // accounting stays exact through the failover.
        let mut tuples_resubmitted = 0u64;
        for (batch, _, tuples) in self.inner.take_lost_parts() {
            tuples_resubmitted += tuples.len() as u64;
            let root = self.root_of(batch);
            let child = self.dispatch(tuples);
            self.resubmits.insert(child, root);
            self.outstanding.entry(root).or_default().children += 1;
        }
        let promotion = Promotion {
            dead,
            inheritor,
            failure: failure.clone(),
            source,
            moves,
            tuples_recovered,
            tuples_resubmitted,
            recovery: start.elapsed(),
        };
        self.promotions_total += 1;
        self.recovery_us
            .record(u64::try_from(promotion.recovery.as_micros()).unwrap_or(u64::MAX));
        self.promotions.push(promotion.clone());
        promotion
    }

    /// Installs a slice on a leader shard and all of its followers, and
    /// marks its log incomplete (state no longer derives from it).
    fn install_replicated(&mut self, shard: usize, states: Vec<A::State>) {
        self.inner
            .install_shard(shard, states.clone())
            .expect("install target died; heal() handles it next round");
        for follower in &mut self.followers[shard] {
            follower
                .install_shard(0, states.clone())
                .expect("local follower cluster cannot die");
        }
        self.logs[shard].mark_incomplete();
    }

    /// The live shard inheriting a corpse's state and slots: fewest owned
    /// slots first (ties to the lowest index), so repeated failures spread
    /// instead of piling onto shard 0.
    ///
    /// # Panics
    ///
    /// Panics if no other live shard exists.
    fn choose_inheritor(&mut self, dead: usize) -> usize {
        let router = self.inner.router();
        (0..self.shards())
            .filter(|&s| s != dead && !self.inner.is_shard_dead(s))
            .min_by_key(|&s| (router.slots_of(s).len(), s))
            .expect("every shard is dead — nothing can inherit")
    }

    /// One balancing round with *replicated* state handoff: the inner
    /// balancer redirects traffic, then each migration source's slice
    /// moves to the target leader and the target's followers; the source's
    /// followers discard the same slice and its log resets (state is
    /// fresh, which an empty log derives exactly). A source that dies
    /// mid-handoff forfeits nothing — its replica still covers the full
    /// history and [`heal`](Self::heal) promotes it.
    pub fn rebalance(&mut self) -> Vec<SlotMove> {
        let moves = self.inner.rebalance();
        if moves.is_empty() {
            return moves;
        }
        let mut by_source: Vec<(usize, Vec<SlotMove>)> = Vec::new();
        for mv in &moves {
            match by_source.iter_mut().find(|(s, _)| *s == mv.from) {
                Some((_, group)) => group.push(*mv),
                None => by_source.push((mv.from, vec![*mv])),
            }
        }
        for (from, group) in by_source {
            let to = group[0].to;
            let start = Instant::now();
            let Ok(extract) = self.inner.extract_shard(from) else {
                continue; // source died mid-handoff; heal() owns it now
            };
            self.install_replicated(to, extract.states);
            // The source's followers drop the same slice the leader lost,
            // and its log resets to match the now-fresh state.
            for follower in &mut self.followers[from] {
                follower.drain();
                let _ = follower
                    .extract_shard(0)
                    .expect("local follower cluster cannot die");
            }
            self.logs[from].reset();
            let report = HandoffReport {
                from,
                to,
                slots: group.iter().map(|m| m.slot).collect(),
                pause: start.elapsed(),
                catch_up_cycles: extract.catch_up_cycles,
                tuples_moved: extract.tuples,
            };
            self.handoffs_total += 1;
            self.handoff_pause_us
                .record(u64::try_from(report.pause.as_micros()).unwrap_or(u64::MAX));
            self.handoffs.push(report);
        }
        moves
    }

    /// Blocks until every admitted batch completes, healing through any
    /// shard death on the way.
    pub fn drain(&mut self) {
        loop {
            match self.inner.try_drain() {
                Ok(()) => break,
                Err(failure) => {
                    self.promote(&failure);
                }
            }
        }
    }

    /// Shuts everything down and produces the combined output via the
    /// cross-shard merge, healing any outstanding failure first. Follower
    /// clusters are discarded — their slices are duplicates of leader
    /// state by construction and must not fold into the result.
    pub fn finish(mut self) -> ClusterOutcome<A::Output> {
        self.heal();
        self.drain();
        drop(self.followers);
        self.inner.finish()
    }

    /// Promotions performed since the last call.
    pub fn take_promotions(&mut self) -> Vec<Promotion> {
        std::mem::take(&mut self.promotions)
    }

    /// Lifetime promotion count.
    pub fn promotions_total(&self) -> u64 {
        self.promotions_total
    }

    /// Replicated handoff reports since the last call.
    pub fn take_handoffs(&mut self) -> Vec<HandoffReport> {
        std::mem::take(&mut self.handoffs)
    }

    /// Per-shard replication lag: the worst follower queue depth in
    /// tuples (0 for shards with no followers — or no backlog).
    pub fn replication_lag(&mut self) -> Vec<u64> {
        self.followers
            .iter_mut()
            .map(|fs| fs.iter_mut().map(Cluster::queue_depth).max().unwrap_or(0))
            .collect()
    }

    /// A point-in-time consistency check helper: drains `replica` of
    /// `shard` and returns its slice, then restores it (merge of a fresh
    /// buffer with an extracted slice is the slice), so the follower keeps
    /// mirroring its leader afterwards.
    pub fn follower_snapshot(&mut self, shard: usize, replica: usize) -> Vec<A::State> {
        let follower = &mut self.followers[shard][replica];
        follower.drain();
        let states = follower
            .extract_shard(0)
            .expect("local follower cluster cannot die")
            .states;
        follower
            .install_shard(0, states.clone())
            .expect("local follower cluster cannot die");
        states
    }

    /// Replays `shard`'s batch log through a fresh single-shard cluster
    /// and returns the reconstructed slice (see [`BatchLog::replay`]).
    pub fn replay_log(&self, shard: usize) -> Vec<A::State> {
        self.logs[shard].replay(&self.app, &self.follower_config)
    }

    // ── delegation to the inner cluster (the wire host surface) ──────

    /// Live cluster-wide queue depth in tuples (non-blocking).
    pub fn queue_depth(&mut self) -> u64 {
        self.inner.queue_depth()
    }

    /// Records a batch an admission layer refused.
    pub fn record_shed(&mut self, tuples: u64) {
        self.inner.record_shed(tuples);
    }

    /// Completion records since the last call. A batch whose raced
    /// sub-batches were resubmitted under new ids during a promotion is
    /// held back until every child completes, then emitted once under the
    /// root id with the children's tuples folded in — callers see exactly
    /// one record per submitted batch, with the full tuple count, failover
    /// or not.
    pub fn take_completed(&mut self) -> Vec<CompletedBatch> {
        let mut out = Vec::new();
        for c in self.inner.take_completed() {
            if let Some(root) = self.resubmits.remove(&c.id) {
                let agg = self
                    .outstanding
                    .get_mut(&root)
                    .expect("resubmitted child has a registered root");
                agg.tuples += c.tuples;
                agg.latency_cycles = agg.latency_cycles.max(c.latency_cycles);
                agg.wall = agg.wall.max(c.wall);
                agg.children -= 1;
                if agg.children == 0 && agg.record.is_some() {
                    let agg = self.outstanding.remove(&root).expect("present");
                    out.push(Self::merge_root(root, agg));
                }
            } else if let Some(agg) = self.outstanding.get_mut(&c.id) {
                let root = c.id;
                agg.record = Some(c);
                if agg.children == 0 {
                    let agg = self.outstanding.remove(&root).expect("present");
                    out.push(Self::merge_root(root, agg));
                }
            } else {
                out.push(c);
            }
        }
        out
    }

    /// The root's own record plus everything its resubmitted children did.
    fn merge_root(root: BatchId, agg: ResubmitAgg) -> CompletedBatch {
        let record = agg.record.expect("root completed before emission");
        CompletedBatch {
            id: root,
            tuples: record.tuples + agg.tuples,
            latency_cycles: record.latency_cycles.max(agg.latency_cycles),
            wall: record.wall.max(agg.wall),
        }
    }

    /// The admission-side counters (non-blocking).
    pub fn admission_snapshot(&mut self) -> AdmissionSnapshot {
        self.inner.admission_snapshot()
    }

    /// A point-in-time view of the leader cluster.
    pub fn snapshot(&mut self) -> ClusterSnapshot {
        self.inner.snapshot()
    }

    /// Read access to the leader's routing table.
    pub fn router(&self) -> &ditto_serve::RoutingTable {
        self.inner.router()
    }

    /// Kills a leader shard thread synchronously (test/fault hook).
    pub fn kill_shard(&mut self, shard: usize, message: &str) -> ShardFailure {
        self.inner.kill_shard(shard, message)
    }

    /// The merged observability snapshot: the leader cluster's registry
    /// plus the `ditto_ha_*` series — replica count, per-shard replication
    /// lag, promotions, recovery-time and handoff-pause histograms.
    pub fn metrics(&mut self) -> MetricsSnapshot {
        let mut merged = self.inner.metrics();
        let mut reg = MetricsRegistry::new();
        let replicas = reg.gauge("ditto_ha_replicas", "ha", "items");
        let promotions = reg.counter("ditto_ha_promotions", "ha", "items");
        let handoffs = reg.counter("ditto_ha_handoffs", "ha", "items");
        reg.set_gauge(replicas, self.replicas as u64);
        reg.set_counter(promotions, self.promotions_total);
        reg.set_counter(handoffs, self.handoffs_total);
        let recovery = reg.histogram("ditto_ha_recovery_us", "ha", "us");
        let pause = reg.histogram("ditto_ha_handoff_pause_us", "ha", "us");
        reg.set_histogram(recovery, self.recovery_us.clone());
        reg.set_histogram(pause, self.handoff_pause_us.clone());
        merged.merge(&reg.snapshot());
        for (shard, lag) in self.replication_lag().into_iter().enumerate() {
            let mut reg = MetricsRegistry::new().with_label("shard", shard);
            let g = reg.gauge("ditto_ha_replication_lag", "ha", "tuples");
            reg.set_gauge(g, lag);
            merged.merge(&reg.snapshot());
        }
        merged
    }

    /// Drains the leader cluster's span journals.
    pub fn take_journal(&mut self) -> Vec<SpanEvent> {
        self.inner.take_journal()
    }
}

impl<A> std::fmt::Debug for HaCluster<A>
where
    A: DittoApp + Clone + 'static,
    A::State: Clone,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HaCluster")
            .field("shards", &self.shards())
            .field("replicas", &self.replicas)
            .field("promotions", &self.promotions_total)
            .finish()
    }
}
