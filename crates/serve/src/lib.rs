//! # ditto-serve — sharded online serving over persistent pipeline shards
//!
//! The paper evaluates the skew-oblivious architecture offline (drain a
//! dataset, read the tables), but its defining property — robustness to
//! workload skew with online rescheduling — is a *serving* property. This
//! crate stands a serving deployment up in simulation:
//!
//! ```text
//!            submit(batch)                 ShardEvent (completions)
//! clients ────────────────► Cluster ◄─────────────────────────────┐
//!                             │ RoutingTable (key-hash slots)     │
//!              ┌──────────────┼──────────────┐                    │
//!              ▼              ▼              ▼                    │
//!         shard thread   shard thread   shard thread  ── events ──┘
//!         SharedQueue    SharedQueue    SharedQueue
//!              │              │              │
//!         Persistent     Persistent     Persistent
//!         Pipeline 0     Pipeline 1     Pipeline 2    (one simulated
//!              │              │              │          FPGA each)
//!              └──────────────┴──────────────┘
//!                     finish(): cross-shard state merge
//!                     (each shard = a super-SecPE) → finalize once
//! ```
//!
//! * [`Cluster`] — admission/batching front-end: splits tuple batches
//!   across shards by key-hash slot, tracks per-batch completion
//!   (watermarks on each shard's processed-tuple counter), and exposes
//!   snapshotable metrics — throughput, queue depth, p50/p99 batch latency
//!   in simulated cycles and wall time.
//! * [`RoutingTable`] — hash-slot ownership; slots are the key-range
//!   migration unit.
//! * [`ShardBalancer`] — the paper's profiler loop lifted to cluster
//!   granularity: Equation 2 over live per-shard workload windows
//!   (via `ditto-framework`'s [`SkewAnalyzer`]), smoothed by the
//!   [`StreamSkewPredictor`], migrating slots off hot shards. Intra-shard
//!   single-key skew stays the job of each shard's own SecPEs.
//! * Cross-shard **merge/finalize**: [`Cluster::finish`] folds every
//!   shard's PriPE buffers into shard 0's through the application's own
//!   `merge` (a shard is just a coarser SecPE), then finalizes once —
//!   which is why sharded results equal a single-engine
//!   [`run_dataset`](ditto_core::SkewObliviousPipeline::run_dataset): for
//!   decomposable merges (HISTO counts, HLL register max, HHD sketch sums,
//!   PR fixed-point adds) the fold commutes with processing order exactly;
//!   data partitioning agrees as per-partition multisets. One deliberate
//!   caveat: HHD's merged sketches are cell-for-cell identical to the
//!   single engine's, but *candidate detection* runs per shard — a key
//!   whose estimate clears the candidate threshold only through
//!   cross-shard CMS collision noise (true count below the per-PE
//!   candidate threshold) could be reported by the single engine and
//!   missed by the cluster. Keys whose true counts reach the candidate
//!   threshold are caught by both.
//!
//! [`SkewAnalyzer`]: ditto_framework::SkewAnalyzer
//! [`StreamSkewPredictor`]: ditto_framework::StreamSkewPredictor
//!
//! # Example
//!
//! ```
//! use ditto_serve::{Cluster, ServeConfig, split_into_batches};
//! use ditto_core::{ArchConfig, SkewObliviousPipeline};
//! use ditto_core::apps::CountPerKey;
//! use datagen::ZipfGenerator;
//!
//! let data = ZipfGenerator::new(1.5, 1 << 14, 3).take_vec(6_000);
//! let arch = ArchConfig::new(4, 8, 3);
//!
//! // Serve the dataset as 1k-tuple request batches over two shards.
//! let mut cluster = Cluster::new(CountPerKey::new(8), &ServeConfig::new(2, arch.clone()));
//! for batch in split_into_batches(&data, 1_000) {
//!     cluster.submit(batch);
//! }
//! cluster.drain();
//! let served = cluster.finish();
//!
//! // The sharded result equals the single-engine offline run.
//! let single = SkewObliviousPipeline::run_dataset(CountPerKey::new(8), data, &arch);
//! assert_eq!(served.output, single.output);
//! assert_eq!(served.snapshot.batches_completed, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balancer;
mod batch;
mod cluster;
mod metrics;
mod queue;
mod router;
mod shard;

pub use balancer::{BalancerConfig, ShardBalancer};
pub use batch::{split_into_batches, BatchId, CompletedBatch};
pub use cluster::{
    Cluster, ClusterOutcome, HandoffReport, ServeConfig, ShardFailure, ShardFault, ShardStates,
};
pub use metrics::{
    AdmissionSnapshot, ClusterSnapshot, LatencyRecorder, LatencyStats, ShardSnapshot,
};
pub use queue::{QueueSource, SharedQueue};
pub use router::{RoutingTable, SlotMove, DEFAULT_SLOTS};

// Observability vocabulary re-exported so serve-layer callers (the wire
// front-end, benches, examples) need not depend on `ditto-obs` directly.
pub use ditto_obs::{
    chrome_trace_json, LogHistogram, MetricsRegistry, MetricsSnapshot, SpanEvent, SpanJournal,
    SpanStage, NO_SHARD,
};
