//! Key-range routing across shards.
//!
//! The cluster's admission layer routes tuples by *hash slot*: the key
//! space is hashed into a fixed number of slots and each slot is owned by
//! one shard. Slots are the unit of migration — the balancer moves slot
//! ownership between shards, the way the paper's mapper redirects workload
//! between PEs at a finer grain (§IV-C2). Because every occurrence of a key
//! hashes to the same slot, a batch split by the router partitions the key
//! space: each key's tuples land on exactly one shard *per routing epoch*
//! (after a migration, a key's new tuples follow the new owner; states
//! merge exactly regardless, see the cluster docs).

use datagen::Tuple;
use sketches::murmur3_u64;

/// Hash seed decorrelating router slots from the applications' internal
/// routing hashes (HISTO bins use seed `0x4151`, HHD PE routing `0x77`).
/// Sharing a seed would make every shard see only the key range of its
/// same-indexed PEs, manufacturing intra-shard skew.
const ROUTER_SEED: u32 = 0x0005_ca1e;

/// Default slot count: enough granularity for the balancer to shave load in
/// ~1.5 % steps at 64 slots, while keeping tables tiny.
pub const DEFAULT_SLOTS: usize = 64;

/// A migration step: reassigning one slot between shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotMove {
    /// The slot being moved.
    pub slot: usize,
    /// Previous owner.
    pub from: usize,
    /// New owner.
    pub to: usize,
}

/// The slot-ownership table plus per-slot admitted-tuple accounting.
///
/// # Example
///
/// ```
/// use ditto_serve::RoutingTable;
/// use datagen::Tuple;
///
/// let mut table = RoutingTable::new(4, 16);
/// let parts = table.split(vec![Tuple::from_key(1), Tuple::from_key(2)]);
/// assert_eq!(parts.len(), 4);
/// assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 2);
/// // A key always routes to its slot's current owner.
/// let s = table.shard_of_key(1);
/// assert!(s < 4);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// Owner shard of each slot.
    owner: Vec<usize>,
    shards: usize,
    /// Admitted tuples per slot since the last window reset — the balancer's
    /// per-slot load estimate.
    slot_window: Vec<u64>,
    /// Admitted tuples per slot over the table's lifetime.
    slot_total: Vec<u64>,
}

impl RoutingTable {
    /// Creates a table over `slots` slots dealt round-robin to `shards`
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `slots < shards`.
    pub fn new(shards: usize, slots: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(
            slots >= shards,
            "need at least one slot per shard ({slots} < {shards})"
        );
        RoutingTable {
            owner: (0..slots).map(|s| s % shards).collect(),
            shards,
            slot_window: vec![0; slots],
            slot_total: vec![0; slots],
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.owner.len()
    }

    /// The slot a key hashes into.
    pub fn slot_of_key(&self, key: u64) -> usize {
        (murmur3_u64(key, ROUTER_SEED) % self.owner.len() as u64) as usize
    }

    /// The shard currently owning a key's slot.
    pub fn shard_of_key(&self, key: u64) -> usize {
        self.owner[self.slot_of_key(key)]
    }

    /// Current owner of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn owner_of(&self, slot: usize) -> usize {
        self.owner[slot]
    }

    /// Slots currently owned by `shard`.
    pub fn slots_of(&self, shard: usize) -> Vec<usize> {
        (0..self.owner.len())
            .filter(|&s| self.owner[s] == shard)
            .collect()
    }

    /// Splits a batch into per-shard sub-batches (index = shard), recording
    /// per-slot admitted counts. Tuple order within each sub-batch preserves
    /// the batch's order.
    pub fn split(&mut self, tuples: Vec<Tuple>) -> Vec<Vec<Tuple>> {
        let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); self.shards];
        for t in tuples {
            let slot = self.slot_of_key(t.key);
            self.slot_window[slot] += 1;
            self.slot_total[slot] += 1;
            parts[self.owner[slot]].push(t);
        }
        parts
    }

    /// Admitted tuples per slot since the last [`take_window`]
    /// (Self::take_window) call.
    pub fn slot_window(&self) -> &[u64] {
        &self.slot_window
    }

    /// Returns the per-slot window counts and resets the window.
    pub fn take_window(&mut self) -> Vec<u64> {
        let w = self.slot_window.clone();
        self.slot_window.fill(0);
        w
    }

    /// Admitted tuples per shard over the current window, summing each
    /// shard's slots.
    pub fn shard_window(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.shards];
        for (slot, &n) in self.slot_window.iter().enumerate() {
            loads[self.owner[slot]] += n;
        }
        loads
    }

    /// Applies one migration.
    ///
    /// # Panics
    ///
    /// Panics if the move's `from` does not match the current owner, the
    /// target shard index is out of range, or the move would leave the
    /// source shard with no slots.
    pub fn apply(&mut self, mv: SlotMove) {
        assert_eq!(
            self.owner[mv.slot], mv.from,
            "stale migration: slot {} owned by {}",
            mv.slot, self.owner[mv.slot]
        );
        assert!(mv.to < self.shards, "target shard out of range");
        assert!(
            self.slots_of(mv.from).len() > 1,
            "cannot strip shard {} of its last slot",
            mv.from
        );
        self.owner[mv.slot] = mv.to;
    }

    /// Failure recovery: reassigns *every* slot owned by `from` to `to`,
    /// returning the moves applied. Unlike [`apply`](Self::apply) this
    /// deliberately strips the source bare — a dead shard serves nothing —
    /// and tolerates a source that already owns no slots (re-recovery is a
    /// no-op).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or equals `from`.
    pub fn reassign_all(&mut self, from: usize, to: usize) -> Vec<SlotMove> {
        assert!(to < self.shards, "target shard out of range");
        assert_ne!(from, to, "cannot reassign a shard's slots to itself");
        let moves: Vec<SlotMove> = self
            .slots_of(from)
            .into_iter()
            .map(|slot| SlotMove { slot, from, to })
            .collect();
        for mv in &moves {
            self.owner[mv.slot] = mv.to;
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let mut table = RoutingTable::new(3, 12);
        let data: Vec<Tuple> = (0..1000).map(Tuple::from_key).collect();
        let parts = table.split(data.clone());
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1000);
        // Same key, same shard — always.
        for t in &data {
            let s = table.shard_of_key(t.key);
            assert!(parts[s].contains(t));
        }
        // Hash routing spreads uniform keys roughly evenly.
        for p in &parts {
            assert!(p.len() > 200, "{}", p.len());
        }
    }

    #[test]
    fn migration_moves_future_traffic() {
        let mut table = RoutingTable::new(2, 4);
        let key = 42u64;
        let slot = table.slot_of_key(key);
        let from = table.owner_of(slot);
        let to = 1 - from;
        table.apply(SlotMove { slot, from, to });
        assert_eq!(table.shard_of_key(key), to);
    }

    #[test]
    #[should_panic(expected = "stale migration")]
    fn stale_moves_are_rejected() {
        let mut table = RoutingTable::new(2, 4);
        let from = table.owner_of(0);
        table.apply(SlotMove {
            slot: 0,
            from: 1 - from,
            to: from,
        });
    }

    #[test]
    fn windows_reset_totals_persist() {
        let mut table = RoutingTable::new(2, 4);
        table.split((0..100).map(Tuple::from_key).collect());
        assert_eq!(table.slot_window().iter().sum::<u64>(), 100);
        assert_eq!(table.shard_window().iter().sum::<u64>(), 100);
        let w = table.take_window();
        assert_eq!(w.iter().sum::<u64>(), 100);
        assert_eq!(table.slot_window().iter().sum::<u64>(), 0);
    }

    #[test]
    fn reassign_all_strips_the_source_bare() {
        let mut table = RoutingTable::new(3, 9);
        let before = table.slots_of(1);
        assert_eq!(before.len(), 3);
        let moves = table.reassign_all(1, 2);
        assert_eq!(moves.len(), 3);
        assert!(table.slots_of(1).is_empty());
        for mv in &moves {
            assert_eq!(table.owner_of(mv.slot), 2);
        }
        // Re-recovery of an already-bare shard is a no-op.
        assert!(table.reassign_all(1, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "last slot")]
    fn last_slot_is_protected() {
        let mut table = RoutingTable::new(2, 2);
        let slot0 = table.slots_of(0)[0];
        table.apply(SlotMove {
            slot: slot0,
            from: 0,
            to: 1,
        });
    }
}
