//! The skew-aware shard balancer.
//!
//! The paper's runtime profiler detects hot *PEs* from live workload
//! counters and reschedules SecPEs (§IV-B); the balancer lifts the same
//! loop one level up: it watches per-shard processed-tuple windows (summed
//! from each shard's per-PE counters), runs the framework's Equation 2
//! ([`SkewAnalyzer::recommend_from_workloads`]) over the *shard* population
//! to decide whether the cluster is skewed, smooths the signal with the
//! [`StreamSkewPredictor`], and when skew persists migrates hash slots from
//! the hottest shard to the coldest.
//!
//! Migration granularity matters: a single hot *key* cannot be split by
//! routing (all its tuples share one slot) — absorbing intra-shard key skew
//! is the job of each shard's own SecPEs, exactly as in the paper. What the
//! balancer fixes is the *shard-level* skew of everything else: it moves the
//! heaviest movable slots off the overloaded shard until its expected load
//! is back near the cluster mean.

use ditto_framework::{SkewAnalyzer, StreamSkewPredictor};

use crate::router::{RoutingTable, SlotMove};

/// Balancer tuning.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Equation 2 tolerance at shard granularity (the paper's PE-level
    /// evaluation uses 0.01; shards are coarser, so the default accepts a
    /// 25 % overshoot before declaring skew).
    pub tolerance: f64,
    /// EWMA smoothing factor of the skew predictor, in `(0, 1]`.
    pub alpha: f64,
    /// Predictor safety margin in standard deviations.
    pub margin_sigmas: f64,
    /// Ignore observation windows smaller than this many tuples (sampling
    /// noise guard on top of the analyzer's own 3σ floor).
    pub min_window_tuples: u64,
    /// Maximum slot moves per rebalance round.
    pub max_moves: usize,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            tolerance: 0.25,
            alpha: 0.5,
            margin_sigmas: 1.0,
            min_window_tuples: 256,
            max_moves: 8,
        }
    }
}

/// Decides slot migrations from live shard-load windows.
pub struct ShardBalancer {
    config: BalancerConfig,
    analyzer: SkewAnalyzer,
    predictor: StreamSkewPredictor,
    shards: u32,
    migrations: u64,
}

impl ShardBalancer {
    /// Creates a balancer for a `shards`-shard cluster.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or the config's `alpha`/`margin_sigmas`
    /// are out of range (see [`StreamSkewPredictor::new`]).
    pub fn new(shards: usize, config: BalancerConfig) -> Self {
        assert!(shards > 0, "need at least one shard");
        let shards = shards as u32;
        ShardBalancer {
            analyzer: SkewAnalyzer::new(1.0, config.tolerance, 0),
            predictor: StreamSkewPredictor::new(shards, config.alpha, config.margin_sigmas),
            config,
            shards,
            migrations: 0,
        }
    }

    /// Slot moves applied so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Observations fed to the predictor so far.
    pub fn observations(&self) -> u64 {
        self.predictor.observations()
    }

    /// One balancing round: observe this window's per-shard processed
    /// counts, and if skew persists return the slot moves to apply.
    ///
    /// `shard_window` holds tuples processed per shard since the last round
    /// (from the shards' live per-PE counters); `table` supplies per-slot
    /// admitted loads for choosing *which* slots to move. The caller applies
    /// the returned moves to its routing table; this method already counts
    /// them as migrations.
    ///
    /// # Panics
    ///
    /// Panics if `shard_window` length differs from the configured shard
    /// count.
    pub fn rebalance(&mut self, shard_window: &[u64], table: &mut RoutingTable) -> Vec<SlotMove> {
        assert_eq!(
            shard_window.len(),
            self.shards as usize,
            "one load entry per shard"
        );
        let total: u64 = shard_window.iter().sum();
        let slot_window = table.take_window();
        if total < self.config.min_window_tuples {
            return Vec::new();
        }
        self.predictor.observe_workloads(shard_window);
        let immediate = self
            .analyzer
            .recommend_from_workloads(shard_window, self.shards);
        // Both the smoothed trend and the instantaneous Equation 2 must see
        // skew: the predictor's memory stops one noisy window from migrating
        // key ranges, and the instantaneous check stops stale history from
        // migrating an already-recovered cluster.
        if immediate == 0 || self.predictor.predict() == 0 {
            return Vec::new();
        }

        let hot = (0..shard_window.len())
            .max_by_key(|&s| shard_window[s])
            .expect("non-empty");
        let mean = total as f64 / self.shards as f64;
        let mut excess = shard_window[hot] as f64 - mean;
        if excess <= 0.0 {
            return Vec::new();
        }

        // Scale the admitted-side slot loads onto the processed-side window
        // so "move slot s" predicts its share of the shard's processed load.
        let mut hot_slots: Vec<(usize, u64)> = table
            .slots_of(hot)
            .into_iter()
            .map(|s| (s, slot_window[s]))
            .collect();
        hot_slots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let admitted_hot: u64 = hot_slots.iter().map(|&(_, n)| n).sum();
        if admitted_hot == 0 {
            return Vec::new();
        }
        let scale = shard_window[hot] as f64 / admitted_hot as f64;

        let mut loads: Vec<f64> = shard_window.iter().map(|&w| w as f64).collect();
        let mut moves = Vec::new();
        let mut remaining_slots = hot_slots.len();
        for (slot, admitted) in hot_slots {
            if moves.len() >= self.config.max_moves || remaining_slots <= 1 {
                break;
            }
            let slot_load = admitted as f64 * scale;
            // Moving a slot heavier than the remaining excess would just
            // relocate the hot spot (a dominant single-key slot stays put —
            // the shard's SecPEs absorb it, as the paper's Fig. 4 does
            // per-PE).
            if slot_load > excess || slot_load == 0.0 {
                continue;
            }
            // A shard owning zero slots was retired by failure recovery
            // (`reassign_all` stripped it bare): its load window reads 0
            // forever, so it would always look coldest — never route new
            // key ranges at a corpse.
            let Some(cold) = (0..loads.len())
                .filter(|&s| !table.slots_of(s).is_empty())
                .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            else {
                break;
            };
            if cold == hot {
                break;
            }
            moves.push(SlotMove {
                slot,
                from: hot,
                to: cold,
            });
            loads[hot] -= slot_load;
            loads[cold] += slot_load;
            excess -= slot_load;
            remaining_slots -= 1;
            if excess <= mean * self.config.tolerance {
                break;
            }
        }
        self.migrations += moves.len() as u64;
        moves
    }
}

impl std::fmt::Debug for ShardBalancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardBalancer")
            .field("shards", &self.shards)
            .field("migrations", &self.migrations)
            .field("observations", &self.predictor.observations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::Tuple;

    /// Routes `n` tuples for each key in `keys` through the table so the
    /// slot window reflects the load.
    fn admit(table: &mut RoutingTable, keys: &[u64], n: usize) {
        let mut batch = Vec::new();
        for &k in keys {
            batch.extend(std::iter::repeat_n(Tuple::from_key(k), n));
        }
        table.split(batch);
    }

    /// Keys that currently route to `shard`, drawn from a counter scan.
    fn keys_on_shard(table: &RoutingTable, shard: usize, want: usize) -> Vec<u64> {
        (0u64..)
            .filter(|&k| table.shard_of_key(k) == shard)
            .take(want)
            .collect()
    }

    #[test]
    fn balanced_load_never_migrates() {
        let mut table = RoutingTable::new(4, 32);
        let mut balancer = ShardBalancer::new(4, BalancerConfig::default());
        for _ in 0..10 {
            admit(&mut table, &(0..64).collect::<Vec<_>>(), 32);
            let window = table.shard_window();
            let moves = balancer.rebalance(&window, &mut table);
            assert!(moves.is_empty(), "balanced cluster migrated: {moves:?}");
        }
        assert_eq!(balancer.migrations(), 0);
    }

    #[test]
    fn hot_shard_triggers_slot_moves_toward_cold() {
        let mut table = RoutingTable::new(4, 32);
        let mut balancer = ShardBalancer::new(4, BalancerConfig::default());
        // Many distinct warm keys all landing on shard 0's slots.
        let hot_keys = keys_on_shard(&table, 0, 24);
        let mut moved = Vec::new();
        for _ in 0..6 {
            admit(&mut table, &hot_keys, 100);
            let window = table.shard_window();
            let moves = balancer.rebalance(&window, &mut table);
            for mv in &moves {
                assert_eq!(mv.from, 0, "moves must come off the hot shard");
                table.apply(*mv);
            }
            moved.extend(moves);
        }
        assert!(!moved.is_empty(), "hot shard must shed slots");
        assert_eq!(balancer.migrations(), moved.len() as u64);
        // Re-routing worked: some of the hot keys now land elsewhere.
        let relocated = hot_keys
            .iter()
            .filter(|&&k| table.shard_of_key(k) != 0)
            .count();
        assert!(relocated > 0, "no key range actually moved");
    }

    #[test]
    fn tiny_windows_are_ignored() {
        let mut table = RoutingTable::new(2, 8);
        let mut balancer = ShardBalancer::new(2, BalancerConfig::default());
        let hot_keys = keys_on_shard(&table, 0, 4);
        admit(&mut table, &hot_keys, 10); // 40 tuples < min_window_tuples
        let window = table.shard_window();
        assert!(balancer.rebalance(&window, &mut table).is_empty());
        assert_eq!(balancer.observations(), 0, "window below the noise guard");
    }

    #[test]
    fn retired_shards_never_receive_slots() {
        let mut table = RoutingTable::new(3, 24);
        let mut balancer = ShardBalancer::new(3, BalancerConfig::default());
        // Retire shard 2 the way failure recovery does: strip it bare.
        table.reassign_all(2, 1);
        let hot_keys = keys_on_shard(&table, 0, 16);
        for _ in 0..6 {
            admit(&mut table, &hot_keys, 100);
            let window = table.shard_window();
            for mv in balancer.rebalance(&window, &mut table) {
                assert_ne!(mv.to, 2, "migrated a slot to the retired shard");
                table.apply(mv);
            }
        }
        assert!(table.slots_of(2).is_empty());
    }

    #[test]
    fn dominant_single_slot_stays_put() {
        let mut table = RoutingTable::new(2, 8);
        let mut balancer = ShardBalancer::new(2, BalancerConfig::default());
        // One extremely hot key: its slot dominates shard load; routing
        // cannot split a key, so no migration should bounce it around.
        let hot = keys_on_shard(&table, 0, 1)[0];
        let hot_slot = table.slot_of_key(hot);
        for _ in 0..6 {
            admit(&mut table, &[hot], 2_000);
            let window = table.shard_window();
            for mv in balancer.rebalance(&window, &mut table) {
                assert_ne!(mv.slot, hot_slot, "dominant slot must not move");
                table.apply(mv);
            }
        }
        assert_eq!(table.shard_of_key(hot), 0);
    }
}
