//! Snapshotable serving metrics: per-shard counters and latency
//! distributions.
//!
//! [`LatencyStats`] is the cross-layer type from `ditto-obs`; the
//! cluster's live distributions are bounded-memory
//! [`LogHistogram`](ditto_obs::LogHistogram)s (an unbounded exact-sample
//! vector grows forever under sustained load), while the exact-sample
//! [`LatencyRecorder`] remains for load generators and as the reference
//! the histogram's property test pins nearest-rank semantics against.

pub use ditto_obs::LatencyStats;

/// Accumulates latency samples exactly and computes [`LatencyStats`] on
/// demand.
///
/// Samples are kept exactly (sorted lazily per snapshot) — appropriate for
/// bounded populations like one load-generation run, and the ground truth
/// the `ditto-obs` bucketed histogram is property-tested against. Serving
/// paths that run indefinitely use
/// [`LogHistogram`](ditto_obs::LogHistogram) instead.
///
/// # Example
///
/// ```
/// use ditto_serve::LatencyRecorder;
///
/// let mut r = LatencyRecorder::new();
/// for v in [10, 20, 30, 40, 1000] {
///     r.record(v);
/// }
/// let s = r.stats();
/// assert_eq!(s.count, 5);
/// assert_eq!(s.p50, 30);
/// assert_eq!(s.max, 1000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Computes the population's order statistics (nearest-rank
    /// percentiles).
    pub fn stats(&self) -> LatencyStats {
        if self.samples.is_empty() {
            return LatencyStats::empty();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        // Nearest-rank: the ⌈q·n⌉-th smallest sample.
        let rank = |q: f64| sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        LatencyStats {
            count: n as u64,
            mean: sorted.iter().sum::<u64>() as f64 / n as f64,
            p50: rank(0.50),
            p99: rank(0.99),
            p999: rank(0.999),
            max: sorted[n - 1],
        }
    }
}

/// One shard's live counters, as replied to a snapshot request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index within the cluster.
    pub shard: usize,
    /// Simulated cycles on this shard's clock.
    pub cycles: u64,
    /// Tuples processed by this shard's destination PEs.
    pub tuples: u64,
    /// Tuples admitted to this shard but not yet processed (queue depth).
    pub queue_depth: u64,
    /// Completed reschedules on this shard.
    pub reschedules: u64,
    /// Scheduling plans generated on this shard.
    pub plans_generated: u64,
    /// Per-destination-PE processed counts (`M + X` entries) — the live
    /// workload counters the balancer reads.
    pub per_pe_processed: Vec<u64>,
    /// Batches this shard finished serving.
    pub batches_completed: u64,
    /// Batches admitted to this shard and still in flight.
    pub batches_pending: usize,
}

impl ShardSnapshot {
    /// Average throughput on this shard in tuples per simulated cycle.
    pub fn tuples_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.tuples as f64 / self.cycles as f64
    }
}

/// The cluster-side admission counters, readable without a shard
/// round-trip — what a front-end polls on every admission decision.
///
/// Shed counters cover batches an admission layer *refused* (they never
/// entered the cluster); queue depth counts tuples admitted but not yet
/// part of a completed batch, aggregated cluster-wide.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionSnapshot {
    /// Batches admitted so far.
    pub batches_submitted: u64,
    /// Batches fully served so far.
    pub batches_completed: u64,
    /// Batches refused by an admission layer (load shedding).
    pub batches_shed: u64,
    /// Tuples admitted so far.
    pub tuples_submitted: u64,
    /// Tuples in completed batches.
    pub tuples_completed: u64,
    /// Tuples in shed batches.
    pub tuples_shed: u64,
    /// Tuples admitted but not yet in a completed batch (cluster-wide).
    pub queue_depth: u64,
    /// High-watermark of `queue_depth` over the cluster's lifetime,
    /// sampled at every admission.
    pub queue_depth_peak: u64,
    /// Batch latency distribution in simulated cycles.
    pub latency_cycles: LatencyStats,
    /// Batch latency distribution in wall-clock microseconds.
    pub latency_wall_us: LatencyStats,
}

/// A point-in-time view of the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Batches admitted so far.
    pub batches_submitted: u64,
    /// Batches fully served so far.
    pub batches_completed: u64,
    /// Batches refused by an admission layer (load shedding) — see
    /// [`Cluster::record_shed`](crate::Cluster::record_shed).
    pub batches_shed: u64,
    /// Tuples admitted so far.
    pub tuples_submitted: u64,
    /// Tuples in shed batches (never admitted).
    pub tuples_shed: u64,
    /// Tuples admitted but not yet in a completed batch, aggregated
    /// cluster-wide (the per-shard `queue_depth` covers only that shard's
    /// ingress queue).
    pub queue_depth: u64,
    /// High-watermark of the cluster-wide queue depth, sampled at every
    /// admission.
    pub queue_depth_peak: u64,
    /// Key-range migrations the balancer has applied.
    pub migrations: u64,
    /// Batch latency distribution in simulated cycles (worst shard per
    /// batch).
    pub latency_cycles: LatencyStats,
    /// Batch latency distribution in wall-clock microseconds.
    pub latency_wall_us: LatencyStats,
}

impl ClusterSnapshot {
    /// Tuples processed across all shards.
    pub fn tuples_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.tuples).sum()
    }

    /// Max/mean ratio of per-shard processed-tuple counts — 1.0 is a
    /// perfectly balanced cluster (the shard-level analogue of
    /// `ExecutionReport::imbalance`).
    pub fn shard_imbalance(&self) -> f64 {
        let total = self.tuples_processed();
        if total == 0 || self.shards.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.shards.len() as f64;
        let max = self.shards.iter().map(|s| s.tuples).max().unwrap_or(0) as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_yields_zero_stats() {
        assert_eq!(LatencyRecorder::new().stats(), LatencyStats::empty());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for v in 1..=100u64 {
            r.record(v);
        }
        let s = r.stats();
        assert_eq!(s.p50, 50);
        assert_eq!(s.p99, 99);
        assert_eq!(s.p999, 100);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn shard_imbalance_detects_hot_shard() {
        let shard = |i: usize, tuples: u64| ShardSnapshot {
            shard: i,
            cycles: 100,
            tuples,
            queue_depth: 0,
            reschedules: 0,
            plans_generated: 0,
            per_pe_processed: vec![],
            batches_completed: 0,
            batches_pending: 0,
        };
        let snap = ClusterSnapshot {
            shards: vec![shard(0, 900), shard(1, 50), shard(2, 50)],
            batches_submitted: 0,
            batches_completed: 0,
            batches_shed: 0,
            tuples_submitted: 0,
            tuples_shed: 0,
            queue_depth: 0,
            queue_depth_peak: 0,
            migrations: 0,
            latency_cycles: LatencyStats::empty(),
            latency_wall_us: LatencyStats::empty(),
        };
        assert!(snap.shard_imbalance() > 2.5);
        assert_eq!(snap.tuples_processed(), 1000);
    }
}
