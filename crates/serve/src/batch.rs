//! Request batches: identifiers, completion records and chunking helpers.

use std::time::Duration;

use datagen::Tuple;

/// Identifier of one admitted batch, unique within a cluster's lifetime and
/// assigned in admission order.
pub type BatchId = u64;

/// A finished batch, as observed by the cluster's completion tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedBatch {
    /// The batch's admission id.
    pub id: BatchId,
    /// Tuples the batch carried.
    pub tuples: u64,
    /// Worst sub-batch latency across the shards that served the batch, in
    /// simulated cycles (each shard has its own clock; the batch is done
    /// when its slowest shard is).
    pub latency_cycles: u64,
    /// Worst sub-batch wall-clock latency across shards, admission to
    /// completion detection.
    pub wall: Duration,
}

/// Splits a dataset into fixed-size request batches (the last one may be
/// short) — the load-generator shape used by benches, tests and examples.
///
/// # Example
///
/// ```
/// use ditto_serve::split_into_batches;
/// use datagen::Tuple;
///
/// let data: Vec<Tuple> = (0..10).map(Tuple::from_key).collect();
/// let batches = split_into_batches(&data, 4);
/// assert_eq!(batches.len(), 3);
/// assert_eq!(batches[2].len(), 2);
/// ```
///
/// # Panics
///
/// Panics if `batch_tuples` is zero.
pub fn split_into_batches(data: &[Tuple], batch_tuples: usize) -> Vec<Vec<Tuple>> {
    assert!(batch_tuples > 0, "batch size must be nonzero");
    data.chunks(batch_tuples).map(<[Tuple]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_the_dataset_in_order() {
        let data: Vec<Tuple> = (0..103).map(Tuple::from_key).collect();
        let batches = split_into_batches(&data, 10);
        assert_eq!(batches.len(), 11);
        let flat: Vec<Tuple> = batches.into_iter().flatten().collect();
        assert_eq!(flat, data);
    }

    #[test]
    #[should_panic(expected = "batch size must be nonzero")]
    fn zero_batch_size_panics() {
        let _ = split_into_batches(&[], 0);
    }
}
