//! The admission queue feeding a persistent shard engine.
//!
//! A shard's simulated FPGA reads its input through the same
//! [`StreamSource`] abstraction the offline runs use; the serving layer
//! swaps the in-memory dataset for a [`SharedQueue`] that the shard thread
//! appends admitted batches to. A [`RateLimiter`] models the ingress
//! interface (network/DMA) bandwidth, exactly like the Fig. 9 experiment's
//! "memory interface used to simulate the 100 Gbps network interface".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use datagen::Tuple;
use hls_sim::{Cycle, RateLimiter, StreamSource};

#[derive(Debug, Default)]
struct QueueInner {
    queue: Mutex<VecDeque<Tuple>>,
    closed: AtomicBool,
    pushed: AtomicU64,
    popped: AtomicU64,
}

/// A FIFO of admitted tuples shared between a shard thread (producer) and
/// its engine's memory-reader kernel (consumer, via [`QueueSource`]).
///
/// The queue is unbounded on the admission side — backpressure is the
/// cluster's job (queue-depth metrics feed the balancer); the *drain* side
/// is rate-limited by the source's ingress model.
///
/// # Example
///
/// ```
/// use ditto_serve::SharedQueue;
/// use datagen::Tuple;
/// use hls_sim::StreamSource;
///
/// let q = SharedQueue::new();
/// q.push_batch(&[Tuple::from_key(1), Tuple::from_key(2)]);
/// let mut src = q.source(8.0);
/// let mut out = Vec::new();
/// assert_eq!(src.pull(0, 16, &mut out), 2);
/// assert!(!src.exhausted(), "open queue may produce more");
/// q.close();
/// assert!(src.exhausted());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedQueue {
    inner: Arc<QueueInner>,
}

impl SharedQueue {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        SharedQueue::default()
    }

    /// Appends a batch of tuples in admission order.
    pub fn push_batch(&self, tuples: &[Tuple]) {
        let mut q = self.inner.queue.lock().expect("queue lock");
        q.extend(tuples.iter().copied());
        self.inner
            .pushed
            .fetch_add(tuples.len() as u64, Ordering::Relaxed);
    }

    /// Closes the queue: once drained, sources over it report exhaustion,
    /// letting the shard engine quiesce.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Relaxed);
    }

    /// `true` once [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Relaxed)
    }

    /// Tuples admitted so far.
    pub fn pushed(&self) -> u64 {
        self.inner.pushed.load(Ordering::Relaxed)
    }

    /// Tuples admitted but not yet pulled by the engine.
    pub fn depth(&self) -> u64 {
        self.inner.pushed.load(Ordering::Relaxed) - self.inner.popped.load(Ordering::Relaxed)
    }

    /// Creates a [`StreamSource`] view over this queue delivering at most
    /// `rate` tuples per simulated cycle (the shard's ingress bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn source(&self, rate: f64) -> QueueSource {
        QueueSource {
            inner: Arc::clone(&self.inner),
            limiter: RateLimiter::new(rate, rate.ceil() as usize * 2),
            produced: 0,
        }
    }
}

/// The engine-side endpoint of a [`SharedQueue`].
#[derive(Debug)]
pub struct QueueSource {
    inner: Arc<QueueInner>,
    limiter: RateLimiter,
    produced: u64,
}

impl StreamSource<Tuple> for QueueSource {
    fn pull(&mut self, cy: Cycle, max: usize, out: &mut Vec<Tuple>) -> usize {
        let granted = self.limiter.grant(cy, max);
        if granted == 0 {
            return 0;
        }
        let mut q = self.inner.queue.lock().expect("queue lock");
        let take = granted.min(q.len());
        for _ in 0..take {
            out.push(q.pop_front().expect("len checked"));
        }
        drop(q);
        self.inner.popped.fetch_add(take as u64, Ordering::Relaxed);
        self.produced += take as u64;
        take
    }

    fn exhausted(&self) -> bool {
        self.inner.closed.load(Ordering::Relaxed)
            && self.inner.queue.lock().expect("queue lock").is_empty()
    }

    fn produced(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let q = SharedQueue::new();
        q.push_batch(&[Tuple::from_key(1), Tuple::from_key(2)]);
        q.push_batch(&[Tuple::from_key(3)]);
        let mut src = q.source(64.0);
        let mut out = Vec::new();
        src.pull(0, 10, &mut out);
        assert_eq!(out.iter().map(|t| t.key).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.pushed(), 3);
    }

    #[test]
    fn rate_limits_delivery() {
        let q = SharedQueue::new();
        let tuples: Vec<Tuple> = (0..100).map(Tuple::from_key).collect();
        q.push_batch(&tuples);
        let mut src = q.source(2.0);
        let mut out = Vec::new();
        let mut got = 0;
        for cy in 0..10 {
            got += src.pull(cy, 100, &mut out);
        }
        // ~2 tuples/cycle over 10 cycles (plus the initial burst headroom).
        assert!(got <= 24, "{got}");
        assert!(got >= 20, "{got}");
    }

    #[test]
    fn exhaustion_requires_close_and_empty() {
        let q = SharedQueue::new();
        q.push_batch(&[Tuple::from_key(9)]);
        let mut src = q.source(8.0);
        assert!(!src.exhausted());
        q.close();
        assert!(!src.exhausted(), "still holds a tuple");
        let mut out = Vec::new();
        src.pull(0, 4, &mut out);
        assert!(src.exhausted());
        assert_eq!(src.produced(), 1);
    }
}
