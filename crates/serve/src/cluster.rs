//! The cluster front-end: admission, shard fan-out, completion tracking,
//! balancing and the cross-shard merge/finalize path.

use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use datagen::Tuple;
use ditto_core::{ArchConfig, DittoApp, ExecutionReport, MergeableOutput};
use ditto_framework::SkewAnalyzer;
use ditto_obs::{
    LogHistogram, MetricsRegistry, MetricsSnapshot, SpanEvent, SpanJournal, SpanStage, NO_SHARD,
};

use crate::balancer::{BalancerConfig, ShardBalancer};
use crate::batch::{BatchId, CompletedBatch};
use crate::metrics::{AdmissionSnapshot, ClusterSnapshot, ShardSnapshot};
use crate::router::{RoutingTable, SlotMove, DEFAULT_SLOTS};
use crate::shard::{spawn_shard, ShardCommand, ShardEvent, ShardFinish, ShardHandle};

/// How long the cluster waits on a shard reply or completion event before
/// declaring the deployment wedged. Simulated work is fast; a hit here
/// means a shard thread died (its panic message names the shard).
const SHARD_REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Cluster deployment configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of pipeline shards (simulated FPGAs).
    pub shards: usize,
    /// Per-shard architecture (every shard runs the same implementation).
    pub arch: ArchConfig,
    /// Routing slots (migration granularity).
    pub slots: usize,
    /// Cycles a shard simulates between command polls — the completion
    /// detection granularity.
    pub cycles_per_poll: u64,
    /// Per-shard ingress bandwidth in tuples per cycle (the paper's
    /// platform delivers 8 eight-byte tuples per cycle over a 64-byte
    /// interface).
    pub ingress_rate: f64,
    /// Skew-aware balancer tuning; `None` pins the routing table.
    pub balancer: Option<BalancerConfig>,
    /// Capacity of each span-journal ring buffer (one per shard plus one
    /// cluster-side); `0` disables trace buffering entirely while keeping
    /// the lifetime counters exact.
    pub journal_capacity: usize,
}

impl ServeConfig {
    /// A cluster of `shards` identical `arch` shards with routing defaults
    /// and the balancer disabled (fixed key ranges).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, arch: ArchConfig) -> Self {
        assert!(shards > 0, "need at least one shard");
        ServeConfig {
            shards,
            arch,
            slots: DEFAULT_SLOTS.max(shards),
            cycles_per_poll: 256,
            ingress_rate: 8.0,
            balancer: None,
            journal_capacity: 4096,
        }
    }

    /// The online-serving preset: each shard provisions the paper's maximal
    /// skew-handling capacity (`X = M − 1`, the [`SkewAnalyzer`]'s
    /// prior-free online recommendation), enables throughput-triggered
    /// rescheduling, and the cluster-level balancer is on.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `n_pre` or `m_pri` is zero.
    pub fn online(shards: usize, n_pre: u32, m_pri: u32) -> Self {
        let x_sec = SkewAnalyzer::paper().recommend_online(m_pri);
        let arch = ArchConfig::new(n_pre, m_pri, x_sec)
            .with_reschedule(0.5, 2_000)
            .with_profile_cycles(256)
            .with_monitor_window(2_048);
        ServeConfig::new(shards, arch).with_balancer(BalancerConfig::default())
    }

    /// Sets the routing slot count.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the per-poll cycle chunk.
    pub fn with_cycles_per_poll(mut self, cycles: u64) -> Self {
        self.cycles_per_poll = cycles;
        self
    }

    /// Sets the per-shard ingress rate in tuples per cycle.
    pub fn with_ingress_rate(mut self, rate: f64) -> Self {
        self.ingress_rate = rate;
        self
    }

    /// Enables the skew-aware balancer.
    pub fn with_balancer(mut self, config: BalancerConfig) -> Self {
        self.balancer = Some(config);
        self
    }

    /// Sets the per-journal ring-buffer capacity (`0` disables trace
    /// buffering; lifetime counters stay exact either way).
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = capacity;
        self
    }
}

struct PendingCluster {
    remaining: usize,
    tuples: u64,
    worst_cycles: u64,
    worst_wall: Duration,
}

/// Terminal result of a cluster run.
#[derive(Debug)]
pub struct ClusterOutcome<O> {
    /// The combined application output — provably equal to a single-engine
    /// `run_dataset` over the concatenated input (see the crate docs for
    /// the per-application equality notion).
    pub output: O,
    /// Each shard's final execution report, indexed by shard.
    pub reports: Vec<ExecutionReport>,
    /// Final cluster metrics (latencies, migrations, completion counts).
    pub snapshot: ClusterSnapshot,
}

/// A cluster of persistent pipeline shards behind a skew-aware router.
///
/// Admission ([`submit`](Self::submit)) splits each tuple batch across
/// shards by key-hash slot; every shard is one [`PersistentPipeline`]
/// (one simulated FPGA) running on its own OS thread, so the cluster
/// genuinely serves shards concurrently. Completion events stream back and
/// feed latency metrics; [`rebalance`](Self::rebalance) migrates key ranges
/// off hot shards; [`finish`](Self::finish) merges PriPE states *across*
/// shards — each remote shard acts as a super-SecPE whose partial buffers
/// fold into shard 0's via the application's own `merge` — and finalizes
/// once, which is why sharded results equal a single-engine run.
///
/// [`PersistentPipeline`]: ditto_core::PersistentPipeline
pub struct Cluster<A: DittoApp + Clone + 'static> {
    app: A,
    handles: Vec<ShardHandle<A>>,
    router: RoutingTable,
    balancer: Option<ShardBalancer>,
    events: Receiver<ShardEvent>,
    pending: HashMap<BatchId, PendingCluster>,
    next_batch: BatchId,
    batches_submitted: u64,
    batches_completed: u64,
    tuples_submitted: u64,
    tuples_completed: u64,
    batches_shed: u64,
    tuples_shed: u64,
    queue_depth_peak: u64,
    shard_batches_done: Vec<u64>,
    last_shard_tuples: Vec<u64>,
    latency_cycles: LogHistogram,
    latency_wall_us: LogHistogram,
    completed: Vec<CompletedBatch>,
    /// Cluster-side lifecycle events (the cross-shard `Merge` stage).
    journal: SpanJournal,
}

impl<A: DittoApp + Clone + 'static> Cluster<A> {
    /// Boots `config.shards` shard threads, each serving a clone of `app`.
    pub fn new(app: A, config: &ServeConfig) -> Self {
        let (event_tx, events) = std::sync::mpsc::channel();
        let handles = (0..config.shards)
            .map(|id| {
                spawn_shard(
                    id,
                    app.clone(),
                    &config.arch,
                    config.ingress_rate,
                    config.cycles_per_poll,
                    config.journal_capacity,
                    event_tx.clone(),
                )
            })
            .collect();
        Cluster {
            app,
            handles,
            router: RoutingTable::new(config.shards, config.slots),
            balancer: config
                .balancer
                .clone()
                .map(|b| ShardBalancer::new(config.shards, b)),
            events,
            pending: HashMap::new(),
            next_batch: 0,
            batches_submitted: 0,
            batches_completed: 0,
            tuples_submitted: 0,
            tuples_completed: 0,
            batches_shed: 0,
            tuples_shed: 0,
            queue_depth_peak: 0,
            shard_batches_done: vec![0; config.shards],
            last_shard_tuples: vec![0; config.shards],
            latency_cycles: LogHistogram::new(),
            latency_wall_us: LogHistogram::new(),
            completed: Vec::new(),
            journal: SpanJournal::new(config.journal_capacity),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handles.len()
    }

    /// Read access to the routing table (slot ownership, admitted loads).
    pub fn router(&self) -> &RoutingTable {
        &self.router
    }

    /// Batches admitted but not yet fully served.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Admits one batch: splits it across shards by the current routing
    /// table and returns its id. Completion is observed via
    /// [`poll`](Self::poll)/[`drain`](Self::drain).
    ///
    /// # Panics
    ///
    /// Panics if a shard thread has died (its own panic is reported on that
    /// thread).
    pub fn submit(&mut self, tuples: Vec<Tuple>) -> BatchId {
        let id = self.next_batch;
        self.next_batch += 1;
        self.batches_submitted += 1;
        self.tuples_submitted += tuples.len() as u64;
        let total = tuples.len() as u64;
        let parts = self.router.split(tuples);
        let now = Instant::now();
        let mut remaining = 0;
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            remaining += 1;
            self.handles[shard]
                .commands
                .send(ShardCommand::Submit {
                    batch: id,
                    tuples: part,
                    submitted: now,
                })
                .unwrap_or_else(|_| panic!("shard {shard} is gone"));
        }
        if remaining == 0 {
            // Degenerate empty batch: served by nobody, complete at once.
            self.record_completion(CompletedBatch {
                id,
                tuples: 0,
                latency_cycles: 0,
                wall: Duration::ZERO,
            });
        } else {
            self.pending.insert(
                id,
                PendingCluster {
                    remaining,
                    tuples: total,
                    worst_cycles: 0,
                    worst_wall: Duration::ZERO,
                },
            );
        }
        self.queue_depth_peak = self
            .queue_depth_peak
            .max(self.tuples_submitted - self.tuples_completed);
        self.poll();
        id
    }

    /// Tuples admitted but not yet part of a completed batch — the
    /// cluster-wide queue depth an admission layer reads before deciding to
    /// accept more work. Non-blocking: absorbs queued completion events but
    /// never round-trips to a shard thread.
    pub fn queue_depth(&mut self) -> u64 {
        self.poll();
        self.tuples_submitted - self.tuples_completed
    }

    /// Records a batch an admission layer refused (load shedding): the
    /// batch never entered the cluster, but its refusal is part of the
    /// serving story and shows up in every snapshot.
    pub fn record_shed(&mut self, tuples: u64) {
        self.batches_shed += 1;
        self.tuples_shed += tuples;
    }

    /// The admission-side counters, without a shard round-trip: queue
    /// depth (current + high-watermark), submitted/completed/shed tallies
    /// and the batch latency distributions. This is the non-blocking hook
    /// a front-end polls on every admission decision; the full
    /// [`snapshot`](Self::snapshot) additionally interrogates every shard
    /// thread synchronously.
    pub fn admission_snapshot(&mut self) -> AdmissionSnapshot {
        self.poll();
        AdmissionSnapshot {
            batches_submitted: self.batches_submitted,
            batches_completed: self.batches_completed,
            batches_shed: self.batches_shed,
            tuples_submitted: self.tuples_submitted,
            tuples_completed: self.tuples_completed,
            tuples_shed: self.tuples_shed,
            queue_depth: self.tuples_submitted - self.tuples_completed,
            queue_depth_peak: self.queue_depth_peak,
            latency_cycles: self.latency_cycles.stats(),
            latency_wall_us: self.latency_wall_us.stats(),
        }
    }

    /// Absorbs all completion events currently queued (non-blocking).
    pub fn poll(&mut self) {
        while let Ok(ev) = self.events.try_recv() {
            self.on_event(ev);
        }
    }

    /// Blocks until every admitted batch has completed.
    ///
    /// # Panics
    ///
    /// Panics if no completion arrives within the shard-reply timeout —
    /// which means a shard thread died or deadlocked.
    pub fn drain(&mut self) {
        self.poll();
        while !self.pending.is_empty() {
            match self.events.recv_timeout(SHARD_REPLY_TIMEOUT) {
                Ok(ev) => self.on_event(ev),
                Err(_) => {
                    // Name the culprit: if a shard thread died, its panic
                    // payload is the diagnosis, not "drain stalled".
                    for (shard, handle) in self.handles.drain(..).enumerate() {
                        if handle.thread.is_finished() {
                            if let Err(payload) = handle.thread.join() {
                                panic!(
                                    "cluster drain stalled: shard {shard} thread panicked: {}",
                                    panic_message(payload.as_ref())
                                );
                            }
                        }
                    }
                    panic!(
                        "cluster drain stalled with {} batches outstanding",
                        self.pending.len()
                    );
                }
            }
        }
    }

    fn on_event(&mut self, ev: ShardEvent) {
        self.shard_batches_done[ev.shard] += 1;
        let done = {
            let p = self
                .pending
                .get_mut(&ev.batch)
                .expect("completion for unknown batch");
            p.worst_cycles = p.worst_cycles.max(ev.latency_cycles);
            p.worst_wall = p.worst_wall.max(ev.wall);
            p.remaining -= 1;
            p.remaining == 0
        };
        if done {
            let p = self.pending.remove(&ev.batch).expect("present");
            self.record_completion(CompletedBatch {
                id: ev.batch,
                tuples: p.tuples,
                latency_cycles: p.worst_cycles,
                wall: p.worst_wall,
            });
        }
    }

    fn record_completion(&mut self, batch: CompletedBatch) {
        self.batches_completed += 1;
        self.tuples_completed += batch.tuples;
        self.latency_cycles.record(batch.latency_cycles);
        self.latency_wall_us
            .record(u64::try_from(batch.wall.as_micros()).unwrap_or(u64::MAX));
        self.journal.record(
            batch.id,
            SpanStage::Merge,
            batch.latency_cycles,
            NO_SHARD,
            batch.tuples,
        );
        self.completed.push(batch);
    }

    /// Takes the completion records accumulated since the last call —
    /// load generators read these for per-batch latency traces. Absorbs
    /// queued events first.
    pub fn take_completed(&mut self) -> Vec<CompletedBatch> {
        self.poll();
        std::mem::take(&mut self.completed)
    }

    fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        let replies: Vec<_> = self
            .handles
            .iter()
            .enumerate()
            .map(|(shard, h)| {
                let (tx, rx) = std::sync::mpsc::channel();
                h.commands
                    .send(ShardCommand::Snapshot { reply: tx })
                    .unwrap_or_else(|_| panic!("shard {shard} is gone"));
                rx
            })
            .collect();
        replies
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                rx.recv_timeout(SHARD_REPLY_TIMEOUT)
                    .unwrap_or_else(|_| panic!("shard {shard} snapshot timed out"))
            })
            .collect()
    }

    /// A point-in-time view of the whole cluster (synchronously snapshots
    /// every shard).
    pub fn snapshot(&mut self) -> ClusterSnapshot {
        self.poll();
        let shards = self.shard_snapshots();
        self.assemble_snapshot(shards)
    }

    fn assemble_snapshot(&self, shards: Vec<ShardSnapshot>) -> ClusterSnapshot {
        ClusterSnapshot {
            shards,
            batches_submitted: self.batches_submitted,
            batches_completed: self.batches_completed,
            batches_shed: self.batches_shed,
            tuples_submitted: self.tuples_submitted,
            tuples_shed: self.tuples_shed,
            queue_depth: self.tuples_submitted - self.tuples_completed,
            queue_depth_peak: self.queue_depth_peak,
            migrations: self.balancer.as_ref().map_or(0, ShardBalancer::migrations),
            latency_cycles: self.latency_cycles.stats(),
            latency_wall_us: self.latency_wall_us.stats(),
        }
    }

    /// The merged cross-layer observability snapshot: every shard's
    /// registry (serving counters plus its engine's cycle/step/channel
    /// metrics, labelled `shard=<i>`) merged with the cluster-level
    /// admission counters and the bucketed batch-latency histograms.
    /// Synchronously round-trips to every shard thread, like
    /// [`snapshot`](Self::snapshot).
    pub fn metrics(&mut self) -> MetricsSnapshot {
        self.poll();
        let replies: Vec<_> = self
            .handles
            .iter()
            .enumerate()
            .map(|(shard, h)| {
                let (tx, rx) = std::sync::mpsc::channel();
                h.commands
                    .send(ShardCommand::Metrics { reply: tx })
                    .unwrap_or_else(|_| panic!("shard {shard} is gone"));
                rx
            })
            .collect();
        let mut merged = self.cluster_metrics();
        for (shard, rx) in replies.into_iter().enumerate() {
            let snap = rx
                .recv_timeout(SHARD_REPLY_TIMEOUT)
                .unwrap_or_else(|_| panic!("shard {shard} metrics timed out"));
            merged.merge(&snap);
        }
        merged
    }

    /// The cluster-level (admission-side) registry: batch/tuple tallies,
    /// queue depth, migrations and the latency histograms.
    fn cluster_metrics(&self) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        let b_sub = reg.counter("ditto_cluster_batches_submitted", "serve", "batches");
        let b_done = reg.counter("ditto_cluster_batches_completed", "serve", "batches");
        let b_shed = reg.counter("ditto_cluster_batches_shed", "serve", "batches");
        let t_sub = reg.counter("ditto_cluster_tuples_submitted", "serve", "tuples");
        let t_done = reg.counter("ditto_cluster_tuples_completed", "serve", "tuples");
        let t_shed = reg.counter("ditto_cluster_tuples_shed", "serve", "tuples");
        let depth = reg.gauge("ditto_cluster_queue_depth", "serve", "tuples");
        let peak = reg.gauge("ditto_cluster_queue_depth_peak", "serve", "tuples");
        let migr = reg.counter("ditto_cluster_migrations", "serve", "items");
        let recorded = reg.counter("ditto_cluster_journal_events", "serve", "events");
        let evicted = reg.counter("ditto_cluster_journal_evicted", "serve", "events");
        reg.set_counter(b_sub, self.batches_submitted);
        reg.set_counter(b_done, self.batches_completed);
        reg.set_counter(b_shed, self.batches_shed);
        reg.set_counter(t_sub, self.tuples_submitted);
        reg.set_counter(t_done, self.tuples_completed);
        reg.set_counter(t_shed, self.tuples_shed);
        reg.set_gauge(depth, self.tuples_submitted - self.tuples_completed);
        reg.set_gauge(peak, self.queue_depth_peak);
        reg.set_counter(
            migr,
            self.balancer.as_ref().map_or(0, ShardBalancer::migrations),
        );
        reg.set_counter(recorded, self.journal.recorded());
        reg.set_counter(evicted, self.journal.evicted());
        let lat_c = reg.histogram("ditto_cluster_batch_latency_cycles", "serve", "cycles");
        let lat_w = reg.histogram("ditto_cluster_batch_latency_wall", "serve", "us");
        reg.set_histogram(lat_c, self.latency_cycles.clone());
        reg.set_histogram(lat_w, self.latency_wall_us.clone());
        reg.snapshot()
    }

    /// Drains every span journal — each shard's `Queue`/`Step`/`Drain`
    /// events plus the cluster's `Merge` events — into one flat list.
    /// Events already drained are gone; buffering capacity comes from
    /// [`ServeConfig::journal_capacity`].
    pub fn take_journal(&mut self) -> Vec<SpanEvent> {
        self.poll();
        let replies: Vec<_> = self
            .handles
            .iter()
            .enumerate()
            .map(|(shard, h)| {
                let (tx, rx) = std::sync::mpsc::channel();
                h.commands
                    .send(ShardCommand::Journal { reply: tx })
                    .unwrap_or_else(|_| panic!("shard {shard} is gone"));
                rx
            })
            .collect();
        let mut events = self.journal.drain();
        for (shard, rx) in replies.into_iter().enumerate() {
            let mut shard_events = rx
                .recv_timeout(SHARD_REPLY_TIMEOUT)
                .unwrap_or_else(|_| panic!("shard {shard} journal timed out"));
            events.append(&mut shard_events);
        }
        events
    }

    /// One balancing round: reads every shard's live per-PE workload
    /// counters, feeds the window to the skew predictor, and applies any
    /// recommended key-range migrations to the routing table. Returns the
    /// applied moves (empty when balanced or the balancer is disabled).
    pub fn rebalance(&mut self) -> Vec<SlotMove> {
        self.poll();
        if self.balancer.is_none() {
            return Vec::new();
        }
        let snaps = self.shard_snapshots();
        let window: Vec<u64> = snaps
            .iter()
            .zip(&self.last_shard_tuples)
            .map(|(s, &then)| s.tuples - then)
            .collect();
        self.last_shard_tuples = snaps.iter().map(|s| s.tuples).collect();
        let balancer = self.balancer.as_mut().expect("checked above");
        let moves = balancer.rebalance(&window, &mut self.router);
        for mv in &moves {
            self.router.apply(*mv);
        }
        moves
    }

    /// Collects every shard's terminal state (drains each shard engine to
    /// quiescence in parallel), absorbing all remaining completion events.
    ///
    /// Failure diagnosis joins the dead thread where possible, so the
    /// panic names the *shard's* failure (its payload), not just the
    /// broken channel it left behind.
    fn collect_finishes(&mut self) -> Vec<ShardFinish<A>> {
        let mut handles: Vec<Option<ShardHandle<A>>> = self.handles.drain(..).map(Some).collect();
        // Fan the Finish command out first so all shards drain concurrently.
        let replies: Vec<_> = handles
            .iter()
            .map(|h| {
                let (tx, rx) = std::sync::mpsc::channel();
                let sent = h
                    .as_ref()
                    .expect("handle present before collection")
                    .commands
                    .send(ShardCommand::Finish { reply: tx })
                    .is_ok();
                (rx, sent)
            })
            .collect();
        let mut finishes = Vec::with_capacity(handles.len());
        for (shard, (rx, sent)) in replies.into_iter().enumerate() {
            let reply = if sent {
                rx.recv_timeout(SHARD_REPLY_TIMEOUT).ok()
            } else {
                None
            };
            match reply {
                Some(f) => finishes.push(f),
                None => report_shard_death(shard, handles[shard].take().expect("handle present")),
            }
        }
        for (shard, handle) in handles.into_iter().enumerate() {
            let handle = handle.expect("only dead shards are taken");
            if let Err(payload) = handle.thread.join() {
                panic!(
                    "shard {shard} thread panicked: {}",
                    panic_message(payload.as_ref())
                );
            }
        }
        // Every completion event was sent before the shard replied.
        self.poll();
        assert!(
            self.pending.is_empty(),
            "{} batches unaccounted after finish",
            self.pending.len()
        );
        finishes
    }

    fn outcome_snapshot(&self, reports: &[ExecutionReport]) -> ClusterSnapshot {
        let shards = reports
            .iter()
            .enumerate()
            .map(|(shard, r)| ShardSnapshot {
                shard,
                cycles: r.cycles,
                tuples: r.tuples,
                queue_depth: 0,
                reschedules: r.reschedules,
                plans_generated: r.plans_generated,
                per_pe_processed: r.per_pe_processed.clone(),
                batches_completed: self.shard_batches_done[shard],
                batches_pending: 0,
            })
            .collect();
        self.assemble_snapshot(shards)
    }

    /// Shuts the cluster down and produces the combined output via the
    /// cross-shard state merge: for each PriPE index `j`, every other
    /// shard's PriPE `j` buffer folds into shard 0's through the
    /// application's `merge` (shards act as super-SecPEs), then `finalize`
    /// runs once over the merged states.
    ///
    /// For decomposable applications (and exact-arithmetic ones like
    /// fixed-point PageRank) this is *identical* to a single-engine run
    /// over the concatenated input; for data partitioning the outputs are
    /// equal as per-partition multisets. HHD's sketches merge exactly, but
    /// its candidate tables are populated per shard — see the crate docs
    /// for the collision-only edge case.
    ///
    /// # Panics
    ///
    /// Panics if a shard thread died or its engine failed to drain.
    pub fn finish(mut self) -> ClusterOutcome<A::Output> {
        let finishes = self.collect_finishes();
        let mut reports = Vec::with_capacity(finishes.len());
        let mut iter = finishes.into_iter();
        let first = iter.next().expect("at least one shard");
        let mut acc = first.pri_states;
        reports.push(first.report);
        for f in iter {
            for (j, state) in f.pri_states.into_iter().enumerate() {
                self.app.merge(&mut acc[j], &state);
            }
            reports.push(f.report);
        }
        let output = self.app.finalize(acc);
        let snapshot = self.outcome_snapshot(&reports);
        ClusterOutcome {
            output,
            reports,
            snapshot,
        }
    }

    /// Shuts the cluster down with each shard finalizing *locally*,
    /// returning one output per shard — the shape a serving layer uses when
    /// partial results are consumed per shard (result caching, incremental
    /// clients). Combine them with
    /// [`MergeableOutput::combine_outputs`] when a global view is needed.
    ///
    /// # Panics
    ///
    /// Panics if a shard thread died or its engine failed to drain.
    pub fn finish_per_shard(mut self) -> (Vec<A::Output>, Vec<ExecutionReport>, ClusterSnapshot)
    where
        A: MergeableOutput,
    {
        let finishes = self.collect_finishes();
        let mut outputs = Vec::with_capacity(finishes.len());
        let mut reports = Vec::with_capacity(finishes.len());
        for f in finishes {
            outputs.push(self.app.finalize(f.pri_states));
            reports.push(f.report);
        }
        let snapshot = self.outcome_snapshot(&reports);
        (outputs, reports, snapshot)
    }
}

/// Diagnoses a shard that failed to reply to `Finish`: if its thread
/// already ended, join it and propagate the panic payload (or report the
/// silent exit); if it is still alive it is wedged, and joining would hang
/// — say so instead.
fn report_shard_death<A: ditto_core::DittoApp>(shard: usize, handle: ShardHandle<A>) -> ! {
    // A dropped command channel slightly precedes thread exit while the
    // panic unwinds; give it a moment so the payload is joinable.
    for _ in 0..50 {
        if handle.thread.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if handle.thread.is_finished() {
        match handle.thread.join() {
            Err(payload) => panic!(
                "shard {shard} failed to finish: shard thread panicked: {}",
                panic_message(payload.as_ref())
            ),
            Ok(()) => {
                panic!("shard {shard} failed to finish: shard thread exited without replying")
            }
        }
    }
    panic!("shard {shard} failed to finish within the reply timeout (thread alive — deadlocked?)");
}

/// Best-effort extraction of a joined thread's panic payload: `panic!`
/// with a literal carries `&str`, formatted panics carry `String`, anything
/// else is reported opaquely. Used to turn "shard thread panicked" into a
/// message naming the actual failure.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

impl<A: DittoApp + Clone + 'static> std::fmt::Debug for Cluster<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.handles.len())
            .field("in_flight", &self.pending.len())
            .field("batches_submitted", &self.batches_submitted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_core::apps::CountPerKey;

    #[test]
    fn admission_counters_track_queue_depth_and_sheds() {
        let mut cluster = Cluster::new(
            CountPerKey::new(4),
            &ServeConfig::new(2, ArchConfig::new(2, 4, 1)),
        );
        let batch: Vec<Tuple> = (0..500u64).map(Tuple::from_key).collect();
        cluster.submit(batch.clone());
        cluster.submit(batch);
        // At least one batch was outstanding at its own admission instant.
        assert!(cluster.admission_snapshot().queue_depth_peak >= 500);
        cluster.record_shed(123);
        cluster.drain();
        assert_eq!(cluster.queue_depth(), 0);
        let adm = cluster.admission_snapshot();
        assert_eq!(adm.tuples_submitted, 1_000);
        assert_eq!(adm.tuples_completed, 1_000);
        assert_eq!(adm.batches_submitted, 2);
        assert_eq!(adm.batches_completed, 2);
        assert_eq!(adm.batches_shed, 1);
        assert_eq!(adm.tuples_shed, 123);
        assert_eq!(adm.queue_depth, 0);
        let outcome = cluster.finish();
        assert_eq!(outcome.snapshot.batches_shed, 1);
        assert_eq!(outcome.snapshot.tuples_shed, 123);
        assert_eq!(outcome.snapshot.queue_depth, 0);
        assert!(outcome.snapshot.queue_depth_peak >= 500);
    }

    /// An app that detonates inside the shard engine on a magic key.
    #[derive(Clone)]
    struct PoisonApp;

    impl DittoApp for PoisonApp {
        type Value = ();
        type State = u64;
        type Output = u64;

        fn name(&self) -> &str {
            "poison"
        }

        fn preprocess(&self, tuple: Tuple, m_pri: u32) -> ditto_core::Routed<()> {
            assert!(tuple.key != 42, "poisoned tuple 42 reached the PrePE");
            ditto_core::Routed::new((tuple.key % u64::from(m_pri)) as u32, ())
        }

        fn new_state(&self, _pe_entries: usize) -> u64 {
            0
        }

        fn process(&self, state: &mut u64, (): &()) {
            *state += 1;
        }

        fn merge(&self, pri: &mut u64, sec: &u64) {
            *pri += sec;
        }

        fn finalize(&self, pri_states: Vec<u64>) -> u64 {
            pri_states.into_iter().sum()
        }
    }

    #[test]
    fn shard_panic_payload_reaches_the_finish_error() {
        let mut cluster = Cluster::new(PoisonApp, &ServeConfig::new(1, ArchConfig::new(1, 2, 0)));
        cluster.submit(vec![Tuple::from_key(42)]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || cluster.finish()))
            .expect_err("finish must propagate the shard panic");
        let msg = panic_message(err.as_ref());
        assert!(
            msg.contains("poisoned tuple 42"),
            "shard panic payload lost; finish reported: {msg}"
        );
        assert!(msg.contains("shard 0"), "failing shard unnamed: {msg}");
    }

    #[test]
    fn panic_payloads_become_messages() {
        let caught =
            std::panic::catch_unwind(|| panic!("shard0 deadlocked at 42")).expect_err("panicked");
        assert_eq!(panic_message(caught.as_ref()), "shard0 deadlocked at 42");
        let caught = std::panic::catch_unwind(|| {
            let n = 7;
            panic!("engine stalled with {n} tuples")
        })
        .expect_err("panicked");
        assert_eq!(
            panic_message(caught.as_ref()),
            "engine stalled with 7 tuples"
        );
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).expect_err("odd");
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }
}
