//! The cluster front-end: admission, shard fan-out, completion tracking,
//! balancing and the cross-shard merge/finalize path.

use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use datagen::Tuple;
use ditto_core::{ArchConfig, DittoApp, ExecutionReport, MergeableOutput};
use ditto_framework::SkewAnalyzer;
use ditto_obs::{
    LogHistogram, MetricsRegistry, MetricsSnapshot, SpanEvent, SpanJournal, SpanStage, NO_SHARD,
};

use crate::balancer::{BalancerConfig, ShardBalancer};
use crate::batch::{BatchId, CompletedBatch};
use crate::metrics::{AdmissionSnapshot, ClusterSnapshot, ShardSnapshot};
use crate::router::{RoutingTable, SlotMove, DEFAULT_SLOTS};
use crate::shard::{
    panic_message, spawn_shard, ShardCommand, ShardEvent, ShardFinish, ShardHandle,
};

/// How long the cluster waits on a shard reply or completion event before
/// declaring the deployment wedged. Simulated work is fast; a hit here
/// means a shard thread died (its panic message names the shard).
const SHARD_REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Cluster deployment configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of pipeline shards (simulated FPGAs).
    pub shards: usize,
    /// Per-shard architecture (every shard runs the same implementation
    /// unless [`ServeConfig::with_shard_archs`] installs per-shard
    /// overrides).
    pub arch: ArchConfig,
    /// Optional per-shard architecture overrides, e.g. from a
    /// `ditto-plan` deployment plan run per shard's workload. All entries
    /// must agree with `arch` on `m_pri` and `pe_entries` (the cross-shard
    /// merge and failover paths require identical state shapes); tuning
    /// knobs — `n_pre`, `x_sec`, queue depths, reschedule policy — may
    /// differ freely.
    pub shard_archs: Option<Vec<ArchConfig>>,
    /// Routing slots (migration granularity).
    pub slots: usize,
    /// Cycles a shard simulates between command polls — the completion
    /// detection granularity.
    pub cycles_per_poll: u64,
    /// Per-shard ingress bandwidth in tuples per cycle (the paper's
    /// platform delivers 8 eight-byte tuples per cycle over a 64-byte
    /// interface).
    pub ingress_rate: f64,
    /// Skew-aware balancer tuning; `None` pins the routing table.
    pub balancer: Option<BalancerConfig>,
    /// Capacity of each span-journal ring buffer (one per shard plus one
    /// cluster-side); `0` disables trace buffering entirely while keeping
    /// the lifetime counters exact.
    pub journal_capacity: usize,
    /// When `true` (the default), balancer migrations hand the source
    /// shard's accumulated state slice to the target shard
    /// ([`Cluster::handoff`]) instead of only redirecting future traffic.
    pub state_handoff: bool,
    /// Fault injection: kill one shard thread after it serves a fixed
    /// number of batches (the `DITTO_KILL_SHARD` test hook).
    pub fault: Option<ShardFault>,
}

/// Deterministic fault injection: panic `shard`'s thread after it has
/// served `after_batches` batches — the in-process stand-in for a crashed
/// FPGA host, used by the recovery tests and the CI fault-injection smoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// The shard to kill.
    pub shard: usize,
    /// Served-batch count at which the shard thread panics.
    pub after_batches: u64,
}

impl ShardFault {
    /// Parses the `DITTO_KILL_SHARD` environment hook, format
    /// `<shard>:<batches>` (e.g. `0:3` kills shard 0 after its third
    /// served batch). Returns `None` when unset or malformed.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("DITTO_KILL_SHARD").ok()?;
        let (shard, after) = raw.split_once(':')?;
        Some(ShardFault {
            shard: shard.trim().parse().ok()?,
            after_batches: after.trim().parse().ok()?,
        })
    }
}

impl ServeConfig {
    /// A cluster of `shards` identical `arch` shards with routing defaults
    /// and the balancer disabled (fixed key ranges).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, arch: ArchConfig) -> Self {
        assert!(shards > 0, "need at least one shard");
        ServeConfig {
            shards,
            arch,
            shard_archs: None,
            slots: DEFAULT_SLOTS.max(shards),
            cycles_per_poll: 256,
            ingress_rate: 8.0,
            balancer: None,
            journal_capacity: 4096,
            state_handoff: true,
            fault: None,
        }
    }

    /// The online-serving preset: each shard provisions the paper's maximal
    /// skew-handling capacity (`X = M − 1`, the [`SkewAnalyzer`]'s
    /// prior-free online recommendation), enables throughput-triggered
    /// rescheduling, and the cluster-level balancer is on.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `n_pre` or `m_pri` is zero.
    pub fn online(shards: usize, n_pre: u32, m_pri: u32) -> Self {
        let x_sec = SkewAnalyzer::paper().recommend_online(m_pri);
        let arch = ArchConfig::new(n_pre, m_pri, x_sec)
            .with_reschedule(0.5, 2_000)
            .with_profile_cycles(256)
            .with_monitor_window(2_048);
        ServeConfig::new(shards, arch).with_balancer(BalancerConfig::default())
    }

    /// Sets the routing slot count.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the per-poll cycle chunk.
    pub fn with_cycles_per_poll(mut self, cycles: u64) -> Self {
        self.cycles_per_poll = cycles;
        self
    }

    /// Sets the per-shard ingress rate in tuples per cycle.
    pub fn with_ingress_rate(mut self, rate: f64) -> Self {
        self.ingress_rate = rate;
        self
    }

    /// Enables the skew-aware balancer.
    pub fn with_balancer(mut self, config: BalancerConfig) -> Self {
        self.balancer = Some(config);
        self
    }

    /// Sets the per-journal ring-buffer capacity (`0` disables trace
    /// buffering; lifetime counters stay exact either way).
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = capacity;
        self
    }

    /// Enables or disables state handoff on balancer migrations (on by
    /// default; `ditto-ha` disables it to run its replicated handoff
    /// protocol instead).
    pub fn with_state_handoff(mut self, on: bool) -> Self {
        self.state_handoff = on;
        self
    }

    /// Installs per-shard architecture overrides (e.g. the chosen
    /// `ArchConfig` of a per-shard `ditto-plan` deployment plan). Shard
    /// `i` runs `archs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `archs.len() != self.shards`, or if any entry differs
    /// from the base `arch` in `m_pri` or `pe_entries` — the cross-shard
    /// merge folds PriPE `j`'s state across shards, so state shapes must
    /// match even when throughput knobs differ.
    pub fn with_shard_archs(mut self, archs: Vec<ArchConfig>) -> Self {
        assert_eq!(archs.len(), self.shards, "need one ArchConfig per shard");
        for (id, a) in archs.iter().enumerate() {
            assert_eq!(
                (a.m_pri, a.pe_entries),
                (self.arch.m_pri, self.arch.pe_entries),
                "shard {id}: per-shard archs must keep m_pri/pe_entries uniform"
            );
        }
        self.shard_archs = Some(archs);
        self
    }

    /// The architecture shard `shard` runs: its override when
    /// [`ServeConfig::with_shard_archs`] installed one, the shared base
    /// `arch` otherwise.
    pub fn arch_for(&self, shard: usize) -> &ArchConfig {
        self.shard_archs
            .as_ref()
            .map_or(&self.arch, |archs| &archs[shard])
    }

    /// Installs a deterministic shard-kill fault.
    pub fn with_fault(mut self, fault: ShardFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Installs the shard-kill fault from `DITTO_KILL_SHARD` when set
    /// (format `<shard>:<batches>`); a no-op otherwise. Opt-in per
    /// construction site so test clusters in the same process cannot
    /// inherit a kill hook by accident.
    pub fn with_fault_from_env(mut self) -> Self {
        self.fault = ShardFault::from_env().or(self.fault);
        self
    }
}

struct PendingCluster {
    /// Shards still holding an uncompleted sub-batch of this batch.
    shards: Vec<usize>,
    tuples: u64,
    worst_cycles: u64,
    worst_wall: Duration,
}

/// A shard thread's death notice: which shard died and why (its panic
/// payload). Returned by [`Cluster::failed_shards`]/[`Cluster::try_drain`]
/// for a recovery layer to act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// The dead shard.
    pub shard: usize,
    /// The shard thread's panic message.
    pub message: String,
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} died while serving: {}",
            self.shard, self.message
        )
    }
}

struct DeadShard {
    message: String,
    /// `true` once a recovery layer re-homed its slots and state.
    recovered: bool,
}

/// What one state handoff did and cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffReport {
    /// Source shard (its whole accumulated slice moved).
    pub from: usize,
    /// Target shard (received the slice through `merge`).
    pub to: usize,
    /// Slots whose ownership moved with the state.
    pub slots: Vec<usize>,
    /// Wall-clock pause: catch-up + extract + install, during which no new
    /// admissions were interleaved.
    pub pause: Duration,
    /// Simulated cycles the source stepped to reach its admission
    /// watermark before extraction.
    pub catch_up_cycles: u64,
    /// Tuples of history the moved slice covered.
    pub tuples_moved: u64,
}

/// The result of extracting a shard's accumulated slice mid-serve.
pub struct ShardStates<A: DittoApp> {
    /// The `M` post-merge PriPE states.
    pub states: Vec<A::State>,
    /// Tuples the slice covers.
    pub tuples: u64,
    /// Cycles the shard stepped to reach its admission watermark.
    pub catch_up_cycles: u64,
}

/// Terminal result of a cluster run.
#[derive(Debug)]
pub struct ClusterOutcome<O> {
    /// The combined application output — provably equal to a single-engine
    /// `run_dataset` over the concatenated input (see the crate docs for
    /// the per-application equality notion).
    pub output: O,
    /// Each shard's final execution report, indexed by shard.
    pub reports: Vec<ExecutionReport>,
    /// Final cluster metrics (latencies, migrations, completion counts).
    pub snapshot: ClusterSnapshot,
}

/// A cluster of persistent pipeline shards behind a skew-aware router.
///
/// Admission ([`submit`](Self::submit)) splits each tuple batch across
/// shards by key-hash slot; every shard is one [`PersistentPipeline`]
/// (one simulated FPGA) running on its own OS thread, so the cluster
/// genuinely serves shards concurrently. Completion events stream back and
/// feed latency metrics; [`rebalance`](Self::rebalance) migrates key ranges
/// off hot shards; [`finish`](Self::finish) merges PriPE states *across*
/// shards — each remote shard acts as a super-SecPE whose partial buffers
/// fold into shard 0's via the application's own `merge` — and finalizes
/// once, which is why sharded results equal a single-engine run.
///
/// [`PersistentPipeline`]: ditto_core::PersistentPipeline
pub struct Cluster<A: DittoApp + Clone + 'static> {
    app: A,
    handles: Vec<ShardHandle<A>>,
    router: RoutingTable,
    balancer: Option<ShardBalancer>,
    events: Receiver<ShardEvent>,
    pending: HashMap<BatchId, PendingCluster>,
    next_batch: BatchId,
    batches_submitted: u64,
    batches_completed: u64,
    tuples_submitted: u64,
    tuples_completed: u64,
    batches_shed: u64,
    tuples_shed: u64,
    queue_depth_peak: u64,
    shard_batches_done: Vec<u64>,
    last_shard_tuples: Vec<u64>,
    latency_cycles: LogHistogram,
    latency_wall_us: LogHistogram,
    completed: Vec<CompletedBatch>,
    /// Cluster-side lifecycle events (the cross-shard `Merge` stage).
    journal: SpanJournal,
    /// Death notices per shard (`None` = alive).
    dead: Vec<Option<DeadShard>>,
    /// Sub-batches that could not be delivered because their shard died
    /// racing the submit; a recovery layer takes and resubmits them.
    lost_parts: Vec<(BatchId, usize, Vec<Tuple>)>,
    tuples_lost: u64,
    state_handoff: bool,
    handoffs: Vec<HandoffReport>,
    handoffs_total: u64,
    handoff_pause_us: LogHistogram,
    /// PriPE count / buffer entries per shard — for synthesizing fresh
    /// (empty) states when a failed-over shard must still report.
    m_pri: u32,
    pe_entries: usize,
}

impl<A: DittoApp + Clone + 'static> Cluster<A> {
    /// Boots `config.shards` shard threads, each serving a clone of `app`.
    pub fn new(app: A, config: &ServeConfig) -> Self {
        let (event_tx, events) = std::sync::mpsc::channel();
        let handles = (0..config.shards)
            .map(|id| {
                spawn_shard(
                    id,
                    app.clone(),
                    config.arch_for(id),
                    config.ingress_rate,
                    config.cycles_per_poll,
                    config.journal_capacity,
                    config
                        .fault
                        .filter(|f| f.shard == id)
                        .map(|f| f.after_batches),
                    event_tx.clone(),
                )
            })
            .collect();
        Cluster {
            app,
            handles,
            router: RoutingTable::new(config.shards, config.slots),
            balancer: config
                .balancer
                .clone()
                .map(|b| ShardBalancer::new(config.shards, b)),
            events,
            pending: HashMap::new(),
            next_batch: 0,
            batches_submitted: 0,
            batches_completed: 0,
            tuples_submitted: 0,
            tuples_completed: 0,
            batches_shed: 0,
            tuples_shed: 0,
            queue_depth_peak: 0,
            shard_batches_done: vec![0; config.shards],
            last_shard_tuples: vec![0; config.shards],
            latency_cycles: LogHistogram::new(),
            latency_wall_us: LogHistogram::new(),
            completed: Vec::new(),
            journal: SpanJournal::new(config.journal_capacity),
            dead: (0..config.shards).map(|_| None).collect(),
            lost_parts: Vec::new(),
            tuples_lost: 0,
            state_handoff: config.state_handoff,
            handoffs: Vec::new(),
            handoffs_total: 0,
            handoff_pause_us: LogHistogram::new(),
            m_pri: config.arch.m_pri,
            pe_entries: config.arch.pe_entries,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handles.len()
    }

    /// Read access to the routing table (slot ownership, admitted loads).
    pub fn router(&self) -> &RoutingTable {
        &self.router
    }

    /// Batches admitted but not yet fully served.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Admits one batch: splits it across shards by the current routing
    /// table and returns its id. Completion is observed via
    /// [`poll`](Self::poll)/[`drain`](Self::drain).
    ///
    /// # Panics
    ///
    /// Panics if a shard thread has died (its own panic is reported on that
    /// thread).
    pub fn submit(&mut self, tuples: Vec<Tuple>) -> BatchId {
        self.dispatch(tuples, false).0
    }

    /// [`submit`](Self::submit), additionally returning a copy of each
    /// *delivered* per-shard sub-batch (index = shard; empty where nothing
    /// was routed or delivery failed) — the replication tap `ditto-ha`
    /// duplicates admitted batches to followers from. Sub-batches whose
    /// shard died racing the send are excluded here and surface through
    /// [`take_lost_parts`](Self::take_lost_parts) instead, so a follower
    /// never sees a tuple its leader did not accept.
    pub fn submit_with_parts(&mut self, tuples: Vec<Tuple>) -> (BatchId, Vec<Vec<Tuple>>) {
        let (id, parts) = self.dispatch(tuples, true);
        (id, parts.expect("parts requested"))
    }

    fn dispatch(&mut self, tuples: Vec<Tuple>, keep: bool) -> (BatchId, Option<Vec<Vec<Tuple>>>) {
        let id = self.next_batch;
        self.next_batch += 1;
        self.batches_submitted += 1;
        self.tuples_submitted += tuples.len() as u64;
        let total = tuples.len() as u64;
        let parts = self.router.split(tuples);
        let now = Instant::now();
        let routed: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(shard, _)| shard)
            .collect();
        let mut kept = keep.then(|| vec![Vec::new(); self.handles.len()]);
        if routed.is_empty() {
            // Served by nobody: complete the empty batch at once.
            self.record_completion(CompletedBatch {
                id,
                tuples: total,
                latency_cycles: 0,
                wall: Duration::ZERO,
            });
            self.poll();
            return (id, kept);
        }
        // Register the batch before the first send: a fast shard can
        // complete its sub-batch while this loop is still blocked in
        // await_failure on another shard's death notice (the dead shard
        // drops its command receiver before the drop-guard sends the
        // notice), and that completion event must find the entry. The
        // entry cannot complete early — every shard still owed a send
        // stays in its set until delivery resolves below.
        self.pending.insert(
            id,
            PendingCluster {
                shards: routed,
                tuples: total,
                worst_cycles: 0,
                worst_wall: Duration::ZERO,
            },
        );
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let copy = kept.is_some().then(|| part.clone());
            match self.handles[shard].commands.send(ShardCommand::Submit {
                batch: id,
                tuples: part,
                submitted: now,
            }) {
                Ok(()) => {
                    if let (Some(kept), Some(copy)) = (kept.as_mut(), copy) {
                        kept[shard] = copy;
                    }
                }
                Err(std::sync::mpsc::SendError(cmd)) => {
                    // The shard's command channel is gone: wait for its
                    // death notice (the drop-guard sends it while the
                    // thread unwinds), stash the sub-batch for a recovery
                    // layer to resubmit, and release the batch from
                    // waiting on the corpse.
                    self.await_failure(shard);
                    if let ShardCommand::Submit { tuples, .. } = cmd {
                        let lost = tuples.len() as u64;
                        self.tuples_lost += lost;
                        self.lost_parts.push((id, shard, tuples));
                        self.resolve_undelivered(id, shard, lost);
                    }
                }
            }
        }
        self.queue_depth_peak = self.queue_depth_peak.max(self.live_depth());
        self.poll();
        (id, kept)
    }

    /// Releases `batch` from waiting on `shard` after its `lost`-tuple
    /// sub-batch could not be delivered, completing the batch if no other
    /// shard still owes it a completion.
    fn resolve_undelivered(&mut self, batch: BatchId, shard: usize, lost: u64) {
        let done = {
            let p = self
                .pending
                .get_mut(&batch)
                .expect("undelivered shard keeps its batch pending");
            p.tuples -= lost;
            p.shards.retain(|&s| s != shard);
            p.shards.is_empty()
        };
        if done {
            let p = self.pending.remove(&batch).expect("present");
            self.record_completion(CompletedBatch {
                id: batch,
                tuples: p.tuples,
                latency_cycles: p.worst_cycles,
                wall: p.worst_wall,
            });
        }
    }

    /// Tuples admitted, not lost to a shard death, and not yet completed.
    fn live_depth(&self) -> u64 {
        self.tuples_submitted - self.tuples_completed - self.tuples_lost
    }

    /// Blocks until `shard`'s death notice arrives (absorbing other events
    /// on the way) and returns it. Only call when the shard's channel is
    /// already gone — the drop-guard's `Failed` event is then in flight.
    ///
    /// # Panics
    ///
    /// Panics if no death notice arrives within the reply timeout (the
    /// thread exited without panicking — a bug, not a crash).
    fn await_failure(&mut self, shard: usize) -> ShardFailure {
        let deadline = Instant::now() + SHARD_REPLY_TIMEOUT;
        while self.dead[shard].is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.events.recv_timeout(left) {
                Ok(ev) => self.on_event(ev),
                Err(_) => panic!("shard {shard} is gone without a failure notice"),
            }
        }
        let d = self.dead[shard].as_ref().expect("just observed");
        ShardFailure {
            shard,
            message: d.message.clone(),
        }
    }

    /// Tuples admitted but not yet part of a completed batch — the
    /// cluster-wide queue depth an admission layer reads before deciding to
    /// accept more work. Non-blocking: absorbs queued completion events but
    /// never round-trips to a shard thread.
    pub fn queue_depth(&mut self) -> u64 {
        self.poll();
        self.live_depth()
    }

    /// Records a batch an admission layer refused (load shedding): the
    /// batch never entered the cluster, but its refusal is part of the
    /// serving story and shows up in every snapshot.
    pub fn record_shed(&mut self, tuples: u64) {
        self.batches_shed += 1;
        self.tuples_shed += tuples;
    }

    /// The admission-side counters, without a shard round-trip: queue
    /// depth (current + high-watermark), submitted/completed/shed tallies
    /// and the batch latency distributions. This is the non-blocking hook
    /// a front-end polls on every admission decision; the full
    /// [`snapshot`](Self::snapshot) additionally interrogates every shard
    /// thread synchronously.
    pub fn admission_snapshot(&mut self) -> AdmissionSnapshot {
        self.poll();
        AdmissionSnapshot {
            batches_submitted: self.batches_submitted,
            batches_completed: self.batches_completed,
            batches_shed: self.batches_shed,
            tuples_submitted: self.tuples_submitted,
            tuples_completed: self.tuples_completed,
            tuples_shed: self.tuples_shed,
            queue_depth: self.live_depth(),
            queue_depth_peak: self.queue_depth_peak,
            latency_cycles: self.latency_cycles.stats(),
            latency_wall_us: self.latency_wall_us.stats(),
        }
    }

    /// Absorbs all completion events currently queued (non-blocking).
    pub fn poll(&mut self) {
        while let Ok(ev) = self.events.try_recv() {
            self.on_event(ev);
        }
    }

    /// Blocks until every admitted batch has completed.
    ///
    /// # Panics
    ///
    /// Panics immediately — with the dead shard's own panic message — if a
    /// shard thread has died (recovery layers use
    /// [`try_drain`](Self::try_drain) to intercept the failure instead),
    /// or if no completion arrives within the shard-reply timeout.
    pub fn drain(&mut self) {
        if let Err(f) = self.try_drain() {
            panic!("{f}");
        }
    }

    /// Blocks until every admitted batch has completed, or returns the
    /// failure notice of a dead, unrecovered shard the moment one is
    /// observed — the hook `ditto-ha` promotes replicas from. Call again
    /// after recovery to keep draining.
    ///
    /// # Panics
    ///
    /// Panics if no event arrives within the shard-reply timeout while
    /// batches are outstanding and every shard is (apparently) alive.
    pub fn try_drain(&mut self) -> Result<(), ShardFailure> {
        self.poll();
        loop {
            if let Some(f) = self.first_failure() {
                return Err(f);
            }
            if self.pending.is_empty() {
                return Ok(());
            }
            match self.events.recv_timeout(SHARD_REPLY_TIMEOUT) {
                Ok(ev) => self.on_event(ev),
                Err(_) => {
                    // Name the culprit: if a shard thread died without a
                    // notice, its panic payload is the diagnosis, not
                    // "drain stalled".
                    for (shard, handle) in self.handles.drain(..).enumerate() {
                        if handle.thread.is_finished() {
                            if let Err(payload) = handle.thread.join() {
                                panic!(
                                    "cluster drain stalled: shard {shard} thread panicked: {}",
                                    panic_message(payload.as_ref())
                                );
                            }
                        }
                    }
                    panic!(
                        "cluster drain stalled with {} batches outstanding",
                        self.pending.len()
                    );
                }
            }
        }
    }

    /// The lowest-indexed dead shard not yet recovered, if any.
    fn first_failure(&self) -> Option<ShardFailure> {
        self.dead.iter().enumerate().find_map(|(shard, d)| {
            d.as_ref().filter(|d| !d.recovered).map(|d| ShardFailure {
                shard,
                message: d.message.clone(),
            })
        })
    }

    /// Death notices of every dead, unrecovered shard (absorbing queued
    /// events first). A recovery layer polls this before each admission.
    pub fn failed_shards(&mut self) -> Vec<ShardFailure> {
        self.poll();
        self.dead
            .iter()
            .enumerate()
            .filter_map(|(shard, d)| {
                d.as_ref().filter(|d| !d.recovered).map(|d| ShardFailure {
                    shard,
                    message: d.message.clone(),
                })
            })
            .collect()
    }

    /// `true` once `shard`'s thread has died (recovered or not).
    pub fn is_shard_dead(&self, shard: usize) -> bool {
        self.dead[shard].is_some()
    }

    /// Takes the sub-batches that could not be delivered because their
    /// shard died racing the submit, as `(batch, shard, tuples)`. After
    /// recovery re-homes the dead shard's slots, resubmitting these tuples
    /// loses nothing and doubles nothing: they were never admitted to any
    /// engine. The batch id lets a recovery layer attribute the resubmitted
    /// work back to the request that carried it.
    pub fn take_lost_parts(&mut self) -> Vec<(BatchId, usize, Vec<Tuple>)> {
        std::mem::take(&mut self.lost_parts)
    }

    fn on_event(&mut self, ev: ShardEvent) {
        match ev {
            ShardEvent::Completed {
                shard,
                batch,
                latency_cycles,
                wall,
            } => {
                self.shard_batches_done[shard] += 1;
                let done = {
                    let p = self
                        .pending
                        .get_mut(&batch)
                        .expect("completion for unknown batch");
                    p.worst_cycles = p.worst_cycles.max(latency_cycles);
                    p.worst_wall = p.worst_wall.max(wall);
                    p.shards.retain(|&s| s != shard);
                    p.shards.is_empty()
                };
                if done {
                    let p = self.pending.remove(&batch).expect("present");
                    self.record_completion(CompletedBatch {
                        id: batch,
                        tuples: p.tuples,
                        latency_cycles: p.worst_cycles,
                        wall: p.worst_wall,
                    });
                }
            }
            ShardEvent::Failed { shard, message } => {
                if self.dead[shard].is_none() {
                    self.dead[shard] = Some(DeadShard {
                        message,
                        recovered: false,
                    });
                }
            }
        }
    }

    fn record_completion(&mut self, batch: CompletedBatch) {
        self.batches_completed += 1;
        self.tuples_completed += batch.tuples;
        self.latency_cycles.record(batch.latency_cycles);
        self.latency_wall_us
            .record(u64::try_from(batch.wall.as_micros()).unwrap_or(u64::MAX));
        self.journal.record(
            batch.id,
            SpanStage::Merge,
            batch.latency_cycles,
            NO_SHARD,
            batch.tuples,
        );
        self.completed.push(batch);
    }

    /// Takes the completion records accumulated since the last call —
    /// load generators read these for per-batch latency traces. Absorbs
    /// queued events first.
    pub fn take_completed(&mut self) -> Vec<CompletedBatch> {
        self.poll();
        std::mem::take(&mut self.completed)
    }

    fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        let replies: Vec<_> = self
            .handles
            .iter()
            .enumerate()
            .map(|(shard, h)| {
                if self.dead[shard].is_some() {
                    return None;
                }
                let (tx, rx) = std::sync::mpsc::channel();
                h.commands
                    .send(ShardCommand::Snapshot { reply: tx })
                    .ok()
                    .map(|()| rx)
            })
            .collect();
        replies
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                match rx.map(|rx| rx.recv_timeout(SHARD_REPLY_TIMEOUT)) {
                    Some(Ok(snap)) => snap,
                    Some(Err(std::sync::mpsc::RecvTimeoutError::Timeout)) => {
                        panic!("shard {shard} snapshot timed out")
                    }
                    // A dead shard reports a tombstone row; its history
                    // lives on in whichever shard inherited its state.
                    Some(Err(std::sync::mpsc::RecvTimeoutError::Disconnected)) | None => {
                        ShardSnapshot {
                            shard,
                            cycles: 0,
                            tuples: 0,
                            queue_depth: 0,
                            reschedules: 0,
                            plans_generated: 0,
                            per_pe_processed: Vec::new(),
                            batches_completed: self.shard_batches_done[shard],
                            batches_pending: 0,
                        }
                    }
                }
            })
            .collect()
    }

    /// A point-in-time view of the whole cluster (synchronously snapshots
    /// every shard).
    pub fn snapshot(&mut self) -> ClusterSnapshot {
        self.poll();
        let shards = self.shard_snapshots();
        self.assemble_snapshot(shards)
    }

    fn assemble_snapshot(&self, shards: Vec<ShardSnapshot>) -> ClusterSnapshot {
        ClusterSnapshot {
            shards,
            batches_submitted: self.batches_submitted,
            batches_completed: self.batches_completed,
            batches_shed: self.batches_shed,
            tuples_submitted: self.tuples_submitted,
            tuples_shed: self.tuples_shed,
            queue_depth: self.live_depth(),
            queue_depth_peak: self.queue_depth_peak,
            migrations: self.balancer.as_ref().map_or(0, ShardBalancer::migrations),
            latency_cycles: self.latency_cycles.stats(),
            latency_wall_us: self.latency_wall_us.stats(),
        }
    }

    /// The merged cross-layer observability snapshot: every shard's
    /// registry (serving counters plus its engine's cycle/step/channel
    /// metrics, labelled `shard=<i>`) merged with the cluster-level
    /// admission counters and the bucketed batch-latency histograms.
    /// Synchronously round-trips to every live shard thread, like
    /// [`snapshot`](Self::snapshot); dead shards contribute nothing.
    pub fn metrics(&mut self) -> MetricsSnapshot {
        self.poll();
        let replies: Vec<_> = self
            .handles
            .iter()
            .enumerate()
            .map(|(shard, h)| {
                if self.dead[shard].is_some() {
                    return None;
                }
                let (tx, rx) = std::sync::mpsc::channel();
                h.commands
                    .send(ShardCommand::Metrics { reply: tx })
                    .ok()
                    .map(|()| rx)
            })
            .collect();
        let mut merged = self.cluster_metrics();
        for (shard, rx) in replies.into_iter().enumerate() {
            let Some(rx) = rx else { continue };
            match rx.recv_timeout(SHARD_REPLY_TIMEOUT) {
                Ok(snap) => merged.merge(&snap),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    panic!("shard {shard} metrics timed out")
                }
            }
        }
        merged
    }

    /// The cluster-level (admission-side) registry: batch/tuple tallies,
    /// queue depth, migrations and the latency histograms.
    fn cluster_metrics(&self) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        let b_sub = reg.counter("ditto_cluster_batches_submitted", "serve", "batches");
        let b_done = reg.counter("ditto_cluster_batches_completed", "serve", "batches");
        let b_shed = reg.counter("ditto_cluster_batches_shed", "serve", "batches");
        let t_sub = reg.counter("ditto_cluster_tuples_submitted", "serve", "tuples");
        let t_done = reg.counter("ditto_cluster_tuples_completed", "serve", "tuples");
        let t_shed = reg.counter("ditto_cluster_tuples_shed", "serve", "tuples");
        let t_lost = reg.counter("ditto_cluster_tuples_lost", "serve", "tuples");
        let depth = reg.gauge("ditto_cluster_queue_depth", "serve", "tuples");
        let peak = reg.gauge("ditto_cluster_queue_depth_peak", "serve", "tuples");
        let migr = reg.counter("ditto_cluster_migrations", "serve", "items");
        let recorded = reg.counter("ditto_cluster_journal_events", "serve", "events");
        let evicted = reg.counter("ditto_cluster_journal_evicted", "serve", "events");
        let failed = reg.gauge("ditto_cluster_shards_failed", "serve", "shards");
        let recovered = reg.gauge("ditto_cluster_shards_recovered", "serve", "shards");
        let ha_handoffs = reg.counter("ditto_ha_handoffs", "ha", "items");
        reg.set_counter(b_sub, self.batches_submitted);
        reg.set_counter(b_done, self.batches_completed);
        reg.set_counter(b_shed, self.batches_shed);
        reg.set_counter(t_sub, self.tuples_submitted);
        reg.set_counter(t_done, self.tuples_completed);
        reg.set_counter(t_shed, self.tuples_shed);
        reg.set_counter(t_lost, self.tuples_lost);
        reg.set_gauge(depth, self.live_depth());
        reg.set_gauge(peak, self.queue_depth_peak);
        reg.set_counter(
            migr,
            self.balancer.as_ref().map_or(0, ShardBalancer::migrations),
        );
        reg.set_counter(recorded, self.journal.recorded());
        reg.set_counter(evicted, self.journal.evicted());
        reg.set_gauge(failed, self.dead.iter().flatten().count() as u64);
        reg.set_gauge(
            recovered,
            self.dead.iter().flatten().filter(|d| d.recovered).count() as u64,
        );
        reg.set_counter(ha_handoffs, self.handoffs_total);
        let lat_c = reg.histogram("ditto_cluster_batch_latency_cycles", "serve", "cycles");
        let lat_w = reg.histogram("ditto_cluster_batch_latency_wall", "serve", "us");
        let ho_pause = reg.histogram("ditto_ha_handoff_pause_us", "ha", "us");
        reg.set_histogram(lat_c, self.latency_cycles.clone());
        reg.set_histogram(lat_w, self.latency_wall_us.clone());
        reg.set_histogram(ho_pause, self.handoff_pause_us.clone());
        reg.snapshot()
    }

    /// Drains every span journal — each shard's `Queue`/`Step`/`Drain`
    /// events plus the cluster's `Merge` events — into one flat list.
    /// Events already drained are gone; buffering capacity comes from
    /// [`ServeConfig::journal_capacity`].
    pub fn take_journal(&mut self) -> Vec<SpanEvent> {
        self.poll();
        let replies: Vec<_> = self
            .handles
            .iter()
            .enumerate()
            .map(|(shard, h)| {
                if self.dead[shard].is_some() {
                    return None;
                }
                let (tx, rx) = std::sync::mpsc::channel();
                h.commands
                    .send(ShardCommand::Journal { reply: tx })
                    .ok()
                    .map(|()| rx)
            })
            .collect();
        let mut events = self.journal.drain();
        for (shard, rx) in replies.into_iter().enumerate() {
            let Some(rx) = rx else { continue };
            match rx.recv_timeout(SHARD_REPLY_TIMEOUT) {
                Ok(mut shard_events) => events.append(&mut shard_events),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    panic!("shard {shard} journal timed out")
                }
            }
        }
        events
    }

    /// One balancing round: reads every shard's live per-PE workload
    /// counters, feeds the window to the skew predictor, and applies any
    /// recommended key-range migrations to the routing table. Returns the
    /// applied moves (empty when balanced or the balancer is disabled).
    ///
    /// With [`ServeConfig::state_handoff`] on (the default), each round's
    /// migrations also *hand off state*: the hot shard's accumulated slice
    /// moves to the migration target via [`handoff`](Self::handoff), so a
    /// subsequently retired source loses nothing. With it off, moves only
    /// redirect future traffic (`ditto-ha` runs its own replicated handoff
    /// protocol around this).
    pub fn rebalance(&mut self) -> Vec<SlotMove> {
        self.poll();
        if self.balancer.is_none() {
            return Vec::new();
        }
        let snaps = self.shard_snapshots();
        let window: Vec<u64> = snaps
            .iter()
            .zip(&self.last_shard_tuples)
            .map(|(s, &then)| s.tuples - then)
            .collect();
        self.last_shard_tuples = snaps.iter().map(|s| s.tuples).collect();
        let balancer = self.balancer.as_mut().expect("checked above");
        let moves = balancer.rebalance(&window, &mut self.router);
        if moves.is_empty() {
            return moves;
        }
        if !self.state_handoff {
            for mv in &moves {
                self.router.apply(*mv);
            }
            return moves;
        }
        // Group the round's moves by source shard (one balancer round moves
        // slots off a single hot shard, but stay general): extraction is
        // whole-slice, so one extract per source covers every move off it,
        // installed into the first move's target. A source that dies
        // mid-handoff forfeits its group — the recovery layer owns it now.
        let mut by_source: Vec<(usize, Vec<SlotMove>)> = Vec::new();
        for mv in moves {
            match by_source.iter_mut().find(|(s, _)| *s == mv.from) {
                Some((_, group)) => group.push(mv),
                None => by_source.push((mv.from, vec![mv])),
            }
        }
        let mut applied = Vec::new();
        for (from, group) in by_source {
            let to = group[0].to;
            if self.handoff(from, to, &group).is_ok() {
                applied.extend(group);
            }
        }
        applied
    }

    /// Pauses `shard` at its admission watermark (catch-up), extracts its
    /// accumulated post-merge PriPE slice, and leaves the shard serving
    /// from fresh state. Cluster-level results are unchanged as long as the
    /// slice is installed *somewhere* — `merge` is associative and
    /// commutative, so which shard folds the history is immaterial.
    ///
    /// Returns the failure notice instead if the shard is (or dies while)
    /// extracting — the crash-during-handoff path.
    pub fn extract_shard(&mut self, shard: usize) -> Result<ShardStates<A>, ShardFailure> {
        self.poll();
        if let Some(d) = &self.dead[shard] {
            return Err(ShardFailure {
                shard,
                message: d.message.clone(),
            });
        }
        let (tx, rx) = std::sync::mpsc::channel();
        if self.handles[shard]
            .commands
            .send(ShardCommand::Extract { reply: tx })
            .is_err()
        {
            return Err(self.await_failure(shard));
        }
        match rx.recv_timeout(SHARD_REPLY_TIMEOUT) {
            Ok(ex) => Ok(ShardStates {
                states: ex.states,
                tuples: ex.tuples,
                catch_up_cycles: ex.catch_up_cycles,
            }),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(self.await_failure(shard)),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                panic!("shard {shard} extract timed out")
            }
        }
    }

    /// Folds an extracted slice into `shard`'s live PriPE states via the
    /// application's `merge`. The inverse of
    /// [`extract_shard`](Self::extract_shard).
    pub fn install_shard(
        &mut self,
        shard: usize,
        states: Vec<A::State>,
    ) -> Result<(), ShardFailure> {
        self.poll();
        if let Some(d) = &self.dead[shard] {
            return Err(ShardFailure {
                shard,
                message: d.message.clone(),
            });
        }
        let (tx, rx) = std::sync::mpsc::channel();
        if self.handles[shard]
            .commands
            .send(ShardCommand::Install { states, reply: tx })
            .is_err()
        {
            return Err(self.await_failure(shard));
        }
        match rx.recv_timeout(SHARD_REPLY_TIMEOUT) {
            Ok(_cycle) => Ok(()),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(self.await_failure(shard)),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                panic!("shard {shard} install timed out")
            }
        }
    }

    /// One complete state handoff: pause + extract `from`'s slice, install
    /// it on `to`, then apply the slot moves so future traffic follows the
    /// state. The pause (catch-up + extract + install, no admissions
    /// interleaved — the admitter is this same thread) is recorded in the
    /// `ditto_ha_handoff_pause_us` histogram.
    ///
    /// On `Err` the routing moves are *not* applied and the extracted slice
    /// is not lost: extraction only succeeds atomically with the reply, so
    /// a source that died still holds nothing and a target that died gets
    /// recovered by the failure path like any other dead shard.
    pub fn handoff(
        &mut self,
        from: usize,
        to: usize,
        moves: &[SlotMove],
    ) -> Result<HandoffReport, ShardFailure> {
        let start = Instant::now();
        let extract = self.extract_shard(from)?;
        let tuples_moved = extract.tuples;
        let catch_up_cycles = extract.catch_up_cycles;
        self.install_shard(to, extract.states)?;
        for mv in moves {
            self.router.apply(*mv);
        }
        let report = HandoffReport {
            from,
            to,
            slots: moves.iter().map(|m| m.slot).collect(),
            pause: start.elapsed(),
            catch_up_cycles,
            tuples_moved,
        };
        self.note_handoff(report.clone());
        Ok(report)
    }

    fn note_handoff(&mut self, report: HandoffReport) {
        self.handoffs_total += 1;
        self.handoff_pause_us
            .record(u64::try_from(report.pause.as_micros()).unwrap_or(u64::MAX));
        self.handoffs.push(report);
    }

    /// Takes the handoff reports accumulated since the last call.
    pub fn take_handoffs(&mut self) -> Vec<HandoffReport> {
        std::mem::take(&mut self.handoffs)
    }

    /// Lifetime handoff count.
    pub fn handoffs_total(&self) -> u64 {
        self.handoffs_total
    }

    /// Kills `shard`'s thread with an injected panic and blocks until its
    /// death notice arrives — the synchronous fault-injection hook the
    /// recovery tests drive (the asynchronous one is
    /// [`ServeConfig::with_fault`]).
    pub fn kill_shard(&mut self, shard: usize, message: &str) -> ShardFailure {
        let _ = self.handles[shard].commands.send(ShardCommand::Die {
            message: message.to_owned(),
        });
        self.await_failure(shard)
    }

    /// Marks a dead shard recovered and re-homes everything it owned onto
    /// `inheritor`: every slot reassigns (future traffic), and every
    /// in-flight batch still waiting on the corpse resolves (a recovery
    /// layer has already re-established its state from a replica, or
    /// accepts the loss). Returns the routing moves applied.
    ///
    /// This is deliberately *mechanism only* — `ditto-ha` supplies the
    /// policy (which replica to promote, replaying the batch log,
    /// resubmitting lost parts) around this call.
    ///
    /// # Panics
    ///
    /// Panics if `dead` is alive or already recovered, or `inheritor` is
    /// dead.
    pub fn recover_shard(&mut self, dead: usize, inheritor: usize) -> Vec<SlotMove> {
        self.poll();
        assert!(
            self.dead[inheritor].is_none(),
            "inheritor shard {inheritor} is dead"
        );
        {
            let d = self.dead[dead]
                .as_mut()
                .unwrap_or_else(|| panic!("shard {dead} is alive — nothing to recover"));
            assert!(!d.recovered, "shard {dead} already recovered");
            d.recovered = true;
        }
        let moves = self.router.reassign_all(dead, inheritor);
        // Resolve in-flight batches parked on the corpse. Completion order
        // is made deterministic by batch id.
        let mut ids: Vec<BatchId> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let done = {
                let p = self.pending.get_mut(&id).expect("present");
                p.shards.retain(|&s| s != dead);
                p.shards.is_empty()
            };
            if done {
                let p = self.pending.remove(&id).expect("present");
                self.record_completion(CompletedBatch {
                    id,
                    tuples: p.tuples,
                    latency_cycles: p.worst_cycles,
                    wall: p.worst_wall,
                });
            }
        }
        moves
    }

    /// Collects every shard's terminal state (drains each shard engine to
    /// quiescence in parallel), absorbing all remaining completion events.
    ///
    /// Failure diagnosis joins the dead thread where possible, so the
    /// panic names the *shard's* failure (its payload), not just the
    /// broken channel it left behind.
    fn collect_finishes(&mut self) -> Vec<Option<ShardFinish<A>>> {
        self.poll();
        // An unrecovered death is fatal here: finishing would silently drop
        // its accumulated slice. Recovered deaths are fine — their state
        // already lives in the inheritor (or the caller accepted the loss).
        if let Some(f) = self.first_failure() {
            panic!("cannot finish: {f} (recover the shard or promote a replica first)");
        }
        let mut handles: Vec<Option<ShardHandle<A>>> = self.handles.drain(..).map(Some).collect();
        // Fan the Finish command out first so all live shards drain
        // concurrently; recovered-dead shards contribute `None`.
        let replies: Vec<_> = handles
            .iter()
            .enumerate()
            .map(|(shard, h)| {
                if self.dead[shard].is_some() {
                    return None;
                }
                let (tx, rx) = std::sync::mpsc::channel();
                h.as_ref()
                    .expect("handle present before collection")
                    .commands
                    .send(ShardCommand::Finish { reply: tx })
                    .ok()
                    .map(|()| rx)
            })
            .collect();
        let mut finishes = Vec::with_capacity(handles.len());
        for (shard, rx) in replies.into_iter().enumerate() {
            if self.dead[shard].is_some() {
                finishes.push(None);
                continue;
            }
            let Some(rx) = rx else {
                // Channel gone racing the finish: a fresh, unrecovered death.
                let f = self.await_failure(shard);
                panic!("cannot finish: {f}");
            };
            match rx.recv_timeout(SHARD_REPLY_TIMEOUT) {
                Ok(f) => finishes.push(Some(f)),
                Err(_) => report_shard_death(shard, handles[shard].take().expect("handle present")),
            }
        }
        for (shard, handle) in handles.into_iter().enumerate() {
            let Some(handle) = handle else { continue };
            if let Err(payload) = handle.thread.join() {
                // A recovered shard's thread ended in the panic whose notice
                // we already handled; anything else is a new failure.
                let already_handled = self.dead[shard].as_ref().is_some_and(|d| d.recovered);
                if !already_handled {
                    panic!(
                        "shard {shard} thread panicked: {}",
                        panic_message(payload.as_ref())
                    );
                }
            }
        }
        // Every completion event was sent before the shard replied.
        self.poll();
        assert!(
            self.pending.is_empty(),
            "{} batches unaccounted after finish",
            self.pending.len()
        );
        finishes
    }

    /// A stand-in report for a shard that died and was failed over: its
    /// history lives on in the inheritor's counters, so this row carries
    /// only its identity and pre-death completion count.
    fn failed_over_report(&self, shard: usize) -> ExecutionReport {
        ExecutionReport {
            label: format!("shard{shard}:failed-over"),
            cycles: 0,
            tuples: 0,
            reschedules: 0,
            plans_generated: 0,
            per_pe_processed: Vec::new(),
            completed: true,
            channel_totals: Default::default(),
            kernel_steps: 0,
        }
    }

    fn outcome_snapshot(&self, reports: &[ExecutionReport]) -> ClusterSnapshot {
        let shards = reports
            .iter()
            .enumerate()
            .map(|(shard, r)| ShardSnapshot {
                shard,
                cycles: r.cycles,
                tuples: r.tuples,
                queue_depth: 0,
                reschedules: r.reschedules,
                plans_generated: r.plans_generated,
                per_pe_processed: r.per_pe_processed.clone(),
                batches_completed: self.shard_batches_done[shard],
                batches_pending: 0,
            })
            .collect();
        self.assemble_snapshot(shards)
    }

    /// Shuts the cluster down and produces the combined output via the
    /// cross-shard state merge: for each PriPE index `j`, every other
    /// shard's PriPE `j` buffer folds into shard 0's through the
    /// application's `merge` (shards act as super-SecPEs), then `finalize`
    /// runs once over the merged states.
    ///
    /// For decomposable applications (and exact-arithmetic ones like
    /// fixed-point PageRank) this is *identical* to a single-engine run
    /// over the concatenated input; for data partitioning the outputs are
    /// equal as per-partition multisets. HHD's sketches merge exactly, but
    /// its candidate tables are populated per shard — see the crate docs
    /// for the collision-only edge case.
    ///
    /// # Panics
    ///
    /// Panics if a shard thread died or its engine failed to drain.
    pub fn finish(mut self) -> ClusterOutcome<A::Output> {
        let finishes = self.collect_finishes();
        let mut reports = Vec::with_capacity(finishes.len());
        let mut acc: Option<Vec<A::State>> = None;
        for (shard, f) in finishes.into_iter().enumerate() {
            let Some(f) = f else {
                reports.push(self.failed_over_report(shard));
                continue;
            };
            match acc.as_mut() {
                None => acc = Some(f.pri_states),
                Some(acc) => {
                    for (j, state) in f.pri_states.into_iter().enumerate() {
                        self.app.merge(&mut acc[j], &state);
                    }
                }
            }
            reports.push(f.report);
        }
        let acc = acc.expect("at least one live shard");
        let output = self.app.finalize(acc);
        let snapshot = self.outcome_snapshot(&reports);
        ClusterOutcome {
            output,
            reports,
            snapshot,
        }
    }

    /// Shuts the cluster down with each shard finalizing *locally*,
    /// returning one output per shard — the shape a serving layer uses when
    /// partial results are consumed per shard (result caching, incremental
    /// clients). Combine them with
    /// [`MergeableOutput::combine_outputs`] when a global view is needed.
    ///
    /// # Panics
    ///
    /// Panics if a shard thread died or its engine failed to drain.
    pub fn finish_per_shard(mut self) -> (Vec<A::Output>, Vec<ExecutionReport>, ClusterSnapshot)
    where
        A: MergeableOutput,
    {
        let finishes = self.collect_finishes();
        let mut outputs = Vec::with_capacity(finishes.len());
        let mut reports = Vec::with_capacity(finishes.len());
        for (shard, f) in finishes.into_iter().enumerate() {
            match f {
                Some(f) => {
                    outputs.push(self.app.finalize(f.pri_states));
                    reports.push(f.report);
                }
                None => {
                    // A failed-over shard finalizes empty states so the
                    // per-shard output vector keeps its indexing.
                    let fresh = (0..self.m_pri)
                        .map(|_| self.app.new_state(self.pe_entries))
                        .collect();
                    outputs.push(self.app.finalize(fresh));
                    reports.push(self.failed_over_report(shard));
                }
            }
        }
        let snapshot = self.outcome_snapshot(&reports);
        (outputs, reports, snapshot)
    }
}

/// Diagnoses a shard that failed to reply to `Finish`: if its thread
/// already ended, join it and propagate the panic payload (or report the
/// silent exit); if it is still alive it is wedged, and joining would hang
/// — say so instead.
fn report_shard_death<A: ditto_core::DittoApp>(shard: usize, handle: ShardHandle<A>) -> ! {
    // A dropped command channel slightly precedes thread exit while the
    // panic unwinds; give it a moment so the payload is joinable.
    for _ in 0..50 {
        if handle.thread.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if handle.thread.is_finished() {
        match handle.thread.join() {
            Err(payload) => panic!(
                "shard {shard} failed to finish: shard thread panicked: {}",
                panic_message(payload.as_ref())
            ),
            Ok(()) => {
                panic!("shard {shard} failed to finish: shard thread exited without replying")
            }
        }
    }
    panic!("shard {shard} failed to finish within the reply timeout (thread alive — deadlocked?)");
}

impl<A: DittoApp + Clone + 'static> std::fmt::Debug for Cluster<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.handles.len())
            .field("in_flight", &self.pending.len())
            .field("batches_submitted", &self.batches_submitted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_core::apps::CountPerKey;

    #[test]
    fn admission_counters_track_queue_depth_and_sheds() {
        let mut cluster = Cluster::new(
            CountPerKey::new(4),
            &ServeConfig::new(2, ArchConfig::new(2, 4, 1)),
        );
        let batch: Vec<Tuple> = (0..500u64).map(Tuple::from_key).collect();
        cluster.submit(batch.clone());
        cluster.submit(batch);
        // At least one batch was outstanding at its own admission instant.
        assert!(cluster.admission_snapshot().queue_depth_peak >= 500);
        cluster.record_shed(123);
        cluster.drain();
        assert_eq!(cluster.queue_depth(), 0);
        let adm = cluster.admission_snapshot();
        assert_eq!(adm.tuples_submitted, 1_000);
        assert_eq!(adm.tuples_completed, 1_000);
        assert_eq!(adm.batches_submitted, 2);
        assert_eq!(adm.batches_completed, 2);
        assert_eq!(adm.batches_shed, 1);
        assert_eq!(adm.tuples_shed, 123);
        assert_eq!(adm.queue_depth, 0);
        let outcome = cluster.finish();
        assert_eq!(outcome.snapshot.batches_shed, 1);
        assert_eq!(outcome.snapshot.tuples_shed, 123);
        assert_eq!(outcome.snapshot.queue_depth, 0);
        assert!(outcome.snapshot.queue_depth_peak >= 500);
    }

    #[test]
    fn per_shard_archs_serve_and_export_plan_gauges() {
        // Shard 1 provisions skew-handling capacity, shard 0 stays bare —
        // e.g. a planner priced each shard's workload separately. State
        // shapes (m_pri, pe_entries) stay uniform so the merge is exact.
        let config = ServeConfig::new(2, ArchConfig::new(2, 4, 0))
            .with_shard_archs(vec![ArchConfig::new(2, 4, 0), ArchConfig::new(2, 4, 2)]);
        assert_eq!(config.arch_for(0).x_sec, 0);
        assert_eq!(config.arch_for(1).x_sec, 2);

        let data: Vec<Tuple> = (0..2_000u64).map(|i| Tuple::from_key(i % 97)).collect();
        let mut cluster = Cluster::new(CountPerKey::new(4), &config);
        cluster.submit(data.clone());
        cluster.drain();
        let metrics = cluster.metrics();
        assert!(
            metrics.get("ditto_plan_phase", &[("shard", "0")]).is_some(),
            "shard metrics must export the plan phase gauge"
        );
        assert!(metrics
            .get("ditto_plan_active_pes", &[("shard", "1")])
            .is_some());
        let hetero = cluster.finish();

        let mut uniform = Cluster::new(
            CountPerKey::new(4),
            &ServeConfig::new(2, ArchConfig::new(2, 4, 0)),
        );
        uniform.submit(data);
        let base = uniform.finish();
        assert_eq!(hetero.output, base.output);
    }

    #[test]
    #[should_panic(expected = "m_pri/pe_entries uniform")]
    fn per_shard_archs_reject_mismatched_state_shapes() {
        let _ = ServeConfig::new(2, ArchConfig::new(2, 4, 0))
            .with_shard_archs(vec![ArchConfig::new(2, 4, 0), ArchConfig::new(2, 8, 0)]);
    }

    /// An app that detonates inside the shard engine on a magic key.
    #[derive(Clone)]
    struct PoisonApp;

    impl DittoApp for PoisonApp {
        type Value = ();
        type State = u64;
        type Output = u64;

        fn name(&self) -> &str {
            "poison"
        }

        fn preprocess(&self, tuple: Tuple, m_pri: u32) -> ditto_core::Routed<()> {
            assert!(tuple.key != 42, "poisoned tuple 42 reached the PrePE");
            ditto_core::Routed::new((tuple.key % u64::from(m_pri)) as u32, ())
        }

        fn new_state(&self, _pe_entries: usize) -> u64 {
            0
        }

        fn process(&self, state: &mut u64, (): &()) {
            *state += 1;
        }

        fn merge(&self, pri: &mut u64, sec: &u64) {
            *pri += sec;
        }

        fn finalize(&self, pri_states: Vec<u64>) -> u64 {
            pri_states.into_iter().sum()
        }
    }

    #[test]
    fn shard_panic_payload_reaches_the_finish_error() {
        let mut cluster = Cluster::new(PoisonApp, &ServeConfig::new(1, ArchConfig::new(1, 2, 0)));
        cluster.submit(vec![Tuple::from_key(42)]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || cluster.finish()))
            .expect_err("finish must propagate the shard panic");
        let msg = panic_message(err.as_ref());
        assert!(
            msg.contains("poisoned tuple 42"),
            "shard panic payload lost; finish reported: {msg}"
        );
        assert!(msg.contains("shard 0"), "failing shard unnamed: {msg}");
    }

    #[test]
    fn dead_shard_fails_waiters_immediately_with_its_own_panic() {
        let mut cluster = Cluster::new(PoisonApp, &ServeConfig::new(1, ArchConfig::new(1, 2, 0)));
        let batch: Vec<Tuple> = (0..100u64).map(Tuple::from_key).collect();
        let start = Instant::now();
        cluster.submit(batch);
        let failure = loop {
            match cluster.try_drain() {
                Err(f) => break f,
                Ok(()) => assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "death notice never arrived"
                ),
            }
        };
        // The drop-guard's notice arrives the moment the thread unwinds —
        // waiters are not stuck until the reply timeout diagnosis.
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "waiter blocked {:?} waiting for a dead shard",
            start.elapsed()
        );
        assert_eq!(failure.shard, 0);
        assert!(
            failure.message.contains("poisoned tuple 42"),
            "failure does not name the panic: {failure}"
        );
    }

    #[test]
    fn injected_fault_kills_loses_and_recovers() {
        let mut cluster = Cluster::new(
            CountPerKey::new(4),
            &ServeConfig::new(2, ArchConfig::new(2, 4, 1)).with_fault(ShardFault {
                shard: 0,
                after_batches: 1,
            }),
        );
        let batch: Vec<Tuple> = (0..500u64).map(Tuple::from_key).collect();
        cluster.submit(batch.clone());
        // The fault fires right after shard 0 serves its first sub-batch;
        // the completion may land before the death notice, so poll for it.
        let failure = loop {
            if let Err(f) = cluster.try_drain() {
                break f;
            }
            if let Some(f) = cluster.failed_shards().into_iter().next() {
                break f;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(failure.shard, 0);
        assert!(
            failure.message.contains("fault injection"),
            "unexpected failure: {failure}"
        );
        assert!(cluster.is_shard_dead(0));
        // Submitting while dead strands the shard-0 sub-batch in lost parts
        // (never admitted anywhere — safe to resubmit after recovery).
        cluster.submit(batch.clone());
        let lost: Vec<Tuple> = cluster
            .take_lost_parts()
            .into_iter()
            .flat_map(|(_, shard, t)| {
                assert_eq!(shard, 0);
                t
            })
            .collect();
        assert!(!lost.is_empty(), "expected a lost sub-batch");
        // Recovery re-homes every slot; future traffic routes to shard 1.
        let moves = cluster.recover_shard(0, 1);
        assert!(!moves.is_empty());
        assert!(cluster.router().slots_of(0).is_empty());
        cluster.submit(lost);
        cluster.drain();
        assert!(
            cluster.failed_shards().is_empty(),
            "recovered death must not be re-reported"
        );
        let outcome = cluster.finish();
        assert_eq!(outcome.reports[0].label, "shard0:failed-over");
        assert!(outcome.reports[1].tuples > 0);
    }

    #[test]
    fn dispatch_discovering_a_death_mid_loop_orphans_no_batch() {
        // The failover hang: dispatch's send loop hits a dead shard's
        // closed channel (the corpse drops its command receiver while
        // unwinding, before the drop-guard queues the death notice) and
        // blocks in await_failure absorbing events — among which a fast
        // live shard may already have completed its sub-batch of the
        // *batch being dispatched*. The pending entry must therefore be
        // registered before the first send; it used to be inserted after
        // the loop, and the racing completion panicked the submitter with
        // "completion for unknown batch", orphaning the batch.
        let mut cluster = Cluster::new(
            CountPerKey::new(4),
            &ServeConfig::new(2, ArchConfig::new(2, 4, 1)),
        );
        let batch: Vec<Tuple> = (0..400u64).map(Tuple::from_key).collect();
        // Kill shard 1 *silently*: send the poison and wait for the thread
        // to die without absorbing its death notice, so the next dispatch
        // is the one that discovers the corpse mid-loop. (No state has
        // accumulated yet — a bare cluster accepts a corpse's state loss;
        // restoring it is ditto-ha's job.)
        cluster.handles[1]
            .commands
            .send(ShardCommand::Die {
                message: "silent kill".to_owned(),
            })
            .expect("shard 1 alive");
        while !cluster.handles[1].thread.is_finished() {
            std::thread::yield_now();
        }
        let id = cluster.submit(batch.clone());
        // The live half proceeds; the dead shard's half is stranded for
        // recovery and the batch is released from waiting on it.
        let lost: Vec<Tuple> = cluster
            .take_lost_parts()
            .into_iter()
            .flat_map(|(batch, shard, t)| {
                assert_eq!((batch, shard), (id, 1));
                t
            })
            .collect();
        assert!(!lost.is_empty(), "expected a stranded sub-batch");
        cluster.recover_shard(1, 0);
        cluster.submit(lost);
        cluster.drain();
        let completed: Vec<BatchId> = cluster.take_completed().into_iter().map(|c| c.id).collect();
        assert!(
            completed.contains(&id),
            "the batch that raced the death never completed: {completed:?}"
        );
        let outcome = cluster.finish();
        assert_eq!(
            outcome.output.iter().sum::<u64>(),
            400,
            "a tuple was lost or doubled"
        );
    }

    #[test]
    fn kill_and_recover_preserves_routing_and_finish() {
        let mut cluster = Cluster::new(
            CountPerKey::new(4),
            &ServeConfig::new(3, ArchConfig::new(2, 4, 1)),
        );
        let batch: Vec<Tuple> = (0..600u64).map(Tuple::from_key).collect();
        cluster.submit(batch.clone());
        cluster.drain();
        let f = cluster.kill_shard(1, "operator-injected kill");
        assert_eq!(f.shard, 1);
        assert_eq!(f.message, "operator-injected kill");
        let owned = cluster.router().slots_of(1).len();
        let moves = cluster.recover_shard(1, 2);
        assert_eq!(moves.len(), owned);
        for mv in &moves {
            assert_eq!((mv.from, mv.to), (1, 2));
        }
        cluster.submit(batch.clone());
        cluster.drain();
        let outcome = cluster.finish();
        assert_eq!(outcome.reports[1].label, "shard1:failed-over");
        assert!(outcome.reports[1].completed);
    }

    #[test]
    fn manual_handoff_moves_state_and_slots() {
        let mut cluster = Cluster::new(
            CountPerKey::new(4),
            &ServeConfig::new(2, ArchConfig::new(2, 4, 1)),
        );
        let batch: Vec<Tuple> = (0..1_000u64).map(Tuple::from_key).collect();
        cluster.submit(batch.clone());
        cluster.drain();
        // Move one of shard 0's slots — and its whole accumulated slice —
        // onto shard 1.
        let slot = cluster.router().slots_of(0)[0];
        let mv = SlotMove {
            slot,
            from: 0,
            to: 1,
        };
        let report = cluster.handoff(0, 1, &[mv]).expect("both shards alive");
        assert_eq!((report.from, report.to), (0, 1));
        assert!(report.tuples_moved > 0, "shard 0 held history to move");
        assert_eq!(cluster.router().owner_of(slot), 1);
        assert_eq!(cluster.handoffs_total(), 1);
        assert_eq!(cluster.take_handoffs().len(), 1);
        cluster.submit(batch.clone());
        cluster.drain();
        let outcome = cluster.finish();
        // State moved, nothing lost or doubled: the merged output equals
        // the same workload served without a handoff.
        let mut reference = Cluster::new(
            CountPerKey::new(4),
            &ServeConfig::new(2, ArchConfig::new(2, 4, 1)),
        );
        reference.submit(batch.clone());
        reference.submit(batch);
        reference.drain();
        assert_eq!(outcome.output, reference.finish().output);
    }

    #[test]
    fn panic_payloads_become_messages() {
        let caught =
            std::panic::catch_unwind(|| panic!("shard0 deadlocked at 42")).expect_err("panicked");
        assert_eq!(panic_message(caught.as_ref()), "shard0 deadlocked at 42");
        let caught = std::panic::catch_unwind(|| {
            let n = 7;
            panic!("engine stalled with {n} tuples")
        })
        .expect_err("panicked");
        assert_eq!(
            panic_message(caught.as_ref()),
            "engine stalled with 7 tuples"
        );
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).expect_err("odd");
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }
}
