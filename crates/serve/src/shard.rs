//! One serving shard: a persistent pipeline engine on its own thread.
//!
//! Each shard owns one [`PersistentPipeline`] (one simulated FPGA running
//! the full Fig. 3 architecture) fed by a [`SharedQueue`]. The shard thread
//! alternates between absorbing commands (batch admissions, snapshot
//! requests) and stepping the engine in fixed cycle chunks; batch
//! completion is detected by watermark — a batch is done once the engine's
//! processed-tuple counter reaches the cumulative count admitted up to and
//! including that batch, which needs no per-tuple tagging and therefore no
//! change to the datapath.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use datagen::Tuple;
use ditto_core::{ArchConfig, DittoApp, ExecutionReport, PersistentPipeline};
use ditto_obs::{MetricsRegistry, MetricsSnapshot, SpanEvent, SpanJournal, SpanStage};

use crate::batch::BatchId;
use crate::metrics::ShardSnapshot;
use crate::queue::SharedQueue;

/// Commands a cluster sends to a shard thread.
pub(crate) enum ShardCommand<A: DittoApp> {
    /// Admit a sub-batch of tuples.
    Submit {
        /// Cluster-level batch id the sub-batch belongs to.
        batch: BatchId,
        /// The tuples routed to this shard.
        tuples: Vec<Tuple>,
        /// Cluster-side admission instant (wall latency baseline).
        submitted: Instant,
    },
    /// Reply with current counters.
    Snapshot { reply: Sender<ShardSnapshot> },
    /// Reply with this shard's observability snapshot (engine counters +
    /// shard serving counters, labelled by shard).
    Metrics { reply: Sender<MetricsSnapshot> },
    /// Drain and reply with this shard's buffered span-journal events.
    Journal { reply: Sender<Vec<SpanEvent>> },
    /// Catch the engine up to its admission watermark, then extract the
    /// accumulated PriPE slice (the engine keeps serving from fresh
    /// buffers) — the source half of a state handoff.
    Extract { reply: Sender<ShardExtract<A>> },
    /// Fold a previously extracted slice into this engine's PriPE buffers —
    /// the target half of a state handoff. Replies with the install cycle.
    Install {
        states: Vec<A::State>,
        reply: Sender<u64>,
    },
    /// Fault injection: panic the shard thread with `message`, the
    /// in-process stand-in for a crashed FPGA host.
    Die { message: String },
    /// Close the queue, drain the engine, reply with final states.
    Finish { reply: Sender<ShardFinish<A>> },
}

/// A shard's terminal reply: post-merge PriPE states plus the final report.
pub(crate) struct ShardFinish<A: DittoApp> {
    pub pri_states: Vec<A::State>,
    pub report: ExecutionReport,
}

/// A shard's reply to `Extract`: the accumulated PriPE slice plus what the
/// catch-up to the admission watermark cost.
pub(crate) struct ShardExtract<A: DittoApp> {
    /// The `M` post-merge PriPE states, covering every tuple admitted to
    /// this shard up to the extraction instant.
    pub states: Vec<A::State>,
    /// Tuples the slice covers (the engine's processed count).
    pub tuples: u64,
    /// Cycles stepped to reach the admission watermark before extracting.
    pub catch_up_cycles: u64,
}

/// Event streamed from a shard thread to the cluster: either one sub-batch
/// completion or the shard's death notice (sub-batch sizes are tracked
/// cluster-side, so completions only carry identity and latency).
#[derive(Debug, Clone)]
pub(crate) enum ShardEvent {
    /// A sub-batch reached its watermark.
    Completed {
        shard: usize,
        batch: BatchId,
        /// Admission-to-completion latency on this shard's simulated clock.
        latency_cycles: u64,
        /// Admission-to-completion wall time as observed by the shard thread.
        wall: std::time::Duration,
    },
    /// The shard thread panicked; `message` is its panic payload. Sent by
    /// the shard loop's drop-guard *before* the thread unwinds, so cluster
    /// waiters wake with a named error immediately instead of blocking
    /// until `collect_finishes` joins the corpse.
    Failed { shard: usize, message: String },
}

/// When a shard thread panics mid-serve, every cluster-side waiter would
/// otherwise block on the events channel until teardown joins the thread
/// (the cluster clones the event sender per shard, so one death never
/// disconnects the channel). This guard wraps the serve loop: it catches
/// the unwind, streams a [`ShardEvent::Failed`] carrying the panic payload,
/// then resumes unwinding so the thread's join handle still reports the
/// original panic.
fn run_with_failure_notice<A: DittoApp + 'static>(
    worker: ShardWorker<A>,
    commands: Receiver<ShardCommand<A>>,
) {
    let shard = worker.id;
    let events = worker.events.clone();
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || worker.run(commands)));
    if let Err(payload) = outcome {
        let _ = events.send(ShardEvent::Failed {
            shard,
            message: panic_message(payload.as_ref()).to_owned(),
        });
        std::panic::resume_unwind(payload);
    }
}

/// Best-effort extraction of a panic payload: `panic!` with a literal
/// carries `&str`, formatted panics carry `String`, anything else is
/// reported opaquely.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Cluster-side handle to a running shard thread.
pub(crate) struct ShardHandle<A: DittoApp> {
    pub commands: Sender<ShardCommand<A>>,
    pub thread: JoinHandle<()>,
}

struct PendingBatch {
    id: BatchId,
    /// Engine `processed` value at which this batch is complete.
    watermark: u64,
    enqueue_cycle: u64,
    submitted: Instant,
    /// Tuples this sub-batch carried (journal annotation).
    tuples: u64,
    /// Whether a `Step` span event was recorded for this batch yet (the
    /// first engine poll after its enqueue).
    stepped: bool,
}

/// The shard thread's state.
struct ShardWorker<A: DittoApp + 'static> {
    id: usize,
    pipeline: PersistentPipeline<A>,
    queue: SharedQueue,
    pending: VecDeque<PendingBatch>,
    events: Sender<ShardEvent>,
    cycles_per_poll: u64,
    /// Ingress tuples/cycle (drain-budget sizing at Finish).
    ingress_rate: f64,
    enqueued: u64,
    batches_done: u64,
    /// Fault injection: panic after serving this many batches (the
    /// `DITTO_KILL_SHARD` hook, resolved cluster-side to this shard).
    kill_after: Option<u64>,
    /// Batch lifecycle events (queue/step/drain) for trace export.
    journal: SpanJournal,
}

/// Spawns a shard thread serving `app` under `arch`, reading from a fresh
/// queue at `ingress_rate` tuples per cycle. The returned handle carries
/// the command endpoint; completions stream through `events`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_shard<A: DittoApp + 'static>(
    id: usize,
    app: A,
    arch: &ArchConfig,
    ingress_rate: f64,
    cycles_per_poll: u64,
    journal_capacity: usize,
    kill_after: Option<u64>,
    events: Sender<ShardEvent>,
) -> ShardHandle<A> {
    let (commands, command_rx) = std::sync::mpsc::channel();
    let queue = SharedQueue::new();
    let source = Box::new(queue.source(ingress_rate));
    let pipeline =
        PersistentPipeline::new(app, source, arch).with_label_prefix(&format!("shard{id}"));
    let worker = ShardWorker {
        id,
        pipeline,
        queue,
        pending: VecDeque::new(),
        events,
        cycles_per_poll,
        ingress_rate,
        enqueued: 0,
        batches_done: 0,
        kill_after,
        journal: SpanJournal::new(journal_capacity),
    };
    let thread = std::thread::Builder::new()
        .name(format!("ditto-shard-{id}"))
        .spawn(move || run_with_failure_notice(worker, command_rx))
        .expect("spawn shard thread");
    ShardHandle { commands, thread }
}

impl<A: DittoApp + 'static> ShardWorker<A> {
    fn run(mut self, commands: Receiver<ShardCommand<A>>) {
        let finish_reply = 'serve: loop {
            // Idle shards block on the command queue; busy shards absorb
            // whatever is already queued and keep stepping.
            if self.pending.is_empty() {
                match commands.recv() {
                    Ok(cmd) => {
                        if let Some(reply) = self.handle(cmd) {
                            break 'serve Some(reply);
                        }
                    }
                    // Cluster handle dropped without Finish: stop serving.
                    Err(_) => break 'serve None,
                }
            }
            while let Ok(cmd) = commands.try_recv() {
                if let Some(reply) = self.handle(cmd) {
                    break 'serve Some(reply);
                }
            }
            if !self.pending.is_empty() {
                self.pipeline.step_cycles(self.cycles_per_poll);
                self.record_first_steps();
                self.complete_ready();
            }
        };
        if let Some(reply) = finish_reply {
            self.finish(reply);
        }
    }

    /// Processes one command; returns the reply channel when it was
    /// `Finish` (the caller then tears the worker down).
    fn handle(&mut self, cmd: ShardCommand<A>) -> Option<Sender<ShardFinish<A>>> {
        match cmd {
            ShardCommand::Submit {
                batch,
                tuples,
                submitted,
            } => {
                self.queue.push_batch(&tuples);
                self.enqueued += tuples.len() as u64;
                let n = tuples.len() as u64;
                let cycle = self.pipeline.cycle();
                self.journal
                    .record(batch, SpanStage::Queue, cycle, self.id as u32, n);
                self.pending.push_back(PendingBatch {
                    id: batch,
                    watermark: self.enqueued,
                    enqueue_cycle: cycle,
                    submitted,
                    tuples: n,
                    stepped: false,
                });
                None
            }
            ShardCommand::Snapshot { reply } => {
                let _ = reply.send(self.snapshot());
                None
            }
            ShardCommand::Metrics { reply } => {
                let _ = reply.send(self.metrics());
                None
            }
            ShardCommand::Journal { reply } => {
                let _ = reply.send(self.journal.drain());
                None
            }
            ShardCommand::Extract { reply } => {
                let before = self.pipeline.cycle();
                self.catch_up();
                self.record_first_steps();
                self.complete_ready();
                let states = self.pipeline.extract_slots();
                let _ = reply.send(ShardExtract {
                    states,
                    tuples: self.pipeline.processed(),
                    catch_up_cycles: self.pipeline.cycle() - before,
                });
                None
            }
            ShardCommand::Install { states, reply } => {
                self.pipeline.install_slots(states);
                let _ = reply.send(self.pipeline.cycle());
                None
            }
            ShardCommand::Die { message } => panic!("{message}"),
            ShardCommand::Finish { reply } => Some(reply),
        }
    }

    /// Steps the engine until it has processed everything admitted so far —
    /// the pause phase of a state handoff: after this, the PriPE buffers
    /// cover every admitted tuple, so an extract loses nothing in flight.
    ///
    /// # Panics
    ///
    /// Panics (naming the shard) if the watermark is not reached within a
    /// generous ingress + serialisation cycle budget — a deadlock, not a
    /// data property.
    fn catch_up(&mut self) {
        let target = self.enqueued;
        let remaining = target.saturating_sub(self.pipeline.processed());
        let ingress_cycles = (remaining as f64 / self.ingress_rate).ceil() as u64;
        let pe_cycles = remaining * u64::from(self.pipeline.app().ii_pri() + 2);
        let deadline = self.pipeline.cycle() + ingress_cycles + pe_cycles + 1_000_000;
        while self.pipeline.processed() < target {
            assert!(
                self.pipeline.cycle() < deadline,
                "shard {} failed to catch up to its admission watermark \
                 ({}/{} tuples) — deadlock?",
                self.id,
                self.pipeline.processed(),
                target
            );
            self.pipeline.step_cycles(self.cycles_per_poll);
        }
    }

    /// Journals the first engine poll that advanced each batch: every
    /// pending batch not yet marked gets its `Step` event now.
    fn record_first_steps(&mut self) {
        let cycle = self.pipeline.cycle();
        let shard = self.id as u32;
        for b in self.pending.iter_mut().filter(|b| !b.stepped) {
            b.stepped = true;
            self.journal
                .record(b.id, SpanStage::Step, cycle, shard, b.tuples);
        }
    }

    /// This shard's observability snapshot: serving counters plus the
    /// engine's own metrics, all labelled `shard=<id>`. Built on demand
    /// from counters that already exist — nothing is recorded on the step
    /// path.
    fn metrics(&self) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new().with_label("shard", self.id);
        let s = self.pipeline.snapshot();
        let tuples = reg.counter("ditto_serve_tuples_total", "serve", "tuples");
        let batches = reg.counter("ditto_serve_batches_completed", "serve", "batches");
        let resched = reg.counter("ditto_serve_reschedules", "serve", "items");
        let plans = reg.counter("ditto_serve_plans_generated", "serve", "items");
        let depth = reg.gauge("ditto_serve_queue_depth", "serve", "tuples");
        let pending = reg.gauge("ditto_serve_batches_pending", "serve", "batches");
        let recorded = reg.counter("ditto_serve_journal_events", "serve", "events");
        let evicted = reg.counter("ditto_serve_journal_evicted", "serve", "events");
        reg.set_counter(tuples, s.tuples);
        reg.set_counter(batches, self.batches_done);
        reg.set_counter(resched, s.reschedules);
        reg.set_counter(plans, s.plans_generated);
        reg.set_gauge(depth, self.enqueued - s.tuples);
        reg.set_gauge(pending, self.pending.len() as u64);
        reg.set_counter(recorded, self.journal.recorded());
        reg.set_counter(evicted, self.journal.evicted());
        let phase = reg.gauge("ditto_plan_phase", "plan", "phase");
        let active = reg.gauge("ditto_plan_active_pes", "plan", "pes");
        reg.set_gauge(phase, s.phase);
        reg.set_gauge(active, u64::from(s.phase_active_pes));
        self.pipeline.engine().publish_metrics(&mut reg);
        reg.snapshot()
    }

    fn snapshot(&self) -> ShardSnapshot {
        let s = self.pipeline.snapshot();
        ShardSnapshot {
            shard: self.id,
            cycles: s.cycles,
            tuples: s.tuples,
            queue_depth: self.enqueued - s.tuples,
            reschedules: s.reschedules,
            plans_generated: s.plans_generated,
            per_pe_processed: s.per_pe_processed,
            batches_completed: self.batches_done,
            batches_pending: self.pending.len(),
        }
    }

    /// Pops every pending batch whose watermark the engine has reached and
    /// notifies the cluster.
    fn complete_ready(&mut self) {
        let processed = self.pipeline.processed();
        let done_cycle = self.pipeline.cycle();
        while let Some(front) = self.pending.front() {
            if front.watermark > processed {
                break;
            }
            let b = self.pending.pop_front().expect("front checked");
            self.batches_done += 1;
            self.journal
                .record(b.id, SpanStage::Drain, done_cycle, self.id as u32, b.tuples);
            // A send failure means the cluster stopped listening (dropped);
            // the shard keeps serving the engine side regardless.
            let _ = self.events.send(ShardEvent::Completed {
                shard: self.id,
                batch: b.id,
                latency_cycles: done_cycle - b.enqueue_cycle,
                wall: b.submitted.elapsed(),
            });
            if let Some(after) = self.kill_after {
                if self.batches_done >= after {
                    panic!(
                        "DITTO_KILL_SHARD: shard {} killed after {} served batches \
                         (fault injection)",
                        self.id, self.batches_done
                    );
                }
            }
        }
    }

    /// Terminal sequence: close the queue, drain to quiescence, flush
    /// completions, hand back states and the final report.
    fn finish(mut self, reply: Sender<ShardFinish<A>>) {
        self.queue.close();
        let remaining = self.enqueued.saturating_sub(self.pipeline.processed());
        // Worst case is ingress delivery at the configured rate followed by
        // full serialisation through one PE at its initiation interval,
        // plus reschedule/profiling slack; simulated cycles are cheap, so
        // be generous.
        let ingress_cycles = (remaining as f64 / self.ingress_rate).ceil() as u64;
        let pe_cycles = remaining * u64::from(self.pipeline.app().ii_pri() + 2);
        let budget = ingress_cycles + pe_cycles + 1_000_000;
        self.pipeline.expect_drained(budget);
        self.record_first_steps();
        self.complete_ready();
        assert!(
            self.pending.is_empty(),
            "shard {} drained but {} batches still pending",
            self.id,
            self.pending.len()
        );
        let (pri_states, report, _channels) = self.pipeline.finish_states();
        let _ = reply.send(ShardFinish { pri_states, report });
    }
}
