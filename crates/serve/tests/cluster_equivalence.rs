//! Sharded-vs-single equivalence: a `ditto-serve` cluster must produce the
//! same application output as a single-engine `run_dataset` over the
//! concatenated input, for all five paper applications (HISTO, DP, PR,
//! HLL, HHD) under uniform and extreme (Zipf-3) skew — plus balancer
//! behaviour under a forced hot shard.

use std::sync::Arc;

use datagen::{Tuple, UniformGenerator, ZipfGenerator};
use ditto_apps::{DataPartitionApp, HhdApp, HistoApp, HllApp, PageRankApp};
use ditto_core::apps::CountPerKey;
use ditto_core::{ArchConfig, DittoApp, MergeableOutput, SkewObliviousPipeline};
use ditto_serve::{split_into_batches, BalancerConfig, Cluster, ServeConfig};
use sketches::Fixed;

const TUPLES: usize = 8_000;
const BATCH: usize = 1_000;
const SHARDS: usize = 3;

fn uniform(seed: u64) -> Vec<Tuple> {
    UniformGenerator::new(1 << 16, seed).take_vec(TUPLES)
}

fn zipf3(seed: u64) -> Vec<Tuple> {
    ZipfGenerator::new(3.0, 1 << 16, seed).take_vec(TUPLES)
}

/// Serves `data` through a cluster in `BATCH`-tuple requests and returns
/// the combined output.
fn serve<A: DittoApp + Clone + 'static>(app: A, data: &[Tuple], config: &ServeConfig) -> A::Output {
    let mut cluster = Cluster::new(app, config);
    for batch in split_into_batches(data, BATCH) {
        cluster.submit(batch);
    }
    cluster.drain();
    cluster.finish().output
}

fn single<A: DittoApp + 'static>(app: A, data: &[Tuple], arch: &ArchConfig) -> A::Output {
    SkewObliviousPipeline::run_dataset(app, data.to_vec(), arch).output
}

#[test]
fn histo_cluster_equals_single_engine() {
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    for data in [uniform(11), zipf3(12)] {
        let sharded = serve(app.clone(), &data, &config);
        let alone = single(app.clone(), &data, &arch);
        assert_eq!(sharded, alone, "HISTO sharded run diverged");
        assert_eq!(sharded, app.reference(&data), "and both match the host");
    }
}

#[test]
fn dp_cluster_equals_single_engine_as_multisets() {
    let app = DataPartitionApp::new(64, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    for data in [uniform(21), zipf3(22)] {
        let mut sharded = serve(app.clone(), &data, &config);
        let mut alone = single(app.clone(), &data, &arch);
        // DP is the non-decomposable app: each instance staged its share in
        // its own arrival order, so partition *contents* are compared as
        // multisets (the paper's "own memory space" semantics promise no
        // intra-partition order).
        for bucket in sharded.iter_mut().chain(alone.iter_mut()) {
            bucket.sort_unstable();
        }
        assert_eq!(sharded, alone, "DP sharded run diverged");
    }
}

#[test]
fn pagerank_cluster_equals_single_engine_bit_for_bit() {
    // One superstep over a skewed graph: fixed-point adds are exact, so
    // sharding the edge list must not change a single bit.
    let graph = ditto_graph::generate::rmat(10, 8.0, 0.57, 0.19, 0.19, 0x5eed);
    let contribs: Arc<Vec<Fixed>> = Arc::new(
        (0..graph.vertex_count())
            .map(|v| Fixed::from_f64(1.0 / (graph.out_degree(v).max(1) as f64)))
            .collect(),
    );
    let app = PageRankApp::new(contribs, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    let edges = PageRankApp::edge_tuples(&graph);
    let sharded = serve(app.clone(), &edges, &config);
    let alone = single(app, &edges, &arch);
    assert_eq!(sharded, alone, "PR sharded run diverged");
}

#[test]
fn hll_cluster_equals_single_engine() {
    let app = HllApp::new(10, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    for data in [uniform(31), zipf3(32)] {
        let sharded = serve(app.clone(), &data, &config);
        let alone = single(app.clone(), &data, &arch);
        assert_eq!(sharded, alone, "HLL register files diverged");
    }
}

#[test]
fn hhd_cluster_equals_single_engine() {
    // The cross-shard merge makes the CMS cells identical to the single
    // engine's (sums commute); candidate tables are per-shard, so exact
    // output equality additionally needs every reported key's candidacy to
    // be detected inside its own shard — true for any key whose real count
    // reaches the candidate threshold, i.e. for these datasets (fixed
    // seeds keep this deterministic). A key reportable only through
    // cross-shard collision noise could differ; see the crate docs.
    let app = HhdApp::new(4, 512, 300, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    for data in [uniform(41), zipf3(42)] {
        let sharded = serve(app.clone(), &data, &config);
        let alone = single(app.clone(), &data, &arch);
        assert_eq!(sharded, alone, "HHD reports diverged");
    }
}

#[test]
fn equivalence_holds_across_shard_counts() {
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 3).with_pe_entries(app.pe_entries());
    let data = zipf3(51);
    let alone = single(app.clone(), &data, &arch);
    for shards in [1, 2, 4, 5] {
        let config = ServeConfig::new(shards, arch.clone());
        let sharded = serve(app.clone(), &data, &config);
        assert_eq!(sharded, alone, "diverged at {shards} shards");
    }
}

#[test]
fn per_shard_outputs_combine_to_the_same_result() {
    // The output-level merge path (MergeableOutput) agrees with the
    // state-level one for a decomposable app.
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 3).with_pe_entries(app.pe_entries());
    let data = zipf3(61);
    let config = ServeConfig::new(SHARDS, arch.clone());

    let mut cluster = Cluster::new(app.clone(), &config);
    for batch in split_into_batches(&data, BATCH) {
        cluster.submit(batch);
    }
    cluster.drain();
    let (outputs, reports, snapshot) = cluster.finish_per_shard();
    assert_eq!(outputs.len(), SHARDS);
    assert_eq!(reports.len(), SHARDS);
    assert_eq!(snapshot.tuples_processed(), TUPLES as u64);
    let combined = app.combine_outputs(outputs).expect("non-empty");
    assert_eq!(combined, single(app, &data, &arch));
}

#[test]
fn cluster_equivalence_survives_online_reschedules_and_migrations() {
    // The online preset: per-shard rescheduling on, balancer on, extreme
    // skew — merges must still preserve every tuple exactly.
    let data = zipf3(71);
    let arch_m = 8u32;
    let config = ServeConfig::online(SHARDS, 4, arch_m).with_balancer(BalancerConfig {
        min_window_tuples: 64,
        ..BalancerConfig::default()
    });
    let app = CountPerKey::new(arch_m);
    let mut cluster = Cluster::new(app.clone(), &config);
    for batch in split_into_batches(&data, BATCH) {
        cluster.submit(batch);
        cluster.rebalance();
    }
    cluster.drain();
    let outcome = cluster.finish();
    assert_eq!(
        outcome.output.iter().sum::<u64>(),
        TUPLES as u64,
        "tuples lost or duplicated across reschedules/migrations"
    );
    let alone = single(app, &data, &config.arch);
    assert_eq!(outcome.output, alone, "per-PE counts diverged");
}

#[test]
fn forced_hot_shard_triggers_migration() {
    // Craft traffic that lands entirely on shard 0's slots: the balancer
    // must detect the hot shard from live counters and migrate key ranges.
    let app = CountPerKey::new(8);
    let arch = ArchConfig::new(4, 8, 0);
    let config = ServeConfig::new(4, arch).with_balancer(BalancerConfig {
        min_window_tuples: 64,
        ..BalancerConfig::default()
    });
    let mut cluster = Cluster::new(app, &config);

    // Distinct keys whose slots shard 0 currently owns.
    let hot_keys: Vec<u64> = (0u64..)
        .filter(|&k| cluster.router().shard_of_key(k) == 0)
        .take(32)
        .collect();
    let mut migrations = 0;
    for round in 0..8 {
        let batch: Vec<Tuple> = hot_keys
            .iter()
            .cycle()
            .take(2_000)
            .map(|&k| Tuple::from_key(k))
            .collect();
        cluster.submit(batch);
        cluster.drain();
        migrations += cluster.rebalance().len();
        if migrations > 0 && round >= 2 {
            break;
        }
    }
    assert!(migrations > 0, "hot shard never shed a key range");
    let moved = hot_keys
        .iter()
        .filter(|&&k| cluster.router().shard_of_key(k) != 0)
        .count();
    assert!(moved > 0, "migration did not re-route any hot key");

    // Post-migration traffic spreads: serve one more round and check the
    // snapshot sees more than one shard working.
    let batch: Vec<Tuple> = hot_keys
        .iter()
        .cycle()
        .take(2_000)
        .map(|&k| Tuple::from_key(k))
        .collect();
    cluster.submit(batch);
    cluster.drain();
    let snap = cluster.snapshot();
    let busy = snap.shards.iter().filter(|s| s.tuples > 0).count();
    assert!(busy > 1, "traffic still pinned to one shard");
    assert!(snap.migrations > 0);
    let outcome = cluster.finish();
    assert!(outcome.snapshot.tuples_processed() > 0);
}
