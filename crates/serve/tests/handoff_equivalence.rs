//! Golden: state handoff is invisible to the application result. A run
//! with a forced mid-stream migration (slice extracted from the source
//! shard, installed on the target through `merge`, slots re-routed) must
//! be bit-identical to a single-engine run with no migration at all, for
//! all five paper applications — and surviving a source-shard kill right
//! after the handoff must lose nothing either.

use std::sync::Arc;

use datagen::{Tuple, ZipfGenerator};
use ditto_apps::{DataPartitionApp, HhdApp, HistoApp, HllApp, PageRankApp};
use ditto_core::{ArchConfig, DittoApp, SkewObliviousPipeline};
use ditto_serve::{split_into_batches, Cluster, ServeConfig, SlotMove};

const TUPLES: usize = 8_000;
const BATCH: usize = 1_000;
const SHARDS: usize = 3;

fn zipf3(seed: u64) -> Vec<Tuple> {
    ZipfGenerator::new(3.0, 1 << 16, seed).take_vec(TUPLES)
}

/// Serves `data`, forcing a whole-slice handoff of half of shard 0's
/// slots to shard 1 midway through the stream.
fn serve_with_handoff<A: DittoApp + Clone + 'static>(
    app: A,
    data: &[Tuple],
    config: &ServeConfig,
) -> A::Output {
    let mut cluster = Cluster::new(app, config);
    let batches = split_into_batches(data, BATCH);
    let midpoint = batches.len() / 2;
    for (i, batch) in batches.into_iter().enumerate() {
        if i == midpoint {
            let moves: Vec<SlotMove> = cluster
                .router()
                .slots_of(0)
                .into_iter()
                .step_by(2)
                .map(|slot| SlotMove {
                    slot,
                    from: 0,
                    to: 1,
                })
                .collect();
            assert!(!moves.is_empty(), "shard 0 must own slots to migrate");
            cluster
                .handoff(0, 1, &moves)
                .expect("no shard died in this run");
        }
        cluster.submit(batch);
    }
    cluster.drain();
    assert_eq!(cluster.handoffs_total(), 1);
    cluster.finish().output
}

fn single<A: DittoApp + 'static>(app: A, data: &[Tuple], arch: &ArchConfig) -> A::Output {
    SkewObliviousPipeline::run_dataset(app, data.to_vec(), arch).output
}

#[test]
fn histo_handoff_run_equals_no_migration_run() {
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    let data = zipf3(81);
    let migrated = serve_with_handoff(app.clone(), &data, &config);
    assert_eq!(migrated, single(app, &data, &arch), "HISTO diverged");
}

#[test]
fn dp_handoff_run_equals_no_migration_run_as_multisets() {
    let app = DataPartitionApp::new(64, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    let data = zipf3(82);
    let mut migrated = serve_with_handoff(app.clone(), &data, &config);
    let mut alone = single(app, &data, &arch);
    // DP partitions promise contents, not intra-partition order.
    for bucket in migrated.iter_mut().chain(alone.iter_mut()) {
        bucket.sort_unstable();
    }
    assert_eq!(migrated, alone, "DP diverged");
}

#[test]
fn pagerank_handoff_run_equals_no_migration_run() {
    let graph = ditto_graph::generate::rmat(10, 8.0, 0.57, 0.19, 0.19, 0x5eed);
    let contribs = Arc::new(
        (0..graph.vertex_count())
            .map(|v| sketches::Fixed::from_f64(1.0 / (graph.out_degree(v).max(1) as f64)))
            .collect::<Vec<_>>(),
    );
    let app = PageRankApp::new(contribs, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    let edges = PageRankApp::edge_tuples(&graph);
    let migrated = serve_with_handoff(app.clone(), &edges, &config);
    assert_eq!(migrated, single(app, &edges, &arch), "PR diverged");
}

#[test]
fn hll_handoff_run_equals_no_migration_run() {
    let app = HllApp::new(10, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    let data = zipf3(83);
    let migrated = serve_with_handoff(app.clone(), &data, &config);
    assert_eq!(migrated, single(app, &data, &arch), "HLL diverged");
}

#[test]
fn hhd_handoff_run_equals_no_migration_run() {
    let app = HhdApp::new(4, 512, 300, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    let data = zipf3(84);
    let migrated = serve_with_handoff(app.clone(), &data, &config);
    assert_eq!(migrated, single(app, &data, &arch), "HHD diverged");
}

#[test]
fn source_shard_killed_right_after_handoff_loses_nothing() {
    // The moment the handoff completes, the source holds only history it
    // accumulated *before* its slice was extracted away — none. Killing it
    // immediately after and recovering must therefore still reproduce the
    // single-engine result exactly.
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone());
    let data = zipf3(85);
    let mut cluster = Cluster::new(app.clone(), &config);
    let batches = split_into_batches(&data, BATCH);
    let midpoint = batches.len() / 2;
    for (i, batch) in batches.into_iter().enumerate() {
        if i == midpoint {
            // Migrate all of shard 0's slots but one (the router refuses
            // to strip a live shard bare through `apply`).
            let slots = cluster.router().slots_of(0);
            let moves: Vec<SlotMove> = slots[..slots.len() - 1]
                .iter()
                .map(|&slot| SlotMove {
                    slot,
                    from: 0,
                    to: 1,
                })
                .collect();
            cluster.handoff(0, 1, &moves).expect("healthy run");
            // Everything shard 0 ever folded now lives on shard 1; the
            // corpse holds zero post-extraction tuples, so its death costs
            // only the re-routing of its one remaining slot.
            cluster.kill_shard(0, "killed right after surrendering state");
            let moved = cluster.recover_shard(0, 2);
            assert_eq!(moved.len(), 1, "only the kept slot should move");
        }
        cluster.submit(batch);
        // Sub-batches racing the kill (none expected: handoff moved every
        // slot off shard 0 first) would surface here.
        for (_, _, tuples) in cluster.take_lost_parts() {
            cluster.submit(tuples);
        }
    }
    cluster.drain();
    let outcome = cluster.finish();
    assert_eq!(
        outcome.output,
        single(app, &data, &arch),
        "kill-after-handoff lost or doubled tuples"
    );
}
