//! HyperLogLog (HLL) — cardinality estimation with murmur3 (Table I).

use ditto_core::{DittoApp, MergeableOutput, Routed, Tuple};
use sketches::{murmur3_u64, HyperLogLog};

/// HyperLogLog cardinality estimation.
///
/// The PrePE hashes the key with murmur3 and splits the hash into a
/// register index and a rank ρ; registers are interleaved across PEs
/// (register `r` on PE `r mod M`), each PE buffering `2^precision / M`
/// one-byte registers — the per-PE BRAM saving that lets Ditto's HLL use a
/// larger register file (hence "more accurate estimation", §VI-B).
///
/// Merging a SecPE's partial register file into its PriPE's is an
/// element-wise max — HLL's native union.
///
/// # Example
///
/// ```
/// use ditto_apps::HllApp;
/// use ditto_core::{ArchConfig, SkewObliviousPipeline};
/// use datagen::UniformGenerator;
///
/// let app = HllApp::new(10, 8); // 1024 registers, 8 PriPEs
/// let cfg = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
/// let data = UniformGenerator::new(1 << 30, 7).take_vec(20_000);
/// let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
/// let est = out.output.estimate();
/// assert!((est - 20_000.0).abs() / 20_000.0 < 0.15);
/// ```
#[derive(Debug, Clone)]
pub struct HllApp {
    precision: u32,
    m_pri: u32,
    seed: u32,
}

impl HllApp {
    /// Creates an HLL app with `2^precision` registers on `m_pri` PriPEs.
    ///
    /// # Panics
    ///
    /// Panics if the register count is not a multiple of `m_pri`, or if
    /// `precision` is outside `4..=18`.
    pub fn new(precision: u32, m_pri: u32) -> Self {
        assert!((4..=18).contains(&precision), "precision must be in 4..=18");
        assert!(
            (1u64 << precision).is_multiple_of(u64::from(m_pri)),
            "register count must be a multiple of M"
        );
        HllApp {
            precision,
            m_pri,
            seed: 0x4151,
        }
    }

    /// Registers each PE buffers (`2^precision / M`).
    pub fn pe_entries(&self) -> usize {
        ((1u64 << self.precision) / u64::from(self.m_pri)) as usize
    }

    /// The register precision.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Host-side reference estimator over the same hash.
    pub fn reference(&self, data: &[Tuple]) -> HyperLogLog {
        let mut hll = HyperLogLog::new(self.precision);
        for t in data {
            hll.insert_hash(murmur3_u64(t.key, self.seed));
        }
        hll
    }
}

impl DittoApp for HllApp {
    /// `(register index, rank ρ)`.
    type Value = (u32, u8);
    /// This PE's interleaved register slice.
    type State = Vec<u8>;
    /// The assembled estimator.
    type Output = HyperLogLog;

    fn name(&self) -> &str {
        "HLL"
    }

    fn preprocess(&self, tuple: Tuple, m_pri: u32) -> Routed<(u32, u8)> {
        debug_assert_eq!(m_pri, self.m_pri, "pipeline M differs from app M");
        let hash = murmur3_u64(tuple.key, self.seed);
        // Same decomposition as the reference estimator.
        let idx = (hash >> (64 - self.precision)) as u32;
        let rest = hash << self.precision;
        let width = 64 - self.precision;
        let rho = (rest.leading_zeros().min(width) + 1) as u8;
        Routed::new(idx % m_pri, (idx, rho))
    }

    fn new_state(&self, pe_entries: usize) -> Vec<u8> {
        vec![0; pe_entries]
    }

    fn process(&self, state: &mut Vec<u8>, value: &(u32, u8)) {
        let (idx, rho) = *value;
        let local = (idx / self.m_pri) as usize;
        if rho > state[local] {
            state[local] = rho;
        }
    }

    fn merge(&self, pri: &mut Vec<u8>, sec: &Vec<u8>) {
        for (p, s) in pri.iter_mut().zip(sec) {
            if *s > *p {
                *p = *s;
            }
        }
    }

    fn finalize(&self, pri_states: Vec<Vec<u8>>) -> HyperLogLog {
        let m = pri_states.len() as u32;
        let mut hll = HyperLogLog::new(self.precision);
        for (pe, state) in pri_states.into_iter().enumerate() {
            for (local, reg) in state.into_iter().enumerate() {
                let global = local as u32 * m + pe as u32;
                hll.apply(global as usize, reg);
            }
        }
        hll
    }
}

impl MergeableOutput for HllApp {
    /// HLL union: element-wise register maximum — exact for any input
    /// split, duplicated keys included.
    fn merge_outputs(&self, acc: &mut HyperLogLog, part: HyperLogLog) {
        acc.merge(&part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{UniformGenerator, ZipfGenerator};
    use ditto_core::{ArchConfig, SkewObliviousPipeline};

    #[test]
    fn pipeline_registers_match_reference_exactly() {
        let app = HllApp::new(8, 8);
        let data = UniformGenerator::new(1 << 24, 11).take_vec(15_000);
        let expect = app.reference(&data);
        let cfg = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        assert_eq!(out.output, expect, "register files must be identical");
    }

    #[test]
    fn skewed_stream_with_secpes_matches_reference() {
        let app = HllApp::new(8, 8);
        let data = ZipfGenerator::new(2.0, 1 << 16, 13).take_vec(12_000);
        let expect = app.reference(&data);
        let cfg = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        assert_eq!(out.output, expect, "max-merge must preserve registers");
    }

    #[test]
    fn estimate_tracks_true_cardinality() {
        let app = HllApp::new(12, 16);
        let n = 50_000u64;
        let data: Vec<Tuple> = (0..n).map(Tuple::from_key).collect();
        let cfg = ArchConfig::new(8, 16, 0).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        let est = out.output.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "estimate {est} vs {n}");
    }

    #[test]
    fn duplicates_under_extreme_skew_do_not_inflate() {
        // α = 3: mostly one key — cardinality stays small.
        let app = HllApp::new(10, 8);
        let data = ZipfGenerator::new(3.0, 64, 17).take_vec(20_000);
        let cfg = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        let est = out.output.estimate();
        assert!(est < 100.0, "estimate {est} for <=64 distinct keys");
    }
}
