//! Heavy-hitter detection (HHD) — count-min sketch (Table I).

use std::collections::HashMap;

use ditto_core::{DittoApp, MergeableOutput, Routed, Tuple};
use sketches::{murmur3_u64, CountMinSketch};

/// Heavy-hitter detection with a count-min sketch.
///
/// The key space is range-partitioned by hash across PriPEs; each PE keeps
/// a private (narrow) count-min sketch plus a candidate table for keys that
/// crossed the report threshold. Since a SecPE helping a PriPE sees the
/// same key range and CMS counters are additive, the merge is element-wise
/// sum followed by re-scoring of candidates.
///
/// # Example
///
/// ```
/// use ditto_apps::HhdApp;
/// use ditto_core::{ArchConfig, SkewObliviousPipeline};
/// use datagen::ZipfGenerator;
///
/// let app = HhdApp::new(4, 256, 200, 8);
/// let cfg = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
/// let data = ZipfGenerator::new(2.0, 1 << 16, 3).take_vec(20_000);
/// let hot = ZipfGenerator::new(2.0, 1 << 16, 3).key_of_rank(1);
/// let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
/// assert!(out.output.iter().any(|&(k, _)| k == hot), "rank-1 key must be reported");
/// ```
#[derive(Debug, Clone)]
pub struct HhdApp {
    depth: usize,
    width_per_pe: usize,
    threshold: u64,
    /// Per-PE candidate-tracking threshold: a key's count can be split
    /// across at most M PEs (its PriPE plus SecPE helpers), so any PE
    /// holding `threshold / M` may be a shard of a true heavy hitter.
    candidate_threshold: u64,
    m_pri: u32,
}

impl HhdApp {
    /// Creates a detector: `depth × width_per_pe` CMS per PE, reporting
    /// keys whose estimated count reaches `threshold`, on `m_pri` PriPEs.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(depth: usize, width_per_pe: usize, threshold: u64, m_pri: u32) -> Self {
        assert!(
            depth > 0 && width_per_pe > 0,
            "CMS geometry must be nonzero"
        );
        assert!(threshold > 0, "threshold must be nonzero");
        assert!(m_pri > 0, "need at least one PriPE");
        let candidate_threshold = threshold.div_ceil(u64::from(m_pri)).max(1);
        HhdApp {
            depth,
            width_per_pe,
            threshold,
            candidate_threshold,
            m_pri,
        }
    }

    /// CMS cells per PE (the BRAM cost driver).
    pub fn pe_entries(&self) -> usize {
        self.depth * self.width_per_pe
    }

    /// The report threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Host-side reference: exact counts, keys at/above threshold.
    pub fn reference(&self, data: &[Tuple]) -> Vec<(u64, u64)> {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for t in data {
            *counts.entry(t.key).or_insert(0) += 1;
        }
        let mut hitters: Vec<(u64, u64)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= self.threshold)
            .collect();
        hitters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hitters
    }
}

/// One PE's heavy-hitter state: a CMS slice plus threshold candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HhdState {
    sketch: CountMinSketch,
    candidates: HashMap<u64, u64>,
}

impl DittoApp for HhdApp {
    /// The tuple key (counting is by key).
    type Value = u64;
    /// CMS slice + candidates.
    type State = HhdState;
    /// `(key, estimated count)` sorted by estimate descending.
    type Output = Vec<(u64, u64)>;

    fn name(&self) -> &str {
        "HHD"
    }

    fn preprocess(&self, tuple: Tuple, m_pri: u32) -> Routed<u64> {
        debug_assert_eq!(m_pri, self.m_pri, "pipeline M differs from app M");
        let dst = (murmur3_u64(tuple.key, 0x77) % u64::from(m_pri)) as u32;
        Routed::new(dst, tuple.key)
    }

    fn new_state(&self, _pe_entries: usize) -> HhdState {
        HhdState {
            sketch: CountMinSketch::new(self.depth, self.width_per_pe),
            candidates: HashMap::new(),
        }
    }

    fn process(&self, state: &mut HhdState, key: &u64) {
        state.sketch.update(*key, 1);
        let est = state.sketch.query(*key);
        if est >= self.candidate_threshold {
            state.candidates.insert(*key, est);
        }
    }

    fn merge(&self, pri: &mut HhdState, sec: &HhdState) {
        pri.sketch.merge(&sec.sketch);
        // Re-score all candidates against the merged sketch: a key may only
        // cross the threshold once both partial counts are combined.
        let keys: Vec<u64> = pri
            .candidates
            .keys()
            .chain(sec.candidates.keys())
            .copied()
            .collect();
        for key in keys {
            let est = pri.sketch.query(key);
            if est >= self.candidate_threshold {
                pri.candidates.insert(key, est);
            }
        }
    }

    fn finalize(&self, pri_states: Vec<HhdState>) -> Vec<(u64, u64)> {
        let mut hitters: Vec<(u64, u64)> = pri_states
            .into_iter()
            .flat_map(|s| {
                let sketch = s.sketch;
                s.candidates
                    .into_keys()
                    .map(move |k| (k, sketch.query(k)))
                    .collect::<Vec<_>>()
            })
            .filter(|&(_, est)| est >= self.threshold)
            .collect();
        hitters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hitters
    }
}

impl MergeableOutput for HhdApp {
    /// Combines heavy-hitter reports from instances that saw disjoint *key*
    /// shares (a key-hash router guarantees this): entries are unioned,
    /// keeping the larger estimate for a key reported twice, and re-sorted
    /// into the canonical estimate-descending order.
    ///
    /// Note that unlike the state-level merge (which sums CMS cells and is
    /// exact), output-level merging cannot resurrect a key whose per-instance
    /// estimate stayed below the threshold — use it only under key-disjoint
    /// routing.
    fn merge_outputs(&self, acc: &mut Vec<(u64, u64)>, part: Vec<(u64, u64)>) {
        for (key, est) in part {
            match acc.iter_mut().find(|(k, _)| *k == key) {
                Some(entry) => entry.1 = entry.1.max(est),
                None => acc.push((key, est)),
            }
        }
        acc.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{UniformGenerator, ZipfGenerator};
    use ditto_core::{ArchConfig, SkewObliviousPipeline};

    #[test]
    fn finds_all_true_heavy_hitters() {
        let app = HhdApp::new(4, 512, 300, 8);
        let data = ZipfGenerator::new(1.5, 1 << 14, 5).take_vec(30_000);
        let truth = app.reference(&data);
        assert!(!truth.is_empty(), "test needs at least one heavy hitter");
        let cfg = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        for &(key, count) in &truth {
            let found = out.output.iter().find(|&&(k, _)| k == key);
            let (_, est) = found.unwrap_or_else(|| panic!("missing hitter {key}"));
            assert!(*est >= count, "CMS never under-counts: {est} < {count}");
        }
    }

    #[test]
    fn no_heavy_hitters_in_uniform_data() {
        let app = HhdApp::new(4, 1024, 500, 8);
        let data = UniformGenerator::new(1 << 20, 9).take_vec(20_000);
        assert!(app.reference(&data).is_empty());
        let cfg = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        assert!(out.output.is_empty(), "got {:?}", out.output);
    }

    #[test]
    fn secpe_merge_combines_partial_counts() {
        // With SecPEs, a hot key's count is split between PriPE and SecPE
        // sketches; only the merged sketch crosses the threshold.
        let app = HhdApp::new(4, 512, 6_000, 8);
        let data = ZipfGenerator::new(3.0, 1 << 14, 21).take_vec(10_000);
        let truth = app.reference(&data);
        assert_eq!(
            truth.len(),
            1,
            "α=3 should leave exactly the rank-1 key above 60%"
        );
        let cfg = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        assert!(
            out.output.iter().any(|&(k, _)| k == truth[0].0),
            "split counts must re-combine in the merger"
        );
    }

    #[test]
    fn ordering_is_by_estimate_descending() {
        let app = HhdApp::new(4, 512, 100, 8);
        let data = ZipfGenerator::new(1.2, 1 << 12, 2).take_vec(20_000);
        let cfg = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        for w in out.output.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
