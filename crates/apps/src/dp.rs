//! Data partitioning (DP) — radix partitioning with a hash fan-out.

use ditto_core::{DittoApp, MergeableOutput, Routed, Tuple};
use sketches::hash::radix_bits;

/// Radix data partitioning: splits the input into `fan_out` partitions by
/// the low radix bits of the key (Table I: "separates a big dataset into
/// many chunks with radix hash function").
///
/// Partitions are interleaved across PEs (partition `p` on PE `p mod M`);
/// each PE stages its partitions' tuples in its private buffer and, in the
/// real hardware, flushes them to its own region of global memory. DP is
/// the paper's *non-decomposable* example: a SecPE's staged output is
/// appended to — not numerically merged with — its PriPE's.
///
/// # Example
///
/// ```
/// use ditto_apps::DataPartitionApp;
/// use ditto_core::{DittoApp, Tuple};
///
/// let app = DataPartitionApp::new(64, 16);
/// let r = app.preprocess(Tuple::new(0b101101, 9), 16);
/// assert_eq!(r.value.0, 0b101101); // partition = low 6 bits
/// assert_eq!(r.dst, (0b101101 % 16) as u32);
/// ```
#[derive(Debug, Clone)]
pub struct DataPartitionApp {
    fan_out: u64,
    m_pri: u32,
    radix_bits: u32,
}

impl DataPartitionApp {
    /// Creates a partitioner with `fan_out` partitions (a power of two)
    /// for an `m_pri`-PriPE pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `fan_out` is not a power of two, is smaller than `m_pri`,
    /// or is not a multiple of `m_pri`.
    pub fn new(fan_out: u64, m_pri: u32) -> Self {
        assert!(fan_out.is_power_of_two(), "fan-out must be a power of two");
        assert!(fan_out >= u64::from(m_pri), "fan-out must cover all PEs");
        assert!(
            fan_out.is_multiple_of(u64::from(m_pri)),
            "fan-out must be a multiple of M"
        );
        DataPartitionApp {
            fan_out,
            m_pri,
            radix_bits: fan_out.trailing_zeros(),
        }
    }

    /// The fan-out (number of output partitions).
    pub fn fan_out(&self) -> u64 {
        self.fan_out
    }

    /// Local partitions staged per PE.
    pub fn pe_entries(&self) -> usize {
        (self.fan_out / u64::from(self.m_pri)) as usize
    }

    /// The partition a key belongs to.
    pub fn partition_of(&self, key: u64) -> u64 {
        radix_bits(key, self.radix_bits)
    }

    /// Host-side reference partition sizes for validation.
    pub fn reference_sizes(&self, data: &[Tuple]) -> Vec<u64> {
        let mut sizes = vec![0u64; self.fan_out as usize];
        for t in data {
            sizes[self.partition_of(t.key) as usize] += 1;
        }
        sizes
    }
}

impl DittoApp for DataPartitionApp {
    /// `(partition, key, value)` of one tuple.
    type Value = (u64, u64, u64);
    /// Staged tuples per local partition.
    type State = Vec<Vec<(u64, u64)>>;
    /// The partitioned dataset: `fan_out` buckets of `(key, value)`.
    type Output = Vec<Vec<(u64, u64)>>;

    fn name(&self) -> &str {
        "DP"
    }

    /// DP's PE body only appends to a staging line, so it sustains one
    /// tuple per cycle (II = 1) — which is why Equation 1 gives it fewer
    /// PriPEs than HISTO on the same platform.
    fn ii_pri(&self) -> u32 {
        1
    }

    fn preprocess(&self, tuple: Tuple, m_pri: u32) -> Routed<(u64, u64, u64)> {
        debug_assert_eq!(m_pri, self.m_pri, "pipeline M differs from app M");
        let p = self.partition_of(tuple.key);
        Routed::new((p % u64::from(m_pri)) as u32, (p, tuple.key, tuple.value))
    }

    fn new_state(&self, pe_entries: usize) -> Self::State {
        vec![Vec::new(); pe_entries]
    }

    fn process(&self, state: &mut Self::State, value: &(u64, u64, u64)) {
        let (p, key, val) = *value;
        let local = (p / u64::from(self.m_pri)) as usize;
        state[local].push((key, val));
    }

    fn merge(&self, pri: &mut Self::State, sec: &Self::State) {
        // Non-decomposable: concatenate the SecPE's staged output (its "own
        // memory space") after the PriPE's.
        for (p, s) in pri.iter_mut().zip(sec) {
            p.extend_from_slice(s);
        }
    }

    fn finalize(&self, pri_states: Vec<Self::State>) -> Self::Output {
        let m = pri_states.len() as u64;
        let mut out = vec![Vec::new(); self.fan_out as usize];
        for (pe, state) in pri_states.into_iter().enumerate() {
            for (local, bucket) in state.into_iter().enumerate() {
                let global = local as u64 * m + pe as u64;
                if global < self.fan_out {
                    out[global as usize] = bucket;
                }
            }
        }
        out
    }
}

impl MergeableOutput for DataPartitionApp {
    /// Concatenates each partition's staged tuples (the non-decomposable
    /// merge: every instance wrote to "its own memory space"). The combined
    /// partition contents are order-insensitive — equal to a single-instance
    /// run as per-partition multisets.
    fn merge_outputs(&self, acc: &mut Self::Output, part: Self::Output) {
        debug_assert_eq!(acc.len(), part.len(), "fan-out must match");
        for (a, p) in acc.iter_mut().zip(part) {
            a.extend(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{UniformGenerator, ZipfGenerator};
    use ditto_core::{ArchConfig, SkewObliviousPipeline};

    fn partition_sizes(out: &[Vec<(u64, u64)>]) -> Vec<u64> {
        out.iter().map(|b| b.len() as u64).collect()
    }

    #[test]
    fn partitions_are_complete_and_correct() {
        let app = DataPartitionApp::new(64, 8);
        let data = UniformGenerator::new(1 << 20, 5).take_vec(10_000);
        let expect = app.reference_sizes(&data);
        let cfg = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app.clone(), data, &cfg);
        assert_eq!(partition_sizes(&out.output), expect);
        // Every tuple landed in the partition its radix bits dictate.
        for (p, bucket) in out.output.iter().enumerate() {
            for &(key, _) in bucket {
                assert_eq!(app.partition_of(key), p as u64);
            }
        }
    }

    #[test]
    fn skewed_partitioning_with_secpes_loses_nothing() {
        let app = DataPartitionApp::new(64, 8);
        // Low-bit-skewed keys: most tuples share one partition.
        let data: Vec<Tuple> = ZipfGenerator::new(2.5, 1 << 16, 3).take_vec(8_000);
        let expect = app.reference_sizes(&data);
        let cfg = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        assert_eq!(partition_sizes(&out.output), expect);
    }

    #[test]
    fn higher_fan_out_with_data_routing() {
        // The BRAM saving lets data routing reach a higher fan-out: every
        // PE stages fan_out / M partitions, not fan_out.
        let app = DataPartitionApp::new(512, 16);
        assert_eq!(app.pe_entries(), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fan_out_power_of_two() {
        let _ = DataPartitionApp::new(48, 8);
    }
}
