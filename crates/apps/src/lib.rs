//! # ditto-apps — the five evaluated applications (Table I)
//!
//! Each application is a [`DittoApp`](ditto_core::DittoApp) specification —
//! the high-level code a developer would write against the Ditto
//! programming interface (the paper's Listing 2), with the routing rule,
//! the PE processing body and the merge operator:
//!
//! | App | Description (Table I) | Routing | PE buffer |
//! |---|---|---|---|
//! | [`HistoApp`] | equi-width histograms | bin mod M | bin-count slice |
//! | [`DataPartitionApp`] | radix partitioning | partition mod M | staging buffers |
//! | [`PageRankApp`] | fixed-point PageRank | dst-vertex mod M | next-rank slice |
//! | [`HllApp`] | murmur3 HyperLogLog | register mod M | register slice |
//! | [`HhdApp`] | count-min heavy hitters | key-hash mod M | CMS + candidates |
//!
//! All five are *decomposable* in the merger's sense except data
//! partitioning, whose merge concatenates staged output — the paper's
//! "PrePEs and SecPEs output results to their own memory space".
//!
//! # Example
//!
//! ```
//! use ditto_apps::HistoApp;
//! use ditto_core::{ArchConfig, SkewObliviousPipeline};
//! use datagen::ZipfGenerator;
//!
//! let data = ZipfGenerator::new(1.0, 1 << 16, 5).take_vec(20_000);
//! let cfg = ArchConfig::new(4, 8, 3).with_pe_entries(32 / 8);
//! let app = HistoApp::new(32, 8);
//! let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
//! assert_eq!(out.output.iter().sum::<u64>(), 20_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dp;
mod hhd;
mod histo;
mod hll;
mod pagerank;

pub use dp::DataPartitionApp;
pub use hhd::HhdApp;
pub use histo::HistoApp;
pub use hll::HllApp;
pub use pagerank::{run_pagerank, PageRankApp, PageRankResult};
