//! PageRank (PR) — fixed-point rank scoring over graph edges (Table I).

use std::sync::Arc;

use ditto_core::{
    ArchConfig, DittoApp, ExecutionReport, MergeableOutput, Routed, SkewObliviousPipeline, Tuple,
};
use ditto_graph::Csr;
use sketches::Fixed;

/// One PageRank superstep as a Ditto application.
///
/// The edge list is streamed from global memory as `⟨dst, src⟩` tuples; the
/// PrePE looks up the source's precomputed contribution
/// (`d · rank[src] / outdeg[src]`, the gather stage of the FPGA designs the
/// paper builds on) and routes the update to the PE owning the destination
/// vertex (vertex `v` on PE `v mod M`). The PE accumulates into its private
/// next-rank slice; SecPE partials merge by fixed-point addition, which is
/// exact, so the pipeline result equals the host reference bit-for-bit.
///
/// High-degree vertices concentrate updates on one PE — the in-degree skew
/// that Fig. 8 shows plain data routing collapsing under.
#[derive(Debug, Clone)]
pub struct PageRankApp {
    contribs: Arc<Vec<Fixed>>,
    n_vertices: usize,
    m_pri: u32,
}

impl PageRankApp {
    /// Creates the superstep app from per-source contributions.
    ///
    /// # Panics
    ///
    /// Panics if `m_pri` is zero.
    pub fn new(contribs: Arc<Vec<Fixed>>, m_pri: u32) -> Self {
        assert!(m_pri > 0, "need at least one PriPE");
        PageRankApp {
            n_vertices: contribs.len(),
            contribs,
            m_pri,
        }
    }

    /// Next-rank accumulator entries each PE buffers (`⌈n/M⌉`).
    pub fn pe_entries(&self) -> usize {
        self.n_vertices.div_ceil(self.m_pri as usize)
    }

    /// The edge stream for `graph`: one `⟨dst, src⟩` tuple per edge, in CSR
    /// order — the order the memory access engine would burst-read.
    pub fn edge_tuples(graph: &Csr) -> Vec<Tuple> {
        graph
            .edges()
            .map(|(s, d)| Tuple::new(u64::from(d), u64::from(s)))
            .collect()
    }
}

impl DittoApp for PageRankApp {
    /// `(dst vertex, contribution)`.
    type Value = (u32, Fixed);
    /// This PE's slice of next-rank accumulators.
    type State = Vec<Fixed>;
    /// Gathered rank sums per vertex (before damping base term).
    type Output = Vec<Fixed>;

    fn name(&self) -> &str {
        "PR"
    }

    fn preprocess(&self, tuple: Tuple, m_pri: u32) -> Routed<(u32, Fixed)> {
        debug_assert_eq!(m_pri, self.m_pri, "pipeline M differs from app M");
        let dst = tuple.key as u32;
        let src = tuple.value as usize;
        Routed::new(dst % m_pri, (dst, self.contribs[src]))
    }

    fn new_state(&self, pe_entries: usize) -> Vec<Fixed> {
        vec![Fixed::ZERO; pe_entries]
    }

    fn process(&self, state: &mut Vec<Fixed>, value: &(u32, Fixed)) {
        let (dst, contrib) = *value;
        state[(dst / self.m_pri) as usize] += contrib;
    }

    fn merge(&self, pri: &mut Vec<Fixed>, sec: &Vec<Fixed>) {
        for (p, s) in pri.iter_mut().zip(sec) {
            *p += *s;
        }
    }

    fn finalize(&self, pri_states: Vec<Vec<Fixed>>) -> Vec<Fixed> {
        let m = pri_states.len();
        let mut sums = vec![Fixed::ZERO; self.n_vertices];
        for (pe, state) in pri_states.into_iter().enumerate() {
            for (local, acc) in state.into_iter().enumerate() {
                let v = local * m + pe;
                if v < self.n_vertices {
                    sums[v] = acc;
                }
            }
        }
        sums
    }
}

impl MergeableOutput for PageRankApp {
    /// Per-vertex gathered sums over disjoint edge shares add — fixed-point
    /// addition is exact and associative, so any sharding of the edge list
    /// combines to the single-instance result bit-for-bit.
    fn merge_outputs(&self, acc: &mut Vec<Fixed>, part: Vec<Fixed>) {
        debug_assert_eq!(acc.len(), part.len(), "vertex counts must match");
        for (a, p) in acc.iter_mut().zip(part) {
            *a += p;
        }
    }
}

/// Result of a multi-iteration PageRank run on the pipeline.
#[derive(Debug)]
pub struct PageRankResult {
    /// Final ranks.
    pub ranks: Vec<Fixed>,
    /// One execution report per superstep.
    pub reports: Vec<ExecutionReport>,
}

impl PageRankResult {
    /// Average edges per cycle across supersteps — multiply by the clock
    /// (MHz) for Fig. 8's MTEPS.
    pub fn edges_per_cycle(&self) -> f64 {
        let edges: u64 = self.reports.iter().map(|r| r.tuples).sum();
        let cycles: u64 = self.reports.iter().map(|r| r.cycles).sum();
        if cycles == 0 {
            return 0.0;
        }
        edges as f64 / cycles as f64
    }
}

/// Runs `iterations` PageRank supersteps of `graph` on the skew-oblivious
/// pipeline configured by `config`, handling damping, dangling mass and
/// rank updates exactly like [`ditto_graph::pagerank`].
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn run_pagerank(
    graph: &Csr,
    damping: f64,
    iterations: usize,
    config: &ArchConfig,
) -> PageRankResult {
    let n = graph.vertex_count();
    assert!(n > 0, "graph must have vertices");
    let d = Fixed::from_f64(damping);
    let n_fixed = Fixed::from_int(n as i32);
    let base = (Fixed::ONE - d) / n_fixed;

    let mut ranks = vec![Fixed::ONE / n_fixed; n];
    let mut reports = Vec::with_capacity(iterations);
    let edges = PageRankApp::edge_tuples(graph);

    for _ in 0..iterations {
        // Gather-side precomputation (the PrePE's rank fetch).
        let contribs: Vec<Fixed> = (0..n)
            .map(|v| {
                let deg = graph.out_degree(v);
                if deg == 0 {
                    Fixed::ZERO
                } else {
                    d * ranks[v] / Fixed::from_int(deg as i32)
                }
            })
            .collect();
        let dangling: Fixed = (0..n)
            .filter(|&v| graph.out_degree(v) == 0)
            .map(|v| ranks[v])
            .sum();
        let dangling_share = d * dangling / n_fixed;

        let app = PageRankApp::new(Arc::new(contribs), config.m_pri);
        let cfg = config.clone().with_pe_entries(app.pe_entries());
        let outcome = SkewObliviousPipeline::run_dataset(app, edges.clone(), &cfg);
        reports.push(outcome.report);

        ranks = outcome
            .output
            .into_iter()
            .map(|sum| base + dangling_share + sum)
            .collect();
    }
    PageRankResult { ranks, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_graph::{generate, pagerank as reference};

    #[test]
    fn pipeline_matches_reference_bit_for_bit() {
        let g = generate::uniform(200, 5.0, 3);
        let cfg = ArchConfig::new(4, 8, 0);
        let ours = run_pagerank(&g, 0.85, 5, &cfg);
        let refr = reference::pagerank(&g, 0.85, 5);
        assert_eq!(
            ours.ranks, refr,
            "fixed-point addition is exact; results must match"
        );
    }

    #[test]
    fn skewed_graph_with_secpes_matches_reference() {
        let g = generate::power_law(256, 8.0, 1.5, 7).to_undirected();
        let cfg = ArchConfig::new(4, 8, 7);
        let ours = run_pagerank(&g, 0.85, 3, &cfg);
        let refr = reference::pagerank(&g, 0.85, 3);
        assert_eq!(ours.ranks, refr);
        assert!(ours.reports.iter().all(|r| r.completed));
    }

    #[test]
    fn ranks_form_a_distribution() {
        let g = generate::power_law(500, 6.0, 1.0, 9);
        let cfg = ArchConfig::new(4, 8, 3);
        let res = run_pagerank(&g, 0.85, 10, &cfg);
        let sum: f64 = res.ranks.iter().map(|r| r.to_f64()).sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }

    #[test]
    fn hub_heavy_graph_is_slower_without_secpes() {
        let g = generate::power_law(512, 12.0, 1.6, 11).to_undirected();
        let base = run_pagerank(&g, 0.85, 2, &ArchConfig::new(4, 8, 0));
        let full = run_pagerank(&g, 0.85, 2, &ArchConfig::new(4, 8, 7));
        assert!(
            full.edges_per_cycle() > base.edges_per_cycle() * 1.2,
            "SecPEs should speed up hub-heavy PR: {} vs {}",
            full.edges_per_cycle(),
            base.edges_per_cycle()
        );
    }

    #[test]
    fn edge_tuples_cover_graph() {
        let g = generate::uniform(50, 3.0, 1);
        assert_eq!(PageRankApp::edge_tuples(&g).len(), g.edge_count());
    }
}
