//! Histogram building (HISTO) — the paper's motivating application (§II).

use ditto_core::{DittoApp, MergeableOutput, Routed, Tuple};
use sketches::murmur3_u64;

/// Equi-width histogram building over `bins` bins.
///
/// The bin is `hash(key) mod bins`; bins are interleaved across PriPEs as
/// in the paper's Fig. 1b (PE 0 owns bins 0, M, 2M, …), so each PE buffers
/// only `bins / M` counters — the data-routing BRAM saving the paper
/// quantifies against replication-based designs.
///
/// # Example
///
/// ```
/// use ditto_apps::HistoApp;
/// use ditto_core::{DittoApp, Tuple};
///
/// let app = HistoApp::new(32, 16);
/// let routed = app.preprocess(Tuple::from_key(7), 16);
/// assert!(routed.dst < 16);
/// assert!(routed.value < 32); // the global bin index
/// ```
#[derive(Debug, Clone)]
pub struct HistoApp {
    bins: u64,
    m_pri: u32,
}

impl HistoApp {
    /// Creates a histogram app with `bins` bins for an `m_pri`-PriPE
    /// pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `bins` or `m_pri` is zero, or if `bins` is not a multiple
    /// of `m_pri` (interleaving must be exact so every PE's buffer has the
    /// same depth, as hardware requires).
    pub fn new(bins: u64, m_pri: u32) -> Self {
        assert!(bins > 0 && m_pri > 0, "bins and m_pri must be nonzero");
        assert!(
            bins.is_multiple_of(u64::from(m_pri)),
            "bins ({bins}) must be a multiple of M ({m_pri})"
        );
        HistoApp { bins, m_pri }
    }

    /// Number of bins.
    pub fn bins(&self) -> u64 {
        self.bins
    }

    /// Entries each destination PE must buffer (`bins / M`) — pass this to
    /// [`ArchConfig::with_pe_entries`](ditto_core::ArchConfig::with_pe_entries).
    pub fn pe_entries(&self) -> usize {
        (self.bins / u64::from(self.m_pri)) as usize
    }

    /// The bin a key falls into — shared with reference implementations.
    pub fn bin_of(&self, key: u64) -> u64 {
        murmur3_u64(key, 0x4151) % self.bins
    }

    /// Host-side reference histogram for validation.
    pub fn reference(&self, data: &[Tuple]) -> Vec<u64> {
        let mut hist = vec![0u64; self.bins as usize];
        for t in data {
            hist[self.bin_of(t.key) as usize] += 1;
        }
        hist
    }
}

impl DittoApp for HistoApp {
    /// The global bin index.
    type Value = u64;
    /// This PE's interleaved slice of bin counters.
    type State = Vec<u64>;
    /// The global histogram.
    type Output = Vec<u64>;

    fn name(&self) -> &str {
        "HISTO"
    }

    fn preprocess(&self, tuple: Tuple, m_pri: u32) -> Routed<u64> {
        debug_assert_eq!(m_pri, self.m_pri, "pipeline M differs from app M");
        let bin = self.bin_of(tuple.key);
        Routed::new((bin % u64::from(m_pri)) as u32, bin)
    }

    fn new_state(&self, pe_entries: usize) -> Vec<u64> {
        vec![0; pe_entries]
    }

    fn process(&self, state: &mut Vec<u64>, bin: &u64) {
        state[(*bin / u64::from(self.m_pri)) as usize] += 1;
    }

    fn merge(&self, pri: &mut Vec<u64>, sec: &Vec<u64>) {
        for (p, s) in pri.iter_mut().zip(sec) {
            *p += *s;
        }
    }

    fn finalize(&self, pri_states: Vec<Vec<u64>>) -> Vec<u64> {
        let m = pri_states.len() as u64;
        let mut out = vec![0u64; self.bins as usize];
        for (pe, state) in pri_states.into_iter().enumerate() {
            for (local, count) in state.into_iter().enumerate() {
                let global = local as u64 * m + pe as u64;
                if global < self.bins {
                    out[global as usize] = count;
                }
            }
        }
        out
    }
}

impl MergeableOutput for HistoApp {
    /// Bin counts over disjoint input shares add element-wise.
    fn merge_outputs(&self, acc: &mut Vec<u64>, part: Vec<u64>) {
        debug_assert_eq!(acc.len(), part.len(), "histogram widths must match");
        for (a, p) in acc.iter_mut().zip(part) {
            *a += p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{UniformGenerator, ZipfGenerator};
    use ditto_core::{ArchConfig, SkewObliviousPipeline};

    #[test]
    fn pipeline_matches_reference_uniform() {
        let app = HistoApp::new(64, 8);
        let data = UniformGenerator::new(1 << 16, 3).take_vec(10_000);
        let expect = app.reference(&data);
        let cfg = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        assert_eq!(out.output, expect);
    }

    #[test]
    fn pipeline_matches_reference_with_secpes_under_skew() {
        let app = HistoApp::new(64, 8);
        let data = ZipfGenerator::new(2.5, 1 << 16, 7).take_vec(10_000);
        let expect = app.reference(&data);
        let cfg = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
        let out = SkewObliviousPipeline::run_dataset(app, data, &cfg);
        assert_eq!(out.output, expect, "SecPE merge must preserve exact counts");
        assert!(out.report.plans_generated >= 1);
    }

    #[test]
    fn bins_cover_all_counters() {
        let app = HistoApp::new(32, 8);
        let data = UniformGenerator::new(1 << 20, 9).take_vec(32_000);
        let hist = app.reference(&data);
        assert_eq!(hist.iter().sum::<u64>(), 32_000);
        // With murmur3 binning every bin should be populated.
        assert!(hist.iter().all(|&c| c > 0));
    }

    #[test]
    #[should_panic(expected = "multiple of M")]
    fn bins_must_divide() {
        let _ = HistoApp::new(30, 16);
    }
}
