//! End-to-end planner goldens: profile → plan → validate, for two
//! applications × two skews.
//!
//! Pins the acceptance bar of the two-pass planner: the predicted
//! throughput of the chosen configuration is within ±25 % of the
//! cycle-level simulation, and on uniform data the choice beats the
//! paper-default `16P+15S` deployment on throughput per ALM.

use datagen::{Tuple, UniformGenerator, ZipfGenerator};
use ditto_core::apps::{CountPerKey, ModHistogram};
use ditto_core::{ArchConfig, DittoApp, PersistentPipeline, SliceOptions};
use ditto_plan::{validate, DeploymentPlan, Planner, PlannerOptions};
use fpga_model::{AppCostProfile, PipelineShape};
use hls_sim::{MemoryModel, SliceSource};

/// PriPE count of the profiling pipeline; candidates fold from it.
const REFERENCE_M: u32 = 32;
/// Dataset size: long enough that ramp-up and drain tails are noise.
const TUPLES: usize = 60_000;
/// Profiling slice: a quarter of the stream at full rate.
const SLICE_CYCLES: u64 = 4_096;

fn source(data: Vec<Tuple>) -> Box<SliceSource<Tuple>> {
    Box::new(SliceSource::new(
        data,
        Tuple::PAPER_WIDTH_BYTES,
        MemoryModel::new(64, 16),
    ))
}

/// Runs the full two-pass flow for one app × dataset point.
fn plan_point<A, F>(
    planner: &mut Planner,
    make_app: F,
    profile: &AppCostProfile,
    data: &[Tuple],
    label: &str,
) -> (DeploymentPlan, ditto_plan::Validation)
where
    A: DittoApp + 'static,
    F: Fn(u32) -> A,
{
    // Pass 1: counts — a bounded slice at the reference shape.
    let ref_cfg = ArchConfig::new(8, REFERENCE_M, 0);
    let mut pipeline =
        PersistentPipeline::new(make_app(REFERENCE_M), source(data.to_vec()), &ref_cfg);
    let trace = pipeline.profile_counts(SliceOptions::new(SLICE_CYCLES));
    assert!(trace.total_tuples() > 0, "{label}: slice saw no tuples");

    // Pass 2: estimates — search, then validate the chosen point in the
    // simulator.
    let opts = PlannerOptions::paper_search();
    let plan = planner.plan(&trace, REFERENCE_M, profile, &opts);
    let v = validate(&plan, make_app(plan.config.m_pri), data.to_vec());
    eprintln!(
        "{label}: chose {} on {} | predicted {:.2} t/c ({:.0} MT/s, {} bound) \
         simulated {:.2} t/c | error {:+.1}%",
        plan.chosen.shape.label(),
        plan.chosen.device,
        v.predicted_rate,
        plan.chosen.mtps,
        plan.chosen.prediction.binding(),
        v.simulated_rate,
        v.rel_error * 100.0,
    );
    (plan, v)
}

fn paper_default(plan: &DeploymentPlan) -> &ditto_plan::Candidate {
    plan.candidates
        .iter()
        .find(|c| c.shape == PipelineShape::new(8, 16, 15))
        .expect("paper default is in the search space")
}

#[test]
fn planner_golden_two_apps_two_skews() {
    let uniform = UniformGenerator::new(1 << 18, 11).take_vec(TUPLES);
    let zipf = ZipfGenerator::new(2.0, 1 << 18, 11).take_vec(TUPLES);
    let mut planner = Planner::new();

    // count-per-key (HISTO-like cost profile).
    let (cu_plan, cu_v) = plan_point(
        &mut planner,
        CountPerKey::new,
        &AppCostProfile::histo(),
        &uniform,
        "count/uniform",
    );
    let (cz_plan, cz_v) = plan_point(
        &mut planner,
        CountPerKey::new,
        &AppCostProfile::histo(),
        &zipf,
        "count/zipf2.0",
    );

    // mod-histogram (DP-like cost profile: bigger per-PE buffers).
    let (hu_plan, hu_v) = plan_point(
        &mut planner,
        |_m| ModHistogram::new(1 << 12),
        &AppCostProfile::dp(),
        &uniform,
        "histo/uniform",
    );
    let (hz_plan, hz_v) = plan_point(
        &mut planner,
        |_m| ModHistogram::new(1 << 12),
        &AppCostProfile::dp(),
        &zipf,
        "histo/zipf2.0",
    );

    // ±25 % prediction tolerance on every point.
    for (label, v) in [
        ("count/uniform", &cu_v),
        ("count/zipf2.0", &cz_v),
        ("histo/uniform", &hu_v),
        ("histo/zipf2.0", &hz_v),
    ] {
        assert!(
            v.within(0.25),
            "{label}: prediction off by {:+.1}% (predicted {:.2}, simulated {:.2})",
            v.rel_error * 100.0,
            v.predicted_rate,
            v.simulated_rate
        );
    }

    // Uniform data must not pay SecPE area, and must beat the paper's
    // default 16P+15S deployment on throughput per ALM.
    for (label, plan) in [("count/uniform", &cu_plan), ("histo/uniform", &hu_plan)] {
        assert_eq!(plan.chosen.shape.x_sec, 0, "{label}");
        let dflt = paper_default(plan);
        assert!(
            plan.chosen.mtps_per_kalm > dflt.mtps_per_kalm,
            "{label}: {:.3} MT/s/kALM must beat the paper default's {:.3}",
            plan.chosen.mtps_per_kalm,
            dflt.mtps_per_kalm
        );
        assert!(plan.chosen.mtps >= dflt.mtps * 0.99, "{label}");
    }

    // Skewed data must buy skew-handling capacity and beat the bare shape.
    for (label, plan) in [("count/zipf2.0", &cz_plan), ("histo/zipf2.0", &hz_plan)] {
        assert!(plan.chosen.shape.x_sec > 0, "{label}");
    }

    // The estimate cache carries across app × skew points: the second
    // planning call of each profile re-prices nothing.
    let memo = planner.memo_stats();
    assert!(
        memo.hits * 2 >= memo.lookups,
        "repeated-fragment memoisation should serve half the lookups: {memo:?}"
    );

    // The machine-readable report round-trips the decision.
    let json = cu_plan.to_json();
    assert!(json.contains(&format!("\"{}\"", cu_plan.chosen.shape.label())));
    assert!(json.contains("\"memo\""));
}
