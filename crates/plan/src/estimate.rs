//! The estimates half of the two-pass planner: throughput prediction from
//! a counts trace.

use ditto_core::SchedulingPlan;
use ditto_obs::CountsTrace;
use fpga_model::PipelineShape;

/// The profiled workload distribution, reduced to per-PriPE shares at the
/// reference shape and refoldable onto any divisor PriPE count.
///
/// Applications route a tuple to PriPE `hash % M`, so the distribution
/// observed at the reference `M_ref` folds *exactly* onto any `M` dividing
/// it: `share'_k = Σ_{j ≡ k (mod M)} share_j`. That one identity is what
/// lets a single profiling slice price every candidate PriPE count instead
/// of re-simulating each.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    shares: Vec<f64>,
    reference_m: u32,
}

impl WorkloadModel {
    /// Reduces a counts trace to per-PriPE shares. `reference_m` is the
    /// PriPE count of the profiled pipeline. A trace with no processed
    /// tuples yields the uniform distribution.
    pub fn from_trace(trace: &CountsTrace, reference_m: u32) -> Self {
        let w = trace.pri_workloads(reference_m as usize);
        let total: u64 = w.iter().sum();
        let shares = if total == 0 {
            vec![1.0 / reference_m as f64; reference_m as usize]
        } else {
            w.iter().map(|&x| x as f64 / total as f64).collect()
        };
        WorkloadModel {
            shares,
            reference_m,
        }
    }

    /// A synthetic model from explicit shares (tests, what-if analysis).
    pub fn from_shares(shares: Vec<f64>) -> Self {
        let total: f64 = shares.iter().sum();
        assert!(total > 0.0, "shares must sum to a positive value");
        let reference_m = shares.len() as u32;
        WorkloadModel {
            shares: shares.iter().map(|s| s / total).collect(),
            reference_m,
        }
    }

    /// The PriPE count the shares were profiled at.
    pub fn reference_m(&self) -> u32 {
        self.reference_m
    }

    /// `true` if this model can be folded onto `m` PriPEs.
    pub fn supports(&self, m: u32) -> bool {
        m > 0 && m <= self.reference_m && self.reference_m.is_multiple_of(m)
    }

    /// Folds the reference distribution onto `m` PriPEs.
    ///
    /// # Panics
    ///
    /// Panics unless [`supports`](Self::supports)`(m)`.
    pub fn fold(&self, m: u32) -> Vec<f64> {
        assert!(
            self.supports(m),
            "cannot fold M_ref={} onto M={m}",
            self.reference_m
        );
        let mut folded = vec![0.0; m as usize];
        for (j, &s) in self.shares.iter().enumerate() {
            folded[j % m as usize] += s;
        }
        folded
    }

    /// Max-over-mean imbalance of the distribution folded onto `m`.
    pub fn imbalance(&self, m: u32) -> f64 {
        let folded = self.fold(m);
        let max = folded.iter().cloned().fold(0.0f64, f64::max);
        max * m as f64
    }
}

/// A predicted steady-state rate with the bound that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePrediction {
    /// Predicted tuples per cycle: the minimum of the three bounds.
    pub rate: f64,
    /// Input-side bound: `min(N / II_pre, memory tuples/cycle)`.
    pub input_bound: f64,
    /// Skew bound: the slowest effective PriPE after replaying the greedy
    /// SecPE plan, `min_j (1 + h_j) / (II_pri · share_j)`.
    pub pe_bound: f64,
    /// Aggregate PE capacity, `(M + X) / II_pri`.
    pub capacity_bound: f64,
}

impl RatePrediction {
    /// Which bound is binding: `"input"`, `"pe"` or `"capacity"`.
    pub fn binding(&self) -> &'static str {
        if self.rate == self.input_bound {
            "input"
        } else if self.rate == self.pe_bound {
            "pe"
        } else {
            "capacity"
        }
    }
}

/// Fixed-point scale used to hand fractional shares to the integer greedy
/// scheduler.
const SHARE_SCALE: f64 = 1_000_000.0;

/// Predicts the steady-state rate of `shape` over the profiled workload.
///
/// This replays the *actual* runtime plan generator
/// ([`SchedulingPlan::generate`]) on the folded workload — the estimate and
/// the simulated system agree on SecPE placement by construction — then
/// takes the minimum of the input bound, the slowest helped PriPE and the
/// aggregate capacity.
pub fn predict_rate(
    workload: &WorkloadModel,
    shape: PipelineShape,
    ii_pre: u32,
    ii_pri: u32,
    mem_tuples_per_cycle: f64,
) -> RatePrediction {
    assert!(ii_pre > 0 && ii_pri > 0, "IIs are at least 1");
    let shares = workload.fold(shape.m_pri);
    let input_bound = (shape.n_pre as f64 / ii_pre as f64).min(mem_tuples_per_cycle);
    let capacity_bound = shape.destination_pes() as f64 / ii_pri as f64;

    let quantized: Vec<u64> = shares
        .iter()
        .map(|s| (s * SHARE_SCALE).round() as u64)
        .collect();
    let plan = SchedulingPlan::generate(&quantized, shape.m_pri, shape.x_sec);
    let mut helpers = vec![1u64; shares.len()];
    for &(_, pri) in plan.pairs() {
        helpers[pri as usize] += 1;
    }
    let pe_bound = shares
        .iter()
        .zip(&helpers)
        .filter(|(s, _)| **s > 0.0)
        .map(|(&s, &h)| h as f64 / (ii_pri as f64 * s))
        .fold(f64::INFINITY, f64::min);

    let rate = input_bound.min(pe_bound).min(capacity_bound);
    RatePrediction {
        rate,
        input_bound,
        pe_bound,
        capacity_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_paper_shape_is_input_bound() {
        let w = WorkloadModel::from_shares(vec![1.0; 16]);
        let p = predict_rate(&w, PipelineShape::new(8, 16, 0), 1, 2, 8.0);
        assert_eq!(p.rate, 8.0);
        assert_eq!(p.binding(), "input");
    }

    #[test]
    fn hot_pe_drops_the_rate_and_secpes_recover_it() {
        // One PriPE takes half the stream.
        let mut shares = vec![1.0; 16];
        shares[3] = 15.0; // share 0.5
        let w = WorkloadModel::from_shares(shares);
        let bare = predict_rate(&w, PipelineShape::new(8, 16, 0), 1, 2, 8.0);
        assert!((bare.pe_bound - 1.0).abs() < 1e-6, "{}", bare.pe_bound);
        assert_eq!(bare.binding(), "pe");
        let helped = predict_rate(&w, PipelineShape::new(8, 16, 8), 1, 2, 8.0);
        assert!(helped.rate > 3.0 * bare.rate, "{}", helped.rate);
    }

    #[test]
    fn folding_is_exact_for_divisors() {
        let mut shares = vec![0.0; 32];
        shares[5] = 1.0;
        shares[21] = 3.0; // 21 ≡ 5 (mod 16)
        let w = WorkloadModel::from_shares(shares);
        let folded = w.fold(16);
        assert!((folded[5] - 1.0).abs() < 1e-12);
        assert!(!w.supports(12), "12 does not divide 32");
        assert!(!w.supports(64), "cannot unfold to finer granularity");
    }

    #[test]
    fn memory_interface_caps_wide_configs() {
        let w = WorkloadModel::from_shares(vec![1.0; 32]);
        let p = predict_rate(&w, PipelineShape::new(16, 32, 0), 1, 2, 8.0);
        assert_eq!(p.rate, 8.0, "16 lanes cannot beat the 8-tuple interface");
    }

    #[test]
    fn empty_trace_predicts_uniform() {
        let trace = ditto_obs::CountsTrace::new("empty");
        let w = WorkloadModel::from_trace(&trace, 8);
        assert!((w.imbalance(8) - 1.0).abs() < 1e-9);
    }
}
