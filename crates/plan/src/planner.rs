//! The configuration search: price every candidate shape × device against
//! the profiled workload and pick the best deployable point.

use std::collections::HashMap;

use ditto_core::{ArchConfig, MAX_DEST_PES};
use ditto_obs::CountsTrace;
use fpga_model::{
    AppCostProfile, Device, FrequencyModel, PipelineShape, ResourceEstimate, ResourceModel,
};

use crate::estimate::{predict_rate, RatePrediction, WorkloadModel};

/// Search-space and budget options for one planning run.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Utilisation budget: candidates whose estimated logic/RAM/DSP
    /// utilisation exceeds this fraction on any axis are rejected.
    pub budget: f64,
    /// Candidate PrePE (lane) counts.
    pub lanes: Vec<u32>,
    /// Candidate PriPE counts; only divisors of the trace's reference M
    /// are searched (workload folding is exact there, see
    /// [`WorkloadModel::fold`]).
    pub pri_pes: Vec<u32>,
    /// Candidate SecPE counts; filtered per-M to `x < m` and the wide
    /// word's destination bound.
    pub sec_pes: Vec<u32>,
    /// Devices to price each shape on.
    pub devices: Vec<Device>,
    /// PrePE initiation interval of the application.
    pub ii_pre: u32,
    /// PriPE/SecPE initiation interval of the application.
    pub ii_pri: u32,
    /// Memory-interface tuple bandwidth (8-byte tuples on the paper's
    /// 64-byte interface: 8 tuples/cycle).
    pub mem_tuples_per_cycle: f64,
}

impl PlannerOptions {
    /// The default search: the paper's lane/PE axis (4–16 lanes, 8–32
    /// PriPEs, 0–15 SecPEs) on the paper's Arria 10 GX 1150, with the
    /// budget taken from `DITTO_PLAN_BUDGET` (default 0.85).
    pub fn paper_search() -> Self {
        PlannerOptions {
            budget: budget_from_env(),
            lanes: vec![4, 8, 16],
            pri_pes: vec![8, 16, 32],
            sec_pes: vec![0, 1, 2, 4, 8, 15],
            devices: vec![Device::arria10_gx1150()],
            ii_pre: 1,
            ii_pri: 2,
            mem_tuples_per_cycle: 8.0,
        }
    }

    /// Extends the search across the full device catalog (GX 660,
    /// GX 1150, Stratix 10 GX 2800).
    pub fn with_device_catalog(mut self) -> Self {
        self.devices = Device::catalog();
        self
    }

    /// Overrides the utilisation budget.
    pub fn with_budget(mut self, budget: f64) -> Self {
        assert!(budget > 0.0, "budget must be positive");
        self.budget = budget;
        self
    }

    /// Overrides the application initiation intervals.
    pub fn with_ii(mut self, ii_pre: u32, ii_pri: u32) -> Self {
        self.ii_pre = ii_pre;
        self.ii_pri = ii_pri;
        self
    }
}

impl Default for PlannerOptions {
    fn default() -> Self {
        Self::paper_search()
    }
}

/// The `DITTO_PLAN_BUDGET` utilisation budget (default 0.85).
pub fn budget_from_env() -> f64 {
    std::env::var("DITTO_PLAN_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.85)
}

/// One priced point of the search space.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The pipeline shape.
    pub shape: PipelineShape,
    /// Target device name.
    pub device: &'static str,
    /// Modelled resources and frequency.
    pub estimate: ResourceEstimate,
    /// Predicted steady-state rate and its binding bound.
    pub prediction: RatePrediction,
    /// Predicted throughput, million tuples per second.
    pub mtps: f64,
    /// Throughput per thousand ALMs — the area-efficiency objective.
    pub mtps_per_kalm: f64,
    /// `None` if deployable under the budget, else the rejecting axis.
    pub rejected: Option<&'static str>,
}

impl Candidate {
    /// `true` if this candidate survived the budget and capacity checks.
    pub fn feasible(&self) -> bool {
        self.rejected.is_none()
    }
}

/// Memoisation statistics of the repeated-fragment estimate cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Estimate requests issued by the search.
    pub lookups: u64,
    /// Requests served from the cache without re-costing.
    pub hits: u64,
}

/// The planner's output: the chosen configuration plus the full priced
/// candidate list (machine-readable via
/// [`to_json`](DeploymentPlan::to_json)).
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Application profile the plan was priced for.
    pub app: &'static str,
    /// Label of the counts trace that drove the plan.
    pub trace_label: String,
    /// PriPE count of the profiled pipeline.
    pub reference_m: u32,
    /// Utilisation budget applied.
    pub budget: f64,
    /// The winning candidate.
    pub chosen: Candidate,
    /// Ready-to-deploy configuration for the winner.
    pub config: ArchConfig,
    /// Every priced point, in search order.
    pub candidates: Vec<Candidate>,
    /// Estimate-cache statistics at the end of the run.
    pub memo: MemoStats,
}

impl DeploymentPlan {
    /// The feasible candidates, in search order.
    pub fn feasible(&self) -> impl Iterator<Item = &Candidate> {
        self.candidates.iter().filter(|c| c.feasible())
    }

    /// Renders the plan as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"app\": \"{}\",\n", self.app));
        out.push_str(&format!("  \"trace\": \"{}\",\n", self.trace_label));
        out.push_str(&format!("  \"reference_m\": {},\n", self.reference_m));
        out.push_str(&format!("  \"budget\": {},\n", self.budget));
        out.push_str(&format!(
            "  \"memo\": {{\"lookups\": {}, \"hits\": {}}},\n",
            self.memo.lookups, self.memo.hits
        ));
        out.push_str("  \"chosen\": ");
        out.push_str(&candidate_json(&self.chosen));
        out.push_str(",\n  \"candidates\": [\n");
        for (i, c) in self.candidates.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&candidate_json(c));
            out.push_str(if i + 1 < self.candidates.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn candidate_json(c: &Candidate) -> String {
    let rejected = match c.rejected {
        Some(axis) => format!(", \"rejected\": \"{axis}\""),
        None => String::new(),
    };
    format!(
        "{{\"label\": \"{}\", \"device\": \"{}\", \"n_pre\": {}, \"m_pri\": {}, \"x_sec\": {}, \
         \"freq_mhz\": {:.1}, \"alms\": {}, \"ram_blocks\": {}, \"dsps\": {}, \
         \"rate\": {:.4}, \"binding\": \"{}\", \"mtps\": {:.1}, \"mtps_per_kalm\": {:.3}, \
         \"feasible\": {}{rejected}}}",
        c.shape.label(),
        c.device,
        c.shape.n_pre,
        c.shape.m_pri,
        c.shape.x_sec,
        c.estimate.freq_mhz,
        c.estimate.logic_alms,
        c.estimate.ram_blocks,
        c.estimate.dsps,
        c.prediction.rate,
        c.prediction.binding(),
        c.mtps,
        c.mtps_per_kalm,
        c.feasible(),
    )
}

type MemoKey = (PipelineShape, &'static str, &'static str);

/// The estimator-driven deployment planner.
///
/// One planner instance carries a memoised estimate cache across planning
/// calls: shapes are repeated fragments of the search space, so planning a
/// second skew profile of the same application re-prices nothing — only
/// the throughput fold is recomputed. [`memo_stats`](Self::memo_stats)
/// exposes the hit counters.
#[derive(Debug, Default)]
pub struct Planner {
    memo: HashMap<MemoKey, ResourceEstimate>,
    stats: MemoStats,
}

impl Planner {
    /// A planner with an empty estimate cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current cache statistics.
    pub fn memo_stats(&self) -> MemoStats {
        self.stats
    }

    fn estimate_cached(
        &mut self,
        device: &Device,
        shape: PipelineShape,
        profile: &AppCostProfile,
    ) -> ResourceEstimate {
        self.stats.lookups += 1;
        let key: MemoKey = (shape, device.name, profile.name);
        if let Some(hit) = self.memo.get(&key) {
            self.stats.hits += 1;
            return hit.clone();
        }
        let model = ResourceModel::new(device.clone(), FrequencyModel::calibrated());
        let est = model.estimate(shape, profile);
        self.memo.insert(key, est.clone());
        est
    }

    /// Searches `opts`' space for the best deployment of `profile` under
    /// the workload recorded in `trace` (profiled at `reference_m`
    /// PriPEs).
    ///
    /// Objective: maximum predicted throughput; candidates within 1 % of
    /// the leader are tie-broken on throughput per ALM, so the planner
    /// never pays area for rate the memory interface can't deliver.
    ///
    /// # Panics
    ///
    /// Panics if no candidate fits the budget on any device — raise
    /// `DITTO_PLAN_BUDGET` or extend the device list.
    pub fn plan(
        &mut self,
        trace: &CountsTrace,
        reference_m: u32,
        profile: &AppCostProfile,
        opts: &PlannerOptions,
    ) -> DeploymentPlan {
        let workload = WorkloadModel::from_trace(trace, reference_m);
        let mut candidates = Vec::new();

        for device in &opts.devices {
            for &n in &opts.lanes {
                for &m in &opts.pri_pes {
                    if !workload.supports(m) {
                        continue;
                    }
                    for &x in &opts.sec_pes {
                        if x >= m || (m + x) as usize > MAX_DEST_PES {
                            continue;
                        }
                        let shape = PipelineShape::new(n, m, x);
                        let est = self.estimate_cached(device, shape, profile);
                        let prediction = predict_rate(
                            &workload,
                            shape,
                            opts.ii_pre,
                            opts.ii_pri,
                            opts.mem_tuples_per_cycle,
                        );
                        let mtps = fpga_model::mtps(prediction.rate, est.freq_mhz);
                        let mtps_per_kalm = mtps / (est.logic_alms as f64 / 1000.0);
                        let rejected = if est.logic_util > opts.budget {
                            Some("logic")
                        } else if est.ram_util > opts.budget {
                            Some("ram")
                        } else if est.dsp_util > opts.budget {
                            Some("dsp")
                        } else if !device.fits(est.logic_alms, est.ram_blocks, est.dsps) {
                            Some("capacity")
                        } else {
                            None
                        };
                        candidates.push(Candidate {
                            shape,
                            device: device.name,
                            estimate: est,
                            prediction,
                            mtps,
                            mtps_per_kalm,
                            rejected,
                        });
                    }
                }
            }
        }

        let chosen = candidates
            .iter()
            .filter(|c| c.feasible())
            .fold(None::<&Candidate>, |best, c| match best {
                None => Some(c),
                Some(b) if c.mtps > b.mtps * 1.01 => Some(c),
                Some(b) if c.mtps > b.mtps * 0.99 && c.mtps_per_kalm > b.mtps_per_kalm => Some(c),
                Some(b) => Some(b),
            })
            .unwrap_or_else(|| {
                panic!(
                    "no candidate fits the {:.0}% budget on {} device(s)",
                    opts.budget * 100.0,
                    opts.devices.len()
                )
            })
            .clone();

        let config = ArchConfig::new(chosen.shape.n_pre, chosen.shape.m_pri, chosen.shape.x_sec);
        DeploymentPlan {
            app: profile.name,
            trace_label: trace.label.clone(),
            reference_m,
            budget: opts.budget,
            chosen,
            config,
            candidates,
            memo: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with_workloads(w: &[u64]) -> CountsTrace {
        let mut t = CountsTrace::new("test");
        t.push(ditto_obs::PhaseCounts {
            phase: 0,
            cycles: 1000,
            tuples: w.iter().sum(),
            per_pe_processed: w.to_vec(),
            ..Default::default()
        });
        t
    }

    #[test]
    fn uniform_workload_avoids_paying_for_secpes() {
        let mut planner = Planner::new();
        let trace = trace_with_workloads(&[100; 32]);
        let plan = planner.plan(
            &trace,
            32,
            &AppCostProfile::histo(),
            &PlannerOptions::paper_search(),
        );
        assert_eq!(plan.chosen.shape.x_sec, 0, "{}", plan.chosen.shape.label());
        // Paper default is 16P+15S: the uniform plan must beat it on area
        // efficiency at equal-or-better throughput.
        let paper = plan
            .candidates
            .iter()
            .find(|c| c.shape == PipelineShape::new(8, 16, 15))
            .expect("paper default searched");
        assert!(plan.chosen.mtps_per_kalm > paper.mtps_per_kalm);
        assert!(plan.chosen.mtps >= paper.mtps * 0.99);
    }

    #[test]
    fn skewed_workload_buys_secpes() {
        let mut w = [50u64; 32];
        w[7] = 3_000; // one PriPE owns ~2/3 of the stream
        let mut planner = Planner::new();
        let plan = planner.plan(
            &trace_with_workloads(&w),
            32,
            &AppCostProfile::histo(),
            &PlannerOptions::paper_search(),
        );
        assert!(plan.chosen.shape.x_sec > 0, "{}", plan.chosen.shape.label());
        let bare = plan
            .candidates
            .iter()
            .find(|c| c.shape == PipelineShape::new(plan.chosen.shape.n_pre, 32, 0))
            .expect("bare shape searched");
        assert!(plan.chosen.mtps > bare.mtps);
    }

    #[test]
    fn budget_rejections_are_reported_not_silent() {
        let mut planner = Planner::new();
        let trace = trace_with_workloads(&[100; 32]);
        let opts = PlannerOptions::paper_search().with_budget(0.55);
        let plan = planner.plan(&trace, 32, &AppCostProfile::pagerank(), &opts);
        assert!(
            plan.candidates.iter().any(|c| c.rejected.is_some()),
            "a 55% budget must reject the big shapes"
        );
        assert!(plan.chosen.estimate.logic_util <= 0.55);
        assert!(plan.chosen.estimate.ram_util <= 0.55);
    }

    #[test]
    fn memo_reuses_estimates_across_planning_calls() {
        let mut planner = Planner::new();
        let opts = PlannerOptions::paper_search();
        let uniform = trace_with_workloads(&[100; 32]);
        let mut skewed = [50u64; 32];
        skewed[0] = 5_000;
        let first = planner.plan(&uniform, 32, &AppCostProfile::hll(), &opts);
        assert_eq!(first.memo.hits, 0, "cold cache");
        let second = planner.plan(
            &trace_with_workloads(&skewed),
            32,
            &AppCostProfile::hll(),
            &opts,
        );
        assert_eq!(
            second.memo.hits, first.memo.lookups,
            "second skew profile re-prices nothing"
        );
        assert_ne!(
            first.chosen.shape, second.chosen.shape,
            "but the workload still changes the decision"
        );
    }

    #[test]
    fn json_report_is_self_contained() {
        let mut planner = Planner::new();
        let plan = planner.plan(
            &trace_with_workloads(&[100; 32]),
            32,
            &AppCostProfile::histo(),
            &PlannerOptions::paper_search(),
        );
        let json = plan.to_json();
        assert!(json.contains("\"chosen\""));
        assert!(json.contains("\"memo\""));
        assert!(json.contains(&format!("\"{}\"", plan.chosen.shape.label())));
        assert_eq!(
            json.matches("\"label\"").count(),
            plan.candidates.len() + 1,
            "one row per candidate plus the chosen block"
        );
    }

    #[test]
    fn device_catalog_rescues_over_budget_plans() {
        let mut planner = Planner::new();
        let trace = trace_with_workloads(&[100; 32]);
        // PageRank at 32 PriPEs overflows the GX 660's budgeted RAM; the
        // catalog search must fall over to a bigger part for those shapes
        // while still reporting the rejections.
        let opts = PlannerOptions::paper_search().with_device_catalog();
        let plan = planner.plan(&trace, 32, &AppCostProfile::pagerank(), &opts);
        let gx660_rejects = plan
            .candidates
            .iter()
            .filter(|c| c.device == "Intel Arria 10 GX 660" && c.rejected.is_some())
            .count();
        assert!(gx660_rejects > 0, "small device rejects big shapes");
        assert!(plan.chosen.feasible());
    }
}
