//! # ditto-plan — estimator-driven deployment planning
//!
//! The second half of the stack's two-pass planner (the pattern of
//! resource estimators in quantum toolchains: a cheap *counts* pass feeds
//! a separate *estimates* pass that prices many targets without
//! re-executing):
//!
//! 1. **Counts** — `ditto_core::profile_counts` runs a bounded slice of a
//!    live pipeline and reduces it to a
//!    [`CountsTrace`](ditto_obs::CountsTrace): kernel steps by class,
//!    channel occupancy integrals, per-PE workload histograms and
//!    plan/reschedule events, per execution phase.
//! 2. **Estimates** — this crate folds the traced workload onto every
//!    candidate shape ([`WorkloadModel`]), replays the runtime's greedy
//!    SecPE scheduler to predict the steady-state rate ([`predict_rate`]),
//!    prices each shape on each device through `fpga_model` (memoised —
//!    shapes are repeated fragments of the search space, see
//!    [`MemoStats`]), and picks the best point under the
//!    `DITTO_PLAN_BUDGET` utilisation budget ([`Planner`]).
//!
//! The output is a ready-to-deploy `ArchConfig` plus a machine-readable
//! [`DeploymentPlan`] report; [`validate`] closes the loop by simulating
//! the chosen point and checking the prediction (the planner goldens pin
//! it within ±25 %).
//!
//! ```
//! use ditto_obs::{CountsTrace, PhaseCounts};
//! use ditto_plan::{Planner, PlannerOptions};
//! use fpga_model::AppCostProfile;
//!
//! // A profiled slice (normally from ditto_core::profile_counts).
//! let mut trace = CountsTrace::new("histo-uniform");
//! trace.push(PhaseCounts {
//!     cycles: 1_000,
//!     tuples: 6_400,
//!     per_pe_processed: vec![200; 32],
//!     ..Default::default()
//! });
//!
//! let mut planner = Planner::new();
//! let plan = planner.plan(
//!     &trace,
//!     32,
//!     &AppCostProfile::histo(),
//!     &PlannerOptions::paper_search(),
//! );
//! assert_eq!(plan.chosen.shape.x_sec, 0); // uniform data: no SecPE area
//! assert!(plan.to_json().contains("\"chosen\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimate;
mod planner;
mod validate;

pub use estimate::{predict_rate, RatePrediction, WorkloadModel};
pub use planner::{budget_from_env, Candidate, DeploymentPlan, MemoStats, Planner, PlannerOptions};
pub use validate::{validate, Validation};
