//! Plan validation: simulate the chosen point and compare against the
//! estimate.

use datagen::Tuple;
use ditto_core::{DittoApp, SkewObliviousPipeline};
use fpga_model::mtps;

use crate::planner::DeploymentPlan;

/// Predicted-vs-simulated comparison for one deployment plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Validation {
    /// The estimator's steady-state rate, tuples/cycle.
    pub predicted_rate: f64,
    /// The cycle-level simulator's end-to-end rate (including ramp-up,
    /// profiling window and drain tail), tuples/cycle.
    pub simulated_rate: f64,
    /// Predicted throughput at the modelled clock, MT/s.
    pub predicted_mtps: f64,
    /// Simulated throughput at the same modelled clock, MT/s.
    pub simulated_mtps: f64,
    /// Signed relative error of the prediction: `(pred − sim) / sim`.
    pub rel_error: f64,
}

impl Validation {
    /// `true` if the prediction is within `tolerance` (e.g. `0.25` for
    /// ±25 %) of the simulation.
    pub fn within(&self, tolerance: f64) -> bool {
        self.rel_error.abs() <= tolerance
    }
}

/// Runs the plan's chosen [`ArchConfig`](ditto_core::ArchConfig) over
/// `data` in the cycle-level simulator and compares throughput with the
/// estimate. Both sides use the plan's modelled clock, so the comparison
/// isolates the rate model (the part the estimator can get wrong) from the
/// frequency model (shared by construction).
pub fn validate<A: DittoApp + 'static>(
    plan: &DeploymentPlan,
    app: A,
    data: Vec<Tuple>,
) -> Validation {
    let outcome = SkewObliviousPipeline::run_dataset(app, data, &plan.config);
    assert!(outcome.report.completed, "validation run must drain");
    let simulated_rate = outcome.report.tuples_per_cycle();
    let predicted_rate = plan.chosen.prediction.rate;
    let freq = plan.chosen.estimate.freq_mhz;
    let rel_error = if simulated_rate > 0.0 {
        (predicted_rate - simulated_rate) / simulated_rate
    } else {
        f64::INFINITY
    };
    Validation {
        predicted_rate,
        simulated_rate,
        predicted_mtps: mtps(predicted_rate, freq),
        simulated_mtps: mtps(simulated_rate, freq),
        rel_error,
    }
}
