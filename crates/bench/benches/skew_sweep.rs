//! Ablations: Zipf sweep, channel-depth and profiling-window sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::ZipfGenerator;
use ditto_apps::HistoApp;
use ditto_core::{ArchConfig, SkewObliviousPipeline};

fn simulated_cycles(cfg: &ArchConfig, alpha: f64, n: usize) -> u64 {
    let app = HistoApp::new(1_024, cfg.m_pri);
    let data = ZipfGenerator::new(alpha, 1 << 18, 13).take_vec(n);
    let cfg = cfg
        .clone()
        .with_pe_entries((1_024 / u64::from(cfg.m_pri)) as usize);
    SkewObliviousPipeline::run_dataset(app, data, &cfg)
        .report
        .cycles
}

fn skew_sweep(c: &mut Criterion) {
    let n = 10_000usize;
    let mut group = c.benchmark_group("skew_sweep");
    group.sample_size(10);
    for alpha in [0.0f64, 1.0, 2.0, 3.0] {
        group.bench_with_input(BenchmarkId::new("alpha", alpha), &alpha, |b, &a| {
            b.iter(|| simulated_cycles(&ArchConfig::paper(4), a, n));
        });
    }
    // Ablation: PE queue depth under skew (channel absorption).
    for depth in [32usize, 128, 512] {
        group.bench_with_input(
            BenchmarkId::new("pe_queue_depth", depth),
            &depth,
            |b, &d| {
                let cfg = ArchConfig::paper(4).with_pe_queue_depth(d);
                b.iter(|| simulated_cycles(&cfg, 2.0, n));
            },
        );
    }
    // Ablation: profiling window length.
    for window in [64u64, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("profile_cycles", window),
            &window,
            |b, &w| {
                let cfg = ArchConfig::paper(4).with_profile_cycles(w);
                b.iter(|| simulated_cycles(&cfg, 2.0, n));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, skew_sweep);
criterion_main!(benches);
