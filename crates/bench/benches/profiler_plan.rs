//! Microbenchmark: greedy SecPE plan generation (Fig. 5 algorithm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ditto_core::SchedulingPlan;
use std::hint::black_box;

fn profiler_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiler_plan");
    for m in [16u32, 64, 256] {
        let workloads: Vec<u64> = (0..m as u64).map(|i| (i * 37 + 11) % 1000).collect();
        group.bench_with_input(BenchmarkId::new("generate_m", m), &m, |b, &m| {
            b.iter(|| SchedulingPlan::generate(black_box(&workloads), m, m - 1));
        });
    }
    group.finish();
}

criterion_group!(benches, profiler_plan);
criterion_main!(benches);
