//! Pipeline throughput: uniform vs extreme skew, with/without SecPEs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{UniformGenerator, ZipfGenerator};
use ditto_apps::HistoApp;
use ditto_core::{ArchConfig, SkewObliviousPipeline};

fn routing_throughput(c: &mut Criterion) {
    let n = 20_000usize;
    let mut group = c.benchmark_group("routing_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    for (name, alpha, x) in [
        ("uniform_16p", 0.0, 0u32),
        ("zipf3_16p", 3.0, 0),
        ("zipf3_16p15s", 3.0, 15),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let data = if alpha == 0.0 {
                UniformGenerator::new(1 << 20, 7).take_vec(n)
            } else {
                ZipfGenerator::new(alpha, 1 << 20, 7).take_vec(n)
            };
            let app = HistoApp::new(1_024, 16);
            let cfg = ArchConfig::paper(x).with_pe_entries(app.pe_entries());
            b.iter(|| {
                SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &cfg)
                    .report
                    .tuples
            });
        });
    }
    group.finish();
}

criterion_group!(benches, routing_throughput);
criterion_main!(benches);
