//! Microbenchmark: Zipf tuple generation (exact inverse-CDF sampling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::ZipfGenerator;

fn datagen_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen_zipf");
    group.throughput(Throughput::Elements(10_000));
    for alpha in [0.0f64, 1.0, 3.0] {
        group.bench_with_input(BenchmarkId::new("alpha", alpha), &alpha, |b, &a| {
            let mut g = ZipfGenerator::new(a, 1 << 20, 9);
            b.iter(|| g.take_vec(10_000));
        });
    }
    group.finish();
}

criterion_group!(benches, datagen_zipf);
criterion_main!(benches);
