//! All five applications at the paper shape on uniform data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::UniformGenerator;
use ditto_apps::{DataPartitionApp, HhdApp, HistoApp, HllApp};
use ditto_core::{ArchConfig, SkewObliviousPipeline};

fn apps_uniform(c: &mut Criterion) {
    let n = 10_000usize;
    let data = UniformGenerator::new(1 << 20, 3).take_vec(n);
    let mut group = c.benchmark_group("apps_uniform");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::from_parameter("histo"), |b| {
        let app = HistoApp::new(1_024, 16);
        let cfg = ArchConfig::paper(0).with_pe_entries(app.pe_entries());
        b.iter(|| {
            SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &cfg)
                .report
                .tuples
        });
    });
    group.bench_function(BenchmarkId::from_parameter("dp"), |b| {
        let app = DataPartitionApp::new(256, 8);
        let cfg = ArchConfig::new(8, 8, 0).with_pe_entries(app.pe_entries());
        b.iter(|| {
            SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &cfg)
                .report
                .tuples
        });
    });
    group.bench_function(BenchmarkId::from_parameter("hll"), |b| {
        let app = HllApp::new(12, 16);
        let cfg = ArchConfig::paper(0).with_pe_entries(app.pe_entries());
        b.iter(|| {
            SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &cfg)
                .report
                .tuples
        });
    });
    group.bench_function(BenchmarkId::from_parameter("hhd"), |b| {
        let app = HhdApp::new(4, 256, 500, 16);
        let cfg = ArchConfig::paper(0).with_pe_entries(app.pe_entries());
        b.iter(|| {
            SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &cfg)
                .report
                .tuples
        });
    });
    group.bench_function(BenchmarkId::from_parameter("pagerank_iter"), |b| {
        let g = ditto_graph::generate::uniform(1_024, 8.0, 5);
        let cfg = ArchConfig::paper(0);
        b.iter(|| ditto_apps::run_pagerank(&g, 0.85, 1, &cfg).reports[0].tuples);
    });
    group.finish();
}

criterion_group!(benches, apps_uniform);
criterion_main!(benches);
