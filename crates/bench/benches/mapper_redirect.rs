//! Microbenchmark: the mapper's table lookup + round-robin redirect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ditto_core::mapper::Mapper;
use std::hint::black_box;

fn mapper_redirect(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper_redirect");
    group.throughput(Throughput::Elements(1_000));
    for x in [0u32, 7, 15] {
        group.bench_with_input(BenchmarkId::new("x_sec", x), &x, |b, &x| {
            let mut m = Mapper::new(16, x);
            for s in 0..x {
                m.apply_pair(16 + s, s % 16);
            }
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..1_000u32 {
                    acc = acc.wrapping_add(m.redirect(black_box(i % 16)));
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, mapper_redirect);
criterion_main!(benches);
