//! Emits `BENCH_9.json`: the `ditto-wire` network front-end snapshot.
//!
//! Three experiment families, all over **real loopback TCP sockets**:
//!
//! * `wire` — an open-loop load-generator sweep over **qps × skew ×
//!   connection count** against a live wire server (HISTO app, 2-shard
//!   cluster per point): completed-tuple throughput and p50/p99 batch
//!   latency *including wire time* (frame receipt → `Done` dispatch), plus
//!   the simulated-cycle latencies for comparison;
//! * `fanin` — the reactor's connection-count axis: the **same paced
//!   offered load and the same total work** pushed through 16 → 1024
//!   concurrent connections. Because the load is held below capacity,
//!   p99 is a service-time measurement, and the acceptance bar is that
//!   p99 at 1024 connections stays within 2× of the 16-connection p99
//!   while the server's I/O thread count stays O(cores);
//! * `overload` — a forced-overload point with the admission watermark
//!   deliberately below one batch: offered load far above capacity must be
//!   *shed* (explicit `Overloaded` responses), not queued — the shed rate,
//!   the served remainder and the queue-depth high-watermark are recorded.
//!
//! Size knob: `DITTO_WIRE_TUPLES` (tuples per sweep point, default
//! 30 000).
//!
//! Usage: `cargo run --release -p ditto-bench --bin wire_bench [out.json]`

use std::time::Duration;

use datagen::ZipfGenerator;
use ditto_apps::HistoApp;
use ditto_bench::json::{host_info, Json};
use ditto_bench::sweep_threads;
use ditto_core::ArchConfig;
use ditto_serve::ServeConfig;
use ditto_wire::{
    app_id, run_load, AdmissionConfig, AppRegistry, LoadGenConfig, LoadReport, WireClient,
    WireServer, WireServerConfig, WireStats,
};

const BATCH_TUPLES: usize = 1_000;
const SHARDS: usize = 2;

fn wire_tuples() -> usize {
    std::env::var("DITTO_WIRE_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000)
}

fn app() -> HistoApp {
    HistoApp::new(1_024, 8)
}

fn serve_config() -> ServeConfig {
    let arch = ArchConfig::new(4, 8, 7)
        .with_reschedule(0.5, 2_000)
        .with_pe_entries(app().pe_entries());
    ServeConfig::new(SHARDS, arch)
}

/// Boots a fresh server, drives one load run, fetches the server-side
/// stats and tears everything down.
fn run_point(
    alpha: f64,
    qps: Option<f64>,
    connections: usize,
    tuples: usize,
    admission: AdmissionConfig,
) -> (LoadReport, WireStats) {
    let mut registry = AppRegistry::new();
    registry.register(app_id::HISTO, app(), serve_config());
    let server = WireServer::bind(
        "127.0.0.1:0",
        registry,
        WireServerConfig::new().with_admission(admission),
    )
    .expect("bind wire server");
    let data = ZipfGenerator::new(alpha, 1 << 18, 17).take_vec(tuples);
    let config = LoadGenConfig {
        connections,
        batch_tuples: BATCH_TUPLES,
        qps,
        max_outstanding: 8,
        connect_stagger: Duration::ZERO,
        connect_barrier: false,
    };
    let report = run_load(server.local_addr(), app_id::HISTO, &data, &config);
    let mut client = WireClient::connect(server.local_addr()).expect("stats connection");
    let stats = client.stats(app_id::HISTO).expect("stats");
    drop(client);
    server.shutdown();
    (report, stats)
}

/// Tuples per batch in the fan-in sweep: small batches so the connection
/// count, not the per-batch simulation, dominates what is being measured.
const FANIN_BATCH: usize = 32;

/// One fan-in point: `batches × FANIN_BATCH` tuples pushed through
/// `connections` sockets, paced globally at `qps` tuples/s when given
/// (`None` = max rate, used once to calibrate the paced rate). The server
/// handle stays in scope so the point can record the backend and I/O
/// thread count — the whole claim is that the latter does not move with
/// `connections`.
fn run_fanin_point(
    connections: usize,
    batches: usize,
    qps: Option<f64>,
) -> (LoadReport, &'static str, usize) {
    let mut registry = AppRegistry::new();
    registry.register(app_id::HISTO, app(), serve_config());
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new())
        .expect("bind wire server");
    let backend = server.backend().label();
    let io_threads = server.io_threads();
    let data = ZipfGenerator::new(0.0, 1 << 18, 23).take_vec(batches * FANIN_BATCH);
    let config = LoadGenConfig {
        connections,
        batch_tuples: FANIN_BATCH,
        qps,
        // One outstanding batch per connection: latency is service time,
        // not self-inflicted pipelining queueing.
        max_outstanding: 1,
        connect_stagger: Duration::ZERO,
        // Latency is measured over a settled connection set: every socket
        // is established before the pacing clock starts, so the connect
        // storm at 1024 connections is not folded into the tail.
        connect_barrier: true,
    };
    let report = run_load(server.local_addr(), app_id::HISTO, &data, &config);
    assert_eq!(report.shed, 0, "fan-in sweep must not shed");
    assert_eq!(
        report.completed, batches as u64,
        "fan-in run lost batches at {connections} connections"
    );
    server.shutdown();
    (report, backend, io_threads)
}

fn point_row(
    alpha: f64,
    qps: Option<f64>,
    connections: usize,
    report: &LoadReport,
    stats: &WireStats,
) -> Json {
    Json::obj([
        ("connections", Json::uint(connections as u64)),
        ("alpha", Json::float(alpha, 2)),
        (
            "qps_target",
            qps.map_or(Json::str("max"), |r| Json::float(r, 0)),
        ),
        ("wall_ms", Json::float(report.wall.as_secs_f64() * 1e3, 1)),
        ("tuples_per_sec", Json::float(report.tuples_per_sec(), 0)),
        ("batches_done", Json::uint(report.completed)),
        ("batches_shed", Json::uint(report.shed)),
        ("shed_rate", Json::float(report.shed_rate(), 3)),
        ("p50_wire_us", Json::uint(report.latency_wall_us.p50)),
        ("p99_wire_us", Json::uint(report.latency_wall_us.p99)),
        ("p50_batch_cycles", Json::uint(report.latency_cycles.p50)),
        ("p99_batch_cycles", Json::uint(report.latency_cycles.p99)),
        (
            "server_queue_depth_peak",
            Json::uint(stats.queue_depth_peak),
        ),
    ])
}

fn main() {
    ditto_obs::env::log_active();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".to_owned());
    let tuples = wire_tuples();

    // The headline grid: unthrottled offered load over connections × skew,
    // permissive admission (nothing shed — pure wire+serve cost).
    let mut points = Vec::new();
    let mut max_tps = 0.0f64;
    for &connections in &[1usize, 4] {
        for &alpha in &[0.0, 3.0] {
            eprintln!("wire point: {connections} conn(s), alpha {alpha}, max rate...");
            let (report, stats) =
                run_point(alpha, None, connections, tuples, AdmissionConfig::new());
            assert_eq!(report.shed, 0, "permissive admission must not shed");
            assert_eq!(
                report.tuples_completed, tuples as u64,
                "wire run lost tuples"
            );
            if connections == 1 && alpha == 0.0 {
                max_tps = report.tuples_per_sec();
            }
            points.push(point_row(alpha, None, connections, &report, &stats));
        }
    }
    // A paced point at roughly half the unthrottled single-connection rate:
    // latency under a sustainable offered load.
    let paced = (max_tps / 2.0).max(10_000.0);
    for &alpha in &[0.0, 3.0] {
        eprintln!("wire point: 1 conn, alpha {alpha}, paced {paced:.0} tps...");
        let (report, stats) = run_point(alpha, Some(paced), 1, tuples, AdmissionConfig::new());
        points.push(point_row(alpha, Some(paced), 1, &report, &stats));
    }

    // The connection-count axis: identical paced load and identical total
    // work at every point, only the socket count moves. Capacity at the
    // small fan-in batch size is dominated by per-batch overhead, so the
    // paced rate is calibrated from a max-rate run at this batch size
    // (not from the 1000-tuple family above) and held at a sixth of it
    // to keep queueing delay out of the comparison. On a core-starved
    // box the 1024-thread client fleet occasionally eats a scheduler
    // hiccup that lands tens of batches in one clump — a whole-sweep
    // retry (attempt count recorded) separates that harness noise from
    // a real fan-in regression, which would fail every attempt.
    // Enough samples that p99 sits ~75 deep in the tail: one scheduler
    // hiccup (~10 clumped batches) cannot reach it by itself.
    let fanin_batches = (tuples * 8 / FANIN_BATCH).max(4_096);
    eprintln!("fanin calibration: 16 conns, {fanin_batches} batches, max rate...");
    let (calib, _, _) = run_fanin_point(16, fanin_batches, None);
    let fanin_qps = (calib.tuples_per_sec() / 6.0).max(20_000.0);
    const FANIN_ATTEMPTS: usize = 3;
    let mut fanin = None;
    for attempt in 1..=FANIN_ATTEMPTS {
        let mut fanin_points = Vec::new();
        let mut fanin_p99 = Vec::new();
        let mut fanin_threads = Vec::new();
        for &connections in &[16usize, 64, 256, 1_024] {
            eprintln!(
                "fanin point: {connections} conns, {fanin_batches} batches, \
                 paced {fanin_qps:.0} tps (attempt {attempt})..."
            );
            let (report, backend, io_threads) =
                run_fanin_point(connections, fanin_batches, Some(fanin_qps));
            fanin_p99.push(report.latency_wall_us.p99);
            fanin_threads.push(io_threads);
            fanin_points.push(Json::obj([
                ("connections", Json::uint(connections as u64)),
                ("backend", Json::str(backend)),
                ("io_threads", Json::uint(io_threads as u64)),
                ("qps_target", Json::float(fanin_qps, 0)),
                ("wall_ms", Json::float(report.wall.as_secs_f64() * 1e3, 1)),
                ("tuples_per_sec", Json::float(report.tuples_per_sec(), 0)),
                ("batches_done", Json::uint(report.completed)),
                ("p50_wire_us", Json::uint(report.latency_wall_us.p50)),
                ("p99_wire_us", Json::uint(report.latency_wall_us.p99)),
            ]));
        }
        assert!(
            fanin_threads.windows(2).all(|w| w[0] == w[1]),
            "I/O thread count moved with connection count: {fanin_threads:?}"
        );
        let p99_ratio = fanin_p99.last().copied().unwrap_or(0) as f64
            / (*fanin_p99.first().expect("fanin sweep ran")).max(1) as f64;
        if p99_ratio > 2.0 {
            eprintln!(
                "fanin attempt {attempt}: p99 ratio {p99_ratio:.3} over the 2x bar \
                 (p99s {fanin_p99:?}), retrying..."
            );
            assert!(
                attempt < FANIN_ATTEMPTS,
                "p99 at 1024 connections ({}) exceeds 2x the 16-connection p99 ({}) \
                 on every attempt",
                fanin_p99.last().unwrap(),
                fanin_p99.first().unwrap()
            );
            continue;
        }
        fanin = Some(Json::obj([
            ("batch_tuples", Json::uint(FANIN_BATCH as u64)),
            ("batches_per_point", Json::uint(fanin_batches as u64)),
            ("attempt", Json::uint(attempt as u64)),
            ("points", Json::arr(fanin_points)),
            ("p99_ratio_1024_vs_16", Json::float(p99_ratio, 3)),
            (
                "note",
                Json::str(
                    "same paced offered load and total work at every point; only the connection \
                     count moves. io_threads is constant across the sweep (reactor threads are \
                     O(cores), not O(connections)); acceptance: p99_ratio_1024_vs_16 <= 2.0, \
                     `attempt` counts whole-sweep retries absorbing scheduler noise on \
                     core-starved runners",
                ),
            ),
        ]));
        break;
    }
    let fanin = fanin.expect("fanin sweep produced a passing attempt");

    // Forced overload: watermark below one batch, no defer, everything
    // offered at once — the server must shed, not queue.
    eprintln!("overload point: watermark {} tuples...", BATCH_TUPLES / 2);
    let strict = AdmissionConfig::new()
        .with_watermark(BATCH_TUPLES as u64 / 2)
        .with_defer(0, Duration::ZERO);
    let (report, stats) = run_point(3.0, None, 4, tuples, strict);
    assert!(report.shed > 0, "forced overload failed to shed");
    assert_eq!(
        stats.tuples_completed + stats.tuples_shed,
        tuples as u64,
        "every tuple must be either served or explicitly shed"
    );
    let overload = Json::obj([
        ("watermark_tuples", Json::uint(BATCH_TUPLES as u64 / 2)),
        ("batches_offered", Json::uint(report.submitted)),
        ("batches_done", Json::uint(report.completed)),
        ("batches_shed", Json::uint(report.shed)),
        ("shed_rate", Json::float(report.shed_rate(), 3)),
        ("tuples_served", Json::uint(stats.tuples_completed)),
        ("tuples_shed", Json::uint(stats.tuples_shed)),
        ("queue_depth_peak", Json::uint(stats.queue_depth_peak)),
        ("p99_wire_us_served", Json::uint(report.latency_wall_us.p99)),
        (
            "note",
            Json::str(
                "watermark below one batch: queue depth stays bounded near the watermark \
                 and excess load is refused with explicit Overloaded responses",
            ),
        ),
    ]);

    let doc = Json::obj([
        ("bench", Json::str("BENCH_9")),
        ("host", host_info()),
        (
            "machine",
            Json::obj([("threads", Json::uint(sweep_threads() as u64))]),
        ),
        (
            "wire",
            Json::obj([
                ("app", Json::str("HISTO")),
                (
                    "arch",
                    Json::str("2 shards x (8P+7S, reschedule 0.5) behind one TCP server"),
                ),
                ("tuples_per_point", Json::uint(tuples as u64)),
                ("batch_tuples", Json::uint(BATCH_TUPLES as u64)),
                ("points", Json::arr(points)),
                (
                    "note",
                    Json::str(
                        "loopback TCP; p50/p99_wire_us are frame-receipt to Done dispatch and \
                         include wire + queueing + simulation time; shard engines and \
                         connection handlers are OS threads, so scaling needs machine.threads",
                    ),
                ),
            ]),
        ),
        ("fanin", fanin),
        ("overload", overload),
    ]);
    doc.write(&out_path).expect("write BENCH_9.json");
    println!("{}", doc.to_pretty());
    eprintln!("wrote {out_path}");
}
