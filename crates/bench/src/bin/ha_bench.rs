//! Emits `BENCH_8.json`: the `ditto-ha` replication & recovery snapshot.
//!
//! Three experiment families, all on the HISTO app over a 3-shard cluster:
//!
//! * `recovery` — a shard is killed mid-run with real accumulated state;
//!   the supervisor promotes a replica (or replays the batch log when
//!   `replicas = 0`) and the next batch serves from the survivors. Records
//!   the promotion time and the wall clock from the kill to the first
//!   served reply, and asserts the final output still equals a single
//!   engine that never saw a failure.
//! * `handoff` — hot traffic pinned to one shard forces balancer-driven
//!   *replicated* state handoffs; records the per-handoff pause (extract +
//!   install across leader and followers), catch-up cycles and tuples of
//!   history moved.
//! * `replication_cost` — a qps × skew sweep with `replicas` ∈ {0, 1, 2}:
//!   every admitted sub-batch is mirrored to each follower, so the sweep
//!   prices the replication tap against the replication-off baseline
//!   (`deltas` holds the throughput ratios).
//!
//! Size knob: `DITTO_SERVE_TUPLES` (tuples per sweep point, default
//! 40 000; shared with `serve_bench`).
//!
//! Usage: `cargo run --release -p ditto-bench --bin ha_bench [out.json]`

use std::time::{Duration, Instant};

use datagen::{Tuple, ZipfGenerator};
use ditto_apps::HistoApp;
use ditto_bench::json::{host_info, Json};
use ditto_core::{ArchConfig, SkewObliviousPipeline};
use ditto_ha::{HaCluster, RecoverySource};
use ditto_serve::{split_into_batches, BalancerConfig, ServeConfig};

const SHARDS: usize = 3;
const BATCH_TUPLES: usize = 1_000;

fn serve_tuples() -> usize {
    std::env::var("DITTO_SERVE_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000)
}

fn histo() -> (HistoApp, ServeConfig) {
    let app = HistoApp::new(1_024, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    (app.clone(), ServeConfig::new(SHARDS, arch))
}

fn single(app: HistoApp, data: &[Tuple], arch: &ArchConfig) -> Vec<u64> {
    SkewObliviousPipeline::run_dataset(app, data.to_vec(), arch).output
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One recovery drill: serve half the load, kill shard 1, heal, and time
/// both the promotion itself and kill → first served reply.
fn recovery_point(replicas: usize, tuples: usize) -> Json {
    let (app, config) = histo();
    let data = ZipfGenerator::new(2.0, 1 << 16, 29).take_vec(tuples);
    let batches = split_into_batches(&data, BATCH_TUPLES);
    let half = batches.len() / 2;
    let mut ha = HaCluster::new(app.clone(), &config, replicas);
    for batch in &batches[..half] {
        ha.submit(batch.clone());
    }
    // Drain first so the kill hits a shard with settled mid-life state and
    // the timings below measure recovery, not a queue backlog.
    ha.drain();

    let t_kill = Instant::now();
    ha.kill_shard(1, "ha_bench: operator-injected kill");
    let promotions = ha.heal();
    let heal_wall = t_kill.elapsed();
    ha.submit(batches[half].clone());
    ha.drain();
    let first_reply = t_kill.elapsed();
    assert_eq!(promotions.len(), 1, "exactly one promotion expected");
    let p = &promotions[0];

    for batch in &batches[half + 1..] {
        ha.submit(batch.clone());
    }
    let outcome = ha.finish();
    assert_eq!(
        outcome.output,
        single(app, &data, &config.arch),
        "recovery with {replicas} replica(s) changed the result"
    );
    Json::obj([
        ("replicas", Json::uint(replicas as u64)),
        (
            "source",
            Json::str(match p.source {
                RecoverySource::Replica => "replica",
                RecoverySource::LogReplay => "log_replay",
            }),
        ),
        ("dead_shard", Json::uint(p.dead as u64)),
        ("inheritor", Json::uint(p.inheritor as u64)),
        ("slots_rehomed", Json::uint(p.moves.len() as u64)),
        ("tuples_recovered", Json::uint(p.tuples_recovered)),
        ("tuples_resubmitted", Json::uint(p.tuples_resubmitted)),
        ("promotion_us", Json::uint(micros(p.recovery))),
        ("heal_wall_us", Json::uint(micros(heal_wall))),
        ("kill_to_first_reply_us", Json::uint(micros(first_reply))),
    ])
}

/// Balancer-driven replicated handoffs under pinned-hot traffic: every
/// report prices one pause (leader extract + replicated install).
fn handoff_block() -> Json {
    let app = HistoApp::new(1_024, 8);
    let arch = ArchConfig::new(4, 8, 0).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone()).with_balancer(BalancerConfig {
        min_window_tuples: 64,
        ..BalancerConfig::default()
    });
    let mut ha = HaCluster::new(app.clone(), &config, 1);
    let hot_keys: Vec<u64> = (0u64..)
        .filter(|&k| ha.router().shard_of_key(k) == 0)
        .take(32)
        .collect();
    let mut all = Vec::new();
    let mut reports = Vec::new();
    for _ in 0..8 {
        let batch: Vec<Tuple> = hot_keys
            .iter()
            .cycle()
            .take(2_000)
            .map(|&k| Tuple::from_key(k))
            .collect();
        all.extend(batch.iter().copied());
        ha.submit(batch);
        ha.drain();
        ha.rebalance();
        reports.extend(ha.take_handoffs());
    }
    assert!(!reports.is_empty(), "hot shard never handed state off");
    let outcome = ha.finish();
    assert_eq!(
        outcome.output,
        single(app, &all, &arch),
        "replicated handoff lost or doubled tuples"
    );
    let pauses: Vec<u64> = reports.iter().map(|r| micros(r.pause)).collect();
    let rows = reports
        .iter()
        .map(|r| {
            Json::obj([
                ("from", Json::uint(r.from as u64)),
                ("to", Json::uint(r.to as u64)),
                ("slots", Json::uint(r.slots.len() as u64)),
                ("pause_us", Json::uint(micros(r.pause))),
                ("catch_up_cycles", Json::uint(r.catch_up_cycles)),
                ("tuples_moved", Json::uint(r.tuples_moved)),
            ])
        })
        .collect();
    Json::obj([
        ("replicas", Json::uint(1)),
        ("handoffs", Json::uint(reports.len() as u64)),
        (
            "max_pause_us",
            Json::uint(pauses.iter().copied().max().unwrap_or(0)),
        ),
        (
            "mean_pause_us",
            Json::float(pauses.iter().sum::<u64>() as f64 / pauses.len() as f64, 1),
        ),
        ("reports", Json::arr(rows)),
    ])
}

/// One replication-cost sweep point: `tuples` of Zipf(`alpha`) through a
/// 3-shard `HaCluster` with `replicas` followers per shard, optionally
/// paced open-loop at `qps` tuples/sec.
struct SweepPoint {
    row: Json,
    tuples_per_sec: f64,
}

fn sweep_point(replicas: usize, alpha: f64, qps: Option<f64>, tuples: usize) -> SweepPoint {
    let (app, config) = histo();
    let data = ZipfGenerator::new(alpha, 1 << 16, 17).take_vec(tuples);
    let batches = split_into_batches(&data, BATCH_TUPLES);
    let mut ha = HaCluster::new(app, &config, replicas);
    let start = Instant::now();
    for (i, batch) in batches.into_iter().enumerate() {
        if let Some(rate) = qps {
            // Open-loop pacing: batch i is due at start + i·B/rate.
            let due = start + Duration::from_secs_f64(i as f64 * BATCH_TUPLES as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        ha.submit(batch);
    }
    ha.drain();
    let wall = start.elapsed();
    let lag: u64 = ha.replication_lag().into_iter().max().unwrap_or(0);
    let outcome = ha.finish();
    assert_eq!(
        outcome.snapshot.tuples_processed(),
        tuples as u64,
        "cluster lost tuples"
    );
    let tps = tuples as f64 / wall.as_secs_f64();
    let row = Json::obj([
        ("replicas", Json::uint(replicas as u64)),
        ("alpha", Json::float(alpha, 2)),
        (
            "qps_target",
            qps.map_or(Json::str("max"), |r| Json::float(r, 0)),
        ),
        ("wall_ms", Json::float(wall.as_secs_f64() * 1e3, 1)),
        ("tuples_per_sec", Json::float(tps, 0)),
        (
            "p50_batch_wall_us",
            Json::uint(outcome.snapshot.latency_wall_us.p50),
        ),
        (
            "p99_batch_wall_us",
            Json::uint(outcome.snapshot.latency_wall_us.p99),
        ),
        ("replication_lag_at_drain", Json::uint(lag)),
    ]);
    SweepPoint {
        row,
        tuples_per_sec: tps,
    }
}

fn main() {
    ditto_obs::env::log_active();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_8.json".to_owned());
    let tuples = serve_tuples();

    eprintln!("recovery drills (replica + log replay)...");
    let recovery = vec![recovery_point(1, tuples), recovery_point(0, tuples)];

    eprintln!("replicated handoff under pinned-hot traffic...");
    let handoff = handoff_block();

    // The replication tax: unthrottled throughput over replicas × skew,
    // then paced points at half the replication-off rate to show the
    // replicated cluster holding a sustainable offered load.
    let alphas = [0.0, 3.0];
    let replica_counts = [0usize, 1, 2];
    let mut points = Vec::new();
    let mut max_tps: Vec<(usize, f64, f64)> = Vec::new();
    for &alpha in &alphas {
        for &replicas in &replica_counts {
            eprintln!("sweep point: {replicas} replica(s), alpha {alpha}, max rate...");
            let point = sweep_point(replicas, alpha, None, tuples);
            max_tps.push((replicas, alpha, point.tuples_per_sec));
            points.push(point.row);
        }
    }
    let tps_of = |replicas: usize, alpha: f64| {
        max_tps
            .iter()
            .find(|&&(r, a, _)| r == replicas && a == alpha)
            .map(|&(_, _, t)| t)
            .unwrap_or(0.0)
    };
    let paced_rate = (tps_of(0, 0.0) / 2.0).max(10_000.0);
    for &alpha in &alphas {
        for &replicas in &[0usize, 2] {
            eprintln!(
                "sweep point: {replicas} replica(s), alpha {alpha}, paced {paced_rate:.0} tps..."
            );
            points.push(sweep_point(replicas, alpha, Some(paced_rate), tuples).row);
        }
    }
    let deltas = Json::arr(
        alphas
            .iter()
            .map(|&alpha| {
                let off = tps_of(0, alpha).max(1.0);
                Json::obj([
                    ("alpha", Json::float(alpha, 2)),
                    ("off_tps", Json::float(tps_of(0, alpha), 0)),
                    ("repl1_tps", Json::float(tps_of(1, alpha), 0)),
                    ("repl2_tps", Json::float(tps_of(2, alpha), 0)),
                    ("repl1_vs_off", Json::float(tps_of(1, alpha) / off, 3)),
                    ("repl2_vs_off", Json::float(tps_of(2, alpha) / off, 3)),
                ])
            })
            .collect(),
    );

    let doc = Json::obj([
        ("bench", Json::str("BENCH_8")),
        ("host", host_info()),
        (
            "cluster",
            Json::obj([
                ("app", Json::str("HISTO")),
                ("shards", Json::uint(SHARDS as u64)),
                ("batch_tuples", Json::uint(BATCH_TUPLES as u64)),
                ("tuples_per_point", Json::uint(tuples as u64)),
            ]),
        ),
        ("recovery", Json::arr(recovery)),
        ("handoff", handoff),
        (
            "replication_cost",
            Json::obj([
                ("points", Json::arr(points)),
                ("deltas", deltas),
                (
                    "note",
                    Json::str(
                        "every follower re-executes its shard's full sub-batch stream on its \
                         own threads, so repl2_vs_off < 1.0 on core-limited runners is the \
                         replication tax, not a protocol stall; recovery rows assert the \
                         failover output equals a never-failed single engine",
                    ),
                ),
            ]),
        ),
    ]);
    doc.write(&out_path).expect("write BENCH_8.json");
    println!("{}", doc.to_pretty());
    eprintln!("wrote {out_path}");
}
