//! Table II — Ditto vs state-of-the-art designs on (mostly) uniform data:
//! throughput ratio and BRAM usage saving per PE.
//!
//! Reproduced rows (Jiang HISTO, Chen PR) are *simulated* against our
//! pipeline; "Original" rows use the analytic architecture models of
//! `ditto_baselines::PriorDesign` with per-design parameters documented
//! there. Kernel time is projected to the paper's 26 M-tuple scale before
//! adding fixed CPU post-processing, exactly as the paper's end-to-end
//! numbers include the host-side aggregation.

use datagen::{UniformGenerator, ZipfGenerator};
use ditto_apps::{run_pagerank, DataPartitionApp, HhdApp, HistoApp, HllApp};
use ditto_baselines::{PriorDesign, StaticReplicationDesign};
use ditto_bench::{estimate_of, freq_of, harness_tuples, par_map, print_header, row, PAPER_TUPLES};
use ditto_core::{ArchConfig, SkewObliviousPipeline};
use ditto_framework::SkewAnalyzer;
use ditto_graph::generate;
use fpga_model::AppCostProfile;

/// Smallest generated variant (the paper's Fig. 7 sweep) covering `rec`.
fn pick_x(rec: u32) -> u32 {
    [0u32, 1, 2, 4, 8, 15]
        .into_iter()
        .find(|&x| x >= rec)
        .unwrap_or(15)
}

/// Projects a measured run to paper scale: cycles/tuple × 26 M + overhead,
/// and converts to MT/s at the design's clock.
fn projected_mtps(cycles: u64, tuples: u64, fixed_overhead_cycles: u64, freq_mhz: f64) -> f64 {
    let cpt = cycles as f64 / tuples as f64;
    let total = cpt * PAPER_TUPLES as f64 + fixed_overhead_cycles as f64;
    PAPER_TUPLES as f64 / total * freq_mhz
}

struct Row {
    app: &'static str,
    work: String,
    source: &'static str,
    pl: &'static str,
    ratio: f64,
    paper_ratio: f64,
    bu: f64,
    paper_bu: f64,
}

/// One independent comparison block (a Table II app section); each runs its
/// own engines, so the blocks sweep across threads.
fn block(idx: usize, tuples: usize) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    match idx {
        // ---- HISTO vs Jiang et al. [12] (Reproduced: simulate both) ----
        0 => {
            let bins = 16_384u64;
            let app = HistoApp::new(bins, 16);
            let data = UniformGenerator::new(1 << 24, 31).take_vec(tuples);
            let cfg = ArchConfig::paper(0).with_pe_entries(app.pe_entries());
            let ours = SkewObliviousPipeline::run_dataset(app, data.clone(), &cfg).report;
            let ours_mtps = projected_mtps(
                ours.cycles,
                ours.tuples,
                0,
                freq_of(8, 16, 0, &AppCostProfile::histo()),
            );

            let design = StaticReplicationDesign::new(8, 16, bins as usize);
            let base = design.run(HistoApp::new(bins, 1), data).report;
            // The simulated static run already charges the CPU merge; split it
            // back out so the projection scales kernel time with tuples only.
            let merge = 16 * bins * 2;
            let base_mtps = projected_mtps(
                base.cycles - merge,
                base.tuples,
                merge,
                PriorDesign::jiang_histo().freq_mhz,
            );
            rows.push(Row {
                app: "HISTO",
                work: "Jiang et al. [12]".into(),
                source: "Reproduced",
                pl: "HLS",
                ratio: ours_mtps / base_mtps,
                paper_ratio: 1.2,
                bu: f64::from(PriorDesign::jiang_histo().buffer_replication),
                paper_bu: 32.0,
            });
        }

        // ---- DP vs Wang et al. [18] and Kara et al. [17] (Original) ----
        1 => {
            let app = DataPartitionApp::new(512, 8); // II_pri = 1 -> Eq. 1 gives M = 8
            let data = UniformGenerator::new(1 << 24, 33).take_vec(tuples.min(400_000));
            let cfg = ArchConfig::new(8, 8, 0).with_pe_entries(app.pe_entries());
            let ours = SkewObliviousPipeline::run_dataset(app, data, &cfg).report;
            let ours_mtps = projected_mtps(
                ours.cycles,
                ours.tuples,
                0,
                freq_of(8, 8, 0, &AppCostProfile::dp()),
            );
            for (prior, paper_ratio, paper_bu) in [
                (PriorDesign::wang_dp(), 2.4, 16.0),
                (PriorDesign::kara_dp(), 1.2, 8.0),
            ] {
                rows.push(Row {
                    app: "DP",
                    work: format!(
                        "{} [{}]",
                        prior.name,
                        if prior.language == "HLS" { 18 } else { 17 }
                    ),
                    source: "Original",
                    pl: prior.language,
                    ratio: ours_mtps / prior.effective_mtps(8.0),
                    paper_ratio,
                    bu: f64::from(prior.buffer_replication),
                    paper_bu,
                });
            }
        }

        // ---- PR vs Chen et al. [8] (Reproduced) and Zhou et al. [21] ----
        2 => {
            // Directed graphs "have near balanced workload distribution" — the
            // analyzer selects the base variant and both routing designs
            // perform identically (paper: 1.0x).
            let g = generate::uniform(4_096, 8.0, 35);
            let profile = AppCostProfile::pagerank();
            let edges = ditto_apps::PageRankApp::edge_tuples(&g);
            let probe = ditto_apps::PageRankApp::new(
                std::sync::Arc::new(vec![sketches::Fixed::ZERO; g.vertex_count()]),
                16,
            );
            let x = pick_x(SkewAnalyzer::paper().recommend(&probe, &edges, 16));
            let ours = run_pagerank(&g, 0.85, 2, &ArchConfig::paper(x));
            let chen = run_pagerank(&g, 0.85, 2, &ArchConfig::paper(0));
            let ours_mteps = ours.edges_per_cycle() * freq_of(8, 16, x, &profile);
            let chen_mteps = chen.edges_per_cycle() * freq_of(8, 16, 0, &profile);
            rows.push(Row {
                app: "PR",
                work: "Chen et al. [8]".into(),
                source: "Reproduced",
                pl: "HLS",
                ratio: ours_mteps / chen_mteps,
                paper_ratio: 1.0,
                bu: 1.0,
                paper_bu: 1.0,
            });
            let zhou = PriorDesign::zhou_pr();
            rows.push(Row {
                app: "PR",
                work: "Zhou et al. [21]".into(),
                source: "Original",
                pl: "RTL",
                ratio: ours_mteps / zhou.effective_mtps(8.0),
                paper_ratio: 1.8,
                bu: 1.0,
                paper_bu: 1.0,
            });
        }

        // ---- HLL vs Kulkarni et al. [20] (Original) ----
        3 => {
            let app = HllApp::new(14, 16);
            let data = UniformGenerator::new(1 << 30, 37).take_vec(tuples.min(400_000));
            let cfg = ArchConfig::paper(0).with_pe_entries(app.pe_entries());
            let ours = SkewObliviousPipeline::run_dataset(app, data, &cfg).report;
            let ours_mtps = projected_mtps(
                ours.cycles,
                ours.tuples,
                0,
                freq_of(8, 16, 0, &AppCostProfile::hll()),
            );
            let prior = PriorDesign::kulkarni_hll();
            rows.push(Row {
                app: "HLL",
                work: "Kulkami et al. [20]".into(),
                source: "Original",
                pl: "RTL",
                ratio: ours_mtps / prior.effective_mtps(8.0),
                paper_ratio: 0.9,
                bu: f64::from(prior.buffer_replication),
                paper_bu: 10.0,
            });
        }

        // ---- HHD vs Tong et al. [19] (Original) ----
        4 => {
            // The paper's HHD dataset has "half of the tuples with the same
            // key": Ditto's analyzer provisions SecPEs for it.
            let app = HhdApp::new(4, 1_024, 1_000, 16);
            let n = tuples.min(400_000);
            let mut data = ZipfGenerator::new(0.0, 1 << 24, 39).take_vec(n / 2);
            data.extend(std::iter::repeat_n(datagen::Tuple::from_key(0xbeef), n / 2));
            // Interleave so the hot key is spread over time.
            let mut interleaved = Vec::with_capacity(n);
            let half = data.split_off(n / 2);
            for (a, b) in data.into_iter().zip(half) {
                interleaved.push(a);
                interleaved.push(b);
            }
            let x = pick_x(SkewAnalyzer::paper().recommend(&app, &interleaved, 16));
            let cfg = ArchConfig::paper(x).with_pe_entries(app.pe_entries());
            let ours = SkewObliviousPipeline::run_dataset(app, interleaved, &cfg).report;
            let ours_mtps = projected_mtps(
                ours.cycles,
                ours.tuples,
                0,
                freq_of(8, 16, x, &AppCostProfile::hhd()),
            );
            let prior = PriorDesign::tong_hhd();
            rows.push(Row {
                app: "HHD",
                work: "Tong et al. [19]".into(),
                source: "Original",
                pl: "RTL",
                ratio: ours_mtps / prior.effective_mtps(8.0),
                paper_ratio: 1.6,
                bu: 1.0,
                paper_bu: 1.0,
            });
        }

        _ => unreachable!("unknown block"),
    }
    rows
}

fn main() {
    let tuples = harness_tuples().min(1_000_000);
    let indices: Vec<usize> = (0..5).collect();
    let rows: Vec<Row> = par_map(&indices, |&i| block(i, tuples))
        .into_iter()
        .flatten()
        .collect();

    println!("# Table II — Ditto vs state-of-the-art designs");
    print_header(
        "Throughput ratio (ours / theirs) and BRAM usage saving per PE",
        &[
            "App.",
            "Existing work",
            "Source",
            "P.L.",
            "Thro. (ours)",
            "Thro. (paper)",
            "B.U.Saving (ours)",
            "B.U.Saving (paper)",
        ],
    );
    for r in &rows {
        println!(
            "{}",
            row(&[
                r.app.into(),
                r.work.clone(),
                r.source.into(),
                r.pl.into(),
                format!("{:.1}x", r.ratio),
                format!("{:.1}x", r.paper_ratio),
                format!("{:.0}x", r.bu),
                format!("{:.0}x", r.paper_bu),
            ])
        );
    }
    println!(
        "\nBaseline resource context (Ditto 16P HLL): {}",
        estimate_of(8, 16, 0, &AppCostProfile::hll()).table_row()
    );

    // Keep the binary honest: the directional claims must hold.
    for r in &rows {
        let same_direction =
            (r.ratio >= 1.0) == (r.paper_ratio >= 1.0) || (r.ratio - r.paper_ratio).abs() < 0.3;
        assert!(
            same_direction,
            "{}: ratio {:.2} vs paper {:.2}",
            r.work, r.ratio, r.paper_ratio
        );
    }
}
