//! Fig. 7 — HLL throughput for implementations with different numbers of
//! SecPEs over Zipf distributions, plus Ditto's implementation selection
//! ticks and speedup over the 16P baseline.

use datagen::ZipfGenerator;
use ditto_apps::HllApp;
use ditto_bench::{alpha_sweep, freq_of, harness_tuples, par_map, print_header, row};
use ditto_core::{ArchConfig, SkewObliviousPipeline};
use ditto_framework::SkewAnalyzer;
use fpga_model::{mtps, AppCostProfile};

/// The configurations of Fig. 7 / Table III: (label, N, M, X).
fn configs() -> Vec<(&'static str, u32, u32, u32)> {
    vec![
        ("16P", 8, 16, 0),
        ("32P", 16, 32, 0),
        ("16P+1S", 8, 16, 1),
        ("16P+2S", 8, 16, 2),
        ("16P+4S", 8, 16, 4),
        ("16P+8S", 8, 16, 8),
        ("16P+15S", 8, 16, 15),
    ]
}

fn main() {
    let tuples = harness_tuples();
    let precision = 14u32; // 16384 registers
    let profile = AppCostProfile::hll();
    println!("# Fig. 7 — HLL implementations over Zipf distributions");
    println!("\n{tuples} tuples per run; throughput = tuples/cycle x modelled clock.");

    let mut cols: Vec<String> = vec!["α".into()];
    cols.extend(configs().iter().map(|c| format!("{} (MT/s)", c.0)));
    cols.push("Ditto picks".into());
    cols.push("speedup vs 16P".into());
    print_header(
        "Throughput (MT/s) per implementation",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    // Every (α, configuration) point is an independent engine: fan the
    // α sweep out across threads and print in order.
    let analyzer = SkewAnalyzer::paper();
    let alphas = alpha_sweep();
    let lines = par_map(&alphas, |&alpha| {
        let seed = 90 + (alpha * 4.0) as u64;
        let data = ZipfGenerator::new(alpha, 1 << 22, seed).take_vec(tuples);
        let mut cells = vec![format!("{alpha:.2}")];
        let mut mtps_by_label: Vec<(String, f64, u32)> = Vec::new();
        for (label, n, m, x) in configs() {
            let app = HllApp::new(precision, m);
            let cfg = ArchConfig::new(n, m, x).with_pe_entries(app.pe_entries());
            let rep = SkewObliviousPipeline::run_dataset(app, data.clone(), &cfg).report;
            let t = mtps(rep.tuples_per_cycle(), freq_of(n, m, x, &profile));
            cells.push(format!("{t:.0}"));
            mtps_by_label.push((label.to_owned(), t, x));
        }
        // Ditto's selection: Equation 2 on a 0.1% sample, smallest generated
        // variant with x >= recommendation (the Fig. 7 tick marks).
        let rec = analyzer.recommend(&HllApp::new(precision, 16), &data, 16);
        let pick = mtps_by_label
            .iter()
            .filter(|(l, _, x)| *x >= rec && !l.starts_with("32"))
            .min_by_key(|(_, _, x)| *x)
            .expect("16P+15S always qualifies");
        let base = mtps_by_label[0].1;
        cells.push(format!("{} (X>={rec})", pick.0));
        cells.push(format!("{:.1}x", pick.1 / base));
        row(&cells)
    });
    for line in lines {
        println!("{line}");
    }
    println!("\nPaper anchors: 16P collapses ~16x by α=3; 32P does not help;");
    println!("16P+15S is flat (skew-oblivious); selected-impl speedup reaches ~12x at α=3.");
}
