//! Table III — resource utilisation and frequency of the HLL variants:
//! analytical model vs the paper's post-P&R numbers.

use ditto_bench::{print_header, row};
use fpga_model::{AppCostProfile, PipelineShape, ResourceModel};

/// The paper's Table III (HLL implementations on the Arria 10 GX 1150).
/// label, N, M, X, freq (MHz), RAM blocks, logic elements, DSPs.
type PaperRow = (&'static str, u32, u32, u32, f64, u64, u64, u64);

const PAPER: &[PaperRow] = &[
    ("16P", 8, 16, 0, 246.0, 597, 163_934, 403),
    ("32P", 16, 32, 0, 191.0, 1_868, 230_838, 729),
    ("16P+1S", 8, 16, 1, 202.0, 908, 184_826, 409),
    ("16P+2S", 8, 16, 2, 180.0, 1_021, 203_083, 575),
    ("16P+4S", 8, 16, 4, 192.0, 1_309, 212_856, 587),
    ("16P+8S", 8, 16, 8, 196.0, 1_374, 281_667, 616),
    ("16P+15S", 8, 16, 15, 188.0, 2_129, 230_095, 658),
];

fn main() {
    let model = ResourceModel::arria10();
    let hll = AppCostProfile::hll();
    println!("# Table III — HLL implementation resources and frequency");
    println!("\nModel vs paper; Δ is (model − paper) / paper.");
    print_header(
        "Resource utilisation and frequency",
        &[
            "Implem.",
            "Freq (model/paper)",
            "Δ",
            "RAM",
            "Δ",
            "Logic",
            "Δ",
            "DSP",
            "Δ",
        ],
    );
    let pct = |a: f64, b: f64| format!("{:+.0}%", (a - b) / b * 100.0);
    for &(label, n, m, x, freq, ram, logic, dsp) in PAPER {
        let e = model.estimate(PipelineShape::new(n, m, x), &hll);
        println!(
            "{}",
            row(&[
                label.into(),
                format!("{:.0} / {:.0} MHz", e.freq_mhz, freq),
                pct(e.freq_mhz, freq),
                format!("{} / {} ({:.0}%)", e.ram_blocks, ram, e.ram_util * 100.0),
                pct(e.ram_blocks as f64, ram as f64),
                format!(
                    "{} / {} ({:.0}%)",
                    e.logic_alms,
                    logic,
                    e.logic_util * 100.0
                ),
                pct(e.logic_alms as f64, logic as f64),
                format!("{} / {} ({:.0}%)", e.dsps, dsp, e.dsp_util * 100.0),
                pct(e.dsps as f64, dsp as f64),
            ])
        );
    }
    println!("\nTrends reproduced: RAM grows steeply with X (and with 32P); the base");
    println!("16P design is fastest; the runtime profiler costs ~6% logic / ~8% DSPs.");
}
