//! Emits `BENCH_2.json`: the `ditto-serve` cluster performance snapshot.
//!
//! Two experiment families:
//!
//! * `parallel_sweep` — the PR-1 open item: the 13-point Zipf-α sweep run
//!   sequentially and across `par_map` threads, recording the multi-core
//!   speedup of the scenario-sweep path on this runner;
//! * `serve` — a load-generator sweep over **qps × skew × shard count**
//!   against a live cluster (HISTO app, online-serving arch per shard):
//!   aggregate cluster throughput, p50/p99 batch latency in simulated
//!   cycles and wall time, queue/migration counters.
//!
//! Shard engines run on their own OS threads, so aggregate throughput
//! scales with shard count only on a multi-core runner — `machine.threads`
//! records what this run had.
//!
//! Size knobs: `DITTO_SERVE_TUPLES` (tuples per sweep point, default
//! 40 000), `DITTO_TUPLES` (parallel-sweep sizing, shared with the other
//! harness binaries).
//!
//! Usage: `cargo run --release -p ditto-bench --bin serve_bench [out.json]`

use std::time::{Duration, Instant};

use datagen::ZipfGenerator;
use ditto_apps::HistoApp;
use ditto_bench::json::{host_info, Json};
use ditto_bench::{alpha_sweep, harness_tuples, par_map, sweep_threads};
use ditto_core::{ArchConfig, SkewObliviousPipeline};
use ditto_serve::{split_into_batches, BalancerConfig, Cluster, ServeConfig};

const BATCH_TUPLES: usize = 2_000;
/// Rebalance cadence in admitted batches.
const REBALANCE_EVERY: usize = 4;

fn serve_tuples() -> usize {
    std::env::var("DITTO_SERVE_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000)
}

/// One point of the PR-1 parallel sweep (same workload as `bench_report`).
fn sweep_point(alpha: f64, tuples: usize) -> u64 {
    let app = HistoApp::new(1_024, 16);
    let data = ZipfGenerator::new(alpha, 1 << 18, 13).take_vec(tuples);
    let cfg = ArchConfig::paper(4).with_pe_entries(app.pe_entries());
    SkewObliviousPipeline::run_dataset(app, data, &cfg)
        .report
        .cycles
}

/// Measures the sequential-vs-parallel scenario sweep on this runner.
fn parallel_sweep_block() -> Json {
    let tuples = harness_tuples().min(20_000);
    let alphas = alpha_sweep();
    // Warm-up: page in code paths and the memoised Zipf CDF tables.
    for &a in &alphas {
        sweep_point(a, tuples.min(2_000));
    }
    let t0 = Instant::now();
    let seq_cycles: u64 = alphas.iter().map(|&a| sweep_point(a, tuples)).sum();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let par_cycles: u64 = par_map(&alphas, |&a| sweep_point(a, tuples))
        .into_iter()
        .sum();
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        seq_cycles, par_cycles,
        "parallel sweep must be bit-identical"
    );
    Json::obj([
        ("tuples_per_point", Json::uint(tuples as u64)),
        ("sweep_points", Json::uint(alphas.len() as u64)),
        ("sequential_ms", Json::float(seq_ms, 1)),
        ("parallel_ms", Json::float(par_ms, 1)),
        ("speedup", Json::float(seq_ms / par_ms, 2)),
        (
            "note",
            Json::str(
                "multi-core scaling of the par_map scenario sweep (ROADMAP open item); \
                 speedup ~1.0 on a single-vCPU runner is expected",
            ),
        ),
    ])
}

/// One measured serve sweep point: the JSON row plus the headline number
/// `main` aggregates into the scaling block.
struct ServePoint {
    row: Json,
    tuples_per_sec: f64,
}

/// One serve sweep point: drive `tuples` of Zipf(`alpha`) traffic through a
/// `shards`-shard cluster at `qps` tuples/sec (`None` = as fast as the
/// cluster admits), return the measurement.
fn serve_point(shards: usize, alpha: f64, qps: Option<f64>, tuples: usize) -> ServePoint {
    let app = HistoApp::new(1_024, 8);
    let arch = ArchConfig::new(4, 8, 7)
        .with_reschedule(0.5, 2_000)
        .with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(shards, arch).with_balancer(BalancerConfig {
        min_window_tuples: 1_024,
        ..BalancerConfig::default()
    });
    let data = ZipfGenerator::new(alpha, 1 << 18, 17).take_vec(tuples);
    let batches = split_into_batches(&data, BATCH_TUPLES);

    let mut cluster = Cluster::new(app, &config);
    let start = Instant::now();
    for (i, batch) in batches.into_iter().enumerate() {
        if let Some(rate) = qps {
            // Open-loop pacing: batch i is due at start + i·B/rate.
            let due = start + Duration::from_secs_f64(i as f64 * BATCH_TUPLES as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        cluster.submit(batch);
        if (i + 1) % REBALANCE_EVERY == 0 {
            cluster.rebalance();
        }
    }
    cluster.drain();
    let wall = start.elapsed();
    let outcome = cluster.finish();
    let snap = &outcome.snapshot;
    assert_eq!(
        snap.tuples_processed(),
        tuples as u64,
        "cluster lost tuples"
    );
    let tps = tuples as f64 / wall.as_secs_f64();
    let row = Json::obj([
        ("shards", Json::uint(shards as u64)),
        ("alpha", Json::float(alpha, 2)),
        (
            "qps_target",
            qps.map_or(Json::str("max"), |r| Json::float(r, 0)),
        ),
        ("wall_ms", Json::float(wall.as_secs_f64() * 1e3, 1)),
        ("tuples_per_sec", Json::float(tps, 0)),
        ("batches", Json::uint(snap.batches_completed)),
        ("p50_batch_cycles", Json::uint(snap.latency_cycles.p50)),
        ("p99_batch_cycles", Json::uint(snap.latency_cycles.p99)),
        ("p50_batch_wall_us", Json::uint(snap.latency_wall_us.p50)),
        ("p99_batch_wall_us", Json::uint(snap.latency_wall_us.p99)),
        ("migrations", Json::uint(snap.migrations)),
        ("shard_imbalance", Json::float(snap.shard_imbalance(), 2)),
        (
            "reschedules",
            Json::uint(snap.shards.iter().map(|s| s.reschedules).sum()),
        ),
    ]);
    ServePoint {
        row,
        tuples_per_sec: tps,
    }
}

fn main() {
    ditto_obs::env::log_active();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_2.json".to_owned());
    let tuples = serve_tuples();

    eprintln!("parallel sweep ({} threads)...", sweep_threads());
    let parallel_sweep = parallel_sweep_block();

    // The headline grid: unthrottled throughput over shards × skew.
    let shard_counts = [1usize, 2, 4];
    let alphas = [0.0, 3.0];
    let mut points = Vec::new();
    let mut max_tps: Vec<(usize, f64, f64)> = Vec::new();
    for &shards in &shard_counts {
        for &alpha in &alphas {
            eprintln!("serve point: {shards} shard(s), alpha {alpha}, max rate...");
            let point = serve_point(shards, alpha, None, tuples);
            max_tps.push((shards, alpha, point.tuples_per_sec));
            points.push(point.row);
        }
    }
    // Two paced points (2 shards, ~half the unthrottled rate) to expose
    // latency under a sustainable offered load.
    let paced_rate = max_tps
        .iter()
        .find(|&&(s, a, _)| s == 2 && a == 0.0)
        .map_or(200_000.0, |&(_, _, tps)| (tps / 2.0).max(10_000.0));
    for &alpha in &alphas {
        eprintln!("serve point: 2 shards, alpha {alpha}, paced {paced_rate:.0} tps...");
        points.push(serve_point(2, alpha, Some(paced_rate), tuples).row);
    }

    let scaling = {
        let tps_of = |shards: usize, alpha: f64| {
            max_tps
                .iter()
                .find(|&&(s, a, _)| s == shards && a == alpha)
                .map(|&(_, _, t)| t)
                .unwrap_or(0.0)
        };
        Json::obj([
            ("alpha0_1shard_tps", Json::float(tps_of(1, 0.0), 0)),
            ("alpha0_4shard_tps", Json::float(tps_of(4, 0.0), 0)),
            (
                "alpha0_speedup_4_over_1",
                Json::float(tps_of(4, 0.0) / tps_of(1, 0.0).max(1.0), 2),
            ),
            ("alpha3_1shard_tps", Json::float(tps_of(1, 3.0), 0)),
            ("alpha3_4shard_tps", Json::float(tps_of(4, 3.0), 0)),
            (
                "alpha3_speedup_4_over_1",
                Json::float(tps_of(4, 3.0) / tps_of(1, 3.0).max(1.0), 2),
            ),
        ])
    };

    let doc = Json::obj([
        ("bench", Json::str("BENCH_2")),
        ("host", host_info()),
        (
            "machine",
            Json::obj([("threads", Json::uint(sweep_threads() as u64))]),
        ),
        ("parallel_sweep", parallel_sweep),
        (
            "serve",
            Json::obj([
                ("app", Json::str("HISTO")),
                ("arch_per_shard", Json::str("8P+7S, reschedule 0.5")),
                ("tuples_per_point", Json::uint(tuples as u64)),
                ("batch_tuples", Json::uint(BATCH_TUPLES as u64)),
                ("points", Json::arr(points)),
                ("scaling_max_rate", scaling),
                (
                    "note",
                    Json::str(
                        "one OS thread per shard: aggregate tuples_per_sec scales with shard \
                         count only when machine.threads allows; wall latencies include host \
                         scheduling",
                    ),
                ),
            ]),
        ),
    ]);
    doc.write(&out_path).expect("write BENCH_2.json");
    println!("{}", doc.to_pretty());
    eprintln!("wrote {out_path}");
}
