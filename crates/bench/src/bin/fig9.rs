//! Fig. 9 — evolving data skew: HISTO (16P+15S) throughput and reschedule
//! count vs the time interval of workload-distribution changes, against a
//! 100 Gbps network-rate source, with the no-skew-handling baseline.
//!
//! Scaling note: the paper's kernel dequeue/enqueue overhead is on the
//! order of a millisecond (hundreds of thousands of cycles); simulating the
//! paper's full 512 ms intervals at cycle granularity would be needlessly
//! slow, so the harness scales the overhead down (default 20 000 cycles ≈
//! 0.1 ms at ~200 MHz) and sweeps intervals around it. The three regimes of
//! Fig. 9 are preserved relative to the overhead: full bandwidth when the
//! interval ≫ overhead, a deep dip when they are comparable, and recovery
//! at sub-microsecond intervals where the internal channels absorb the
//! short-lived hot spots and rescheduling auto-disables.

use datagen::EvolvingZipfStream;
use ditto_apps::HistoApp;
use ditto_bench::{freq_of, print_header, row};
use ditto_core::{ArchConfig, SkewObliviousPipeline};
use fpga_model::AppCostProfile;

/// Gbps carried by `tpc` 8-byte tuples/cycle at `freq` MHz.
fn gbps(tpc: f64, freq_mhz: f64) -> f64 {
    tpc * 8.0 * 8.0 * freq_mhz / 1_000.0
}

fn main() {
    ditto_obs::env::log_active();
    let overhead: u64 = std::env::var("DITTO_REQUEUE_OVERHEAD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let bins = 4_096u64;
    let m = 16u32;
    let freq = freq_of(8, 16, 15, &AppCostProfile::histo());
    let base_freq = freq_of(8, 16, 0, &AppCostProfile::histo());
    let us_per_kcycle = 1_000.0 / freq; // µs per 1000 cycles

    println!("# Fig. 9 — HISTO under evolving data skew (α = 3, hot set rotates)");
    println!(
        "\nrequeue overhead = {overhead} cycles ({:.0} µs at {freq:.0} MHz);",
        overhead as f64 * us_per_kcycle / 1_000.0
    );
    println!(
        "peak network bandwidth = {:.0} Gbps (8 tuples/cycle).",
        gbps(8.0, freq)
    );

    print_header(
        "Throughput vs hot-set rotation interval",
        &[
            "interval (cycles)",
            "interval (µs)",
            "Ditto 16P+15S (Gbps)",
            "reschedules",
            "w/o skew handling (Gbps)",
        ],
    );

    // Sweep from intervals far above the overhead down to a few cycles.
    let mut interval = overhead * 64;
    while interval >= 8 {
        let run_cycles = (interval.saturating_mul(6)).clamp(400_000, 3_000_000);

        let app = HistoApp::new(bins, m);
        let cfg = ArchConfig::paper(15)
            .with_pe_entries(app.pe_entries())
            .with_reschedule(0.5, overhead)
            .with_profile_cycles(256)
            .with_monitor_window(4_096);
        let stream = EvolvingZipfStream::new(3.0, 1 << 22, 777, interval, 8.0, None);
        let out = SkewObliviousPipeline::run_stream_for(app, Box::new(stream), &cfg, run_cycles);

        let base_app = HistoApp::new(bins, m);
        let base_cfg = ArchConfig::paper(0).with_pe_entries(base_app.pe_entries());
        let base_stream = EvolvingZipfStream::new(3.0, 1 << 22, 777, interval, 8.0, None);
        let base = SkewObliviousPipeline::run_stream_for(
            base_app,
            Box::new(base_stream),
            &base_cfg,
            run_cycles,
        );

        println!(
            "{}",
            row(&[
                format!("{interval}"),
                format!("{:.2}", interval as f64 / freq),
                format!("{:.1}", gbps(out.report.tuples_per_cycle(), freq)),
                format!("{}", out.report.reschedules),
                format!("{:.1}", gbps(base.report.tuples_per_cycle(), base_freq)),
            ])
        );
        interval /= 4;
    }
    println!("\nPaper anchors: ~100 Gbps when interval >= 16 ms; deep dip while the");
    println!("interval is comparable to the rescheduling overhead (SecPEs sit idle);");
    println!("recovery at tiny intervals (channels absorb short bursts, rescheduling");
    println!("stops); baseline without skew handling stays ~1/16 of peak throughout.");
}
