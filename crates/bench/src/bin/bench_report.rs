//! Emits `BENCH_1.json`: the PR-1 performance snapshot.
//!
//! Records wall-clock for the two hot workloads every figure/table
//! reproduction leans on:
//!
//! * `skew_sweep` — the 13-point Zipf-α sweep (HISTO, `16P+4S`), run both
//!   sequentially and across threads (`par_map`);
//! * `routing_throughput` — the uniform / extreme-skew / skew-oblivious
//!   pipeline micro, in simulated tuples per wall-clock second.
//!
//! The `baseline` block holds the same workloads measured on the PR-1 seed
//! engine (`Rc<RefCell>` channels, step-everyone scheduler) on the same
//! machine, so later PRs have a fixed reference trajectory.
//!
//! Usage: `cargo run --release -p ditto-bench --bin bench_report [out.json]`

use std::time::Instant;

use datagen::ZipfGenerator;
use ditto_apps::HistoApp;
use ditto_bench::json::{host_info, Json};
use ditto_bench::{alpha_sweep, harness_tuples, par_map, sweep_threads};
use ditto_core::{ArchConfig, SkewObliviousPipeline};

/// Seed-engine (naive `Rc<RefCell>` channels, step-everyone scheduler)
/// wall-clock for the identical workload and procedure (one untimed warm-up
/// point, then the 13-point sweep with per-point generator construction),
/// measured on this repository's 1-vCPU build container while PR 1 was
/// developed (median of four runs). Units: milliseconds.
const BASELINE_SEED_SKEW_SWEEP_MS: f64 = 128.0;
/// Seed-engine routing_throughput micro, tuples processed per second
/// (mean of four runs on the same container).
const BASELINE_SEED_ROUTING_TUPLES_PER_SEC: f64 = 874_000.0;

fn sweep_point(alpha: f64, tuples: usize) -> u64 {
    let app = HistoApp::new(1_024, 16);
    let data = ZipfGenerator::new(alpha, 1 << 18, 13).take_vec(tuples);
    let cfg = ArchConfig::paper(4).with_pe_entries(app.pe_entries());
    SkewObliviousPipeline::run_dataset(app, data, &cfg)
        .report
        .cycles
}

fn routing_point(alpha: f64, x: u32, tuples: usize) -> u64 {
    let app = HistoApp::new(1_024, 16);
    let data = ZipfGenerator::new(alpha, 1 << 20, 7).take_vec(tuples);
    let cfg = ArchConfig::paper(x).with_pe_entries(app.pe_entries());
    SkewObliviousPipeline::run_dataset(app, data, &cfg)
        .report
        .tuples
}

fn main() {
    ditto_obs::env::log_active();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".to_owned());
    let tuples = harness_tuples().min(20_000);
    let alphas = alpha_sweep();

    // Warm-up (page in code and allocator state; populates the Zipf CDF
    // cache the way any repeated sweep does).
    for &a in &alphas {
        sweep_point(a, tuples.min(2_000));
    }

    let t0 = Instant::now();
    let seq_cycles: u64 = alphas.iter().map(|&a| sweep_point(a, tuples)).sum();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let par_cycles: u64 = par_map(&alphas, |&a| sweep_point(a, tuples))
        .into_iter()
        .sum();
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        seq_cycles, par_cycles,
        "parallel sweep must be bit-identical"
    );

    let t0 = Instant::now();
    let routed: u64 = [(0.0, 0u32), (3.0, 0), (3.0, 15)]
        .iter()
        .map(|&(a, x)| routing_point(a, x, tuples))
        .sum();
    let routing_s = t0.elapsed().as_secs_f64();
    let routing_tps = routed as f64 / routing_s;

    let speedup_seq = BASELINE_SEED_SKEW_SWEEP_MS / seq_ms;
    let speedup_par = BASELINE_SEED_SKEW_SWEEP_MS / par_ms;

    let doc = Json::obj([
        ("bench", Json::str("BENCH_1")),
        ("host", host_info()),
        (
            "machine",
            Json::obj([("threads", Json::uint(sweep_threads() as u64))]),
        ),
        (
            "workload",
            Json::obj([
                ("tuples_per_point", Json::uint(tuples as u64)),
                ("sweep_points", Json::uint(alphas.len() as u64)),
            ]),
        ),
        (
            "skew_sweep",
            Json::obj([
                ("sequential_ms", Json::float(seq_ms, 1)),
                ("parallel_ms", Json::float(par_ms, 1)),
                ("simulated_cycles", Json::uint(seq_cycles)),
            ]),
        ),
        (
            "routing_throughput",
            Json::obj([("tuples_per_sec", Json::float(routing_tps, 0))]),
        ),
        (
            "baseline_seed_engine",
            Json::obj([
                ("skew_sweep_ms", Json::float(BASELINE_SEED_SKEW_SWEEP_MS, 1)),
                (
                    "routing_tuples_per_sec",
                    Json::float(BASELINE_SEED_ROUTING_TUPLES_PER_SEC, 0),
                ),
                (
                    "note",
                    Json::str(
                        "seed Rc<RefCell> engine, measured once on the repo's original 1-vCPU \
                         dev container during PR 1; speedup_vs_seed is only meaningful for runs \
                         on comparable hardware",
                    ),
                ),
            ]),
        ),
        (
            "speedup_vs_seed",
            Json::obj([
                ("skew_sweep_sequential", Json::float(speedup_seq, 2)),
                ("skew_sweep_parallel", Json::float(speedup_par, 2)),
            ]),
        ),
    ]);
    doc.write(&out_path).expect("write BENCH_1.json");
    println!("{}", doc.to_pretty());
    eprintln!("wrote {out_path}");
}
