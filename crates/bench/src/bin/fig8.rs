//! Fig. 8 — PageRank throughput (MTEPS) on undirected graphs, Ditto vs the
//! data-routing design of Chen et al. [8], graphs in ascending degree.

use ditto_apps::run_pagerank;
use ditto_bench::{freq_of, par_map, print_header, row};
use ditto_core::ArchConfig;
use ditto_graph::generate;
use fpga_model::{mteps, AppCostProfile};

fn main() {
    ditto_obs::env::log_active();
    println!("# Fig. 8 — PR on undirected graphs (MTEPS), Ditto vs Chen et al. [8]");
    let scale_down: usize = std::env::var("DITTO_GRAPH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let suite = generate::fig8_suite(scale_down);
    let profile = AppCostProfile::pagerank();
    let iterations = 2;

    print_header(
        "PR throughput per graph (ascending average degree)",
        &[
            "graph",
            "V",
            "E",
            "avg deg",
            "max in-deg",
            "Chen et al. (MTEPS)",
            "Ditto (MTEPS)",
            "speedup",
        ],
    );
    // Each graph is an independent pair of engine runs: sweep across
    // threads, print in order.
    let results = par_map(&suite, |(name, g)| {
        // Chen et al.: plain data routing, 16 PriPEs, no SecPEs.
        let base_cfg = ArchConfig::paper(0);
        let base = run_pagerank(g, 0.85, iterations, &base_cfg);
        let base_mteps = mteps(base.edges_per_cycle(), freq_of(8, 16, 0, &profile));
        // Ditto: online-style selection picks maximal skew capacity (M-1).
        let ditto_cfg = ArchConfig::paper(15);
        let ditto = run_pagerank(g, 0.85, iterations, &ditto_cfg);
        let ditto_mteps = mteps(ditto.edges_per_cycle(), freq_of(8, 16, 15, &profile));
        assert_eq!(
            base.ranks, ditto.ranks,
            "both designs must compute identical ranks"
        );
        let speedup = ditto_mteps / base_mteps;
        let line = row(&[
            name.clone(),
            format!("{}", g.vertex_count()),
            format!("{}", g.edge_count()),
            format!("{:.1}", g.avg_degree()),
            format!("{}", g.max_in_degree()),
            format!("{base_mteps:.0}"),
            format!("{ditto_mteps:.0}"),
            format!("{speedup:.1}x"),
        ]);
        (line, speedup)
    });
    let mut speedups = Vec::new();
    for (line, speedup) in results {
        println!("{line}");
        speedups.push(speedup);
    }
    let max = speedups.iter().fold(0.0f64, |a, &b| a.max(b));
    println!("\nMax speedup: {max:.1}x (paper: up to 7.1x, growing with graph degree");
    println!("since more edges updating the same vertex cause more severe skew).");
}
