//! Table I — application details, printed from the implemented specs.

use ditto_bench::{print_header, row};

fn main() {
    println!("# Table I — application details");
    print_header(
        "Evaluated applications",
        &["App.", "Description", "Algorithm details", "Crate item"],
    );
    let rows: [(&str, &str, &str, &str); 5] = [
        (
            "HISTO",
            "Represents the distribution of numerical data",
            "equi-width histograms (murmur3 binning)",
            "ditto_apps::HistoApp",
        ),
        (
            "DP",
            "Separates a big dataset into many chunks",
            "radix hash partitioning",
            "ditto_apps::DataPartitionApp",
        ),
        (
            "PR",
            "Scores the importance of websites by links",
            "fixed-point (Q32.32) PageRank",
            "ditto_apps::PageRankApp",
        ),
        (
            "HLL",
            "Estimates the cardinality of big datasets",
            "murmur3-hash HyperLogLog",
            "ditto_apps::HllApp",
        ),
        (
            "HHD",
            "Detects heavy hitters in data streams",
            "count-min sketch + candidates",
            "ditto_apps::HhdApp",
        ),
    ];
    for (app, desc, alg, item) in rows {
        println!(
            "{}",
            row(&[app.into(), desc.into(), alg.into(), item.into()])
        );
    }
}
