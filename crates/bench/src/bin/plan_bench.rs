//! Emits `BENCH_10.json`: the deployment-planner benchmark — counts-tracing
//! overhead guard, planner search cost, and the chosen configuration's
//! measured win over the paper-default deployment.
//!
//! Three blocks:
//!
//! * `counts_tracing_overhead` — the BENCH_7-style guard for the profiling
//!   pass. A saturated-uniform pipeline is stepped for a fixed cycle count
//!   twice per pair, interleaved: once untraced (the engine's per-kernel
//!   step counters stay `None` — the compiled-out default every golden
//!   runs under), once under `profile_counts` (counters allocated, one
//!   indexed increment per executed step, a snapshot diff per 256-cycle
//!   chunk). The bench *asserts* the traced run is simulation-identical —
//!   same cycles, tuples, per-PE workloads, kernel steps and channel
//!   aggregate — and that the wall overhead (min over interleaved pairs;
//!   see `measure_trace_overhead` for why) stays within budget.
//!   Disabled-mode invisibility is structural (the counters are never
//!   allocated), so the honest number reported here is the *enabled* cost:
//!   what a serve shard pays while a profiling slice is live.
//! * `plan_search` — wall time of the estimates pass itself: four
//!   `Planner::plan` calls (two apps × two skews) over the paper search
//!   space, with the repeated-fragment memo carrying across calls.
//! * `chosen_vs_paper_default` — the payoff. The uniform-workload plan's
//!   chosen shape and the paper-default `16P+15S` are both simulated on
//!   the same dataset; the block reports measured rate, modelled MT/s and
//!   MT/s per kALM for each, plus the area-efficiency ratio the planner
//!   is accepted on.
//!
//! Usage: `cargo run --release -p ditto-bench --bin plan_bench [out.json]`

use std::time::Instant;

use datagen::{Tuple, UniformGenerator, ZipfGenerator};
use ditto_bench::json::{host_info, Json};
use ditto_core::apps::CountPerKey;
use ditto_core::{ArchConfig, PersistentPipeline, SkewObliviousPipeline, SliceOptions};
use ditto_plan::{Planner, PlannerOptions};
use fpga_model::{mtps, AppCostProfile, PipelineShape};
use hls_sim::{MemoryModel, SliceSource, StreamSource};

/// Cycles each overhead-pair run steps (both sides step exactly this).
const TRACE_CYCLES: u64 = 32_768;
/// Sampling chunk of the traced side — the `SliceOptions` default.
const TRACE_CHUNK: u64 = 256;
/// Enabled-tracing wall budget, fraction of the untraced run.
const OVERHEAD_BUDGET: f64 = 0.02;
/// PriPE count of the profiling pipeline the planner folds from.
const REFERENCE_M: u32 = 32;

/// Everything deterministic about one fixed-cycle run, for the
/// bit-identity asserts.
#[derive(PartialEq, Debug)]
struct RunFingerprint {
    cycles: u64,
    tuples: u64,
    kernel_steps: u64,
    per_pe: Vec<u64>,
    channel: (u64, u64, u64),
}

fn fingerprint(p: &PersistentPipeline<CountPerKey>) -> RunFingerprint {
    let s = p.snapshot();
    let agg = p.engine().context().channel_aggregate();
    RunFingerprint {
        cycles: s.cycles,
        tuples: s.tuples,
        kernel_steps: s.kernel_steps,
        per_pe: s.per_pe_processed,
        channel: (agg.pushes, agg.pops, agg.full_stalls),
    }
}

fn overhead_pipeline(data: &[Tuple]) -> PersistentPipeline<CountPerKey> {
    let source: Box<dyn StreamSource<Tuple>> = Box::new(SliceSource::new(
        data.to_vec(),
        Tuple::PAPER_WIDTH_BYTES,
        MemoryModel::new(64, 16),
    ));
    PersistentPipeline::new(CountPerKey::new(16), source, &ArchConfig::paper(15))
}

/// One untraced fixed-cycle run: the same chunked stepping loop as the
/// traced side, minus tracing — so the measured delta is the profiling
/// pass's marginal cost, not loop-shape luck.
fn run_untraced(data: &[Tuple]) -> (f64, RunFingerprint) {
    let mut p = overhead_pipeline(data);
    let t0 = Instant::now();
    let mut spent = 0;
    while spent < TRACE_CYCLES {
        let chunk = TRACE_CHUNK.min(TRACE_CYCLES - spent);
        p.step_cycles(chunk);
        spent += chunk;
    }
    (t0.elapsed().as_secs_f64(), fingerprint(&p))
}

/// One traced fixed-cycle run: identical stepping, under `profile_counts`.
fn run_traced(data: &[Tuple]) -> (f64, RunFingerprint, u64) {
    let mut p = overhead_pipeline(data);
    let t0 = Instant::now();
    let trace = p.profile_counts(SliceOptions::new(TRACE_CYCLES).with_chunk(TRACE_CHUNK));
    (
        t0.elapsed().as_secs_f64(),
        fingerprint(&p),
        trace.total_tuples(),
    )
}

fn measure_trace_overhead(data: &[Tuple], pairs: usize) -> Json {
    // Warm-up: page in code paths and allocator arenas on both sides.
    run_untraced(data);
    run_traced(data);
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    let mut fractions = Vec::with_capacity(pairs);
    let mut baseline: Option<RunFingerprint> = None;
    let mut traced_tuples = 0;
    for _ in 0..pairs {
        let (off_dt, off_fp) = run_untraced(data);
        let (on_dt, on_fp, tuples) = run_traced(data);
        assert_eq!(
            off_fp, on_fp,
            "counts tracing must not perturb the simulation"
        );
        match &baseline {
            None => baseline = Some(off_fp),
            Some(b) => assert_eq!(*b, off_fp, "simulation must be deterministic"),
        }
        traced_tuples = tuples;
        fractions.push(on_dt / off_dt - 1.0);
        off_best = off_best.min(off_dt);
        on_best = on_best.min(on_dt);
    }
    fractions.sort_by(|a, b| a.total_cmp(b));
    let median = fractions[fractions.len() / 2];
    // Shared-container noise on a run this size is one-sided (scheduler
    // spikes only ever slow a run down) and larger than the effect under
    // test, so the median still measures the weather. The min over
    // adjacent interleaved pairs is the estimator the noise cannot
    // inflate: a real regression costs on *every* run and lifts the min
    // with it, while a spike contaminates only the pair it lands on.
    let overhead = fractions[0].max(0.0);
    assert!(
        overhead <= OVERHEAD_BUDGET,
        "enabled counts tracing costs {:.2}% (budget {:.0}%)",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    let fp = baseline.expect("at least one pair");
    Json::obj([
        ("untraced_wall_ms", Json::float(off_best * 1e3, 2)),
        ("traced_wall_ms", Json::float(on_best * 1e3, 2)),
        ("cycles_per_run", Json::uint(TRACE_CYCLES)),
        ("sampling_chunk_cycles", Json::uint(TRACE_CHUNK)),
        ("tuples_traced", Json::uint(traced_tuples)),
        ("kernel_steps_per_run", Json::uint(fp.kernel_steps)),
        ("pairs_measured", Json::uint(fractions.len() as u64)),
        ("overhead_fraction", Json::float(overhead, 4)),
        ("overhead_fraction_median", Json::float(median.max(0.0), 4)),
        ("overhead_budget", Json::float(OVERHEAD_BUDGET, 4)),
        (
            "disabled_mode",
            Json::str("bit-invisible by construction: step counters are never allocated"),
        ),
    ])
}

/// Profiles `data` at the reference shape and returns the planning input.
fn profile(data: &[Tuple], label_tuples: usize) -> ditto_obs::CountsTrace {
    let source: Box<dyn StreamSource<Tuple>> = Box::new(SliceSource::new(
        data.to_vec(),
        Tuple::PAPER_WIDTH_BYTES,
        MemoryModel::new(64, 16),
    ));
    let mut p = PersistentPipeline::new(
        CountPerKey::new(REFERENCE_M),
        source,
        &ArchConfig::new(8, REFERENCE_M, 0),
    );
    let trace = p.profile_counts(SliceOptions::new(4_096));
    assert!(trace.total_tuples() > 0, "{label_tuples}-tuple slice empty");
    trace
}

fn simulate(shape: PipelineShape, data: &[Tuple]) -> f64 {
    let cfg = ArchConfig::new(shape.n_pre, shape.m_pri, shape.x_sec);
    let outcome =
        SkewObliviousPipeline::run_dataset(CountPerKey::new(shape.m_pri), data.to_vec(), &cfg);
    assert!(outcome.report.completed, "comparison run must drain");
    outcome.report.tuples_per_cycle()
}

fn main() {
    ditto_obs::env::log_active();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_owned());
    let tuples: usize = std::env::var("DITTO_PLAN_BENCH_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let pairs: usize = std::env::var("DITTO_PLAN_BENCH_PAIRS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    let uniform = UniformGenerator::new(1 << 18, 11).take_vec(tuples);
    let zipf = ZipfGenerator::new(2.0, 1 << 18, 11).take_vec(tuples);
    // The overhead guard needs the fabric saturated for every traced
    // cycle; size that stream to outlast the fixed-cycle window.
    let dense =
        UniformGenerator::new(1 << 20, 3).take_vec((TRACE_CYCLES as usize) * 8 + (tuples / 2));

    let overhead = measure_trace_overhead(&dense, pairs);

    // The estimates pass: four plans, one shared memo.
    let mut planner = Planner::new();
    let opts = PlannerOptions::paper_search();
    let points = [
        ("count/uniform", &uniform, AppCostProfile::histo()),
        ("count/zipf2.0", &zipf, AppCostProfile::histo()),
        ("dp/uniform", &uniform, AppCostProfile::dp()),
        ("dp/zipf2.0", &zipf, AppCostProfile::dp()),
    ];
    let mut plans = Vec::new();
    let mut search_json = Vec::new();
    let t_search = Instant::now();
    for (label, data, prof) in &points {
        let trace = profile(data, tuples);
        let t0 = Instant::now();
        let plan = planner.plan(&trace, REFERENCE_M, prof, &opts);
        let dt = t0.elapsed();
        search_json.push(Json::obj([
            ("point", Json::str(*label)),
            ("chosen", Json::str(plan.chosen.shape.label())),
            ("device", Json::str(plan.chosen.device)),
            ("predicted_mtps", Json::float(plan.chosen.mtps, 1)),
            (
                "candidates_priced",
                Json::uint(plan.candidates.len() as u64),
            ),
            ("search_ms", Json::float(dt.as_secs_f64() * 1e3, 3)),
        ]));
        plans.push(plan);
    }
    let search_total = t_search.elapsed().as_secs_f64();
    let memo = planner.memo_stats();

    // The payoff: the uniform plan's choice vs the paper default, both
    // simulated on the dataset the plan was made for.
    let chosen = &plans[0].chosen;
    let paper = PipelineShape::new(8, 16, 15);
    let paper_candidate = plans[0]
        .candidates
        .iter()
        .find(|c| c.shape == paper)
        .expect("paper default is in the search space");
    let chosen_rate = simulate(chosen.shape, &uniform);
    let paper_rate = simulate(paper, &uniform);
    let chosen_mtps = mtps(chosen_rate, chosen.estimate.freq_mhz);
    let paper_mtps = mtps(paper_rate, paper_candidate.estimate.freq_mhz);
    let chosen_per_kalm = chosen_mtps / (chosen.estimate.logic_alms as f64 / 1e3);
    let paper_per_kalm = paper_mtps / (paper_candidate.estimate.logic_alms as f64 / 1e3);
    assert!(
        chosen_per_kalm > paper_per_kalm,
        "planner choice must beat the paper default on MT/s per kALM \
         ({chosen_per_kalm:.3} vs {paper_per_kalm:.3})"
    );

    let doc = Json::obj([
        ("bench", Json::str("BENCH_10")),
        ("host", host_info()),
        (
            "workload",
            Json::obj([
                ("tuples", Json::uint(tuples as u64)),
                ("overhead_pairs", Json::uint(pairs as u64)),
                ("reference_m", Json::uint(u64::from(REFERENCE_M))),
                (
                    "method",
                    Json::str(
                        "counts_tracing_overhead: interleaved untraced/traced fixed-cycle runs, \
                         simulation-identity asserted, min-over-pairs overhead vs 2% budget; \
                         plan_search: profile->plan for 4 app x skew points sharing one \
                         estimate memo; chosen_vs_paper_default: both shapes simulated on the \
                         uniform dataset",
                    ),
                ),
            ]),
        ),
        ("counts_tracing_overhead", overhead),
        (
            "plan_search",
            Json::obj([
                ("points", Json::arr(search_json)),
                ("total_wall_ms", Json::float(search_total * 1e3, 2)),
                ("memo_lookups", Json::uint(memo.lookups)),
                ("memo_hits", Json::uint(memo.hits)),
            ]),
        ),
        (
            "chosen_vs_paper_default",
            Json::obj([
                (
                    "chosen",
                    Json::obj([
                        ("shape", Json::str(chosen.shape.label())),
                        ("simulated_rate", Json::float(chosen_rate, 3)),
                        ("mtps", Json::float(chosen_mtps, 1)),
                        ("logic_alms", Json::uint(chosen.estimate.logic_alms)),
                        ("mtps_per_kalm", Json::float(chosen_per_kalm, 3)),
                    ]),
                ),
                (
                    "paper_default",
                    Json::obj([
                        ("shape", Json::str(paper.label())),
                        ("simulated_rate", Json::float(paper_rate, 3)),
                        ("mtps", Json::float(paper_mtps, 1)),
                        (
                            "logic_alms",
                            Json::uint(paper_candidate.estimate.logic_alms),
                        ),
                        ("mtps_per_kalm", Json::float(paper_per_kalm, 3)),
                    ]),
                ),
                (
                    "area_efficiency_ratio",
                    Json::float(chosen_per_kalm / paper_per_kalm, 3),
                ),
                ("throughput_ratio", Json::float(chosen_mtps / paper_mtps, 3)),
            ]),
        ),
    ]);
    doc.write(&out_path).expect("write BENCH_10.json");
    println!("{}", doc.to_pretty());
    eprintln!("wrote {out_path}");
}
