//! Emits `BENCH_4.json`: the hot-path micro-bench, one measurement per
//! pipeline phase, before and after the cold-tap auto-advance.
//!
//! Two phases of the same paper-scale pipeline (8 lanes, 16 PriPEs,
//! 15 SecPEs — 31 destination datapaths, the shape behind the ROADMAP's
//! "~27/59 kernels idle under skew" observation) are timed, because they
//! stress opposite ends of the scheduler:
//!
//! * `dense_uniform` — uniform keys over 2^20: every PE input queue stays
//!   non-empty and the word channel carries a word nearly every cycle, so
//!   datapath taps rarely drain and the idle-set scheduler can park almost
//!   nothing — the worst case for any added scheduling machinery.
//! * `skewed_zipf3` — Zipf(3.0) keys: after the profiler's plan lands
//!   (256-cycle window at the head of the run, then post-reschedule steady
//!   state for the remaining >99 % of cycles) nearly every tuple targets
//!   the hot PriPE and its SecPE helpers. The other datapaths see only
//!   zero-mask words: their decoders park and the broadcast core
//!   auto-advances their cursors without ever waking them — the phase the
//!   refactor exists for.
//!
//! The *before* configuration (`cold_tap_auto_advance = false`) reproduces
//! the PR 3 schedule exactly — same cycles, same per-channel statistics,
//! deterministically more kernel steps — inside the same binary, so
//! before/after pairs are measured interleaved rep by rep and container
//! noise hits both sides equally. The minimum over reps is reported (least
//! scheduler noise on shared containers). Kernel step counts are
//! deterministic, so the bench *asserts* the scheduler win: the
//! auto-advance run must execute strictly fewer kernel steps than the
//! baseline in both phases.
//!
//! Usage: `cargo run --release -p ditto-bench --bin hotpath [out.json]`

use std::time::Instant;

use datagen::{UniformGenerator, ZipfGenerator};
use ditto_bench::json::Json;
use ditto_core::apps::CountPerKey;
use ditto_core::{ArchConfig, SkewObliviousPipeline};

/// One timed run; returns (wall seconds, cycles, kernel steps).
fn run_once(data: &[datagen::Tuple], auto_advance: bool) -> (f64, u64, u64) {
    let cfg = ArchConfig::paper(15)
        .with_pe_entries(1 << 14)
        .with_cold_tap_auto_advance(auto_advance);
    let app = CountPerKey::new(16);
    let t0 = Instant::now();
    let out = SkewObliviousPipeline::run_dataset(app, data.to_vec(), &cfg);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(out.report.tuples, data.len() as u64, "no tuples lost");
    (dt, out.report.cycles, out.report.kernel_steps)
}

/// Minimum wall time, final cycles and (deterministic) step count over
/// `reps` interleaved runs of one (phase, mode) pair.
#[derive(Clone, Copy)]
struct Sample {
    best: f64,
    cycles: u64,
    steps: u64,
    tuples: usize,
}

impl Sample {
    fn new(tuples: usize) -> Self {
        Sample {
            best: f64::INFINITY,
            cycles: 0,
            steps: 0,
            tuples,
        }
    }

    fn record(&mut self, (dt, cycles, steps): (f64, u64, u64)) {
        if dt < self.best {
            self.best = dt;
        }
        if self.cycles == 0 {
            self.cycles = cycles;
            self.steps = steps;
        } else {
            assert_eq!(self.cycles, cycles, "simulation must be deterministic");
            assert_eq!(self.steps, steps, "kernel schedule must be deterministic");
        }
    }

    fn ns_per_tuple(&self) -> f64 {
        self.best * 1e9 / self.tuples as f64
    }

    fn json(&self) -> Json {
        Json::obj([
            ("ns_per_tuple", Json::float(self.ns_per_tuple(), 1)),
            (
                "ns_per_kernel_step",
                Json::float(self.best * 1e9 / self.steps as f64, 1),
            ),
            ("wall_ms", Json::float(self.best * 1e3, 2)),
            ("simulated_cycles", Json::uint(self.cycles)),
            ("kernel_steps", Json::uint(self.steps)),
        ])
    }
}

/// Measures one phase in both modes, interleaving reps so container noise
/// hits baseline and auto-advance equally.
fn measure(data: &[datagen::Tuple], reps: usize) -> (Sample, Sample) {
    let mut before = Sample::new(data.len());
    let mut after = Sample::new(data.len());
    for _ in 0..reps {
        before.record(run_once(data, false));
        after.record(run_once(data, true));
    }
    (before, after)
}

fn phase_json(name: &str, before: Sample, after: Sample) -> Json {
    assert_eq!(
        before.cycles, after.cycles,
        "{name}: auto-advance must be cycle-identical to the baseline"
    );
    assert!(
        after.steps < before.steps,
        "{name}: auto-advance must execute strictly fewer kernel steps \
         ({} vs {})",
        after.steps,
        before.steps
    );
    Json::obj([
        ("baseline_pr3", before.json()),
        ("auto_advance", after.json()),
        (
            "speedup",
            Json::float(before.ns_per_tuple() / after.ns_per_tuple(), 3),
        ),
        (
            "kernel_steps_ratio",
            Json::float(after.steps as f64 / before.steps as f64, 3),
        ),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_4.json".to_owned());
    let tuples: usize = std::env::var("DITTO_HOTPATH_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let reps: usize = std::env::var("DITTO_HOTPATH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    // Dense phase: uniform keys over 2^20, far more keys than PEs, so
    // every PE input queue stays non-empty for the whole run.
    let dense_data = UniformGenerator::new(1 << 20, 3).take_vec(tuples);
    // Skewed phase: Zipf(3.0) — ~97 % of tuples hit the hottest key.
    let skewed_data = ZipfGenerator::new(3.0, 1 << 20, 7).take_vec(tuples);

    // Warm-up run (page in code + allocator arenas).
    run_once(&dense_data, true);

    let (dense_before, dense_after) = measure(&dense_data, reps);
    let (skewed_before, skewed_after) = measure(&skewed_data, reps);

    let doc = Json::obj([
        ("bench", Json::str("BENCH_4")),
        (
            "workload",
            Json::obj([
                ("tuples", Json::uint(tuples as u64)),
                ("reps", Json::uint(reps as u64)),
                (
                    "config",
                    Json::str("paper scale: 8 lanes, 16 PriPEs, 15 SecPEs"),
                ),
                (
                    "method",
                    Json::str(
                        "before/after interleaved rep-by-rep in one binary: baseline_pr3 is \
                         cold_tap_auto_advance=false (the PR 3 schedule, bit-identical cycles \
                         and channel stats, every broadcast push wakes every decoder tap); \
                         auto_advance is the phase-compiled cold-tap path; min over reps",
                    ),
                ),
            ]),
        ),
        (
            "dense_uniform",
            phase_json("dense_uniform", dense_before, dense_after),
        ),
        (
            "skewed_zipf3",
            phase_json("skewed_zipf3", skewed_before, skewed_after),
        ),
    ]);
    doc.write(&out_path).expect("write BENCH_4.json");
    println!("{}", doc.to_pretty());
    eprintln!("wrote {out_path}");
}
