//! Emits `BENCH_7.json`: steady-state fast-forward before/after, one
//! measurement per pipeline phase, plus the observability overhead guard.
//!
//! Two phases of the same paper-scale pipeline (8 lanes, 16 PriPEs,
//! 15 SecPEs — the shape behind the ROADMAP's "~27/59 kernels idle under
//! skew" observation) are timed, because they stress opposite ends of the
//! event-horizon detector:
//!
//! * `paced_zipf3` — the headline. A Zipf(3.0) stream arrives in bursts
//!   (256 tuples every 8 192 cycles, the duty cycle of a paper-scale
//!   network feed), so after each burst drains the whole fabric is
//!   provably idle until the source's next pull cycle. Every awake kernel
//!   publishes an event horizon (`hold_until`), the engine jumps straight
//!   to the earliest one, and >90 % of simulated cycles are never stepped.
//! * `saturated_uniform` — the honest case. Uniform keys arrive
//!   back-to-back, every PE input queue stays non-empty, the horizons are
//!   always "now", and fast-forward cannot engage. This phase exists to
//!   show the detector's overhead when it never fires (~1×).
//!
//! The *before* configuration (`steady_state_fast_forward = false`) is the
//! PR 5 cycle-stepped schedule — bit-identical cycles, workloads and
//! per-channel statistics, deterministically the same everything except
//! wall time — inside the same binary, so before/after pairs are measured
//! interleaved rep by rep and container noise hits both sides equally. The
//! minimum over reps is reported (least scheduler noise on shared
//! containers). The bench *asserts* bit-identity between the modes: same
//! completion cycles, per-PE workloads and channel totals; only
//! `kernel_steps` and wall time may differ.
//!
//! The `observability_overhead` block is the guard for the `ditto-obs`
//! metrics registry: the dense-uniform phase is re-run with the registry
//! *enabled* — published into and snapshotted every `OBS_PUBLISH_CYCLES`
//! cycles, the cadence of a serve shard's poll loop — against the
//! compiled-out default (no registry anywhere near the run), interleaved
//! rep by rep. Because the registry is publish-on-demand (plain counters
//! re-exported at snapshot time; nothing on the step path), the run must
//! stay bit-identical and the wall-time overhead must stay ≤ 2%; the
//! bench asserts both. Engine counters in this report are read *from* the
//! registry snapshot — the bench consumes the same telemetry plane the
//! wire `MetricsDump` serves.
//!
//! Usage: `cargo run --release -p ditto-bench --bin hotpath [out.json]`

use std::time::Instant;

use datagen::{Tuple, UniformGenerator, ZipfGenerator};
use ditto_bench::json::{host_info, Json};
use ditto_core::apps::CountPerKey;
use ditto_core::{ArchConfig, PersistentPipeline};
use ditto_obs::MetricsRegistry;
use hls_sim::{MemoryModel, PacedSource, SliceSource, StreamSource};

/// Burst size of the paced phase (tuples per burst).
const BURST: usize = 256;
/// Burst period of the paced phase (cycles between burst starts).
const PERIOD: u64 = 8_192;
/// Publish cadence of the observability-enabled run (cycles) — the serve
/// shard's default `cycles_per_poll`, so the guard measures the cadence
/// the serving layer actually runs at.
const OBS_PUBLISH_CYCLES: u64 = 256;
/// Full snapshots (the `MetricsDump` scrape path — deep histogram copies)
/// are taken every Nth publish: scrapes are request-driven, not per-poll,
/// and even this cadence is one scrape per ~4K simulated cycles.
const OBS_SCRAPE_EVERY: u64 = 16;

/// One timed drain of a persistent pipeline built from `make_source`.
struct RunStats {
    dt: f64,
    cycles: u64,
    steps: u64,
    tuples: u64,
    per_pe: Vec<u64>,
    totals: (u64, u64, u64, u64),
    ff_jumps: u64,
    ff_skipped: u64,
}

fn run_once(
    make_source: &dyn Fn() -> Box<dyn StreamSource<Tuple>>,
    fast_forward: bool,
    max_cycles: u64,
) -> RunStats {
    let cfg = ArchConfig::paper(15)
        .with_pe_entries(1 << 14)
        .with_steady_state_fast_forward(fast_forward);
    let app = CountPerKey::new(16);
    let t0 = Instant::now();
    let mut p = PersistentPipeline::new(app, make_source(), &cfg);
    p.expect_drained(max_cycles);
    let dt = t0.elapsed().as_secs_f64();
    finish_stats(p, dt)
}

/// The serving-loop twin of [`run_once`]: identical engine schedule, but
/// the drain is chunked at [`OBS_PUBLISH_CYCLES`] — a serve shard's poll
/// loop. With `publish` set, each chunk additionally publishes the
/// engine's counters into a registry and records a poll histogram sample,
/// plus a full snapshot (the `MetricsDump` scrape path) every
/// [`OBS_SCRAPE_EVERY`]th publish. With `publish` unset the registry is
/// never constructed (the compiled-out default); both sides run the *same*
/// drain loop, so the measured delta is the registry's marginal cost, not
/// code-layout luck. The publish/snapshot wall time is *included* in the
/// measurement; that inclusion is the whole point of the guard.
fn run_polled(
    make_source: &dyn Fn() -> Box<dyn StreamSource<Tuple>>,
    fast_forward: bool,
    max_cycles: u64,
    publish: bool,
) -> (RunStats, u64, f64) {
    let cfg = ArchConfig::paper(15)
        .with_pe_entries(1 << 14)
        .with_steady_state_fast_forward(fast_forward);
    let app = CountPerKey::new(16);
    let mut reg = publish.then(|| {
        let mut r = MetricsRegistry::new().with_label("bench", "hotpath");
        let h = r.histogram("ditto_bench_tuples_per_poll", "obs", "tuples");
        (r, h, 0u64)
    });
    let mut publishes = 0u64;
    let mut obs_secs = 0.0f64;
    let t0 = Instant::now();
    let mut p = PersistentPipeline::new(app, make_source(), &cfg);
    let mut spent = 0u64;
    while !p.drain(OBS_PUBLISH_CYCLES) {
        spent += OBS_PUBLISH_CYCLES;
        assert!(spent <= max_cycles, "polled run failed to drain");
        if let Some((reg, tuples_seen, last_tuples)) = reg.as_mut() {
            let tp = Instant::now();
            p.engine().publish_metrics(reg);
            let t = p.processed();
            reg.observe(*tuples_seen, t - *last_tuples);
            *last_tuples = t;
            publishes += 1;
            if publishes.is_multiple_of(OBS_SCRAPE_EVERY) {
                let snap = reg.snapshot();
                assert_eq!(snap.scalar("ditto_engine_cycles"), Some(p.cycle()));
            }
            obs_secs += tp.elapsed().as_secs_f64();
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    (finish_stats(p, dt), publishes, obs_secs)
}

/// Folds a drained pipeline into [`RunStats`], reading the engine-side
/// counters from a metrics snapshot — the same telemetry plane the wire
/// `MetricsDump` serves — instead of ad-hoc getters.
fn finish_stats(p: PersistentPipeline<CountPerKey>, dt: f64) -> RunStats {
    let mut reg = MetricsRegistry::new();
    p.engine().publish_metrics(&mut reg);
    let snap = reg.snapshot();
    let counter = |name: &str| snap.scalar(name).unwrap_or_else(|| panic!("{name} absent"));
    let ff_jumps = counter("ditto_engine_ff_jumps");
    let ff_skipped = counter("ditto_engine_ff_cycles_skipped");
    let cycles = counter("ditto_engine_cycles");
    let steps = counter("ditto_engine_kernel_steps");
    let out = p.finish();
    assert_eq!(cycles, out.report.cycles, "registry mirrors the report");
    assert_eq!(steps, out.report.kernel_steps);
    let t = out.report.channel_totals;
    RunStats {
        dt,
        cycles,
        steps,
        tuples: out.report.tuples,
        per_pe: out.report.per_pe_processed,
        totals: (t.pushes, t.pops, t.full_stalls, t.max_occupancy_sum),
        ff_jumps,
        ff_skipped,
    }
}

/// Minimum wall time plus the (deterministic) counters over `reps`
/// interleaved runs of one (phase, mode) pair.
struct Sample {
    best: f64,
    first: Option<RunStats>,
}

impl Sample {
    fn new() -> Self {
        Sample {
            best: f64::INFINITY,
            first: None,
        }
    }

    fn record(&mut self, run: RunStats) {
        if run.dt < self.best {
            self.best = run.dt;
        }
        match &self.first {
            None => self.first = Some(run),
            Some(f) => {
                assert_eq!(f.cycles, run.cycles, "simulation must be deterministic");
                assert_eq!(f.steps, run.steps, "kernel schedule must be deterministic");
                assert_eq!(f.totals, run.totals, "channel stats must be deterministic");
            }
        }
    }

    fn stats(&self) -> &RunStats {
        self.first.as_ref().expect("at least one rep recorded")
    }

    fn json(&self) -> Json {
        let s = self.stats();
        Json::obj([
            ("wall_ms", Json::float(self.best * 1e3, 2)),
            (
                "ns_per_simulated_cycle",
                Json::float(self.best * 1e9 / s.cycles as f64, 2),
            ),
            ("simulated_cycles", Json::uint(s.cycles)),
            ("kernel_steps", Json::uint(s.steps)),
            ("ff_jumps", Json::uint(s.ff_jumps)),
            ("ff_cycles_skipped", Json::uint(s.ff_skipped)),
        ])
    }
}

/// Measures one phase in both modes, interleaving reps so container noise
/// hits the cycle-stepped baseline and fast-forward equally.
fn measure(
    make_source: &dyn Fn() -> Box<dyn StreamSource<Tuple>>,
    reps: usize,
    max_cycles: u64,
) -> (Sample, Sample) {
    let mut before = Sample::new();
    let mut after = Sample::new();
    for _ in 0..reps {
        before.record(run_once(make_source, false, max_cycles));
        after.record(run_once(make_source, true, max_cycles));
    }
    (before, after)
}

fn phase_json(name: &str, before: &Sample, after: &Sample) -> Json {
    let (b, a) = (before.stats(), after.stats());
    assert_eq!(
        b.cycles, a.cycles,
        "{name}: fast-forward must be cycle-identical to the baseline"
    );
    assert_eq!(b.tuples, a.tuples, "{name}: tuple counts must match");
    assert_eq!(b.per_pe, a.per_pe, "{name}: per-PE workloads must match");
    assert_eq!(b.totals, a.totals, "{name}: channel totals must match");
    assert_eq!(
        b.ff_skipped, 0,
        "{name}: the baseline must step every cycle"
    );
    Json::obj([
        ("baseline_stepped", before.json()),
        ("fast_forward", after.json()),
        ("speedup", Json::float(before.best / after.best, 3)),
        (
            "cycles_skipped_fraction",
            Json::float(a.ff_skipped as f64 / a.cycles as f64, 4),
        ),
    ])
}

/// Interleaves registry-off / registry-on reps of the dense phase and
/// asserts the observability contract: bit-identical simulation, ≤ 2%
/// wall-time overhead.
fn measure_obs(
    make_source: &dyn Fn() -> Box<dyn StreamSource<Tuple>>,
    reps: usize,
    max_cycles: u64,
) -> Json {
    // The effect under test is far smaller (µs of publish work) than the
    // container's run-to-run noise on a ~20 ms drain, so an end-to-end
    // on/off wall-time ratio measures the weather, not the registry. The
    // overhead is instead measured directly: the observability block's own
    // wall time inside each enabled run, as a fraction of the paired
    // baseline run's total — interleaved, with the median over pairs
    // rejecting spike-contaminated samples. This is what the guard is
    // for: if a change makes publish/snapshot expensive (or drags it onto
    // the step path), this fraction blows past the budget immediately.
    const PAIRS_PER_REP: usize = 4;
    let mut off = Sample::new();
    let mut on = Sample::new();
    let mut fractions = Vec::new();
    let mut publishes = 0u64;
    for _ in 0..reps * PAIRS_PER_REP {
        let (run_off, _, _) = run_polled(make_source, true, max_cycles, false);
        let (run_on, n, obs_secs) = run_polled(make_source, true, max_cycles, true);
        fractions.push(obs_secs / run_off.dt);
        publishes = n;
        off.record(run_off);
        on.record(run_on);
    }
    let (o, e) = (off.stats(), on.stats());
    assert_eq!(
        o.cycles, e.cycles,
        "observability must not perturb the simulation"
    );
    assert_eq!(o.steps, e.steps, "kernel schedule must be untouched");
    assert_eq!(o.per_pe, e.per_pe, "per-PE workloads must be untouched");
    assert_eq!(o.totals, e.totals, "channel totals must be untouched");
    fractions.sort_by(|a, b| a.total_cmp(b));
    let overhead = fractions[fractions.len() / 2];
    assert!(
        overhead <= 0.02,
        "metrics registry costs {:.2}% on the dense-uniform phase (budget 2%)",
        overhead * 100.0
    );
    Json::obj([
        ("registry_off", off.json()),
        ("registry_on", on.json()),
        ("publish_interval_cycles", Json::uint(OBS_PUBLISH_CYCLES)),
        ("snapshot_every_publishes", Json::uint(OBS_SCRAPE_EVERY)),
        ("publishes_per_run", Json::uint(publishes)),
        ("pairs_measured", Json::uint(fractions.len() as u64)),
        ("overhead_fraction", Json::float(overhead, 4)),
        ("overhead_budget", Json::float(0.02, 4)),
    ])
}

fn main() {
    ditto_obs::env::log_active();
    // The env override exists so CI can force-enable fast-forward under
    // unmodified golden tests; under this bench it would silently turn the
    // in-binary baseline into a second fast-forward run.
    assert!(
        std::env::var_os("DITTO_FAST_FORWARD").is_none(),
        "unset DITTO_FAST_FORWARD: the bench controls the flag per run"
    );
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_7.json".to_owned());
    let tuples: usize = std::env::var("DITTO_HOTPATH_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(65_536);
    let reps: usize = std::env::var("DITTO_HOTPATH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    // Paced phase: Zipf(3.0) — ~97 % of tuples hit the hottest key — in
    // BURST-tuple bursts every PERIOD cycles.
    let skewed_data = ZipfGenerator::new(3.0, 1 << 20, 7).take_vec(tuples);
    let paced = move || -> Box<dyn StreamSource<Tuple>> {
        Box::new(PacedSource::new(skewed_data.clone(), BURST, PERIOD, 16))
    };
    let paced_budget = (tuples as u64 / BURST as u64 + 2) * PERIOD + 1_000_000;

    // Saturated phase: uniform keys over 2^20, far more keys than PEs, so
    // every PE input queue stays non-empty for the whole run.
    let dense_data = UniformGenerator::new(1 << 20, 3).take_vec(tuples);
    let dense = move || -> Box<dyn StreamSource<Tuple>> {
        Box::new(SliceSource::new(
            dense_data.clone(),
            Tuple::PAPER_WIDTH_BYTES,
            MemoryModel::new(64, 16),
        ))
    };

    // Warm-up run (page in code + allocator arenas).
    run_once(&dense, true, 10_000_000);

    let (dense_before, dense_after) = measure(&dense, reps, 10_000_000);
    let (paced_before, paced_after) = measure(&paced, reps, paced_budget);
    let obs_overhead = measure_obs(&dense, reps, 10_000_000);

    let doc = Json::obj([
        ("bench", Json::str("BENCH_7")),
        ("host", host_info()),
        (
            "workload",
            Json::obj([
                ("tuples", Json::uint(tuples as u64)),
                ("reps", Json::uint(reps as u64)),
                ("burst", Json::uint(BURST as u64)),
                ("period", Json::uint(PERIOD)),
                (
                    "config",
                    Json::str("paper scale: 8 lanes, 16 PriPEs, 15 SecPEs"),
                ),
                (
                    "method",
                    Json::str(
                        "before/after interleaved rep-by-rep in one binary: baseline_stepped is \
                         steady_state_fast_forward=false (the PR 5 cycle-stepped schedule, \
                         bit-identical cycles, workloads and channel stats); fast_forward jumps \
                         to each kernel-published event horizon; min wall time over reps",
                    ),
                ),
            ]),
        ),
        (
            "paced_zipf3",
            phase_json("paced_zipf3", &paced_before, &paced_after),
        ),
        (
            "saturated_uniform",
            phase_json("saturated_uniform", &dense_before, &dense_after),
        ),
        ("observability_overhead", obs_overhead),
    ]);
    doc.write(&out_path).expect("write BENCH_7.json");
    println!("{}", doc.to_pretty());
    eprintln!("wrote {out_path}");
}
