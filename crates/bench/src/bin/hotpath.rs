//! Emits `BENCH_3.json`: the dense-phase hot-path micro-bench.
//!
//! Measures the per-tuple wall cost of the *dense uniform phase* — every
//! PE busy every cycle, no skew-induced idling — which is where per-cycle
//! kernel-state access dominates: with uniform traffic the idle-set
//! scheduler cannot park anything, so each simulated cycle pays the full
//! state-access bill of every kernel.  Two configurations are timed:
//!
//! * `uniform_x0` — 4 lanes, 8 PriPEs, no SecPEs: the minimal datapath
//!   (reader → PrePE → mapper → combiner → decoder → PriPE);
//! * `uniform_x3` — 4 lanes, 8 PriPEs, 3 SecPEs: adds the runtime
//!   profiler, plan distribution and the per-tuple control-block reads
//!   (`route_to_sec`, profiler feed, in-flight accounting).
//!
//! Each configuration runs `reps` times over the same dataset; the
//! *minimum* wall time is reported (least scheduler noise on shared
//! containers).  The `baseline_locked_state` block pins the same workload
//! measured on the pre-arena implementation (PE state behind
//! `Arc<Mutex<…>>`, shared atomic counters, `Arc<Control>` flags) so the
//! state-arena redesign has a fixed before/after record.
//!
//! Usage: `cargo run --release -p ditto-bench --bin hotpath [out.json]`

use std::time::Instant;

use datagen::UniformGenerator;
use ditto_bench::json::Json;
use ditto_core::apps::CountPerKey;
use ditto_core::{ArchConfig, SkewObliviousPipeline};

/// Pre-arena (`Arc<Mutex<State>>` PE buffers, atomic `Counter`s,
/// `Arc<Control>` flags) ns/tuple for the identical workload and
/// procedure (200 k uniform tuples, min of 5 reps), measured on this
/// repository's 1-vCPU build container immediately before the state-arena
/// redesign (PR 3).
const BASELINE_X0_NS_PER_TUPLE: f64 = 193.6;
/// Same measurement for the `uniform_x3` configuration.
const BASELINE_X3_NS_PER_TUPLE: f64 = 223.7;

/// One timed dense-phase run; returns (wall seconds, cycles, kernel steps).
fn run_once(data: &[datagen::Tuple], x_sec: u32) -> (f64, u64, u64) {
    let cfg = ArchConfig::new(4, 8, x_sec).with_pe_entries(1 << 14);
    let app = CountPerKey::new(8);
    let t0 = Instant::now();
    let out = SkewObliviousPipeline::run_dataset(app, data.to_vec(), &cfg);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(out.report.tuples, data.len() as u64, "no tuples lost");
    (dt, out.report.cycles, out.report.kernel_steps)
}

/// Times `reps` runs of one configuration; reports the minimum as a JSON
/// block plus the headline ns/tuple value.
fn measure(data: &[datagen::Tuple], x_sec: u32, reps: usize) -> (Json, f64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    let mut steps = 0;
    for _ in 0..reps {
        let (dt, cy, st) = run_once(data, x_sec);
        if dt < best {
            best = dt;
            cycles = cy;
            steps = st;
        }
    }
    let ns_per_tuple = best * 1e9 / data.len() as f64;
    let block = Json::obj([
        ("ns_per_tuple", Json::float(ns_per_tuple, 1)),
        (
            "ns_per_kernel_step",
            Json::float(best * 1e9 / steps as f64, 1),
        ),
        ("wall_ms", Json::float(best * 1e3, 2)),
        ("simulated_cycles", Json::uint(cycles)),
        ("kernel_steps", Json::uint(steps)),
    ]);
    (block, ns_per_tuple)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_3.json".to_owned());
    let tuples: usize = std::env::var("DITTO_HOTPATH_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let reps = 5;
    // Dense uniform phase: keys spread over 2^20, far more keys than PEs,
    // so every PE input queue stays non-empty for the whole run.
    let data = UniformGenerator::new(1 << 20, 3).take_vec(tuples);

    // Warm-up run (page in code + allocator arenas).
    run_once(&data, 0);

    let (x0, x0_ns) = measure(&data, 0, reps);
    let (x3, x3_ns) = measure(&data, 3, reps);

    let doc = Json::obj([
        ("bench", Json::str("BENCH_3")),
        (
            "workload",
            Json::obj([
                ("tuples", Json::uint(tuples as u64)),
                ("reps", Json::uint(reps as u64)),
                (
                    "distribution",
                    Json::str("uniform, 2^20 keys (dense phase)"),
                ),
            ]),
        ),
        ("uniform_x0", x0),
        ("uniform_x3", x3),
        (
            "baseline_locked_state",
            Json::obj([
                ("x0_ns_per_tuple", Json::float(BASELINE_X0_NS_PER_TUPLE, 1)),
                ("x3_ns_per_tuple", Json::float(BASELINE_X3_NS_PER_TUPLE, 1)),
                (
                    "note",
                    Json::str(
                        "pre-arena implementation (Arc<Mutex<State>> PE buffers, atomic \
                         Counters, Arc<Control> flags), measured with this exact binary on \
                         the repo's 1-vCPU dev container immediately before the state-arena \
                         redesign; speedup_vs_locked is only meaningful on comparable hardware",
                    ),
                ),
            ]),
        ),
        (
            "speedup_vs_locked",
            Json::obj([
                (
                    "uniform_x0",
                    Json::float(BASELINE_X0_NS_PER_TUPLE / x0_ns, 2),
                ),
                (
                    "uniform_x3",
                    Json::float(BASELINE_X3_NS_PER_TUPLE / x3_ns, 2),
                ),
            ]),
        ),
    ]);
    doc.write(&out_path).expect("write BENCH_3.json");
    println!("{}", doc.to_pretty());
    eprintln!("wrote {out_path}");
}
