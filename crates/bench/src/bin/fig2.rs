//! Fig. 2 — motivation: per-PE workload heat map (2a) and HISTO throughput
//! collapse under Zipf skew (2b), 16 PriPEs, no skew handling.

use datagen::ZipfGenerator;
use ditto_apps::HistoApp;
use ditto_bench::{alpha_sweep, fig2a_alphas, freq_of, harness_tuples, print_header, row};
use ditto_core::{ArchConfig, SkewObliviousPipeline};
use fpga_model::{mtps, AppCostProfile};

fn run_histo(alpha: f64, tuples: usize) -> ditto_core::ExecutionReport {
    let bins = 32_768u64;
    let m = 16u32;
    let app = HistoApp::new(bins, m);
    let cfg = ArchConfig::paper(0).with_pe_entries(app.pe_entries());
    // Seed varies with α like the paper's per-α datasets.
    let data = ZipfGenerator::new(alpha, 1 << 22, 40 + (alpha * 4.0) as u64).take_vec(tuples);
    SkewObliviousPipeline::run_dataset(app, data, &cfg).report
}

fn main() {
    let tuples = harness_tuples();
    println!("# Fig. 2 — HISTO on Zipf datasets (16 PEs, no skew handling)");
    println!("\n{tuples} tuples per run (paper: 26M); normalisation to α=0.");

    // Fig. 2a: heat map of per-PE workload, normalised to the uniform run.
    let uniform = run_histo(0.0, tuples);
    let base = uniform.normalized_workload(16);
    let mut cols = vec!["α".to_owned()];
    cols.extend((1..=16).map(|i| format!("PE{i}")));
    print_header(
        "Fig. 2a — workload distribution of 16 PEs (normalised to α = 0)",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &alpha in &fig2a_alphas() {
        let rep = run_histo(alpha, tuples);
        let norm = rep.normalized_workload(16);
        let mut cells = vec![format!("{alpha:.1}")];
        cells.extend(norm.iter().zip(&base).map(|(w, b)| {
            let rel = if *b > 0.0 { w / b } else { 0.0 };
            format!("{rel:.1}")
        }));
        println!("{}", row(&cells));
    }

    // Fig. 2b: throughput vs Zipf factor.
    let freq = freq_of(8, 16, 0, &AppCostProfile::histo());
    print_header(
        "Fig. 2b — throughput with varying α",
        &["α", "tuples/cycle", "MT/s", "slowdown vs α=0"],
    );
    let peak = uniform.tuples_per_cycle();
    for &alpha in &alpha_sweep() {
        let rep = if alpha == 0.0 {
            uniform.clone()
        } else {
            run_histo(alpha, tuples)
        };
        let tpc = rep.tuples_per_cycle();
        println!(
            "{}",
            row(&[
                format!("{alpha:.2}"),
                format!("{tpc:.3}"),
                format!("{:.0}", mtps(tpc, freq)),
                format!("{:.1}x", peak / tpc),
            ])
        );
    }
    println!("\nPaper anchors: ~2000 MT/s at α = 0 collapsing to ~1/16 at α = 3;");
    println!("overloaded PE moves across α rows (different seeds).");
}
