//! A minimal JSON value builder for the BENCH_*.json artifacts.
//!
//! The harness deliberately has zero external dependencies, so the bench
//! binaries used to format JSON by hand with `format!` — fine once, wrong
//! twice. This module centralises the (small) amount of JSON we need:
//! typed values, stable field order, fixed float precision and pretty
//! printing.

use std::fmt::Write as _;

/// A JSON value with explicit float precision.
///
/// # Example
///
/// ```
/// use ditto_bench::json::Json;
///
/// let doc = Json::obj([
///     ("bench", Json::str("BENCH_X")),
///     ("threads", Json::uint(8)),
///     ("speedup", Json::float(3.14159, 2)),
///     ("points", Json::arr(vec![Json::uint(1), Json::uint(2)])),
/// ]);
/// let text = doc.to_pretty();
/// assert!(text.contains("\"speedup\": 3.14"));
/// assert!(text.ends_with("}"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float rendered with a fixed number of decimal places.
    Float {
        /// The value.
        value: f64,
        /// Decimal places to render.
        prec: usize,
    },
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with stable field order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn uint(v: u64) -> Json {
        Json::UInt(v)
    }

    /// A float rendered with `prec` decimal places.
    pub fn float(value: f64, prec: usize) -> Json {
        Json::Float { value, prec }
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// An array value.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// Renders with two-space indentation (no trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out
    }

    /// Writes the pretty rendering plus a trailing newline to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_pretty() + "\n")
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float { value, prec } => {
                if value.is_finite() {
                    let _ = write!(out, "{value:.prec$}");
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => render_block(out, indent, '[', ']', items.len(), |out, i| {
                items[i].render(out, indent + 1);
            }),
            Json::Obj(fields) => render_block(out, indent, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                render_string(out, k);
                out.push_str(": ");
                v.render(out, indent + 1);
            }),
        }
    }
}

/// The host-information block embedded in every `BENCH_*.json` artifact so
/// numbers from different machines (dev laptop vs CI runner) are never
/// compared as if they came from the same box.
///
/// The environment marker is `DITTO_BENCH_ENV` when set, `"ci"` when the
/// conventional `CI` variable is present, and `"local"` otherwise.
pub fn host_info() -> Json {
    let env = std::env::var("DITTO_BENCH_ENV").unwrap_or_else(|_| {
        if std::env::var_os("CI").is_some() {
            "ci".to_owned()
        } else {
            "local".to_owned()
        }
    });
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get() as u64);
    Json::obj([
        ("logical_cores", Json::uint(cores)),
        // Thread-scaling numbers from a one-vCPU box are not speedups;
        // flag them so downstream comparisons can discard or caveat them.
        ("single_vcpu", Json::Bool(cores == 1)),
        ("env", Json::str(env)),
        ("os", Json::str(std::env::consts::OS)),
        ("arch", Json::str(std::env::consts::ARCH)),
    ])
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_block(
    out: &mut String,
    indent: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        for _ in 0..=indent {
            out.push_str("  ");
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push(close);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_plainly() {
        assert_eq!(Json::Null.to_pretty(), "null");
        assert_eq!(Json::Bool(true).to_pretty(), "true");
        assert_eq!(Json::uint(42).to_pretty(), "42");
        assert_eq!(Json::Int(-7).to_pretty(), "-7");
        assert_eq!(Json::float(1.0 / 3.0, 2).to_pretty(), "0.33");
        assert_eq!(Json::float(f64::NAN, 2).to_pretty(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").to_pretty(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nested_structure_is_indented() {
        let doc = Json::obj([
            ("name", Json::str("x")),
            ("inner", Json::obj([("k", Json::uint(1))])),
            ("empty", Json::arr(vec![])),
        ]);
        assert_eq!(
            doc.to_pretty(),
            "{\n  \"name\": \"x\",\n  \"inner\": {\n    \"k\": 1\n  },\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn host_info_reports_cores_and_env() {
        let text = host_info().to_pretty();
        assert!(text.contains("\"logical_cores\""));
        assert!(text.contains("\"single_vcpu\""));
        assert!(text.contains("\"env\""));
        assert!(text.contains("\"os\""));
    }

    #[test]
    fn field_order_is_preserved() {
        let doc = Json::obj([("z", Json::uint(1)), ("a", Json::uint(2))]);
        let text = doc.to_pretty();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }
}
