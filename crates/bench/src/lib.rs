//! # ditto-bench — experiment harness shared helpers
//!
//! One binary per paper table/figure regenerates the corresponding result:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig2` | Fig. 2a workload heat map + Fig. 2b throughput collapse |
//! | `fig7` | Fig. 7 HLL throughput vs SecPE count over Zipf sweep |
//! | `fig8` | Fig. 8 PR MTEPS vs Chen et al. on undirected graphs |
//! | `fig9` | Fig. 9 evolving-skew throughput + reschedule counts |
//! | `table1` | Table I application inventory |
//! | `table2` | Table II comparison with state-of-the-art designs |
//! | `table3` | Table III resources/frequency of the HLL variants |
//!
//! Dataset sizes default to 1 % of the paper's 26 M tuples so the full
//! suite runs in minutes; set `DITTO_TUPLES` to override (e.g.
//! `DITTO_TUPLES=26000000` for paper scale). Throughput *shape* is
//! independent of size once runs are much longer than pipeline warm-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use fpga_model::{AppCostProfile, PipelineShape, ResourceEstimate, ResourceModel};

/// The paper's dataset size (26 M tuples, §II).
pub const PAPER_TUPLES: usize = 26_000_000;

/// Default harness size: 1 % of the paper's.
pub const DEFAULT_TUPLES: usize = PAPER_TUPLES / 100;

/// Dataset size for harness runs: `DITTO_TUPLES` env override or the 1 %
/// default.
pub fn harness_tuples() -> usize {
    std::env::var("DITTO_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_TUPLES)
}

/// The Zipf-factor sweep of Figs. 2b and 7: 0 to 3 in steps of 0.25.
pub fn alpha_sweep() -> Vec<f64> {
    (0..=12).map(|i| f64::from(i) * 0.25).collect()
}

/// The heat-map rows of Fig. 2a.
pub fn fig2a_alphas() -> Vec<f64> {
    vec![1.0, 1.3, 1.5, 1.8, 2.0, 2.3, 2.5, 2.8, 3.0]
}

/// Modelled clock for a configuration running `profile`.
pub fn freq_of(n: u32, m: u32, x: u32, profile: &AppCostProfile) -> f64 {
    estimate_of(n, m, x, profile).freq_mhz
}

/// Full resource estimate for a configuration.
pub fn estimate_of(n: u32, m: u32, x: u32, profile: &AppCostProfile) -> ResourceEstimate {
    ResourceModel::arria10().estimate(PipelineShape::new(n, m, x), profile)
}

/// Number of worker threads for scenario sweeps: `DITTO_THREADS` override
/// or the machine's available parallelism.
pub fn sweep_threads() -> usize {
    std::env::var("DITTO_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs `f` over `items` across [`sweep_threads`] scoped threads, returning
/// results in input order.
///
/// Each scenario point of a sweep (app × Zipf-θ × PE-config) is an
/// independent simulation `Engine`, so sweeps are embarrassingly parallel;
/// work is dealt round-robin by index, which balances well because
/// neighbouring sweep points have similar cost.
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = sweep_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("no panics hold the slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("lock not poisoned")
                .expect("filled by worker")
        })
        .collect()
}

/// Formats a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Prints a markdown table header.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n## {title}\n");
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_zero_to_three() {
        let s = alpha_sweep();
        assert_eq!(s.len(), 13);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[12], 3.0);
    }

    #[test]
    fn default_size_is_one_percent() {
        assert_eq!(DEFAULT_TUPLES, 260_000);
    }

    #[test]
    fn freq_lookup_works() {
        let f = freq_of(8, 16, 0, &AppCostProfile::hll());
        assert!(f > 200.0 && f < 280.0);
    }
}
