//! Property tests on the sketching substrates.

use proptest::prelude::*;
use sketches::{hash, murmur3_32, murmur3_u64, CountMinSketch, Fixed, HyperLogLog};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// murmur3 is a pure function and distinguishes prefixes from
    /// extensions (no trivial collisions on length).
    #[test]
    fn murmur_pure_and_length_sensitive(data in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(murmur3_32(&data, 7), murmur3_32(&data, 7));
        let mut extended = data.clone();
        extended.push(0x5a);
        prop_assert_ne!(murmur3_32(&data, 7), murmur3_32(&extended, 7));
    }

    /// CMS merge equals processing the concatenated stream.
    #[test]
    fn cms_merge_is_stream_concat(
        xs in prop::collection::vec((0u64..64, 1u64..8), 0..60),
        ys in prop::collection::vec((0u64..64, 1u64..8), 0..60),
    ) {
        let mut a = CountMinSketch::new(3, 64);
        let mut b = CountMinSketch::new(3, 64);
        let mut whole = CountMinSketch::new(3, 64);
        for &(k, c) in &xs { a.update(k, c); whole.update(k, c); }
        for &(k, c) in &ys { b.update(k, c); whole.update(k, c); }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    /// HLL estimates are invariant under input permutation and duplication.
    #[test]
    fn hll_set_semantics(keys in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut forward = HyperLogLog::new(8);
        for &k in &keys {
            forward.insert_hash(murmur3_u64(k, 3));
        }
        let mut doubled = HyperLogLog::new(8);
        for &k in keys.iter().rev().chain(keys.iter()) {
            doubled.insert_hash(murmur3_u64(k, 3));
        }
        prop_assert_eq!(forward, doubled);
    }

    /// Fixed-point add/sub round-trip exactly; multiplication by an integer equals
    /// repeated addition.
    #[test]
    fn fixed_algebra(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let fa = Fixed::from_bits(a);
        let fb = Fixed::from_bits(b);
        prop_assert_eq!((fa + fb) - fb, fa);
        prop_assert_eq!(fa + fb, fb + fa);
        let three = Fixed::from_int(3);
        prop_assert_eq!(fa * three, fa + fa + fa);
    }

    /// Radix extraction is idempotent and bounded.
    #[test]
    fn radix_bits_bounded(key in any::<u64>(), bits in 0u32..63) {
        let r = hash::radix_bits(key, bits);
        prop_assert!(bits == 0 || r < (1u64 << bits));
        prop_assert_eq!(hash::radix_bits(r, bits), r);
    }
}
