//! Property-style tests on the sketching substrates, driven by a
//! deterministic case generator (the offline build has no proptest).

use sketches::{hash, murmur3_32, murmur3_u64, CountMinSketch, Fixed, HyperLogLog};

/// Deterministic 64-bit generator for test-case synthesis.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn byte_vec(state: &mut u64, len: usize) -> Vec<u8> {
    (0..len).map(|_| splitmix(state) as u8).collect()
}

/// murmur3 is a pure function and distinguishes prefixes from extensions.
#[test]
fn murmur_pure_and_length_sensitive() {
    let mut s = 0xa1_1ce5u64;
    for case in 0..64 {
        let data = byte_vec(&mut s, case % 64);
        assert_eq!(murmur3_32(&data, 7), murmur3_32(&data, 7));
        let mut extended = data.clone();
        extended.push(0x5a);
        assert_ne!(
            murmur3_32(&data, 7),
            murmur3_32(&extended, 7),
            "case {case}"
        );
    }
}

/// CMS merge equals processing the concatenated stream.
#[test]
fn cms_merge_is_stream_concat() {
    let mut s = 0xc0ffeeu64;
    for case in 0..64 {
        let xs: Vec<(u64, u64)> = (0..(splitmix(&mut s) % 60))
            .map(|_| (splitmix(&mut s) % 64, 1 + splitmix(&mut s) % 7))
            .collect();
        let ys: Vec<(u64, u64)> = (0..(splitmix(&mut s) % 60))
            .map(|_| (splitmix(&mut s) % 64, 1 + splitmix(&mut s) % 7))
            .collect();
        let mut a = CountMinSketch::new(3, 64);
        let mut b = CountMinSketch::new(3, 64);
        let mut whole = CountMinSketch::new(3, 64);
        for &(k, c) in &xs {
            a.update(k, c);
            whole.update(k, c);
        }
        for &(k, c) in &ys {
            b.update(k, c);
            whole.update(k, c);
        }
        a.merge(&b);
        assert_eq!(a, whole, "case {case}");
    }
}

/// HLL estimates are invariant under input permutation and duplication.
#[test]
fn hll_set_semantics() {
    let mut s = 0x5eed_1234u64;
    for case in 0..64 {
        let keys: Vec<u64> = (0..(1 + splitmix(&mut s) % 199))
            .map(|_| splitmix(&mut s))
            .collect();
        let mut forward = HyperLogLog::new(8);
        for &k in &keys {
            forward.insert_hash(murmur3_u64(k, 3));
        }
        let mut doubled = HyperLogLog::new(8);
        for &k in keys.iter().rev().chain(keys.iter()) {
            doubled.insert_hash(murmur3_u64(k, 3));
        }
        assert_eq!(forward, doubled, "case {case}");
    }
}

/// Fixed-point add/sub round-trip exactly; multiplication by an integer
/// equals repeated addition.
#[test]
fn fixed_algebra() {
    let mut s = 0xf_17edu64;
    for case in 0..256 {
        let a = (splitmix(&mut s) % 2_000_000) as i64 - 1_000_000;
        let b = (splitmix(&mut s) % 2_000_000) as i64 - 1_000_000;
        let fa = Fixed::from_bits(a);
        let fb = Fixed::from_bits(b);
        assert_eq!((fa + fb) - fb, fa, "case {case}");
        assert_eq!(fa + fb, fb + fa, "case {case}");
        let three = Fixed::from_int(3);
        assert_eq!(fa * three, fa + fa + fa, "case {case}");
    }
}

/// Radix extraction is idempotent and bounded.
#[test]
fn radix_bits_bounded() {
    let mut s = 0x4a_d12bu64;
    for _ in 0..256 {
        let key = splitmix(&mut s);
        let bits = (splitmix(&mut s) % 63) as u32;
        let r = hash::radix_bits(key, bits);
        assert!(bits == 0 || r < (1u64 << bits));
        assert_eq!(hash::radix_bits(r, bits), r);
    }
}
