//! MurmurHash3 (x86 32-bit variant), the hash the paper's HLL app uses.

/// Computes the 32-bit MurmurHash3 (x86 variant) of `data` with `seed`.
///
/// This is a faithful from-scratch implementation of Austin Appleby's
/// `MurmurHash3_x86_32`, byte-for-byte compatible with the reference:
/// the test vectors below are taken from the canonical C++ implementation.
///
/// # Example
///
/// ```
/// use sketches::murmur3_32;
///
/// assert_eq!(murmur3_32(b"", 0), 0);
/// assert_eq!(murmur3_32(b"hello", 0), 0x248b_fa47);
/// ```
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h1 = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k1 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k1: u32 = 0;
        for (i, &b) in tail.iter().enumerate() {
            k1 |= u32::from(b) << (8 * i);
        }
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    fmix32(h1)
}

/// Final avalanche mixer of MurmurHash3.
fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Hashes a `u64` key by running [`murmur3_32`] over its little-endian bytes
/// twice (two seeds) and concatenating, yielding a well-mixed 64-bit value.
///
/// The HLL application needs more than 32 hash bits (register index plus
/// leading-zero count); the paper's design hashes 8-byte tuples, so this
/// helper is the tuple-sized entry point used throughout the workspace.
///
/// # Example
///
/// ```
/// use sketches::murmur3_u64;
///
/// let a = murmur3_u64(42, 0);
/// let b = murmur3_u64(43, 0);
/// assert_ne!(a, b);
/// assert_eq!(a, murmur3_u64(42, 0)); // deterministic
/// ```
pub fn murmur3_u64(key: u64, seed: u32) -> u64 {
    let bytes = key.to_le_bytes();
    let lo = murmur3_32(&bytes, seed);
    let hi = murmur3_32(&bytes, seed ^ 0x9e37_79b9);
    (u64::from(hi) << 32) | u64::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the canonical MurmurHash3_x86_32.
    #[test]
    fn reference_vectors() {
        assert_eq!(murmur3_32(b"", 0), 0x0000_0000);
        assert_eq!(murmur3_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_32(b"", 0xffff_ffff), 0x81f1_6f39);
        assert_eq!(murmur3_32(b"\xff\xff\xff\xff", 0), 0x7629_3b50);
        assert_eq!(murmur3_32(b"!Ce\x87", 0), 0xf55b_516b);
        assert_eq!(murmur3_32(b"!Ce", 0), 0x7e4a_8634);
        assert_eq!(murmur3_32(b"!C", 0), 0xa0f7_b07a);
        assert_eq!(murmur3_32(b"!", 0), 0x72661cf4);
        assert_eq!(murmur3_32(b"\0\0\0\0", 0), 0x2362_f9de);
        assert_eq!(murmur3_32(b"aaaa", 0x9747b28c), 0x5a97808a);
        assert_eq!(murmur3_32(b"aaa", 0x9747b28c), 0x283e0130);
        assert_eq!(murmur3_32(b"aa", 0x9747b28c), 0x5d211726);
        assert_eq!(murmur3_32(b"a", 0x9747b28c), 0x7fa09ea6);
        assert_eq!(murmur3_32(b"abcd", 0x9747b28c), 0xf0478627);
        assert_eq!(murmur3_32(b"Hello, world!", 0x9747b28c), 0x24884cba);
        assert_eq!(murmur3_32(b"hello", 0), 0x248bfa47);
        assert_eq!(murmur3_32(b"hello, world", 0), 0x149bbb7f);
    }

    #[test]
    fn u64_variant_spreads_bits() {
        // All 64 output bit positions should toggle across a modest key set.
        let mut seen_ones = 0u64;
        let mut seen_zeros = 0u64;
        for k in 0..4096u64 {
            let h = murmur3_u64(k, 7);
            seen_ones |= h;
            seen_zeros |= !h;
        }
        assert_eq!(seen_ones, u64::MAX);
        assert_eq!(seen_zeros, u64::MAX);
    }

    #[test]
    fn u64_variant_seed_sensitivity() {
        assert_ne!(murmur3_u64(1, 0), murmur3_u64(1, 1));
    }
}
