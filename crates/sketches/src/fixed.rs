//! Q32.32 fixed-point arithmetic for the PageRank application.
//!
//! The paper's PR implementation "scores the importance of websites by links
//! with fixed-point data type" (Table I) — FPGA PEs avoid floating point to
//! keep the per-tuple update single-cycle. This module provides the same
//! numeric type for the simulated PEs and for the host-side reference.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed Q32.32 fixed-point number stored in an `i64`.
///
/// 32 integer bits and 32 fractional bits give PageRank more than enough
/// headroom (ranks are in `[0, 1]`, contributions are tiny positive values)
/// while every operation stays a single integer instruction — the property
/// the paper relies on for II = 1 PE arithmetic.
///
/// Arithmetic wraps like hardware adders would; multiplication and division
/// use 128-bit intermediates for full precision.
///
/// # Example
///
/// ```
/// use sketches::Fixed;
///
/// let a = Fixed::from_f64(0.25);
/// let b = Fixed::from_f64(0.5);
/// assert_eq!((a + b).to_f64(), 0.75);
/// assert_eq!((a * b).to_f64(), 0.125);
/// assert_eq!((b / a).to_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed(i64);

impl Fixed {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 32;
    /// The value zero.
    pub const ZERO: Fixed = Fixed(0);
    /// The value one.
    pub const ONE: Fixed = Fixed(1 << Self::FRAC_BITS);

    /// Creates a fixed-point value from its raw `i64` bit pattern.
    pub const fn from_bits(bits: i64) -> Self {
        Fixed(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> i64 {
        self.0
    }

    /// Converts from `f64`, rounding to the nearest representable value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite or overflows the Q32.32 range.
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "cannot convert non-finite value");
        let scaled = v * f64::from(2u32).powi(Self::FRAC_BITS as i32);
        assert!(
            scaled >= i64::MIN as f64 && scaled <= i64::MAX as f64,
            "value {v} overflows Q32.32"
        );
        Fixed(scaled.round() as i64)
    }

    /// Converts to `f64` (exact for all Q32.32 values up to f64 precision).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / f64::from(2u32).powi(Self::FRAC_BITS as i32)
    }

    /// Creates a fixed-point value from an integer.
    pub const fn from_int(v: i32) -> Self {
        Fixed((v as i64) << Self::FRAC_BITS)
    }

    /// Fixed-point reciprocal `1/self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Self {
        Self::ONE / self
    }

    /// Absolute value (wrapping at `i64::MIN` like hardware).
    pub fn abs(self) -> Self {
        Fixed(self.0.wrapping_abs())
    }

    /// `true` when the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        Fixed(self.0.wrapping_add(rhs.0))
    }
}

impl AddAssign for Fixed {
    fn add_assign(&mut self, rhs: Fixed) {
        *self = *self + rhs;
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        Fixed(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign for Fixed {
    fn sub_assign(&mut self, rhs: Fixed) {
        *self = *self - rhs;
    }
}

impl Mul for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: Fixed) -> Fixed {
        let wide = i128::from(self.0) * i128::from(rhs.0);
        Fixed((wide >> Self::FRAC_BITS) as i64)
    }
}

impl Div for Fixed {
    type Output = Fixed;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Fixed) -> Fixed {
        assert!(rhs.0 != 0, "fixed-point division by zero");
        let wide = (i128::from(self.0) << Self::FRAC_BITS) / i128::from(rhs.0);
        Fixed(wide as i64)
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        Fixed(self.0.wrapping_neg())
    }
}

impl Sum for Fixed {
    fn sum<I: Iterator<Item = Fixed>>(iter: I) -> Fixed {
        iter.fold(Fixed::ZERO, Add::add)
    }
}

impl From<i32> for Fixed {
    fn from(v: i32) -> Self {
        Fixed::from_int(v)
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        for &v in &[0.0, 1.0, -1.0, 0.5, -0.125, 123.456, -9876.5] {
            let f = Fixed::from_f64(v);
            assert!((f.to_f64() - v).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn arithmetic_matches_f64() {
        let pairs = [(0.75, 0.25), (1.5, -2.25), (-3.125, -0.5), (100.0, 7.0)];
        for &(a, b) in &pairs {
            let fa = Fixed::from_f64(a);
            let fb = Fixed::from_f64(b);
            assert!(((fa + fb).to_f64() - (a + b)).abs() < 1e-8);
            assert!(((fa - fb).to_f64() - (a - b)).abs() < 1e-8);
            assert!(((fa * fb).to_f64() - (a * b)).abs() < 1e-6);
            assert!(((fa / fb).to_f64() - (a / b)).abs() < 1e-6);
        }
    }

    #[test]
    fn identities() {
        let x = Fixed::from_f64(3.375);
        assert_eq!(x * Fixed::ONE, x);
        assert_eq!(x + Fixed::ZERO, x);
        assert_eq!(x - x, Fixed::ZERO);
        assert_eq!(-(-x), x);
        // recip truncates toward zero, so the double reciprocal is only
        // accurate to ~2^-32 of relative error.
        assert!((x.recip().recip().to_f64() - x.to_f64()).abs() < 1e-7);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Fixed = (1..=10).map(Fixed::from_int).sum();
        assert_eq!(total, Fixed::from_int(55));
    }

    #[test]
    fn display_formats_decimal() {
        assert_eq!(Fixed::from_f64(0.5).to_string(), "0.500000000");
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Fixed::ONE / Fixed::ZERO;
    }

    #[test]
    fn pagerank_sized_accumulation_is_stable() {
        // Sum 1e6 tiny contributions like a PR gather would.
        let contrib = Fixed::from_f64(1e-6);
        let mut acc = Fixed::ZERO;
        for _ in 0..1_000_000 {
            acc += contrib;
        }
        assert!((acc.to_f64() - 1.0).abs() < 1e-3, "acc {}", acc.to_f64());
    }
}
