//! Small deterministic mixers used across the workspace.

/// SplitMix64 — the standard 64-bit finalizer/stream mixer.
///
/// Used by dataset generators to derive independent sub-seeds and by tests
/// to produce cheap well-distributed keys. Passes the avalanche criterion;
/// not cryptographic.
///
/// # Example
///
/// ```
/// use sketches::hash::splitmix64;
///
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash over a byte slice.
///
/// A simple multiplicative hash used where hardware would instantiate a
/// cheap LUT-based hash (e.g. the HISTO bin function).
pub fn fnv1a64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1_0000_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Extracts the `bits` least-significant bits of `key` — the radix function
/// used by the data-partitioning application and by Listing 2's
/// `dst = tuple.key & 0xf` routing rule.
///
/// # Panics
///
/// Panics if `bits > 63`.
pub fn radix_bits(key: u64, bits: u32) -> u64 {
    assert!(bits <= 63, "radix width too large");
    key & ((1u64 << bits) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence() {
        // Reference value from the public-domain splitmix64.c: first output
        // of a generator seeded with state 0.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let trials = 64;
        for bit in 0..trials {
            let a = splitmix64(0x1234_5678);
            let b = splitmix64(0x1234_5678 ^ (1u64 << bit));
            total += (a ^ b).count_ones();
        }
        let mean = f64::from(total) / f64::from(trials);
        assert!((20.0..44.0).contains(&mean), "poor avalanche: {mean}");
    }

    #[test]
    fn fnv_distinguishes_inputs() {
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn radix_masks_low_bits() {
        assert_eq!(radix_bits(0xff, 4), 0xf);
        assert_eq!(radix_bits(0x12345, 8), 0x45);
        assert_eq!(radix_bits(u64::MAX, 1), 1);
        assert_eq!(radix_bits(42, 0), 0);
    }
}
