//! # sketches — hashing and sketching substrates
//!
//! Algorithmic building blocks the paper's five applications depend on:
//!
//! * [`murmur3_32`] / [`murmur3_u64`] — the MurmurHash3 function used by the
//!   paper's HyperLogLog application (Table I);
//! * [`CountMinSketch`] — the count-min sketch behind heavy-hitter detection;
//! * [`HyperLogLog`] — a reference cardinality estimator used to validate the
//!   FPGA-pipeline HLL application;
//! * [`Fixed`] — Q32.32 fixed-point arithmetic matching the paper's
//!   fixed-point PageRank (Table I);
//! * [`hash`] — small deterministic mixers (`splitmix64`, `fnv1a64`) used by
//!   dataset generators and routing.
//!
//! Everything here is pure, deterministic computational code with no
//! simulator dependencies, so the same functions can run inside simulated PEs
//! and in host-side reference checks.
//!
//! # Example
//!
//! ```
//! use sketches::{HyperLogLog, murmur3_u64};
//!
//! let mut hll = HyperLogLog::new(12); // 4096 registers
//! for key in 0u64..10_000 {
//!     hll.insert_hash(murmur3_u64(key, 0));
//! }
//! let est = hll.estimate();
//! assert!((est - 10_000.0).abs() / 10_000.0 < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cms;
mod fixed;
pub mod hash;
mod hyperloglog;
mod murmur3;

pub use cms::CountMinSketch;
pub use fixed::Fixed;
pub use hyperloglog::HyperLogLog;
pub use murmur3::{murmur3_32, murmur3_u64};
