//! HyperLogLog cardinality estimation (Table I's HLL application).

/// A HyperLogLog cardinality estimator with `2^precision` registers.
///
/// Implements the classic Flajolet–Fuss–Gandouet–Meunier estimator with the
/// standard small-range (linear counting) correction. The register update
/// rule — `reg[idx] = max(reg[idx], ρ)` where `idx` is the top `precision`
/// hash bits and `ρ` the position of the first set bit in the remainder —
/// is exactly what each simulated PE executes in the `ditto-apps` HLL
/// application; merging registers by `max` is what the Ditto merger uses to
/// fold SecPE partials into PriPE results.
///
/// # Example
///
/// ```
/// use sketches::{HyperLogLog, murmur3_u64};
///
/// let mut a = HyperLogLog::new(10);
/// let mut b = HyperLogLog::new(10);
/// for k in 0u64..3000 { a.insert_hash(murmur3_u64(k, 1)); }
/// for k in 1500u64..4500 { b.insert_hash(murmur3_u64(k, 1)); }
/// a.merge(&b);
/// let est = a.estimate();
/// assert!((est - 4500.0).abs() / 4500.0 < 0.10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u32,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates an estimator with `2^precision` registers.
    ///
    /// # Panics
    ///
    /// Panics unless `4 <= precision <= 18` (the standard usable range).
    pub fn new(precision: u32) -> Self {
        assert!((4..=18).contains(&precision), "precision must be in 4..=18");
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// Number of registers (`m = 2^precision`).
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// The precision parameter `b` (register index width in bits).
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Read-only view of the register file.
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Splits a 64-bit hash into `(register index, rank ρ)`.
    ///
    /// The top `precision` bits select the register; ρ is the number of
    /// leading zeros of the remaining bits plus one, saturating at the
    /// remainder width + 1.
    pub fn decompose(&self, hash: u64) -> (usize, u8) {
        let idx = (hash >> (64 - self.precision)) as usize;
        let rest = hash << self.precision;
        let width = 64 - self.precision;
        let lz = rest.leading_zeros().min(width);
        (idx, (lz + 1) as u8)
    }

    /// Inserts a pre-hashed value.
    pub fn insert_hash(&mut self, hash: u64) {
        let (idx, rho) = self.decompose(hash);
        self.apply(idx, rho);
    }

    /// Applies the register update rule directly (used by the simulated PEs,
    /// which receive `(idx, ρ)` as a routed tuple).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn apply(&mut self, idx: usize, rho: u8) {
        let r = &mut self.registers[idx];
        if rho > *r {
            *r = rho;
        }
    }

    /// Merges another estimator's registers by element-wise max.
    ///
    /// # Panics
    ///
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        for (m, t) in self.registers.iter_mut().zip(&other.registers) {
            if *t > *m {
                *m = *t;
            }
        }
    }

    /// Estimates the cardinality of the inserted multiset.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;

        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros != 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::murmur3::murmur3_u64;

    fn fill(hll: &mut HyperLogLog, range: std::ops::Range<u64>, seed: u32) {
        for k in range {
            hll.insert_hash(murmur3_u64(k, seed));
        }
    }

    #[test]
    fn estimates_within_standard_error() {
        // sigma ~ 1.04/sqrt(m); allow 4 sigma.
        for &(precision, n) in &[(10u32, 5_000u64), (12, 50_000), (14, 200_000)] {
            let mut hll = HyperLogLog::new(precision);
            fill(&mut hll, 0..n, 99);
            let est = hll.estimate();
            let sigma = 1.04 / ((1u64 << precision) as f64).sqrt();
            let rel = (est - n as f64).abs() / n as f64;
            assert!(
                rel < 4.0 * sigma,
                "p={precision} n={n}: rel err {rel:.4} vs 4σ={:.4}",
                4.0 * sigma
            );
        }
    }

    #[test]
    fn small_range_linear_counting() {
        let mut hll = HyperLogLog::new(12);
        fill(&mut hll, 0..10, 3);
        let est = hll.estimate();
        assert!((est - 10.0).abs() < 2.0, "est {est}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(12);
        for _ in 0..100 {
            fill(&mut hll, 0..1000, 5);
        }
        let est = hll.estimate();
        assert!((est - 1000.0).abs() / 1000.0 < 0.1, "est {est}");
    }

    #[test]
    fn merge_is_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        fill(&mut a, 0..20_000, 7);
        fill(&mut b, 10_000..30_000, 7);
        let mut whole = HyperLogLog::new(12);
        fill(&mut whole, 0..30_000, 7);
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal the single-stream sketch");
    }

    #[test]
    fn decompose_roundtrip_bounds() {
        let hll = HyperLogLog::new(8);
        let (idx, rho) = hll.decompose(u64::MAX);
        assert_eq!(idx, 255);
        assert_eq!(rho, 1);
        let (idx, rho) = hll.decompose(0);
        assert_eq!(idx, 0);
        assert_eq!(rho, (64 - 8) + 1);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(11);
        a.merge(&b);
    }
}
