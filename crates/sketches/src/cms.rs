//! Count-min sketch, the substrate of heavy-hitter detection (Table I).

use crate::murmur3::murmur3_u64;

/// A count-min sketch over `u64` keys.
///
/// `depth` independent rows of `width` counters; an update increments one
/// counter per row (chosen by a per-row hash) and a query returns the minimum
/// across rows, which upper-bounds the true count with error `ε ≈ e/width`
/// at probability `1 − e^−depth`.
///
/// The FPGA heavy-hitter PE in `ditto-apps` embeds one (narrow) sketch per
/// PE; this type is also used directly as the host-side reference.
///
/// # Example
///
/// ```
/// use sketches::CountMinSketch;
///
/// let mut cms = CountMinSketch::new(4, 1024);
/// for _ in 0..500 { cms.update(7, 1); }
/// cms.update(9, 3);
/// assert!(cms.query(7) >= 500); // never under-estimates
/// assert!(cms.query(9) >= 3);
/// assert_eq!(cms.query(12345), 0); // nothing aliased in an empty region
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    depth: usize,
    width: usize,
    rows: Vec<Vec<u64>>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with `depth` rows of `width` counters each.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `width` is zero.
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth > 0, "depth must be nonzero");
        assert!(width > 0, "width must be nonzero");
        CountMinSketch {
            depth,
            width,
            rows: vec![vec![0; width]; depth],
            total: 0,
        }
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total weight of all updates applied.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn bucket(&self, row: usize, key: u64) -> usize {
        (murmur3_u64(key, row as u32) % self.width as u64) as usize
    }

    /// Adds `count` to `key`'s estimate.
    pub fn update(&mut self, key: u64, count: u64) {
        for row in 0..self.depth {
            let b = self.bucket(row, key);
            self.rows[row][b] += count;
        }
        self.total += count;
    }

    /// Returns the (over-)estimate of `key`'s count.
    pub fn query(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[row][self.bucket(row, key)])
            .min()
            .expect("depth > 0")
    }

    /// Merges `other` into `self` by element-wise addition.
    ///
    /// Merging is exact for sketches of identical geometry: the merged sketch
    /// equals the sketch of the concatenated streams. This is what the Ditto
    /// merger module uses to fold a SecPE's partial sketch into its PriPE's.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches' `depth` or `width` differ.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(self.depth, other.depth, "depth mismatch");
        assert_eq!(self.width, other.width, "width mismatch");
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += *t;
            }
        }
        self.total += other.total;
    }

    /// Memory footprint in counter cells (used by the BRAM cost model).
    pub fn cells(&self) -> usize {
        self.depth * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::new(4, 64);
        let truth: Vec<(u64, u64)> = (0..100).map(|k| (k, (k % 7) + 1)).collect();
        for &(k, c) in &truth {
            cms.update(k, c);
        }
        for &(k, c) in &truth {
            assert!(
                cms.query(k) >= c,
                "key {k}: est {} < true {c}",
                cms.query(k)
            );
        }
    }

    #[test]
    fn error_bound_holds_for_wide_sketch() {
        // width >> distinct keys: estimates should be exact.
        let mut cms = CountMinSketch::new(4, 1 << 14);
        for k in 0..256u64 {
            cms.update(k, k + 1);
        }
        for k in 0..256u64 {
            assert_eq!(cms.query(k), k + 1);
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = CountMinSketch::new(3, 128);
        let mut b = CountMinSketch::new(3, 128);
        let mut whole = CountMinSketch::new(3, 128);
        for k in 0..50u64 {
            a.update(k, 2);
            whole.update(k, 2);
        }
        for k in 25..75u64 {
            b.update(k, 5);
            whole.update(k, 5);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.total(), whole.total());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_geometry_mismatch() {
        let mut a = CountMinSketch::new(3, 128);
        let b = CountMinSketch::new(3, 256);
        a.merge(&b);
    }

    #[test]
    fn total_tracks_weight() {
        let mut cms = CountMinSketch::new(2, 16);
        cms.update(1, 10);
        cms.update(2, 5);
        assert_eq!(cms.total(), 15);
    }
}
