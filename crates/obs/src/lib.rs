//! ditto-obs — cross-layer observability for the ditto stack.
//!
//! The engine (`hls-sim`), the serve cluster, and the wire front-end each
//! accumulate their own counters; this crate is the one vocabulary they
//! publish into and the one surface operators read from:
//!
//! * [`MetricsRegistry`] — typed counter/gauge/histogram handles. One
//!   registry per thread/shard, no locks or atomics anywhere near the
//!   simulation step path; cross-thread aggregation is a
//!   [`MetricsSnapshot::merge`] fold (associative, commutative).
//! * [`LogHistogram`] — fixed-memory HDR-style latency distribution with
//!   nearest-rank p50/p99/p999, replacing unbounded exact-sample vectors.
//! * [`SpanJournal`] — fixed-capacity ring buffer of batch lifecycle
//!   events (`accept → admit → queue → step → drain → merge → reply`),
//!   exportable as Chrome trace-event JSON via [`chrome_trace_json`].
//! * [`prom`] — Prometheus text exposition plus a validator; [`codec`] —
//!   the compact binary form shipped in `MetricsDump` wire frames.
//! * [`counts`] — the counts-tracing data model ([`CountsTrace`]): the
//!   profiling half of the two-pass deployment planner, exported through
//!   the same registry/journal/codec plane.
//! * [`env`] — the documented catalog of `DITTO_*` overrides.
//!
//! Zero dependencies; `#![forbid(unsafe_code)]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod codec;
pub mod counts;
pub mod env;
pub mod hist;
pub mod journal;
pub mod prom;
pub mod registry;

pub use codec::{decode_snapshot, encode_snapshot, CODEC_VERSION};
pub use counts::{CountsTrace, KernelClass, PhaseCounts};
pub use hist::{LatencyStats, LogHistogram};
pub use journal::{chrome_trace_json, SpanEvent, SpanJournal, SpanStage, NO_SHARD};
pub use prom::{to_prometheus_text, validate_prometheus_text};
pub use registry::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricDesc, MetricEntry, MetricKind, MetricValue,
    MetricsRegistry, MetricsSnapshot,
};
