//! A process-global monotone microsecond clock.
//!
//! Span events recorded on different threads (the wire reader, shard
//! workers, the completion pump) must carry *comparable* timestamps so a
//! batch's flame row stays monotone across layer boundaries. `Instant` is
//! monotonic process-wide, so all stamps are microseconds since one shared
//! epoch, pinned the first time any thread asks for the time.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The shared epoch (pinned on first use).
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the shared epoch.
pub fn wall_us_now() -> u64 {
    wall_us_of(Instant::now())
}

/// Converts an `Instant` captured earlier (e.g. a frame's receive time) to
/// microseconds since the shared epoch. Instants predating the epoch clamp
/// to 0.
pub fn wall_us_of(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_convertible() {
        let a = wall_us_now();
        let mid = Instant::now();
        let b = wall_us_of(mid);
        let c = wall_us_now();
        assert!(a <= b && b <= c);
    }

    #[test]
    fn pre_epoch_instants_clamp_to_zero() {
        // `epoch()` is already pinned by the time this runs in-process; an
        // instant captured before the pin (simulated here by the epoch
        // itself) converts without underflow.
        assert_eq!(wall_us_of(epoch()), 0);
    }
}
