//! Log-bucketed (HDR-style) histograms with bounded memory and nearest-rank
//! percentiles.
//!
//! The serving layer records one latency sample per completed batch; under
//! sustained load an exact-sample vector grows without bound. A
//! [`LogHistogram`] instead buckets values logarithmically with
//! [`SUB_BUCKETS`] linear sub-buckets per power of two, so any `u64`
//! population fits in a fixed ~15 KiB array while percentile queries stay
//! within a `1/32` (~3.1 %) relative error of the exact nearest-rank answer
//! — pinned by a property test against the exact-sample reference.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BUCKET_BITS` linear sub-buckets, bounding the relative
/// quantization error at `2^-SUB_BUCKET_BITS` (~3.1 %).
pub const SUB_BUCKET_BITS: u32 = 5;

/// Sub-buckets per octave.
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Total bucket count covering the full `u64` range: the exact unit
/// buckets below [`SUB_BUCKETS`] plus one sub-bucket row per remaining
/// octave (`bucket_index(u64::MAX)` lands at `BUCKETS - 1`).
pub const BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Order statistics over a recorded population.
///
/// `p50`/`p99`/`p999` are nearest-rank percentiles; when computed from a
/// [`LogHistogram`] they are upper bucket edges, i.e. within the bucket
/// quantization error above the exact-sample answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Recorded samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// 99.9th percentile (nearest-rank).
    pub p999: u64,
    /// Maximum.
    pub max: u64,
}

impl LatencyStats {
    /// The all-zero statistics of an empty population.
    pub fn empty() -> Self {
        LatencyStats {
            count: 0,
            mean: 0.0,
            p50: 0,
            p99: 0,
            p999: 0,
            max: 0,
        }
    }
}

/// A fixed-memory log-bucketed histogram over `u64` samples.
///
/// # Example
///
/// ```
/// use ditto_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let s = h.stats();
/// assert_eq!(s.count, 1000);
/// assert_eq!(s.max, 1000);
/// // Within one sub-bucket (~3.1 %) above the exact nearest-rank value.
/// assert!(s.p50 >= 500 && s.p50 <= 500 + (500 >> 5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Maps a value to its bucket index. Values below [`SUB_BUCKETS`] get exact
/// unit buckets; larger values share an octave split into [`SUB_BUCKETS`]
/// linear sub-buckets.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let top = 63 - v.leading_zeros();
    let shift = top - SUB_BUCKET_BITS;
    let sub = (v >> shift) & (SUB_BUCKETS - 1);
    ((shift as usize) + 1) * SUB_BUCKETS as usize + sub as usize
}

/// The largest value mapping to `index` — the representative a percentile
/// query reports, making bucketed nearest-rank an upper bound on the exact
/// answer.
pub fn bucket_high_edge(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let shift = (index / SUB_BUCKETS as usize - 1) as u32;
    let sub = (index % SUB_BUCKETS as usize) as u64;
    let low = (SUB_BUCKETS + sub) << shift;
    low + ((1u64 << shift) - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += n;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty). Exact: the sum is kept unbucketed.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank quantile: the ⌈q·n⌉-th smallest sample's bucket upper
    /// edge, clamped to the exact recorded maximum. Within
    /// `value >> SUB_BUCKET_BITS` above the exact-sample nearest-rank
    /// answer.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_high_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one. Associative and commutative —
    /// per-shard histograms merge into a cluster view in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// The standard percentile bundle.
    pub fn stats(&self) -> LatencyStats {
        if self.count == 0 {
            return LatencyStats::empty();
        }
        LatencyStats {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max,
        }
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs — the sparse form
    /// the wire codec ships.
    pub fn sparse_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuilds a histogram from its sparse parts (the wire codec's decode
    /// path). Counts/sum/min/max are trusted as shipped; bucket indices out
    /// of range are rejected by the caller before this is reached.
    pub fn from_parts(count: u64, sum: u128, min: u64, max: u64, sparse: &[(u32, u64)]) -> Self {
        let mut h = LogHistogram::new();
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        for &(i, c) in sparse {
            h.buckets[i as usize] += c;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_self_consistent() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1023,
            1024,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i >= last, "bucket index must be monotone in value");
            last = i;
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let high = bucket_high_edge(i);
            assert!(high >= v, "high edge {high} below value {v}");
            assert_eq!(
                bucket_index(high),
                i,
                "high edge must land in its own bucket"
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 30, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.max(), 31);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn empty_histogram_yields_zero_stats() {
        assert_eq!(LogHistogram::new().stats(), LatencyStats::empty());
    }

    #[test]
    fn quantiles_clamp_to_recorded_max() {
        let mut h = LogHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.999), 1_000_003);
        assert_eq!(h.quantile(0.5), 1_000_003);
    }

    #[test]
    fn sparse_roundtrip_reconstructs() {
        let mut h = LogHistogram::new();
        for v in [5u64, 5, 77, 1 << 30, u64::MAX] {
            h.record(v);
        }
        let back =
            LogHistogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &h.sparse_buckets());
        assert_eq!(back, h);
    }
}
