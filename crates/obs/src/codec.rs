//! Compact binary encoding for [`MetricsSnapshot`]s — the payload the wire
//! layer ships inside a `MetricsDump` frame.
//!
//! Little-endian, length-prefixed, version-tagged. Decoding is
//! fuzz-resistant: every read is bounds-checked, every length prefix is
//! validated against the bytes actually remaining before any allocation,
//! and histogram bucket indices are range-checked — malformed input yields
//! `Err`, never a panic or an attacker-sized allocation.
//!
//! Layout (version 1):
//!
//! ```text
//! u8  version
//! u32 entry_count
//! entry := str16 name · str16 layer · str16 unit
//!          u16 label_count · (str16 key · str16 value)*
//!          u8 kind            0 = counter, 1 = gauge, 2 = histogram
//!          counter/gauge: u64 value
//!          histogram:     u64 count · u64 sum_lo · u64 sum_hi ·
//!                         u64 min · u64 max ·
//!                         u32 sparse_len · (u32 bucket · u64 count)*
//! str16 := u16 length · UTF-8 bytes
//! ```

use crate::hist::{LogHistogram, BUCKETS};
use crate::registry::{MetricDesc, MetricEntry, MetricValue, MetricsSnapshot};

/// Codec version emitted by [`encode_snapshot`].
pub const CODEC_VERSION: u8 = 1;

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;
const KIND_HISTOGRAM: u8 = 2;

fn put_str16(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len()).expect("metric strings fit in u16");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Serialises a snapshot to the version-1 binary form.
pub fn encode_snapshot(snap: &MetricsSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + snap.entries.len() * 64);
    out.push(CODEC_VERSION);
    out.extend_from_slice(&(snap.entries.len() as u32).to_le_bytes());
    for e in &snap.entries {
        put_str16(&mut out, &e.desc.name);
        put_str16(&mut out, &e.desc.layer);
        put_str16(&mut out, &e.desc.unit);
        out.extend_from_slice(&(e.desc.labels.len() as u16).to_le_bytes());
        for (k, v) in &e.desc.labels {
            put_str16(&mut out, k);
            put_str16(&mut out, v);
        }
        match &e.value {
            MetricValue::Counter(v) => {
                out.push(KIND_COUNTER);
                out.extend_from_slice(&v.to_le_bytes());
            }
            MetricValue::Gauge(v) => {
                out.push(KIND_GAUGE);
                out.extend_from_slice(&v.to_le_bytes());
            }
            MetricValue::Histogram(h) => {
                out.push(KIND_HISTOGRAM);
                out.extend_from_slice(&h.count().to_le_bytes());
                let sum = h.sum();
                out.extend_from_slice(&(sum as u64).to_le_bytes());
                out.extend_from_slice(&((sum >> 64) as u64).to_le_bytes());
                out.extend_from_slice(&h.min().to_le_bytes());
                out.extend_from_slice(&h.max().to_le_bytes());
                let sparse = h.sparse_buckets();
                out.extend_from_slice(&(sparse.len() as u32).to_le_bytes());
                for (i, c) in sparse {
                    out.extend_from_slice(&i.to_le_bytes());
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }
    out
}

/// A bounds-checked little-endian reader over untrusted bytes.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated snapshot: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 metric string".to_owned())
    }

    /// Guards a count prefix against allocation attacks: `count` items of
    /// at least `min_item_bytes` each must fit in the remaining input.
    fn expect_items(&self, count: usize, min_item_bytes: usize) -> Result<(), String> {
        let need = count.saturating_mul(min_item_bytes);
        if need > self.remaining() {
            return Err(format!(
                "length prefix {count} exceeds remaining {} bytes",
                self.remaining()
            ));
        }
        Ok(())
    }
}

/// Decodes a version-1 binary snapshot. Errors (never panics) on truncated,
/// oversized, or otherwise malformed input.
pub fn decode_snapshot(bytes: &[u8]) -> Result<MetricsSnapshot, String> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8()?;
    if version != CODEC_VERSION {
        return Err(format!("unsupported snapshot codec version {version}"));
    }
    let entry_count = r.u32()? as usize;
    // Smallest possible entry: three empty str16s + label count + kind + u64.
    r.expect_items(entry_count, 2 + 2 + 2 + 2 + 1 + 8)?;
    let mut entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let name = r.str16()?;
        let layer = r.str16()?;
        let unit = r.str16()?;
        let label_count = r.u16()? as usize;
        r.expect_items(label_count, 4)?;
        let mut labels = Vec::with_capacity(label_count);
        for _ in 0..label_count {
            let k = r.str16()?;
            let v = r.str16()?;
            labels.push((k, v));
        }
        let kind = r.u8()?;
        let value = match kind {
            KIND_COUNTER => MetricValue::Counter(r.u64()?),
            KIND_GAUGE => MetricValue::Gauge(r.u64()?),
            KIND_HISTOGRAM => {
                let count = r.u64()?;
                let sum_lo = r.u64()?;
                let sum_hi = r.u64()?;
                let sum = u128::from(sum_lo) | (u128::from(sum_hi) << 64);
                let min = r.u64()?;
                let max = r.u64()?;
                let sparse_len = r.u32()? as usize;
                r.expect_items(sparse_len, 12)?;
                let mut sparse = Vec::with_capacity(sparse_len);
                for _ in 0..sparse_len {
                    let i = r.u32()?;
                    if i as usize >= BUCKETS {
                        return Err(format!("histogram bucket index {i} out of range"));
                    }
                    let c = r.u64()?;
                    sparse.push((i, c));
                }
                MetricValue::Histogram(LogHistogram::from_parts(count, sum, min, max, &sparse))
            }
            k => return Err(format!("unknown metric kind {k}")),
        };
        entries.push(MetricEntry {
            desc: MetricDesc {
                name,
                layer,
                unit,
                labels,
            },
            value,
        });
    }
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after snapshot", r.remaining()));
    }
    Ok(MetricsSnapshot { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new()
            .with_label("shard", "2")
            .with_label("app", "1");
        let c = reg.counter("tuples_total", "serve", "tuples");
        let g = reg.gauge("depth", "serve", "tuples");
        let h = reg.histogram("latency", "serve", "us");
        reg.add(c, 1234);
        reg.set_gauge(g, 9);
        for v in [1u64, 2, 3, 1 << 40, u64::MAX] {
            reg.observe(h, v);
        }
        reg.snapshot()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let snap = sample();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).expect("decode own encoding");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = MetricsSnapshot::new();
        assert_eq!(decode_snapshot(&encode_snapshot(&snap)).unwrap(), snap);
    }

    #[test]
    fn truncation_at_every_byte_errors_cleanly() {
        let bytes = encode_snapshot(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let base = encode_snapshot(&sample());
        // Flip each byte through a few values; decode must return, not panic.
        for i in 0..base.len() {
            for delta in [1u8, 0x7f, 0xff] {
                let mut b = base.clone();
                b[i] = b[i].wrapping_add(delta);
                let _ = decode_snapshot(&b);
            }
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected() {
        // version=1, entry_count=u32::MAX: must fail the expect_items guard
        // without allocating.
        let mut b = vec![CODEC_VERSION];
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_snapshot(&b).unwrap_err();
        assert!(err.contains("exceeds remaining"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_snapshot(&sample());
        bytes.push(0);
        assert!(decode_snapshot(&bytes).unwrap_err().contains("trailing"));
    }
}
