//! The cross-layer metrics registry: typed counter/gauge/histogram handles
//! plus mergeable snapshots.
//!
//! Registries are *per-thread/per-shard by construction*: a registry is a
//! plain (non-atomic, non-locked) struct each worker owns and writes
//! through `Copy` handles, so publishing metrics never touches the
//! simulation step path's lock-free property. Cross-thread aggregation
//! happens on *snapshots*: every layer snapshots its own registry and the
//! snapshots [`merge`](MetricsSnapshot::merge) — an associative,
//! commutative fold keyed by `(name, labels)` (counters/gauges sum,
//! histograms bucket-merge), proven associative by test.

use std::collections::HashMap;

use crate::hist::LogHistogram;

/// What a metric measures and how it merges/exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic total; merges by sum, exported as a Prometheus counter.
    Counter,
    /// Point-in-time level; merges by sum (per-shard gauges carry a
    /// distinguishing label, so a summed collision is an aggregate by
    /// intent), exported as a Prometheus gauge.
    Gauge,
    /// Log-bucketed distribution; merges by bucket addition, exported as a
    /// Prometheus summary (quantiles + sum + count).
    Histogram,
}

/// A metric's identity and catalog metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDesc {
    /// Prometheus-safe metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// The runtime layer that owns the metric (`engine`, `serve`, `wire`,
    /// `obs`).
    pub layer: String,
    /// Unit of the recorded value (`cycles`, `tuples`, `us`, `batches`,
    /// `events`, `connections`, `kernels`, `items`).
    pub unit: String,
    /// Distinguishing labels (e.g. `shard`, `app`, `channel`), sorted.
    pub labels: Vec<(String, String)>,
}

impl MetricDesc {
    /// The merge identity: `(name, labels)`.
    fn key(&self) -> (String, Vec<(String, String)>) {
        (self.name.clone(), self.labels.clone())
    }
}

/// A snapshot entry's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Full histogram state.
    Histogram(LogHistogram),
}

impl MetricValue {
    /// The entry's kind.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }

    /// Scalar view: the counter/gauge value, or the histogram's count.
    pub fn scalar(&self) -> u64 {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.count(),
        }
    }
}

/// One exported metric: description plus value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Identity and catalog metadata.
    pub desc: MetricDesc,
    /// The recorded value.
    pub value: MetricValue,
}

/// Handle to a registered counter. `Copy` — store it next to the hot loop
/// and write through it without lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// A single-owner metrics registry (see the module docs for the
/// per-thread/merge-on-snapshot design).
///
/// # Example
///
/// ```
/// use ditto_obs::{MetricsRegistry, MetricValue};
///
/// let mut reg = MetricsRegistry::new().with_label("shard", "0");
/// let served = reg.counter("ditto_serve_tuples_total", "serve", "tuples");
/// let depth = reg.gauge("ditto_serve_queue_depth", "serve", "tuples");
/// let lat = reg.histogram("ditto_serve_batch_latency_us", "serve", "us");
/// reg.add(served, 128);
/// reg.set_gauge(depth, 7);
/// reg.observe(lat, 250);
/// let snap = reg.snapshot();
/// assert_eq!(snap.scalar("ditto_serve_tuples_total"), Some(128));
/// assert!(matches!(
///     &snap.get("ditto_serve_batch_latency_us", &[("shard", "0")]).unwrap().value,
///     MetricValue::Histogram(h) if h.count() == 1
/// ));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    labels: Vec<(String, String)>,
    counters: Vec<(MetricDesc, u64)>,
    gauges: Vec<(MetricDesc, u64)>,
    hists: Vec<(MetricDesc, LogHistogram)>,
}

impl MetricsRegistry {
    /// An empty registry with no common labels.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds a common label stamped onto every metric registered afterwards
    /// (and everything registered before — labels are registry-wide).
    pub fn with_label(mut self, key: &str, value: impl ToString) -> Self {
        self.labels.push((key.to_owned(), value.to_string()));
        self
    }

    fn desc(&self, name: &str, layer: &str, unit: &str) -> MetricDesc {
        let mut labels = self.labels.clone();
        labels.sort();
        MetricDesc {
            name: name.to_owned(),
            layer: layer.to_owned(),
            unit: unit.to_owned(),
            labels,
        }
    }

    /// Registers (or re-uses, matched by name) a counter.
    pub fn counter(&mut self, name: &str, layer: &str, unit: &str) -> CounterHandle {
        if let Some(i) = self.counters.iter().position(|(d, _)| d.name == name) {
            return CounterHandle(i);
        }
        self.counters.push((self.desc(name, layer, unit), 0));
        CounterHandle(self.counters.len() - 1)
    }

    /// Registers (or re-uses, matched by name) a gauge.
    pub fn gauge(&mut self, name: &str, layer: &str, unit: &str) -> GaugeHandle {
        if let Some(i) = self.gauges.iter().position(|(d, _)| d.name == name) {
            return GaugeHandle(i);
        }
        self.gauges.push((self.desc(name, layer, unit), 0));
        GaugeHandle(self.gauges.len() - 1)
    }

    /// Registers (or re-uses, matched by name) a histogram.
    pub fn histogram(&mut self, name: &str, layer: &str, unit: &str) -> HistogramHandle {
        if let Some(i) = self.hists.iter().position(|(d, _)| d.name == name) {
            return HistogramHandle(i);
        }
        self.hists
            .push((self.desc(name, layer, unit), LogHistogram::new()));
        HistogramHandle(self.hists.len() - 1)
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, h: CounterHandle, n: u64) {
        self.counters[h.0].1 += n;
    }

    /// Sets a counter to an absolute total — the publishing pattern for
    /// layers that already maintain their own monotonic counters (engine
    /// `ff_jumps`, cluster `batches_submitted`) and re-export them at
    /// snapshot time.
    pub fn set_counter(&mut self, h: CounterHandle, v: u64) {
        self.counters[h.0].1 = v;
    }

    /// Sets a gauge level.
    pub fn set_gauge(&mut self, h: GaugeHandle, v: u64) {
        self.gauges[h.0].1 = v;
    }

    /// Records one histogram sample.
    pub fn observe(&mut self, h: HistogramHandle, v: u64) {
        self.hists[h.0].1.record(v);
    }

    /// Installs a fully-populated histogram under a registered handle —
    /// how a layer that maintains its own [`LogHistogram`] (the cluster's
    /// batch latency) exports it without re-recording every sample.
    pub fn set_histogram(&mut self, h: HistogramHandle, hist: LogHistogram) {
        self.hists[h.0].1 = hist;
    }

    /// A point-in-time copy of every registered metric, sorted by
    /// `(name, labels)` for deterministic export order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<MetricEntry> = Vec::new();
        for (d, v) in &self.counters {
            entries.push(MetricEntry {
                desc: d.clone(),
                value: MetricValue::Counter(*v),
            });
        }
        for (d, v) in &self.gauges {
            entries.push(MetricEntry {
                desc: d.clone(),
                value: MetricValue::Gauge(*v),
            });
        }
        for (d, h) in &self.hists {
            entries.push(MetricEntry {
                desc: d.clone(),
                value: MetricValue::Histogram(h.clone()),
            });
        }
        let mut snap = MetricsSnapshot { entries };
        snap.sort();
        snap
    }
}

/// A mergeable point-in-time view of one or more registries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The exported metrics, sorted by `(name, labels)`.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    fn sort(&mut self) {
        self.entries.sort_by_key(|e| e.desc.key());
    }

    /// Folds `other` into this snapshot. Entries with equal
    /// `(name, labels)` and kind combine (counters/gauges sum, histograms
    /// bucket-merge); everything else is appended. Associative and
    /// commutative, so shard → cluster → server aggregation order never
    /// matters.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut index: HashMap<(String, Vec<(String, String)>), usize> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.desc.key(), i))
            .collect();
        for e in &other.entries {
            match index.get(&e.desc.key()) {
                Some(&i) if self.entries[i].value.kind() == e.value.kind() => {
                    match (&mut self.entries[i].value, &e.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        _ => unreachable!("kinds checked equal"),
                    }
                }
                _ => {
                    index.insert(e.desc.key(), self.entries.len());
                    self.entries.push(e.clone());
                }
            }
        }
        self.sort();
    }

    /// Appends a label to every entry — how a wire server stamps each
    /// hosted app's snapshot with its `app` id before merging them into one
    /// dump.
    pub fn add_label(&mut self, key: &str, value: impl ToString) {
        let v = value.to_string();
        for e in &mut self.entries {
            e.desc.labels.push((key.to_owned(), v.clone()));
            e.desc.labels.sort();
        }
        self.sort();
    }

    /// Finds the entry with exactly these labels (order-insensitive).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricEntry> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        want.sort();
        self.entries
            .iter()
            .find(|e| e.desc.name == name && e.desc.labels == want)
    }

    /// All entries with this name, any labels.
    pub fn all(&self, name: &str) -> Vec<&MetricEntry> {
        self.entries
            .iter()
            .filter(|e| e.desc.name == name)
            .collect()
    }

    /// The scalar total of `name` summed across labels (`None` when the
    /// metric is absent).
    pub fn scalar(&self, name: &str) -> Option<u64> {
        let matches = self.all(name);
        if matches.is_empty() {
            return None;
        }
        Some(matches.iter().map(|e| e.value.scalar()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_snapshot(shard: usize, tuples: u64, depth: u64) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new().with_label("shard", shard);
        let c = reg.counter("tuples_total", "serve", "tuples");
        let g = reg.gauge("queue_depth", "serve", "tuples");
        let h = reg.histogram("latency_us", "serve", "us");
        reg.set_counter(c, tuples);
        reg.set_gauge(g, depth);
        reg.observe(h, tuples);
        reg.snapshot()
    }

    #[test]
    fn labels_keep_shards_separate_and_scalar_sums() {
        let mut a = shard_snapshot(0, 100, 3);
        let b = shard_snapshot(1, 50, 4);
        a.merge(&b);
        assert_eq!(
            a.get("tuples_total", &[("shard", "0")])
                .unwrap()
                .value
                .scalar(),
            100
        );
        assert_eq!(
            a.get("tuples_total", &[("shard", "1")])
                .unwrap()
                .value
                .scalar(),
            50
        );
        assert_eq!(a.scalar("tuples_total"), Some(150));
        assert_eq!(a.scalar("queue_depth"), Some(7));
        assert_eq!(a.scalar("absent"), None);
    }

    #[test]
    fn same_key_entries_combine() {
        let mut a = shard_snapshot(0, 10, 1);
        let b = shard_snapshot(0, 32, 2);
        a.merge(&b);
        let e = a.get("tuples_total", &[("shard", "0")]).unwrap();
        assert_eq!(e.value.scalar(), 42);
        let MetricValue::Histogram(h) = &a.get("latency_us", &[("shard", "0")]).unwrap().value
        else {
            panic!("histogram expected");
        };
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn add_label_stamps_everything() {
        let mut s = shard_snapshot(0, 5, 0);
        s.add_label("app", 3u16);
        assert!(s.get("tuples_total", &[("shard", "0")]).is_none());
        assert!(s
            .get("tuples_total", &[("app", "3"), ("shard", "0")])
            .is_some());
    }

    #[test]
    fn handle_reuse_by_name() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x", "engine", "items");
        let b = reg.counter("x", "engine", "items");
        assert_eq!(a, b);
        reg.add(a, 1);
        reg.add(b, 1);
        assert_eq!(reg.snapshot().scalar("x"), Some(2));
    }
}
