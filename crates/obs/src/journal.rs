//! The batch-span tracing journal: fixed-capacity ring buffers of
//! structured lifecycle events, exportable as Chrome trace-event JSON.
//!
//! Every layer that touches a batch records a [`SpanEvent`] into its own
//! [`SpanJournal`] (wire: accept/admit/shed/reply; cluster: merge; shard:
//! queue/step/drain). Events are keyed by a span id — the cluster batch id,
//! which the wire layer derives from the client `seq` at admission — so
//! draining all journals and concatenating them reconstructs each batch's
//! full `accept → admit → queue → step → drain → merge → reply` flame row.
//!
//! The ring buffer evicts oldest-first at capacity; the lifetime
//! [`recorded`](SpanJournal::recorded)/[`evicted`](SpanJournal::evicted)
//! counters stay exact across eviction (pinned by test).

use crate::clock;

/// A lifecycle stage of one batch's journey through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanStage {
    /// Wire: frame received off the socket.
    Accept,
    /// Wire: admission granted, batch id assigned.
    Admit,
    /// Wire: admission refused (load shed). Terminal for its span.
    Shed,
    /// Serve: tuples enqueued onto a shard worker.
    Queue,
    /// Serve: first engine step-poll that advanced the batch.
    Step,
    /// Serve: shard watermark reached, batch drained from the shard.
    Drain,
    /// Serve: cluster folded the shard completion into the batch total.
    Merge,
    /// Wire: `Done` dispatched back to the client.
    Reply,
}

impl SpanStage {
    /// Stable wire discriminant.
    pub fn as_u8(self) -> u8 {
        match self {
            SpanStage::Accept => 0,
            SpanStage::Admit => 1,
            SpanStage::Shed => 2,
            SpanStage::Queue => 3,
            SpanStage::Step => 4,
            SpanStage::Drain => 5,
            SpanStage::Merge => 6,
            SpanStage::Reply => 7,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8).
    pub fn from_u8(v: u8) -> Option<SpanStage> {
        Some(match v {
            0 => SpanStage::Accept,
            1 => SpanStage::Admit,
            2 => SpanStage::Shed,
            3 => SpanStage::Queue,
            4 => SpanStage::Step,
            5 => SpanStage::Drain,
            6 => SpanStage::Merge,
            7 => SpanStage::Reply,
            _ => return None,
        })
    }

    /// The stage's trace label.
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Accept => "accept",
            SpanStage::Admit => "admit",
            SpanStage::Shed => "shed",
            SpanStage::Queue => "queue",
            SpanStage::Step => "step",
            SpanStage::Drain => "drain",
            SpanStage::Merge => "merge",
            SpanStage::Reply => "reply",
        }
    }
}

/// One structured journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span id: the cluster batch id (sheds use `seq | 1 << 63`).
    pub span: u64,
    /// Which lifecycle stage this event marks.
    pub stage: SpanStage,
    /// Microseconds since the process [`clock`] epoch.
    pub wall_us: u64,
    /// Simulated engine cycle at record time (0 where no engine is in
    /// scope, e.g. wire-side events).
    pub cycle: u64,
    /// Recording shard (`u32::MAX` for cluster/wire-level events).
    pub shard: u32,
    /// Tuples carried by the batch at this stage (0 when unknown).
    pub tuples: u64,
    /// Hosted app id (stamped by the wire layer; 0 for in-process use).
    pub app: u16,
}

/// A shard/cluster/wire-level event with no shard affinity.
pub const NO_SHARD: u32 = u32::MAX;

/// A fixed-capacity ring buffer of [`SpanEvent`]s, oldest-evicted.
///
/// # Example
///
/// ```
/// use ditto_obs::{SpanJournal, SpanStage};
///
/// let mut j = SpanJournal::new(2);
/// j.record(1, SpanStage::Queue, 0, 0, 64);
/// j.record(1, SpanStage::Drain, 10, 0, 64);
/// j.record(2, SpanStage::Queue, 11, 0, 32); // evicts span 1's Queue
/// assert_eq!(j.recorded(), 3);
/// assert_eq!(j.evicted(), 1);
/// let events = j.drain();
/// assert_eq!(events.len(), 2);
/// assert_eq!(events[0].stage, SpanStage::Drain);
/// ```
#[derive(Debug, Clone)]
pub struct SpanJournal {
    capacity: usize,
    events: std::collections::VecDeque<SpanEvent>,
    recorded: u64,
    evicted: u64,
}

impl SpanJournal {
    /// A journal holding at most `capacity` events (capacity 0 disables
    /// recording entirely — every record is an immediate eviction-free
    /// no-op except the lifetime counter).
    pub fn new(capacity: usize) -> Self {
        SpanJournal {
            capacity,
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            recorded: 0,
            evicted: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event stamped with the current wall clock.
    pub fn record(&mut self, span: u64, stage: SpanStage, cycle: u64, shard: u32, tuples: u64) {
        self.record_at(span, stage, clock::wall_us_now(), cycle, shard, tuples);
    }

    /// Records an event with an explicit wall timestamp — how the wire
    /// layer back-fills `Accept` (stamped when the frame arrived) once
    /// admission assigns the span id.
    pub fn record_at(
        &mut self,
        span: u64,
        stage: SpanStage,
        wall_us: u64,
        cycle: u64,
        shard: u32,
        tuples: u64,
    ) {
        self.push(SpanEvent {
            span,
            stage,
            wall_us,
            cycle,
            shard,
            tuples,
            app: 0,
        });
    }

    /// Records a fully-formed event (journal-to-journal transfer).
    pub fn push(&mut self, e: SpanEvent) {
        self.recorded += 1;
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(e);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Lifetime events recorded (exact across eviction).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Lifetime events evicted by overflow (exact).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Removes and returns all buffered events, oldest first. Lifetime
    /// counters are unaffected.
    pub fn drain(&mut self) -> Vec<SpanEvent> {
        self.events.drain(..).collect()
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.iter().copied().collect()
    }
}

/// Renders journal events as Chrome trace-event JSON (the
/// `chrome://tracing` / Perfetto import format).
///
/// Each batch becomes one flame row: consecutive stage events of a span
/// turn into `"X"` (complete) slices named after the *starting* stage, with
/// `pid` = app id and `tid` = span id, so loading the file shows one
/// horizontal `accept → admit → queue → step → drain → merge → reply` lane
/// per batch. The final stage gets a zero-duration terminator slice so it
/// is visible too. Events carry `cycle`/`shard`/`tuples` in `args`.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut by_span: std::collections::BTreeMap<(u16, u64), Vec<&SpanEvent>> =
        std::collections::BTreeMap::new();
    for e in events {
        by_span.entry((e.app, e.span)).or_default().push(e);
    }
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for ((app, span), mut evs) in by_span {
        evs.sort_by_key(|e| (e.wall_us, e.stage));
        for (i, e) in evs.iter().enumerate() {
            let dur = evs.get(i + 1).map_or(0, |n| n.wall_us - e.wall_us);
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"args\":{{\"cycle\":{},\"shard\":{},\"tuples\":{}}}}}",
                e.stage.name(),
                app,
                span,
                e.wall_us,
                dur,
                e.cycle,
                if e.shard == NO_SHARD {
                    -1
                } else {
                    e.shard as i64
                },
                e.tuples,
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_evicts_oldest_and_counts_stay_exact() {
        let mut j = SpanJournal::new(3);
        for span in 0..10u64 {
            j.record(span, SpanStage::Queue, span, 0, 1);
        }
        assert_eq!(j.recorded(), 10);
        assert_eq!(j.evicted(), 7);
        assert_eq!(j.len(), 3);
        let spans: Vec<u64> = j.drain().iter().map(|e| e.span).collect();
        assert_eq!(spans, vec![7, 8, 9], "oldest events must be evicted first");
        assert_eq!(j.recorded(), 10, "drain must not reset lifetime counters");
    }

    #[test]
    fn zero_capacity_disables_buffering_but_counts() {
        let mut j = SpanJournal::new(0);
        j.record(1, SpanStage::Queue, 0, 0, 1);
        assert_eq!(j.recorded(), 1);
        assert_eq!(j.evicted(), 1);
        assert!(j.is_empty());
    }

    #[test]
    fn chrome_trace_groups_by_span_with_durations() {
        let mut j = SpanJournal::new(16);
        j.record_at(5, SpanStage::Queue, 100, 0, 0, 64);
        j.record_at(5, SpanStage::Drain, 160, 900, 0, 64);
        let json = chrome_trace_json(&j.drain());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"queue\""));
        assert!(
            json.contains("\"dur\":60"),
            "queue→drain gap is the slice: {json}"
        );
        assert!(json.contains("\"tid\":5"));
        assert!(json.contains("\"cycle\":900"));
    }

    #[test]
    fn stage_discriminants_roundtrip() {
        for v in 0..8u8 {
            let s = SpanStage::from_u8(v).unwrap();
            assert_eq!(s.as_u8(), v);
        }
        assert_eq!(SpanStage::from_u8(8), None);
    }
}
