//! The consolidated `DITTO_*` environment-override catalog.
//!
//! Every runtime/bench knob the stack reads from the environment is
//! registered here with its consumer and default, so there is one place
//! (plus the README table generated from the same data) to discover them,
//! and [`log_active`] lets long-running binaries announce at startup which
//! overrides are in effect — silent env-dependent behaviour is how bench
//! numbers stop being comparable.

/// One documented environment override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvKnob {
    /// Variable name.
    pub name: &'static str,
    /// The binary/layer that reads it.
    pub consumer: &'static str,
    /// Behaviour when unset.
    pub default: &'static str,
    /// What setting it does.
    pub effect: &'static str,
}

/// Every `DITTO_*` override the stack honours.
pub const KNOWN: &[EnvKnob] = &[
    EnvKnob {
        name: "DITTO_FAST_FORWARD",
        consumer: "ditto-core (all simulations)",
        default: "per-config flag",
        effect: "force steady-state fast-forward on (`1`/`true`) or off (`0`) process-wide, \
                 overriding `ArchConfig`; lets CI re-run goldens under fast-forward",
    },
    EnvKnob {
        name: "DITTO_TUPLES",
        consumer: "ditto-bench harness",
        default: "260000 (1 % of paper scale)",
        effect: "dataset size for harness runs and parallel sweeps",
    },
    EnvKnob {
        name: "DITTO_THREADS",
        consumer: "ditto-bench harness",
        default: "available parallelism",
        effect: "worker thread count for scenario sweeps",
    },
    EnvKnob {
        name: "DITTO_SERVE_TUPLES",
        consumer: "serve_bench, ha_bench",
        default: "40000",
        effect: "tuples per serve-cluster / HA sweep point",
    },
    EnvKnob {
        name: "DITTO_WIRE_TUPLES",
        consumer: "wire_bench",
        default: "30000",
        effect: "tuples per wire front-end sweep point",
    },
    EnvKnob {
        name: "DITTO_HOTPATH_TUPLES",
        consumer: "hotpath",
        default: "65536",
        effect: "tuples per hotpath phase",
    },
    EnvKnob {
        name: "DITTO_HOTPATH_REPS",
        consumer: "hotpath",
        default: "5",
        effect: "interleaved repetitions per hotpath measurement",
    },
    EnvKnob {
        name: "DITTO_GRAPH_SCALE",
        consumer: "fig8",
        default: "4",
        effect: "graph scale-down divisor for the PageRank suite",
    },
    EnvKnob {
        name: "DITTO_REQUEUE_OVERHEAD",
        consumer: "fig9",
        default: "20000",
        effect: "modelled re-queue overhead (cycles) in the skew sweep",
    },
    EnvKnob {
        name: "DITTO_BENCH_ENV",
        consumer: "ditto-bench (BENCH_*.json)",
        default: "\"ci\" under CI, else \"local\"",
        effect: "environment marker stamped into bench artifact host info",
    },
    EnvKnob {
        name: "DITTO_REPLICAS",
        consumer: "ditto-ha (replicated serving)",
        default: "per-call argument (examples default to 1)",
        effect: "follower replicas per shard for `HaCluster`-hosted apps; `0` disables \
                 replication and recovery falls back to batch-log replay",
    },
    EnvKnob {
        name: "DITTO_KILL_SHARD",
        consumer: "ditto-serve (fault injection)",
        default: "unset (no fault)",
        effect: "`<shard>:<batches>` kills the given shard thread after it serves that many \
                 batches — deterministic failure injection for recovery drills and CI smoke",
    },
    EnvKnob {
        name: "DITTO_TRACE_OUT",
        consumer: "wire loopback test",
        default: "unset (no export)",
        effect: "file path where the loopback telemetry test writes its Chrome trace-event JSON",
    },
    EnvKnob {
        name: "DITTO_MAX_CONNS",
        consumer: "ditto-wire (admission)",
        default: "10240",
        effect: "server-wide budget on concurrently open connections; accepts past it are \
                 answered with one `TOO_MANY_CONNECTIONS` error frame and closed",
    },
    EnvKnob {
        name: "DITTO_WIRE_BACKEND",
        consumer: "ditto-wire (reactor)",
        default: "`epoll` on Linux, else `poll`",
        effect: "readiness backend for the I/O reactors: `epoll` or `poll` (unknown values \
                 keep the platform default)",
    },
    EnvKnob {
        name: "DITTO_WIRE_IO_THREADS",
        consumer: "ditto-wire (reactor)",
        default: "cores, capped at 8",
        effect: "reactor (I/O) thread count, independent of connection count; overrides both \
                 the auto-size and `WireServerConfig`",
    },
    EnvKnob {
        name: "DITTO_PLAN_SLICE",
        consumer: "ditto-plan (planner, plan_bench, plan_deploy)",
        default: "20000",
        effect: "cycles in the bounded counts-tracing profiling slice the planner runs \
                 before searching configurations",
    },
    EnvKnob {
        name: "DITTO_PLAN_BUDGET",
        consumer: "ditto-plan (search)",
        default: "0.85",
        effect: "resource budget as a utilisation fraction: candidate configurations whose \
                 estimated logic/RAM/DSP utilisation exceeds it on any axis are rejected",
    },
    EnvKnob {
        name: "DITTO_PLAN_TRACE_OUT",
        consumer: "plan_deploy example",
        default: "unset (no export)",
        effect: "file path where `plan_deploy` writes the counts trace's phase flame row as \
                 Chrome trace-event JSON (timeline in cycles)",
    },
];

/// The `DITTO_*` overrides currently set, as `(knob, value)` pairs in
/// [`KNOWN`] order.
pub fn active() -> Vec<(EnvKnob, String)> {
    KNOWN
        .iter()
        .filter_map(|k| std::env::var(k.name).ok().map(|v| (*k, v)))
        .collect()
}

/// Logs the active overrides to stderr (one line per knob, nothing when no
/// override is set). Call once at binary startup.
pub fn log_active() {
    for (k, v) in active() {
        eprintln!("ditto-obs: env override {}={v} ({})", k.name, k.consumer);
    }
}

/// The catalog as a GitHub-flavoured Markdown table — the source of the
/// README's env-override section (kept in sync by test).
pub fn markdown_table() -> String {
    let mut out = String::from("| Variable | Read by | Default | Effect |\n|---|---|---|---|\n");
    for k in KNOWN {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            k.name,
            k.consumer,
            k.default,
            k.effect.split_whitespace().collect::<Vec<_>>().join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_names_are_unique_and_prefixed() {
        let mut names: Vec<&str> = KNOWN.iter().map(|k| k.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate knob registered");
        for k in KNOWN {
            assert!(
                k.name.starts_with("DITTO_"),
                "{} not DITTO_-prefixed",
                k.name
            );
        }
    }

    #[test]
    fn markdown_table_has_one_row_per_knob() {
        let table = markdown_table();
        assert_eq!(table.lines().count(), 2 + KNOWN.len());
        for k in KNOWN {
            assert!(table.contains(k.name));
        }
    }
}
