//! Counts tracing — the profiling half of the two-pass deployment planner.
//!
//! The qdk-style resource-estimation split is *counts first, costs later*:
//! a bounded profiling slice of a workload is run once and reduced to
//! logical counts (kernel steps by kernel class, channel occupancy
//! integrals and stall cycles, per-PE workload histograms,
//! reschedule/plan events), and a separate estimates pass replays those
//! counts against the analytical FPGA model without ever re-simulating.
//! This module is the counts side's data model and its exports into the
//! existing telemetry plane:
//!
//! * [`CountsTrace`] / [`PhaseCounts`] — the per-phase count ledger a
//!   profiling-slice runner (in `ditto-core`) fills;
//! * [`CountsTrace::publish_metrics`] — aggregate `ditto_plan_*` metrics
//!   into any [`MetricsRegistry`];
//! * [`CountsTrace::to_snapshot`] — the full per-phase/per-class labelled
//!   [`MetricsSnapshot`], which rides the established binary codec,
//!   Prometheus text and wire `MetricsDump` paths unchanged;
//! * [`CountsTrace::record_spans`] — one flame row of phase slices on the
//!   cycle timeline in a [`SpanJournal`], for Chrome-trace export.

use crate::journal::{SpanJournal, SpanStage, NO_SHARD};
use crate::registry::{MetricsRegistry, MetricsSnapshot};

/// The kernel classes the counts pass aggregates steps into — one per
/// module of the paper's Fig. 3 architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// The memory reader (global-memory interface).
    Reader,
    /// PrePEs (tuple preparation lanes).
    PrePe,
    /// Mappers (routing tables + counters).
    Mapper,
    /// The combiner (wide-word assembly).
    Combiner,
    /// Decoder + filter datapaths.
    Decoder,
    /// Primary destination PEs.
    PriPe,
    /// Secondary (skew-handling) destination PEs.
    SecPe,
    /// The runtime profiler.
    Profiler,
    /// The merger.
    Merger,
    /// Anything the classifier does not recognise.
    Other,
}

impl KernelClass {
    /// Every class, in the order counts are stored.
    pub const ALL: [KernelClass; 10] = [
        KernelClass::Reader,
        KernelClass::PrePe,
        KernelClass::Mapper,
        KernelClass::Combiner,
        KernelClass::Decoder,
        KernelClass::PriPe,
        KernelClass::SecPe,
        KernelClass::Profiler,
        KernelClass::Merger,
        KernelClass::Other,
    ];

    /// Classifies a kernel by its registered name (the `ditto-core` naming
    /// scheme: `memory-reader`, `prepe#i`, `mapper#i`, `combiner`,
    /// `filter#j`, `pripe#j`, `secpe#j`, `runtime-profiler`, `merger`).
    pub fn classify(name: &str) -> KernelClass {
        let prefix = name.split('#').next().unwrap_or(name);
        match prefix {
            "memory-reader" => KernelClass::Reader,
            "prepe" => KernelClass::PrePe,
            "mapper" => KernelClass::Mapper,
            "combiner" => KernelClass::Combiner,
            "filter" => KernelClass::Decoder,
            "pripe" => KernelClass::PriPe,
            "secpe" => KernelClass::SecPe,
            "runtime-profiler" => KernelClass::Profiler,
            "merger" => KernelClass::Merger,
            _ => KernelClass::Other,
        }
    }

    /// Stable label used in metric `class` labels.
    pub fn label(self) -> &'static str {
        match self {
            KernelClass::Reader => "reader",
            KernelClass::PrePe => "prepe",
            KernelClass::Mapper => "mapper",
            KernelClass::Combiner => "combiner",
            KernelClass::Decoder => "decoder",
            KernelClass::PriPe => "pripe",
            KernelClass::SecPe => "secpe",
            KernelClass::Profiler => "profiler",
            KernelClass::Merger => "merger",
            KernelClass::Other => "other",
        }
    }

    /// Index into [`PhaseCounts::steps_by_class`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL")
    }
}

/// The logical counts of one execution phase (the stretch between two
/// reschedule boundaries) inside a profiling slice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseCounts {
    /// Phase sequence number (0 = the initial pri-only phase).
    pub phase: u64,
    /// Engine cycle at which the slice first observed this phase.
    pub start_cycle: u64,
    /// Cycles the slice spent inside the phase.
    pub cycles: u64,
    /// Tuples processed by destination PEs during the phase.
    pub tuples: u64,
    /// Executed kernel steps per [`KernelClass`] (in `ALL` order).
    pub steps_by_class: [u64; 10],
    /// Successful channel pushes during the phase (all channels).
    pub channel_pushes: u64,
    /// Successful channel pops during the phase.
    pub channel_pops: u64,
    /// Producer stall events (rejected pushes) during the phase.
    pub channel_full_stalls: u64,
    /// Channel-occupancy integral: Σ (total buffered items × sample gap in
    /// cycles), sampled at chunk boundaries — the discrete approximation
    /// of ∫ occupancy dt the estimator uses for queue-pressure reasoning.
    pub occupancy_integral: u64,
    /// Per-destination-PE processed-tuple deltas (`M + X` entries) — the
    /// workload histogram the estimator folds onto candidate shapes.
    pub per_pe_processed: Vec<u64>,
    /// Reschedules completed during the phase (boundary events).
    pub reschedules: u64,
    /// Scheduling plans generated during the phase.
    pub plans_generated: u64,
    /// Destination PEs the phase plan predicted reachable.
    pub active_pes: u32,
}

impl PhaseCounts {
    /// Total executed kernel steps across all classes.
    pub fn total_steps(&self) -> u64 {
        self.steps_by_class.iter().sum()
    }
}

/// A complete counts trace: what one bounded profiling slice observed.
///
/// # Example
///
/// ```
/// use ditto_obs::counts::{CountsTrace, KernelClass, PhaseCounts};
///
/// let mut trace = CountsTrace::new("histo/zipf1.5");
/// let mut p = PhaseCounts { phase: 0, cycles: 256, tuples: 512, ..Default::default() };
/// p.steps_by_class[KernelClass::PriPe.index()] = 512;
/// p.per_pe_processed = vec![400, 112];
/// trace.push(p);
/// assert_eq!(trace.total_tuples(), 512);
/// assert_eq!(trace.pri_workloads(2), vec![400, 112]);
/// let snap = trace.to_snapshot();
/// assert_eq!(snap.scalar("ditto_plan_phase_tuples"), Some(512));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CountsTrace {
    /// What was profiled (app/skew/config label, free-form).
    pub label: String,
    /// The per-phase ledgers, in observation order.
    pub phases: Vec<PhaseCounts>,
}

impl CountsTrace {
    /// An empty trace for the given workload label.
    pub fn new(label: impl Into<String>) -> Self {
        CountsTrace {
            label: label.into(),
            phases: Vec::new(),
        }
    }

    /// Appends one phase ledger.
    pub fn push(&mut self, phase: PhaseCounts) {
        self.phases.push(phase);
    }

    /// Cycles covered by the slice (summed over phases).
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// Tuples processed during the slice.
    pub fn total_tuples(&self) -> u64 {
        self.phases.iter().map(|p| p.tuples).sum()
    }

    /// Executed steps of one kernel class, summed over phases.
    pub fn steps_of(&self, class: KernelClass) -> u64 {
        self.phases
            .iter()
            .map(|p| p.steps_by_class[class.index()])
            .sum()
    }

    /// Producer stall events summed over phases.
    pub fn total_full_stalls(&self) -> u64 {
        self.phases.iter().map(|p| p.channel_full_stalls).sum()
    }

    /// The per-PriPE workload histogram summed over phases: entry `j` is
    /// the tuples PriPE `j` processed during the slice. This is the count
    /// the estimates pass folds onto candidate shapes.
    pub fn pri_workloads(&self, m_pri: usize) -> Vec<u64> {
        let mut w = vec![0u64; m_pri];
        for p in &self.phases {
            for (j, &n) in p.per_pe_processed.iter().take(m_pri).enumerate() {
                w[j] += n;
            }
        }
        w
    }

    /// Average slice throughput in tuples per cycle.
    pub fn tuples_per_cycle(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_tuples() as f64 / cycles as f64
    }

    /// Publishes the trace's aggregate counters as `ditto_plan_*` metrics
    /// into `reg` — the cheap always-on summary a serving layer can merge
    /// into its per-shard snapshot.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        let cycles = reg.counter("ditto_plan_trace_cycles", "plan", "cycles");
        let tuples = reg.counter("ditto_plan_trace_tuples", "plan", "tuples");
        let steps = reg.counter("ditto_plan_trace_kernel_steps", "plan", "items");
        let stalls = reg.counter("ditto_plan_trace_full_stalls", "plan", "items");
        let occ = reg.counter("ditto_plan_trace_occupancy_integral", "plan", "items");
        let resched = reg.counter("ditto_plan_trace_reschedules", "plan", "events");
        let plans = reg.counter("ditto_plan_trace_plans_generated", "plan", "events");
        let phases = reg.gauge("ditto_plan_trace_phases", "plan", "events");
        reg.set_counter(cycles, self.total_cycles());
        reg.set_counter(tuples, self.total_tuples());
        reg.set_counter(steps, self.phases.iter().map(|p| p.total_steps()).sum());
        reg.set_counter(stalls, self.total_full_stalls());
        reg.set_counter(occ, self.phases.iter().map(|p| p.occupancy_integral).sum());
        reg.set_counter(resched, self.phases.iter().map(|p| p.reschedules).sum());
        reg.set_counter(plans, self.phases.iter().map(|p| p.plans_generated).sum());
        reg.set_gauge(phases, self.phases.len() as u64);
    }

    /// The full labelled snapshot: aggregate metrics, per-phase entries
    /// (`phase` label), per-class step counts (`class` label), and the
    /// per-PE workload distribution as a histogram. Because it is a plain
    /// [`MetricsSnapshot`], the existing binary codec
    /// ([`crate::encode_snapshot`]), Prometheus exposition and wire
    /// `MetricsDump` frames carry it without modification.
    pub fn to_snapshot(&self) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        self.publish_metrics(&mut reg);
        let workload = reg.histogram("ditto_plan_pe_workload", "plan", "tuples");
        for p in &self.phases {
            for &n in &p.per_pe_processed {
                reg.observe(workload, n);
            }
        }
        let mut snap = reg.snapshot();

        for class in KernelClass::ALL {
            let steps = self.steps_of(class);
            if steps == 0 {
                continue;
            }
            let mut creg = MetricsRegistry::new().with_label("class", class.label());
            let h = creg.counter("ditto_plan_kernel_steps", "plan", "items");
            creg.set_counter(h, steps);
            snap.merge(&creg.snapshot());
        }

        for p in &self.phases {
            let mut preg = MetricsRegistry::new().with_label("phase", p.phase);
            let cycles = preg.counter("ditto_plan_phase_cycles", "plan", "cycles");
            let tuples = preg.counter("ditto_plan_phase_tuples", "plan", "tuples");
            let stalls = preg.counter("ditto_plan_phase_full_stalls", "plan", "items");
            let occ = preg.counter("ditto_plan_phase_occupancy_integral", "plan", "items");
            let active = preg.gauge("ditto_plan_phase_active_pes", "plan", "kernels");
            preg.set_counter(cycles, p.cycles);
            preg.set_counter(tuples, p.tuples);
            preg.set_counter(stalls, p.channel_full_stalls);
            preg.set_counter(occ, p.occupancy_integral);
            preg.set_gauge(active, u64::from(p.active_pes));
            snap.merge(&preg.snapshot());
        }
        snap
    }

    /// Records the trace as one flame row in `journal`: each phase becomes
    /// a slice on the *cycle* timeline (the journal's `wall_us` field
    /// carries the start cycle, so [`crate::chrome_trace_json`] renders
    /// phase durations in cycles), terminated by a zero-length `drain`
    /// marker at slice end.
    pub fn record_spans(&self, journal: &mut SpanJournal) {
        let mut end = 0;
        for p in &self.phases {
            journal.record_at(
                p.phase,
                SpanStage::Step,
                p.start_cycle,
                p.start_cycle,
                NO_SHARD,
                p.tuples,
            );
            end = end.max(p.start_cycle + p.cycles);
        }
        if let Some(last) = self.phases.last() {
            journal.record_at(last.phase, SpanStage::Drain, end, end, NO_SHARD, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome_trace_json;

    fn sample_trace() -> CountsTrace {
        let mut t = CountsTrace::new("test");
        let mut p0 = PhaseCounts {
            phase: 0,
            start_cycle: 0,
            cycles: 100,
            tuples: 300,
            channel_full_stalls: 5,
            occupancy_integral: 1_000,
            per_pe_processed: vec![200, 100, 0],
            active_pes: 2,
            ..Default::default()
        };
        p0.steps_by_class[KernelClass::PriPe.index()] = 300;
        p0.steps_by_class[KernelClass::Reader.index()] = 100;
        let mut p1 = PhaseCounts {
            phase: 1,
            start_cycle: 100,
            cycles: 50,
            tuples: 250,
            reschedules: 1,
            plans_generated: 1,
            per_pe_processed: vec![50, 100, 100],
            active_pes: 3,
            ..Default::default()
        };
        p1.steps_by_class[KernelClass::SecPe.index()] = 100;
        t.push(p0);
        t.push(p1);
        t
    }

    #[test]
    fn classification_follows_core_naming() {
        assert_eq!(KernelClass::classify("memory-reader"), KernelClass::Reader);
        assert_eq!(KernelClass::classify("prepe#3"), KernelClass::PrePe);
        assert_eq!(KernelClass::classify("mapper#0"), KernelClass::Mapper);
        assert_eq!(KernelClass::classify("combiner"), KernelClass::Combiner);
        assert_eq!(KernelClass::classify("filter#17"), KernelClass::Decoder);
        assert_eq!(KernelClass::classify("pripe#2"), KernelClass::PriPe);
        assert_eq!(KernelClass::classify("secpe#16"), KernelClass::SecPe);
        assert_eq!(
            KernelClass::classify("runtime-profiler"),
            KernelClass::Profiler
        );
        assert_eq!(KernelClass::classify("merger"), KernelClass::Merger);
        assert_eq!(KernelClass::classify("mystery"), KernelClass::Other);
    }

    #[test]
    fn class_indices_are_distinct_and_dense() {
        for (i, c) in KernelClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn totals_sum_over_phases() {
        let t = sample_trace();
        assert_eq!(t.total_cycles(), 150);
        assert_eq!(t.total_tuples(), 550);
        assert_eq!(t.steps_of(KernelClass::PriPe), 300);
        assert_eq!(t.steps_of(KernelClass::SecPe), 100);
        assert_eq!(t.total_full_stalls(), 5);
        assert_eq!(t.pri_workloads(3), vec![250, 200, 100]);
        assert!((t.tuples_per_cycle() - 550.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_carries_aggregates_classes_and_phases() {
        let t = sample_trace();
        let snap = t.to_snapshot();
        assert_eq!(snap.scalar("ditto_plan_trace_tuples"), Some(550));
        assert_eq!(snap.scalar("ditto_plan_trace_reschedules"), Some(1));
        assert_eq!(
            snap.get("ditto_plan_kernel_steps", &[("class", "pripe")])
                .unwrap()
                .value
                .scalar(),
            300
        );
        assert_eq!(
            snap.get("ditto_plan_phase_tuples", &[("phase", "1")])
                .unwrap()
                .value
                .scalar(),
            250
        );
        assert_eq!(
            snap.get("ditto_plan_phase_active_pes", &[("phase", "0")])
                .unwrap()
                .value
                .scalar(),
            2
        );
        // The workload histogram saw one sample per PE per phase.
        assert_eq!(snap.scalar("ditto_plan_pe_workload"), Some(6));
    }

    #[test]
    fn snapshot_survives_the_wire_codec() {
        let t = sample_trace();
        let snap = t.to_snapshot();
        let bytes = crate::encode_snapshot(&snap);
        let back = crate::decode_snapshot(&bytes).expect("codec roundtrip");
        assert_eq!(back, snap);
    }

    #[test]
    fn spans_render_phase_slices_on_the_cycle_timeline() {
        let t = sample_trace();
        let mut j = SpanJournal::new(64);
        t.record_spans(&mut j);
        assert_eq!(j.len(), 3, "two phases + terminator");
        let json = chrome_trace_json(&j.drain());
        assert!(json.contains("\"name\":\"step\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"name\":\"drain\""));
    }
}
