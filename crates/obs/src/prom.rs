//! Prometheus text exposition (format 0.0.4) for [`MetricsSnapshot`]s,
//! plus a hand-rolled validator used by tests and CI to prove the output
//! parses.
//!
//! Counters and gauges export as their own types; histograms export as
//! `summary` (quantile series + `_sum` + `_count`) rather than native
//! Prometheus histograms — shipping the pre-computed p50/p99/p999 keeps
//! the exposition compact instead of emitting one `_bucket` line per
//! populated log-bucket.

use crate::registry::{MetricValue, MetricsSnapshot};

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a snapshot as Prometheus text exposition. Entries sharing a name
/// emit one `# HELP`/`# TYPE` header followed by all label variants, as the
/// format requires.
pub fn to_prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for e in &snap.entries {
        if last_name != Some(e.desc.name.as_str()) {
            let ty = match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            out.push_str(&format!(
                "# HELP {} {} metric ({}).\n# TYPE {} {}\n",
                e.desc.name, e.desc.layer, e.desc.unit, e.desc.name, ty
            ));
            last_name = Some(e.desc.name.as_str());
        }
        match &e.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    e.desc.name,
                    label_block(&e.desc.labels, None),
                    v
                ));
            }
            MetricValue::Histogram(h) => {
                let s = h.stats();
                for (q, v) in [("0.5", s.p50), ("0.99", s.p99), ("0.999", s.p999)] {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.desc.name,
                        label_block(&e.desc.labels, Some(("quantile", q))),
                        v
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    e.desc.name,
                    label_block(&e.desc.labels, None),
                    h.sum()
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    e.desc.name,
                    label_block(&e.desc.labels, None),
                    h.count()
                ));
            }
        }
    }
    out
}

fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates Prometheus text exposition line by line: comment syntax,
/// metric/label name charsets, quoted label values, and a parseable sample
/// value per line. Returns the offending line on failure. Used by the wire
/// smoke test and CI to prove the scrape output is well-formed.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            match words.next() {
                Some("HELP") | Some("TYPE") => {
                    let name = words
                        .next()
                        .ok_or_else(|| format!("comment missing metric name: {line}"))?;
                    if !is_valid_name(name) {
                        return Err(format!("invalid metric name {name:?}: {line}"));
                    }
                    if rest.starts_with("TYPE") {
                        let ty = words.next().unwrap_or("");
                        if !matches!(
                            ty,
                            "counter" | "gauge" | "summary" | "histogram" | "untyped"
                        ) {
                            return Err(format!("invalid metric type {ty:?}: {line}"));
                        }
                    }
                }
                _ => return Err(format!("unknown comment form: {line}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample missing value: {line}"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("unparseable sample value {value:?}: {line}"));
        }
        let name_part = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated label block: {line}"))?;
                for pair in labels.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("label missing '=': {line}"))?;
                    if !is_valid_name(k) {
                        return Err(format!("invalid label name {k:?}: {line}"));
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return Err(format!("unquoted label value {v:?}: {line}"));
                    }
                }
                name
            }
            None => series,
        };
        if !is_valid_name(name_part) {
            return Err(format!("invalid series name {name_part:?}: {line}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new().with_label("shard", "0");
        let c = reg.counter("ditto_tuples_total", "serve", "tuples");
        let g = reg.gauge("ditto_queue_depth", "serve", "tuples");
        let h = reg.histogram("ditto_latency_us", "serve", "us");
        reg.add(c, 42);
        reg.set_gauge(g, 3);
        for v in [10u64, 20, 30, 40, 5000] {
            reg.observe(h, v);
        }
        reg.snapshot()
    }

    #[test]
    fn exposition_contains_all_series_and_validates() {
        let text = to_prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE ditto_tuples_total counter"));
        assert!(text.contains("ditto_tuples_total{shard=\"0\"} 42"));
        assert!(text.contains("# TYPE ditto_latency_us summary"));
        assert!(text.contains("quantile=\"0.999\""));
        assert!(text.contains("ditto_latency_us_count{shard=\"0\"} 5"));
        validate_prometheus_text(&text).expect("own output must validate");
    }

    #[test]
    fn single_header_per_name_across_label_variants() {
        let mut a = sample_snapshot();
        let mut reg = MetricsRegistry::new().with_label("shard", "1");
        let c = reg.counter("ditto_tuples_total", "serve", "tuples");
        reg.add(c, 7);
        a.merge(&reg.snapshot());
        let text = to_prometheus_text(&a);
        assert_eq!(
            text.matches("# TYPE ditto_tuples_total counter").count(),
            1,
            "one TYPE header per metric name:\n{text}"
        );
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus_text("9bad_name 1").is_err());
        assert!(validate_prometheus_text("name{k=unquoted} 1").is_err());
        assert!(validate_prometheus_text("name{k=\"v\" 1").is_err());
        assert!(validate_prometheus_text("name notanumber").is_err());
        assert!(validate_prometheus_text("# TYPE x flavor").is_err());
        assert!(validate_prometheus_text("# NOPE x y").is_err());
        assert!(validate_prometheus_text("ok_name{k=\"v\"} 1.5\n").is_ok());
    }
}
