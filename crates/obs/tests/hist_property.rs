//! Property test pinning bucketed nearest-rank percentiles against the
//! exact-sample reference on random populations (the ISSUE 7 satellite:
//! migrating serve latencies to `LogHistogram` must keep nearest-rank
//! semantics within the documented quantization bound).

use ditto_obs::hist::{SUB_BUCKETS, SUB_BUCKET_BITS};
use ditto_obs::LogHistogram;

/// xorshift64* — deterministic, dependency-free randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// The exact-sample nearest-rank reference: the ⌈q·n⌉-th smallest value —
/// the same rank rule `ditto_serve::LatencyRecorder` uses.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1]
}

fn check_population(name: &str, values: &[u64]) {
    let mut h = LogHistogram::new();
    let mut sorted = values.to_vec();
    for &v in values {
        h.record(v);
    }
    sorted.sort_unstable();
    for q in [0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0] {
        let exact = exact_nearest_rank(&sorted, q);
        let bucketed = h.quantile(q);
        assert!(
            bucketed >= exact,
            "{name} q={q}: bucketed {bucketed} below exact {exact} \
             (bucket upper edges must upper-bound the exact answer)"
        );
        let bound = exact.saturating_add(exact >> SUB_BUCKET_BITS);
        assert!(
            bucketed <= bound,
            "{name} q={q}: bucketed {bucketed} exceeds exact {exact} + 1/{SUB_BUCKETS} bound {bound}"
        );
    }
    assert_eq!(h.count(), values.len() as u64, "{name}: count");
    assert_eq!(h.max(), *sorted.last().unwrap(), "{name}: max is exact");
    assert_eq!(h.min(), sorted[0], "{name}: min is exact");
    let exact_sum: u128 = values.iter().map(|&v| u128::from(v)).sum();
    assert_eq!(h.sum(), exact_sum, "{name}: sum is exact");
}

#[test]
fn random_uniform_populations_stay_within_quantization_bound() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for round in 0..50 {
        let n = 1 + (rng.next() % 5_000) as usize;
        // Mix magnitudes: small exact-bucket values through full 48-bit range.
        let mask = (1u64 << (4 + rng.next() % 44)) - 1;
        let values: Vec<u64> = (0..n).map(|_| rng.next() & mask).collect();
        check_population(&format!("uniform round {round} mask {mask:#x}"), &values);
    }
}

#[test]
fn skewed_latency_like_populations_stay_within_bound() {
    // Latency-shaped: a dense body with a long multiplicative tail, the
    // population the serve layer actually records.
    let mut rng = Rng(42);
    for round in 0..50 {
        let n = 1 + (rng.next() % 3_000) as usize;
        let values: Vec<u64> = (0..n)
            .map(|_| {
                let body = 100 + rng.next() % 900;
                let tail_bits = rng.next() % 16;
                body << (if rng.next().is_multiple_of(10) {
                    tail_bits
                } else {
                    0
                })
            })
            .collect();
        check_population(&format!("skewed round {round}"), &values);
    }
}

#[test]
fn degenerate_populations() {
    check_population("single zero", &[0]);
    check_population("single max", &[u64::MAX]);
    check_population("all equal", &vec![777u64; 1000]);
    check_population("two extremes", &[0, u64::MAX]);
}

#[test]
fn merged_shards_match_single_histogram() {
    // Recording a population into one histogram and into four per-shard
    // histograms merged afterwards must agree exactly.
    let mut rng = Rng(7);
    let values: Vec<u64> = (0..4096).map(|_| rng.next() % 1_000_000).collect();
    let mut whole = LogHistogram::new();
    let mut shards = vec![LogHistogram::new(); 4];
    for (i, &v) in values.iter().enumerate() {
        whole.record(v);
        shards[i % 4].record(v);
    }
    let mut merged = LogHistogram::new();
    for s in &shards {
        merged.merge(s);
    }
    assert_eq!(merged, whole);
}
