//! Uniform tuple generation (the Table II comparison datasets).

use crate::rng::Xoshiro256;
use crate::Tuple;

/// Generates tuples with keys drawn uniformly from `[0, universe)`.
///
/// The paper's Table II comparison uses uniform inputs "for a fair
/// comparison" with prior designs tuned for uniform data. This generator is
/// also the α = 0 reference against which Fig. 2a normalises the per-PE
/// workload heat map.
///
/// # Example
///
/// ```
/// use datagen::UniformGenerator;
///
/// let data = UniformGenerator::new(1 << 20, 3).take_vec(1000);
/// assert!(data.iter().all(|t| t.key < (1 << 20)));
/// ```
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    universe: u64,
    rng: Xoshiro256,
}

impl UniformGenerator {
    /// Creates a generator over `universe` distinct keys with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is zero.
    pub fn new(universe: u64, seed: u64) -> Self {
        assert!(universe > 0, "universe must be nonzero");
        UniformGenerator {
            universe,
            rng: Xoshiro256::new(seed),
        }
    }

    /// The number of distinct keys.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Generates the next tuple; the value field carries a sequence number
    /// folded to 32 bits, mimicking the paper's 8-byte records.
    pub fn next_tuple(&mut self) -> Tuple {
        let key = self.rng.range_u64(self.universe);
        let value = self.rng.range_u64(u64::from(u32::MAX));
        Tuple::new(key, value)
    }

    /// Generates `n` tuples into a fresh vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<Tuple> {
        (0..n).map(|_| self.next_tuple()).collect()
    }
}

impl Iterator for UniformGenerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        Some(self.next_tuple())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_within_universe() {
        let mut g = UniformGenerator::new(100, 5);
        for _ in 0..10_000 {
            assert!(g.next_tuple().key < 100);
        }
    }

    #[test]
    fn roughly_flat_histogram() {
        let mut g = UniformGenerator::new(16, 1);
        let mut counts = [0usize; 16];
        for _ in 0..160_000 {
            counts[g.next_tuple().key as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "key {k}: {c}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = UniformGenerator::new(1 << 30, 77).take_vec(100);
        let b = UniformGenerator::new(1 << 30, 77).take_vec(100);
        assert_eq!(a, b);
    }
}
