//! # datagen — seeded dataset generators for the Ditto experiments
//!
//! Every evaluation input of the paper is reproduced here as a deterministic,
//! seeded generator:
//!
//! * [`ZipfGenerator`] — Zipf-distributed 8-byte tuples (the paper profiles
//!   HISTO on 26 M tuples under Zipf factors α ∈ [0, 3], citing the hash-join
//!   workload methodology of Balkesen et al. [13]);
//! * [`UniformGenerator`] — the uniform datasets of the Table II comparison;
//! * [`EvolvingZipfStream`] — the Fig. 9 online scenario: an α = 3 stream
//!   whose hot key set rotates every Δt (the "seed of the dataset generator"
//!   varies), delivered at a rate-limited 100 Gbps-equivalent;
//! * [`sample`] — the skew analyzer's 0.1 % random sampling.
//!
//! All generators produce [`Tuple`]s — the 8-byte `⟨key, value⟩` records the
//! paper's memory interface reads eight of per cycle.
//!
//! # Example
//!
//! ```
//! use datagen::{Tuple, ZipfGenerator};
//!
//! let mut g = ZipfGenerator::new(1.5, 1 << 16, 42);
//! let data: Vec<Tuple> = g.take_vec(10_000);
//! assert_eq!(data.len(), 10_000);
//! // Determinism: same seed, same data.
//! let again = ZipfGenerator::new(1.5, 1 << 16, 42).take_vec(10_000);
//! assert_eq!(data, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;
pub mod sample;
mod stream;
mod tuple;
mod uniform;
mod zipf;

pub use stream::EvolvingZipfStream;
pub use tuple::Tuple;
pub use uniform::UniformGenerator;
pub use zipf::ZipfGenerator;
