//! Zipf-distributed tuple generation (§II, §VI-C of the paper).

use std::sync::{Arc, Mutex, OnceLock};

use sketches::hash::splitmix64;

use crate::rng::Xoshiro256;

use crate::Tuple;

/// Maximum universe size for which the exact CDF table is built.
const MAX_UNIVERSE: usize = 1 << 24;

/// Process-wide cache of computed CDF tables, keyed by `(α bits, universe)`.
///
/// Building a table costs one `powf` per universe entry (tens of
/// milliseconds at 2²⁰), and scenario sweeps construct the same distribution
/// over and over — once per configuration point, once per benchmark sample.
/// The cache makes every construction after the first free while keeping
/// the tables bit-identical (the values are computed once, so sequences
/// cannot drift). Bounded to [`CDF_CACHE_CAP_BYTES`] of table storage
/// (tables are `universe × 8` bytes, up to 128 MiB at the 2²⁴ limit),
/// evicting the oldest until the new table fits.
type CdfCache = Mutex<Vec<((u64, u64), Arc<[f64]>)>>;

fn cdf_cache() -> &'static CdfCache {
    static CACHE: OnceLock<CdfCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Maximum bytes of cached CDF tables (a 2²⁰-key table is 8 MiB).
const CDF_CACHE_CAP_BYTES: usize = 256 << 20;

fn cdf_for(alpha: f64, universe: u64) -> Arc<[f64]> {
    let key = (alpha.to_bits(), universe);
    {
        let cache = cdf_cache().lock().expect("cache lock");
        if let Some((_, table)) = cache.iter().find(|(k, _)| *k == key) {
            return Arc::clone(table);
        }
    }
    // Build outside the lock: construction is the expensive part.
    let mut cdf = Vec::with_capacity(universe as usize);
    let mut acc = 0.0f64;
    for r in 1..=universe {
        acc += (r as f64).powf(-alpha);
        cdf.push(acc);
    }
    let norm = acc;
    for v in &mut cdf {
        *v /= norm;
    }
    let table: Arc<[f64]> = cdf.into();
    let mut cache = cdf_cache().lock().expect("cache lock");
    if !cache.iter().any(|(k, _)| *k == key) {
        let bytes = |t: &Arc<[f64]>| t.len() * std::mem::size_of::<f64>();
        let mut total: usize = cache.iter().map(|(_, t)| bytes(t)).sum::<usize>() + bytes(&table);
        while total > CDF_CACHE_CAP_BYTES && !cache.is_empty() {
            total -= bytes(&cache.remove(0).1);
        }
        cache.push((key, Arc::clone(&table)));
    }
    table
}

/// Generates tuples whose keys follow a Zipf distribution with factor `α`
/// over a universe of `n` distinct keys.
///
/// Rank `r` (1-based) is drawn with probability `r^-α / H(n, α)` using an
/// exact inverse-CDF table, then mapped to a key by a seeded pseudo-random
/// permutation of the universe — so the *hot* keys land on different values
/// (and therefore different PEs) for different seeds, reproducing the
/// paper's observation that "overloaded PEs vary across datasets" (Fig. 2a).
///
/// `α = 0` degenerates to the uniform distribution, matching the paper's
/// use of α = 0 as the uniform baseline.
///
/// # Example
///
/// ```
/// use datagen::ZipfGenerator;
///
/// // Extreme skew: almost all tuples share one key.
/// let mut g = ZipfGenerator::new(3.0, 1 << 20, 7);
/// let data = g.take_vec(10_000);
/// let hot = g.key_of_rank(1);
/// let hot_count = data.iter().filter(|t| t.key == hot).count();
/// assert!(hot_count > 8_000, "hot key only {hot_count}/10000");
/// ```
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    alpha: f64,
    universe: u64,
    seed: u64,
    rng: Xoshiro256,
    /// Inverse-CDF table: `cdf[i]` = P(rank <= i+1). Empty when α = 0.
    /// Shared through the process-wide cache — sweeps constructing the same
    /// distribution repeatedly pay the `powf` loop once.
    cdf: Arc<[f64]>,
}

impl ZipfGenerator {
    /// Creates a generator with Zipf factor `alpha` over `universe` distinct
    /// keys, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite, if `universe` is zero,
    /// or if `universe` exceeds 2²⁴ with `alpha > 0` (the exact CDF table
    /// would not fit comfortably in memory).
    pub fn new(alpha: f64, universe: u64, seed: u64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        assert!(universe > 0, "universe must be nonzero");
        let cdf: Arc<[f64]> = if alpha == 0.0 {
            Arc::new([])
        } else {
            assert!(
                universe as usize <= MAX_UNIVERSE,
                "universe {universe} too large for exact Zipf table"
            );
            cdf_for(alpha, universe)
        };
        ZipfGenerator {
            alpha,
            universe,
            seed,
            rng: Xoshiro256::new(seed),
            cdf,
        }
    }

    /// The Zipf factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The number of distinct keys in the universe.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the next rank (1-based) from the distribution.
    ///
    /// Exposed so that stream wrappers (e.g. the evolving-skew stream of
    /// Fig. 9) can re-map ranks to keys with their own epoch-dependent salt.
    pub fn next_rank(&mut self) -> u64 {
        if self.cdf.is_empty() {
            return self.rng.range_u64(self.universe) + 1;
        }
        let u: f64 = self.rng.uniform_f64();
        // partition_point returns the first index whose cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx as u64 + 1).min(self.universe)
    }

    /// Maps a rank to its (seed-dependent) key value.
    ///
    /// The mapping is a pseudo-random permutation-like mixing of the rank:
    /// collisions are possible but negligibly rare for 64-bit keys, and the
    /// property that matters — hot ranks land on seed-dependent keys — holds.
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        splitmix64(rank ^ splitmix64(self.seed))
    }

    /// Generates the next tuple.
    pub fn next_tuple(&mut self) -> Tuple {
        let rank = self.next_rank();
        let key = self.key_of_rank(rank);
        Tuple::new(key, rank)
    }

    /// Generates `n` tuples into a fresh vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<Tuple> {
        (0..n).map(|_| self.next_tuple()).collect()
    }

    /// Generates `n` tuples, appending to `out`.
    pub fn fill(&mut self, n: usize, out: &mut Vec<Tuple>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_tuple());
        }
    }
}

impl Iterator for ZipfGenerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        Some(self.next_tuple())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn freq(data: &[Tuple]) -> HashMap<u64, usize> {
        let mut m = HashMap::new();
        for t in data {
            *m.entry(t.key).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let mut g = ZipfGenerator::new(0.0, 64, 1);
        let data = g.take_vec(64_000);
        let f = freq(&data);
        // Expect ~1000 per key; allow generous tolerance.
        for (&k, &c) in &f {
            assert!((700..1300).contains(&c), "key {k} count {c}");
        }
    }

    #[test]
    fn high_alpha_concentrates_mass() {
        let mut g = ZipfGenerator::new(3.0, 1 << 16, 3);
        let data = g.take_vec(50_000);
        let hot = g.key_of_rank(1);
        let hot_share = data.iter().filter(|t| t.key == hot).count() as f64 / 50_000.0;
        // zeta(3) ≈ 1.202, so rank 1 carries ~83% of the mass.
        assert!(hot_share > 0.80, "hot share {hot_share}");
    }

    #[test]
    fn rank_one_frequency_matches_theory_at_alpha_one() {
        let n = 1000u64;
        let mut g = ZipfGenerator::new(1.0, n, 11);
        let data = g.take_vec(100_000);
        let hot = g.key_of_rank(1);
        let share = data.iter().filter(|t| t.key == hot).count() as f64 / 100_000.0;
        let h: f64 = (1..=n).map(|r| 1.0 / r as f64).sum();
        let expect = 1.0 / h;
        assert!(
            (share - expect).abs() < 0.02,
            "share {share} vs theory {expect}"
        );
    }

    #[test]
    fn different_seeds_move_the_hot_key() {
        let a = ZipfGenerator::new(2.0, 1 << 10, 1).key_of_rank(1);
        let b = ZipfGenerator::new(2.0, 1 << 10, 2).key_of_rank(1);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = ZipfGenerator::new(1.2, 1 << 12, 9).take_vec(1000);
        let b = ZipfGenerator::new(1.2, 1 << 12, 9).take_vec(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn iterator_interface() {
        let g = ZipfGenerator::new(0.5, 100, 4);
        let v: Vec<Tuple> = g.take(5).collect();
        assert_eq!(v.len(), 5);
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 0")]
    fn negative_alpha_rejected() {
        let _ = ZipfGenerator::new(-1.0, 10, 0);
    }
}
