//! The evolving-skew online stream of the paper's Fig. 9.

use hls_sim::{Cycle, RateLimiter, StreamSource};
use sketches::hash::splitmix64;

use crate::{Tuple, ZipfGenerator};

/// A rate-limited, never-ending tuple stream whose skew *rotates*: the rank
/// distribution is a fixed Zipf(α), but the rank→key mapping is re-salted
/// every `interval_cycles`, so the hot keys — and therefore the overloaded
/// PEs — change each epoch.
///
/// This reproduces the paper's Fig. 9 methodology: "We set the Zipf factor
/// to three and vary the seeds of the dataset generator for generating
/// different workload distributions. The memory interface is used to
/// simulate the 100 Gbps network interface."
///
/// # Example
///
/// ```
/// use datagen::EvolvingZipfStream;
/// use hls_sim::StreamSource;
///
/// // 8 tuples/cycle, epoch rotates every 1000 cycles.
/// let mut s = EvolvingZipfStream::new(3.0, 1 << 16, 99, 1000, 8.0, Some(50_000));
/// let mut out = Vec::new();
/// s.pull(1, 64, &mut out);
/// assert!(!out.is_empty());
/// assert_eq!(s.epoch_at(999), 0);
/// assert_eq!(s.epoch_at(1000), 1);
/// ```
#[derive(Debug)]
pub struct EvolvingZipfStream {
    ranks: ZipfGenerator,
    base_seed: u64,
    interval_cycles: u64,
    limiter: RateLimiter,
    produced: u64,
    limit: Option<u64>,
    epochs_seen: u64,
}

impl EvolvingZipfStream {
    /// Creates a stream with Zipf factor `alpha` over `universe` keys.
    ///
    /// * `interval_cycles` — hot-set rotation period Δt, in cycles;
    /// * `rate` — average tuples per cycle the "network" delivers;
    /// * `limit` — optional total tuple budget (`None` = unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero, or on invalid `alpha`/`universe`
    /// (see [`ZipfGenerator::new`]) or `rate` (see [`RateLimiter::new`]).
    pub fn new(
        alpha: f64,
        universe: u64,
        base_seed: u64,
        interval_cycles: u64,
        rate: f64,
        limit: Option<u64>,
    ) -> Self {
        assert!(interval_cycles > 0, "rotation interval must be nonzero");
        EvolvingZipfStream {
            ranks: ZipfGenerator::new(alpha, universe, base_seed),
            base_seed,
            interval_cycles,
            limiter: RateLimiter::new(rate, rate.ceil() as usize * 2),
            produced: 0,
            limit,
            epochs_seen: 0,
        }
    }

    /// The epoch index active at cycle `cy`.
    pub fn epoch_at(&self, cy: Cycle) -> u64 {
        cy / self.interval_cycles
    }

    /// The rank→key salt for `epoch`.
    fn salt(&self, epoch: u64) -> u64 {
        splitmix64(self.base_seed.wrapping_add(epoch.wrapping_mul(0x9e37_79b9)))
    }

    /// The hot key (rank 1) during `epoch` — used by tests and by the Fig. 9
    /// harness to verify that the hot PE moves.
    pub fn hot_key(&self, epoch: u64) -> u64 {
        splitmix64(1 ^ self.salt(epoch))
    }

    /// Number of distinct epochs that produced at least one tuple.
    pub fn epochs_seen(&self) -> u64 {
        self.epochs_seen
    }

    /// The rotation interval in cycles.
    pub fn interval_cycles(&self) -> u64 {
        self.interval_cycles
    }
}

impl StreamSource<Tuple> for EvolvingZipfStream {
    fn pull(&mut self, cy: Cycle, max: usize, out: &mut Vec<Tuple>) -> usize {
        if self.exhausted() {
            return 0;
        }
        let budget = match self.limit {
            Some(l) => ((l - self.produced) as usize).min(max),
            None => max,
        };
        let granted = self.limiter.grant(cy, budget);
        if granted == 0 {
            return 0;
        }
        let epoch = self.epoch_at(cy);
        self.epochs_seen = self.epochs_seen.max(epoch + 1);
        let salt = self.salt(epoch);
        for _ in 0..granted {
            let rank = self.ranks.next_rank();
            out.push(Tuple::new(splitmix64(rank ^ salt), rank));
        }
        self.produced += granted as u64;
        granted
    }

    fn exhausted(&self) -> bool {
        matches!(self.limit, Some(l) if self.produced >= l)
    }

    fn produced(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut EvolvingZipfStream, upto_cycle: u64) -> Vec<(Cycle, Tuple)> {
        let mut all = Vec::new();
        let mut buf = Vec::new();
        for cy in 0..upto_cycle {
            buf.clear();
            s.pull(cy, 64, &mut buf);
            for &t in &buf {
                all.push((cy, t));
            }
        }
        all
    }

    #[test]
    fn respects_rate_limit() {
        let mut s = EvolvingZipfStream::new(3.0, 1 << 12, 1, 100, 2.0, None);
        let got = drain(&mut s, 1000).len();
        // 2 tuples/cycle over 1000 cycles, small slack for the initial burst.
        assert!((1990..=2010).contains(&got), "{got}");
    }

    #[test]
    fn hot_key_rotates_each_epoch() {
        let s = EvolvingZipfStream::new(3.0, 1 << 12, 5, 1000, 8.0, None);
        let h0 = s.hot_key(0);
        let h1 = s.hot_key(1);
        let h2 = s.hot_key(2);
        assert_ne!(h0, h1);
        assert_ne!(h1, h2);
    }

    #[test]
    fn dominant_key_matches_epoch_hot_key() {
        let mut s = EvolvingZipfStream::new(3.0, 1 << 16, 9, 10_000, 8.0, None);
        let tuples = drain(&mut s, 5_000); // stays within epoch 0
        let hot = s.hot_key(0);
        let share =
            tuples.iter().filter(|(_, t)| t.key == hot).count() as f64 / tuples.len() as f64;
        assert!(share > 0.7, "hot share {share}");
    }

    #[test]
    fn limit_bounds_production() {
        let mut s = EvolvingZipfStream::new(1.0, 256, 2, 10, 8.0, Some(100));
        let got = drain(&mut s, 1000).len();
        assert_eq!(got, 100);
        assert!(s.exhausted());
        assert_eq!(s.produced(), 100);
    }

    #[test]
    fn epochs_seen_counts_rotations() {
        let mut s = EvolvingZipfStream::new(2.0, 256, 3, 50, 1.0, None);
        drain(&mut s, 500);
        assert_eq!(s.epochs_seen(), 10);
    }
}
