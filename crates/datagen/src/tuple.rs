//! The 8-byte `⟨key, value⟩` tuple every application consumes.

use std::fmt;

/// An input record: the paper's data-intensive applications all consume
/// fixed-width `⟨key, value⟩` tuples streamed from global memory.
///
/// The paper's evaluation uses 8-byte tuples (a 32-bit key and a 32-bit
/// value); we store both halves widened to `u64` for convenience, while the
/// *modelled* width used for bandwidth accounting stays a parameter of the
/// platform (`Wtuple`).
///
/// # Example
///
/// ```
/// use datagen::Tuple;
///
/// let t = Tuple::new(0xbeef, 7);
/// assert_eq!(t.key, 0xbeef);
/// assert_eq!(t.value, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    /// Routing/grouping key (hashed to pick bins, partitions, registers…).
    pub key: u64,
    /// Payload carried along with the key.
    pub value: u64,
}

impl Tuple {
    /// Creates a tuple.
    pub const fn new(key: u64, value: u64) -> Self {
        Tuple { key, value }
    }

    /// Creates a key-only tuple (value zero) — many workloads ignore values.
    pub const fn from_key(key: u64) -> Self {
        Tuple { key, value: 0 }
    }

    /// The paper's modelled tuple width in bytes.
    pub const PAPER_WIDTH_BYTES: u32 = 8;
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.key, self.value)
    }
}

impl From<(u64, u64)> for Tuple {
    fn from((key, value): (u64, u64)) -> Self {
        Tuple { key, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tuple::new(1, 2), Tuple::from((1, 2)));
        assert_eq!(Tuple::from_key(5).value, 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Tuple::new(1, 2).to_string(), "⟨1, 2⟩");
    }
}
