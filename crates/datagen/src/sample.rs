//! Random sampling for the skew analyzer (§V-D).
//!
//! The paper's skew analyzer "randomly samples a certain number of data of
//! the dataset" — 0.1 % (256 × 100 points) in the evaluation — to estimate
//! the per-PriPE workload distribution before choosing an implementation.

use crate::rng::Xoshiro256;
use crate::Tuple;

/// The paper's sampling fraction: 0.1 % of the dataset.
pub const PAPER_SAMPLE_FRACTION: f64 = 0.001;

/// Draws `k` tuples uniformly at random (with replacement) from `data`.
///
/// Sampling with replacement matches the analyzer's need — an unbiased
/// estimate of the key-frequency distribution — and is how a streaming
/// sampler over a DMA window behaves.
///
/// # Panics
///
/// Panics if `data` is empty and `k > 0`.
pub fn sample_k(data: &[Tuple], k: usize, seed: u64) -> Vec<Tuple> {
    assert!(
        k == 0 || !data.is_empty(),
        "cannot sample from empty dataset"
    );
    let mut rng = Xoshiro256::new(seed);
    (0..k)
        .map(|_| data[rng.range_u64(data.len() as u64) as usize])
        .collect()
}

/// Draws `fraction` of `data` (at least one tuple for nonempty input),
/// rounding to the nearest count.
///
/// # Panics
///
/// Panics if `fraction` is not within `[0, 1]`.
///
/// # Example
///
/// ```
/// use datagen::{sample, UniformGenerator};
///
/// let data = UniformGenerator::new(1 << 16, 1).take_vec(10_000);
/// let s = sample::sample_fraction(&data, sample::PAPER_SAMPLE_FRACTION, 42);
/// assert_eq!(s.len(), 10); // 0.1% of 10k
/// ```
pub fn sample_fraction(data: &[Tuple], fraction: f64, seed: u64) -> Vec<Tuple> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    if data.is_empty() || fraction == 0.0 {
        return Vec::new();
    }
    let k = ((data.len() as f64 * fraction).round() as usize).max(1);
    sample_k(data, k, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZipfGenerator;

    #[test]
    fn sample_size_is_exact() {
        let data = ZipfGenerator::new(1.0, 1 << 10, 1).take_vec(50_000);
        assert_eq!(sample_k(&data, 500, 7).len(), 500);
        assert_eq!(sample_fraction(&data, 0.001, 7).len(), 50);
    }

    #[test]
    fn sample_preserves_skew_roughly() {
        let mut g = ZipfGenerator::new(2.5, 1 << 12, 3);
        let data = g.take_vec(100_000);
        let hot = g.key_of_rank(1);
        let pop_share = data.iter().filter(|t| t.key == hot).count() as f64 / data.len() as f64;
        let s = sample_fraction(&data, 0.01, 9);
        let samp_share = s.iter().filter(|t| t.key == hot).count() as f64 / s.len() as f64;
        assert!(
            (pop_share - samp_share).abs() < 0.08,
            "pop {pop_share} sample {samp_share}"
        );
    }

    #[test]
    fn empty_input_yields_empty_sample() {
        assert!(sample_fraction(&[], 0.5, 1).is_empty());
        assert!(sample_k(&[], 0, 1).is_empty());
    }

    #[test]
    fn nonempty_input_small_fraction_yields_at_least_one() {
        let data = vec![Tuple::new(1, 1); 10];
        assert_eq!(sample_fraction(&data, 1e-9, 1).len(), 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = ZipfGenerator::new(1.0, 256, 5).take_vec(1000);
        assert_eq!(sample_k(&data, 100, 42), sample_k(&data, 100, 42));
    }
}
