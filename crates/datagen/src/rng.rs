//! A small, portable, deterministic PRNG for dataset generation.
//!
//! The experiments must be bit-reproducible across platforms and library
//! versions (the paper's figures are keyed to generator seeds), so instead
//! of `rand::StdRng` — documented as non-portable — we implement
//! xoshiro256\*\* (Blackman & Vigna, public domain) seeded through SplitMix64,
//! exactly as its authors recommend.

use sketches::hash::splitmix64;

/// xoshiro256\*\* pseudo-random generator.
///
/// # Example
///
/// ```
/// use datagen::rng::Xoshiro256;
///
/// let mut a = Xoshiro256::new(7);
/// let mut b = Xoshiro256::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let x = a.uniform_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 per the xoshiro authors' guidance.
    pub fn new(seed: u64) -> Self {
        let mut s = [0u64; 4];
        let mut x = seed;
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x);
        }
        // The all-zero state is invalid; splitmix64 of distinct inputs makes
        // that astronomically unlikely, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)` using rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range bound must be nonzero");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_first_outputs() {
        // Cross-checked against the reference xoshiro256** with the same
        // SplitMix64 seeding for seed 0.
        let mut r = Xoshiro256::new(0);
        let first = r.next_u64();
        let mut r2 = Xoshiro256::new(0);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = Xoshiro256::new(9);
        for _ in 0..10_000 {
            let x = r.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_has_no_gross_bias() {
        let mut r = Xoshiro256::new(3);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.range_u64(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = Xoshiro256::new(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_range_panics() {
        Xoshiro256::new(1).range_u64(0);
    }
}
