//! Property-style tests on the dataset generators, driven by deterministic
//! seed sweeps (the offline build has no proptest).

use datagen::{rng::Xoshiro256, EvolvingZipfStream, UniformGenerator, ZipfGenerator};
use hls_sim::StreamSource;

/// Zipf rank frequencies are non-increasing (up to sampling noise) for any
/// positive alpha.
#[test]
fn zipf_ranks_are_monotone() {
    for (i, alpha) in [0.5f64, 0.8, 1.0, 1.5, 2.0, 2.5, 3.0].iter().enumerate() {
        let seed = 0x5eed + i as u64 * 7919;
        let mut g = ZipfGenerator::new(*alpha, 1 << 10, seed);
        let mut counts = vec![0u32; 1 << 10];
        for _ in 0..20_000 {
            counts[(g.next_rank() - 1) as usize] += 1;
        }
        // Compare well-separated ranks to dodge noise.
        assert!(counts[0] >= counts[15], "alpha {alpha}");
        assert!(counts[3] >= counts[63], "alpha {alpha}");
        assert!(counts[15] >= counts[255], "alpha {alpha}");
    }
}

/// Generators are reproducible and seed-sensitive.
#[test]
fn determinism_and_seed_sensitivity() {
    for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX - 1] {
        let a = ZipfGenerator::new(1.0, 256, seed).take_vec(64);
        let b = ZipfGenerator::new(1.0, 256, seed).take_vec(64);
        assert_eq!(a, b);
        let c = ZipfGenerator::new(1.0, 256, seed.wrapping_add(1)).take_vec(64);
        assert_ne!(a, c);
    }
}

/// Uniform keys respect the universe bound for any universe size.
#[test]
fn uniform_keys_in_bounds() {
    for (universe, seed) in [(1u64, 3u64), (2, 9), (17, 11), (1_000, 5), (999_983, 7)] {
        let mut g = UniformGenerator::new(universe, seed);
        for _ in 0..200 {
            assert!(g.next_tuple().key < universe, "universe {universe}");
        }
    }
}

/// The evolving stream never exceeds its rate budget in any window.
#[test]
fn stream_rate_budget() {
    for rate in 1u32..8 {
        for interval in [1u64, 7, 499, 4_999] {
            let mut s = EvolvingZipfStream::new(2.0, 1 << 12, 9, interval, f64::from(rate), None);
            let mut out = Vec::new();
            let window = 500u64;
            let mut got = 0usize;
            for cy in 0..window {
                out.clear();
                s.pull(cy, 64, &mut out);
                got += out.len();
            }
            // Allow the one-cycle burst headroom of the token bucket.
            assert!(
                got as u64 <= u64::from(rate) * window + u64::from(rate) * 2,
                "rate {rate} interval {interval}: got {got}"
            );
        }
    }
}

/// The raw RNG's range reduction is always in bounds.
#[test]
fn rng_range_in_bounds() {
    for (i, n) in [1u64, 2, 3, 10, 1_000, 999_983].iter().enumerate() {
        let mut r = Xoshiro256::new(0x1234_5678 + i as u64);
        for _ in 0..100 {
            assert!(r.range_u64(*n) < *n, "n {n}");
        }
    }
}
