//! Property tests on the dataset generators.

use datagen::{rng::Xoshiro256, EvolvingZipfStream, UniformGenerator, ZipfGenerator};
use hls_sim::StreamSource;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zipf rank frequencies are non-increasing (up to sampling noise)
    /// for any positive alpha.
    #[test]
    fn zipf_ranks_are_monotone(alpha in 0.5f64..3.0, seed in any::<u64>()) {
        let mut g = ZipfGenerator::new(alpha, 1 << 10, seed);
        let mut counts = vec![0u32; 1 << 10];
        for _ in 0..20_000 {
            counts[(g.next_rank() - 1) as usize] += 1;
        }
        // Compare well-separated ranks to dodge noise.
        prop_assert!(counts[0] >= counts[15]);
        prop_assert!(counts[3] >= counts[63]);
        prop_assert!(counts[15] >= counts[255]);
    }

    /// Generators are reproducible and seed-sensitive.
    #[test]
    fn determinism_and_seed_sensitivity(seed in any::<u64>()) {
        let a = ZipfGenerator::new(1.0, 256, seed).take_vec(64);
        let b = ZipfGenerator::new(1.0, 256, seed).take_vec(64);
        prop_assert_eq!(&a, &b);
        let c = ZipfGenerator::new(1.0, 256, seed.wrapping_add(1)).take_vec(64);
        prop_assert_ne!(a, c);
    }

    /// Uniform keys respect the universe bound for any universe size.
    #[test]
    fn uniform_keys_in_bounds(universe in 1u64..1_000_000, seed in any::<u64>()) {
        let mut g = UniformGenerator::new(universe, seed);
        for _ in 0..200 {
            prop_assert!(g.next_tuple().key < universe);
        }
    }

    /// The evolving stream never exceeds its rate budget in any window.
    #[test]
    fn stream_rate_budget(rate in 1u32..8, interval in 1u64..5_000) {
        let mut s = EvolvingZipfStream::new(
            2.0, 1 << 12, 9, interval, f64::from(rate), None,
        );
        let mut out = Vec::new();
        let window = 500u64;
        let mut got = 0usize;
        for cy in 0..window {
            out.clear();
            s.pull(cy, 64, &mut out);
            got += out.len();
        }
        // Allow the one-cycle burst headroom of the token bucket.
        prop_assert!(got as u64 <= u64::from(rate) * window + u64::from(rate) * 2);
    }

    /// The raw RNG's range reduction is always in bounds.
    #[test]
    fn rng_range_in_bounds(n in 1u64..1_000_000, seed in any::<u64>()) {
        let mut r = Xoshiro256::new(seed);
        for _ in 0..100 {
            prop_assert!(r.range_u64(n) < n);
        }
    }
}
