//! Seeded synthetic graph generators.
//!
//! Fig. 8 sweeps graphs "in ascending order by their degrees" and shows that
//! Ditto's speedup over plain data routing grows with degree, "since more
//! edges updating the same vertex causes more severe data skew". These
//! generators reproduce that axis: average degree and in-degree skew are
//! explicit parameters.

use datagen::rng::Xoshiro256;

use crate::Csr;

/// A uniform random directed graph: `n` vertices, `n × avg_degree` edges
/// with independently uniform endpoints (Erdős–Rényi-like).
///
/// # Panics
///
/// Panics if `n == 0` or `avg_degree < 0`.
pub fn uniform(n: usize, avg_degree: f64, seed: u64) -> Csr {
    assert!(n > 0, "graph must have vertices");
    assert!(avg_degree >= 0.0, "degree must be non-negative");
    let m = (n as f64 * avg_degree).round() as usize;
    let mut rng = Xoshiro256::new(seed);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            (
                rng.range_u64(n as u64) as u32,
                rng.range_u64(n as u64) as u32,
            )
        })
        .collect();
    Csr::from_edges(n, &edges)
}

/// A power-law graph: edge *targets* follow a Zipf(`skew`) distribution over
/// vertices, so a few hub vertices absorb most in-edges — the in-degree
/// skew that overloads the hub's PE in the PR pipeline.
///
/// Sources are uniform; `n × avg_degree` edges are drawn.
///
/// # Panics
///
/// Panics if `n == 0`, `avg_degree < 0`, or `skew < 0`.
pub fn power_law(n: usize, avg_degree: f64, skew: f64, seed: u64) -> Csr {
    assert!(n > 0, "graph must have vertices");
    assert!(avg_degree >= 0.0, "degree must be non-negative");
    assert!(skew >= 0.0, "skew must be non-negative");
    let m = (n as f64 * avg_degree).round() as usize;
    let mut rng = Xoshiro256::new(seed);

    // Zipf CDF over vertex ids for the target endpoint.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for r in 1..=n {
        acc += (r as f64).powf(-skew);
        cdf.push(acc);
    }
    for v in &mut cdf {
        *v /= acc;
    }
    // Random rank→vertex relabelling so hubs are not always vertex 0.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.range_u64((i + 1) as u64) as usize;
        perm.swap(i, j);
    }

    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            let src = rng.range_u64(n as u64) as u32;
            let u = rng.uniform_f64();
            let rank = cdf.partition_point(|&c| c < u).min(n - 1);
            (src, perm[rank])
        })
        .collect();
    Csr::from_edges(n, &edges)
}

/// A power-law graph with *both* endpoints Zipf-distributed over the same
/// hub ranking (`skew` for targets, `src_skew` for sources) — the shape of
/// real web/social graphs, where hubs keep dominating even after the
/// undirected closure Fig. 8 applies (a hub's reverse edges point back at
/// it, so target-side skew survives symmetrisation).
///
/// # Panics
///
/// Same conditions as [`power_law`].
pub fn power_law_bipolar(n: usize, avg_degree: f64, skew: f64, src_skew: f64, seed: u64) -> Csr {
    assert!(n > 0, "graph must have vertices");
    assert!(avg_degree >= 0.0, "degree must be non-negative");
    assert!(skew >= 0.0 && src_skew >= 0.0, "skew must be non-negative");
    let m = (n as f64 * avg_degree).round() as usize;
    let mut rng = Xoshiro256::new(seed);

    let make_cdf = |exp: f64| {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += (r as f64).powf(-exp);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        cdf
    };
    let dst_cdf = make_cdf(skew);
    let src_cdf = make_cdf(src_skew);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.range_u64((i + 1) as u64) as usize;
        perm.swap(i, j);
    }

    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            let us = rng.uniform_f64();
            let src_rank = src_cdf.partition_point(|&c| c < us).min(n - 1);
            let ud = rng.uniform_f64();
            let dst_rank = dst_cdf.partition_point(|&c| c < ud).min(n - 1);
            (perm[src_rank], perm[dst_rank])
        })
        .collect();
    Csr::from_edges(n, &edges)
}

/// An RMAT-style recursive-matrix graph (Chakrabarti et al. parameters
/// `a, b, c`; `d = 1 − a − b − c`), the standard generator for synthetic
/// scale-free graphs in the FPGA graph-processing literature the paper
/// builds on.
///
/// `scale` gives `n = 2^scale` vertices; `n × avg_degree` edges are drawn.
///
/// # Panics
///
/// Panics if the probabilities are not positive or sum above 1, or if
/// `scale` is 0 or above 30.
pub fn rmat(scale: u32, avg_degree: f64, a: f64, b: f64, c: f64, seed: u64) -> Csr {
    assert!((1..=30).contains(&scale), "scale must be in 1..=30");
    assert!(
        a > 0.0 && b >= 0.0 && c >= 0.0,
        "probabilities must be positive"
    );
    assert!(a + b + c < 1.0, "a+b+c must leave room for d");
    let n = 1usize << scale;
    let m = (n as f64 * avg_degree).round() as usize;
    let mut rng = Xoshiro256::new(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut x0, mut x1) = (0usize, n);
        let (mut y0, mut y1) = (0usize, n);
        while x1 - x0 > 1 {
            let u = rng.uniform_f64();
            let (right, down) = if u < a {
                (false, false)
            } else if u < a + b {
                (true, false)
            } else if u < a + b + c {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                x0 = xm;
            } else {
                x1 = xm;
            }
            if down {
                y0 = ym;
            } else {
                y1 = ym;
            }
        }
        edges.push((x0 as u32, y0 as u32));
    }
    Csr::from_edges(n, &edges)
}

/// The named synthetic suite used by our Fig. 8 harness: nine graphs in
/// ascending average degree with increasing hub skew, standing in for the
/// paper's Network-Repository + synthetic mix.
///
/// Returns `(name, graph)` pairs, already made undirected (Fig. 8 evaluates
/// PR on undirected graphs).
pub fn fig8_suite(scale_down: usize) -> Vec<(String, Csr)> {
    let div = scale_down.max(1);
    let n = |base: usize| (base / div).max(64);
    let mut suite = Vec::new();
    // Zipf exponents ~1.6-2.5: undirected web/social graphs all carry
    // dominant hubs (the paper's smallest graph already shows a 2.9x
    // speedup), and hub dominance grows with average degree.
    let specs: [(&str, usize, f64, f64); 9] = [
        ("web-sm", 16_384, 2.0, 1.8),
        ("road-net", 32_768, 2.5, 1.6),
        ("cite-net", 16_384, 4.0, 1.9),
        ("soc-fb-a", 16_384, 6.0, 2.0),
        ("soc-fb-b", 16_384, 8.0, 2.0),
        ("web-lg", 32_768, 10.0, 2.1),
        ("rmat-18", 16_384, 12.0, 2.2),
        ("soc-tw", 16_384, 16.0, 2.4),
        ("rmat-20", 32_768, 20.0, 2.5),
    ];
    for (i, (name, base, deg, skew)) in specs.into_iter().enumerate() {
        let g =
            power_law_bipolar(n(base), deg, skew, skew * 0.8, 0x5eed + i as u64).to_undirected();
        suite.push((name.to_owned(), g));
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_requested_size() {
        let g = uniform(1000, 4.0, 1);
        assert_eq!(g.vertex_count(), 1000);
        assert_eq!(g.edge_count(), 4000);
    }

    #[test]
    fn power_law_creates_hubs() {
        let g = power_law(4096, 8.0, 1.5, 2);
        let avg_in = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            g.max_in_degree() as f64 > 20.0 * avg_in,
            "max in-degree {} vs avg {avg_in}",
            g.max_in_degree()
        );
    }

    #[test]
    fn power_law_zero_skew_is_flat() {
        let g = power_law(4096, 8.0, 0.0, 3);
        let avg_in = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            (g.max_in_degree() as f64) < 5.0 * avg_in,
            "max in-degree {} vs avg {avg_in}",
            g.max_in_degree()
        );
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 8.0, 0.57, 0.19, 0.19, 4);
        assert_eq!(g.vertex_count(), 1 << 12);
        let avg_in = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(g.max_in_degree() as f64 > 5.0 * avg_in);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform(100, 3.0, 7), uniform(100, 3.0, 7));
        assert_eq!(power_law(100, 3.0, 1.0, 7), power_law(100, 3.0, 1.0, 7));
        assert_eq!(
            rmat(8, 4.0, 0.5, 0.2, 0.2, 7),
            rmat(8, 4.0, 0.5, 0.2, 0.2, 7)
        );
    }

    #[test]
    fn fig8_suite_ascends_in_degree() {
        let suite = fig8_suite(8);
        assert_eq!(suite.len(), 9);
        for w in suite.windows(2) {
            assert!(
                w[0].1.avg_degree() <= w[1].1.avg_degree() + 1.0,
                "suite should ascend in degree: {} ({:.1}) then {} ({:.1})",
                w[0].0,
                w[0].1.avg_degree(),
                w[1].0,
                w[1].1.avg_degree()
            );
        }
    }
}
