//! Host-side reference PageRank with fixed-point arithmetic.
//!
//! The paper's PR application uses a fixed-point data type (Table I); this
//! module is the bit-exact software reference the simulated pipeline is
//! validated against (same [`Fixed`] arithmetic, same update order semantics
//! up to commutative addition).

use sketches::Fixed;

use crate::Csr;

/// One synchronous PageRank iteration in fixed point.
///
/// `next[v] = (1−d)/n + d · Σ_{u→v} rank[u]/outdeg[u]`, with the dangling-
/// vertex mass redistributed uniformly (the standard formulation).
///
/// # Panics
///
/// Panics if `ranks.len() != g.vertex_count()`.
pub fn step(g: &Csr, ranks: &[Fixed], damping: f64) -> Vec<Fixed> {
    assert_eq!(ranks.len(), g.vertex_count(), "rank vector size mismatch");
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let d = Fixed::from_f64(damping);
    let n_fixed = Fixed::from_int(n as i32);
    let base = (Fixed::ONE - d) / n_fixed;

    // Dangling mass: vertices with no out-edges donate rank/n to everyone.
    let mut dangling = Fixed::ZERO;
    for (v, &rank) in ranks.iter().enumerate() {
        if g.out_degree(v) == 0 {
            dangling += rank;
        }
    }
    let dangling_share = d * dangling / n_fixed;

    let mut next = vec![base + dangling_share; n];
    for (v, &rank) in ranks.iter().enumerate() {
        let deg = g.out_degree(v);
        if deg == 0 {
            continue;
        }
        let contrib = d * rank / Fixed::from_int(deg as i32);
        for &t in g.neighbors(v) {
            next[t as usize] += contrib;
        }
    }
    next
}

/// Runs `iterations` synchronous PageRank iterations from the uniform
/// initial vector and returns the final ranks.
///
/// # Example
///
/// ```
/// use ditto_graph::{Csr, pagerank};
///
/// // A 3-cycle: symmetric, so all ranks stay equal.
/// let g = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
/// let pr = pagerank::pagerank(&g, 0.85, 20);
/// assert!((pr[0].to_f64() - 1.0 / 3.0).abs() < 1e-6);
/// assert_eq!(pr[0], pr[1]);
/// ```
pub fn pagerank(g: &Csr, damping: f64, iterations: usize) -> Vec<Fixed> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut ranks = vec![Fixed::ONE / Fixed::from_int(n as i32); n];
    for _ in 0..iterations {
        ranks = step(g, &ranks, damping);
    }
    ranks
}

/// L1 distance between two rank vectors, in `f64` — used by convergence
/// tests and by pipeline-vs-reference validation.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn l1_distance(a: &[Fixed], b: &[Fixed]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank vector size mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.to_f64() - y.to_f64()).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn ranks_sum_to_one() {
        let g = generate::power_law(500, 6.0, 1.2, 11);
        let pr = pagerank(&g, 0.85, 15);
        let sum: f64 = pr.iter().map(|r| r.to_f64()).sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }

    #[test]
    fn hub_outranks_leaf() {
        // star: everyone points to vertex 0
        let edges: Vec<(u32, u32)> = (1..50u32).map(|v| (v, 0)).collect();
        let g = Csr::from_edges(50, &edges);
        let pr = pagerank(&g, 0.85, 30);
        for v in 1..50 {
            assert!(pr[0] > pr[v], "hub must outrank vertex {v}");
        }
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // vertex 1 dangles
        let g = Csr::from_edges(3, &[(0, 1), (2, 1)]);
        let pr = pagerank(&g, 0.85, 25);
        let sum: f64 = pr.iter().map(|r| r.to_f64()).sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }

    #[test]
    fn converges_to_fixed_point() {
        let g = generate::uniform(200, 5.0, 3);
        let a = pagerank(&g, 0.85, 40);
        let b = pagerank(&g, 0.85, 41);
        assert!(l1_distance(&a, &b) < 1e-4);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let n = 10;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = Csr::from_edges(n as usize, &edges);
        let pr = pagerank(&g, 0.85, 50);
        for v in 1..n as usize {
            assert!((pr[v].to_f64() - pr[0].to_f64()).abs() < 1e-9);
        }
    }
}
