//! # ditto-graph — graph substrate for the PageRank experiments
//!
//! The paper evaluates PageRank on public graphs from the Network Data
//! Repository and synthetic graphs (Fig. 8), sorted by ascending average
//! degree. Those exact datasets are not redistributable here, so this crate
//! provides:
//!
//! * [`Csr`] — compressed sparse row storage with in/out degree queries,
//! * [`generate`] — seeded synthetic generators sweeping the same axes the
//!   paper's graph suite covers (average degree, degree skew): uniform
//!   random graphs, power-law (Zipf-degree) graphs, and an RMAT-style
//!   recursive-matrix generator,
//! * [`pagerank`] — a host-side reference PageRank (fixed-point, matching
//!   Table I) used to validate the FPGA-pipeline implementation.
//!
//! # Example
//!
//! ```
//! use ditto_graph::{generate, pagerank};
//!
//! let g = generate::power_law(1_000, 8.0, 2.0, 42);
//! let pr = pagerank::pagerank(&g, 0.85, 10);
//! assert_eq!(pr.len(), g.vertex_count());
//! // PageRank is a probability distribution.
//! let sum: f64 = pr.iter().map(|r| r.to_f64()).sum();
//! assert!((sum - 1.0).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
pub mod generate;
pub mod pagerank;

pub use csr::Csr;
