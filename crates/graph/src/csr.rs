//! Compressed sparse row graph storage.

/// A directed graph in compressed sparse row form.
///
/// Vertices are `0..vertex_count()`; `neighbors(v)` yields the targets of
/// `v`'s out-edges. The PageRank pipeline streams `(src, dst)` edge tuples
/// out of this structure exactly the way the paper's memory access engine
/// streams the edge list from DDR4.
///
/// # Example
///
/// ```
/// use ditto_graph::Csr;
///
/// let g = Csr::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(2), &[3]);
/// assert_eq!(g.edge_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    in_degrees: Vec<u32>,
}

impl Csr {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Parallel edges are kept (the generators may produce them; PageRank
    /// treats them as weighted links, as the paper's synthetic graphs do).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; n];
        let mut in_degrees = vec![0u32; n];
        for &(s, d) in edges {
            assert!(
                (s as usize) < n && (d as usize) < n,
                "edge ({s},{d}) out of range"
            );
            counts[s as usize] += 1;
            in_degrees[d as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; edges.len()];
        for &(s, d) in edges {
            targets[cursor[s as usize]] = d;
            cursor[s as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            in_degrees,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// In-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_degrees[v] as usize
    }

    /// Out-neighbors of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Average degree (edges / vertices).
    pub fn avg_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            return 0.0;
        }
        self.edge_count() as f64 / self.vertex_count() as f64
    }

    /// Maximum in-degree — the quantity that drives PE overload in the
    /// paper's PR experiment ("more edges updating the same vertex causes
    /// more severe data skew").
    pub fn max_in_degree(&self) -> usize {
        self.in_degrees.iter().copied().max().unwrap_or(0) as usize
    }

    /// Iterates over all `(src, dst)` edges in CSR order — the stream the
    /// PR pipeline consumes.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.vertex_count())
            .flat_map(move |v| self.neighbors(v).iter().map(move |&d| (v as u32, d)))
    }

    /// Builds the undirected closure: every edge `(a, b)` also as `(b, a)`.
    ///
    /// Fig. 8 evaluates PR on *undirected* graphs, where high-degree hubs
    /// receive updates from every neighbor and skew is most severe.
    pub fn to_undirected(&self) -> Csr {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.edge_count() * 2);
        for (s, d) in self.edges() {
            edges.push((s, d));
            edges.push((d, s));
        }
        Csr::from_edges(self.vertex_count(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_and_neighbors() {
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 4)]);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 2); // parallel edge kept
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.in_degree(4), 2);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let input = vec![(0u32, 1u32), (2, 0), (1, 2)];
        let g = Csr::from_edges(3, &input);
        let mut out: Vec<_> = g.edges().collect();
        let mut expect = input.clone();
        out.sort_unstable();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let u = g.to_undirected();
        assert_eq!(u.edge_count(), 4);
        assert_eq!(u.in_degree(1), 2);
        assert_eq!(u.out_degree(1), 2);
    }

    #[test]
    fn max_in_degree_finds_hub() {
        let g = Csr::from_edges(4, &[(0, 3), (1, 3), (2, 3)]);
        assert_eq!(g.max_in_degree(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_in_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = Csr::from_edges(2, &[(0, 5)]);
    }
}
