//! The Fig. 1a baseline: static dispatch with replicated buffers.

use std::sync::Arc;

use datagen::Tuple;
use ditto_core::reader::MemoryReaderKernel;
use ditto_core::{ChannelTotals, DittoApp, ExecutionReport, RunOutcome};
use hls_sim::{
    CounterId, Cycle, Engine, Kernel, MemoryModel, Progress, ReceiverId, SimContext, SliceSource,
    StateId, StreamSource, WakeSet,
};

/// Cycles the host CPU needs per replica entry during final aggregation,
/// expressed in FPGA-clock equivalents. Calibrated so that a 26 M-tuple
/// HISTO with 16 K bins × 16 replicas costs ~16 % of the kernel time, which
/// reproduces Table II's 1.2× advantage of Ditto over Jiang et al. [12].
pub(crate) const CPU_MERGE_CYCLES_PER_ENTRY: u64 = 2;

/// Static-dispatch design: the i-th tuple goes to PE `i mod M`, every PE
/// owns a *full replica* of the application state, and the CPU aggregates
/// the M partial results after the kernel finishes (Fig. 1a).
///
/// Perfectly load-balanced under any skew — the paper's point is not that
/// replication is slow, but that it wastes `M×` BRAM per PE and needs CPU
/// post-processing, which this model charges explicitly.
///
/// # Example
///
/// ```
/// use ditto_baselines::StaticReplicationDesign;
/// use ditto_core::apps::CountPerKey;
/// use datagen::UniformGenerator;
///
/// let data = UniformGenerator::new(1 << 16, 1).take_vec(5_000);
/// let design = StaticReplicationDesign::new(4, 8, 1);
/// let out = design.run(CountPerKey::new(1), data);
/// assert_eq!(out.output.iter().sum::<u64>(), 5_000);
/// ```
#[derive(Debug, Clone)]
pub struct StaticReplicationDesign {
    n_lanes: u32,
    m_pes: u32,
    replica_entries: usize,
    lane_depth: usize,
}

struct StaticPe<A: DittoApp> {
    name: String,
    app: Arc<A>,
    input: ReceiverId<Tuple>,
    state: StateId<A::State>,
    processed: CounterId,
    busy_until: Cycle,
}

impl<A: DittoApp + 'static> Kernel for StaticPe<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        if cy < self.busy_until {
            return Progress::Busy;
        }
        if let Some(tuple) = ctx.try_recv(cy, self.input) {
            // Static dispatch still computes the application update, but
            // against the PE's own full replica: the app is constructed
            // with M = 1 (one logical partition, replicated M times), so
            // the routing dst is trivially 0.
            let routed = self.app.preprocess(tuple, 1);
            self.app.process(ctx.state_mut(self.state), &routed.value);
            ctx.counter_incr(self.processed);
            self.busy_until = cy + Cycle::from(self.app.ii_pri());
            Progress::Busy
        } else if ctx.is_empty(self.input) {
            Progress::Sleep
        } else {
            Progress::Busy
        }
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        ctx.is_empty(self.input)
    }

    fn wake_set(&self) -> WakeSet {
        WakeSet::new().after_push_on(self.input)
    }
}

impl StaticReplicationDesign {
    /// Creates a static design with `n_lanes` memory lanes feeding `m_pes`
    /// PEs, each holding a full `replica_entries`-entry state.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(n_lanes: u32, m_pes: u32, replica_entries: usize) -> Self {
        assert!(n_lanes > 0 && m_pes > 0, "lanes and PEs must be nonzero");
        assert!(replica_entries > 0, "replica must have entries");
        StaticReplicationDesign {
            n_lanes,
            m_pes,
            replica_entries,
            lane_depth: 8,
        }
    }

    /// BRAM entries each PE buffers — the full replica, which is the `M×`
    /// per-PE usage Table II's "B.U. saving" column divides by.
    pub fn entries_per_pe(&self) -> usize {
        self.replica_entries
    }

    /// Memory lanes of the design (the interface's words-per-cycle budget).
    pub fn n_lanes(&self) -> u32 {
        self.n_lanes
    }

    /// Runs the design to completion over `data`, charging the CPU-side
    /// aggregation to the reported cycle count.
    pub fn run<A: DittoApp + 'static>(&self, app: A, data: Vec<Tuple>) -> RunOutcome<A::Output> {
        let app = Arc::new(app);
        let tuples = data.len() as u64;
        let budget = tuples * (u64::from(app.ii_pri()) + 2) + 500_000;
        let source: Box<dyn StreamSource<Tuple>> = Box::new(SliceSource::new(
            data,
            Tuple::PAPER_WIDTH_BYTES,
            MemoryModel::new(64, 16),
        ));

        let mut engine = Engine::new();
        let lanes: Vec<_> = (0..self.m_pes)
            .map(|i| engine.channel::<Tuple>(&format!("lane{i}"), self.lane_depth))
            .collect();
        let states: Vec<StateId<A::State>> = (0..self.m_pes)
            .map(|_| engine.state(app.new_state(self.replica_entries)))
            .collect();
        let per_pe: Vec<CounterId> = (0..self.m_pes).map(|_| engine.counter()).collect();
        let issued = engine.counter();

        // Reuse the Ditto memory access engine: its round-robin lane fill
        // is exactly the paper's "assigning the i-th data to the i-th PE"
        // static scheme.
        engine.add_kernel(MemoryReaderKernel::new(
            source,
            lanes.iter().map(|&(tx, _)| tx).collect(),
            issued,
        ));
        for (i, (&(_, lane_rx), &state)) in lanes.iter().zip(&states).enumerate() {
            engine.add_kernel(StaticPe {
                name: format!("static-pe#{i}"),
                app: Arc::clone(&app),
                input: lane_rx,
                state,
                processed: per_pe[i],
                busy_until: 0,
            });
        }
        let rep = engine.run_until_quiescent(budget);
        assert!(rep.completed, "static pipeline failed to drain");
        let kernel_cycles = engine.cycle();
        let kernel_steps = engine.steps_executed();
        let channels = engine.channel_stats();

        // CPU-side aggregation of M replicas (the "intervention from the
        // CPU side" Fig. 1a requires).
        let merge_cycles =
            u64::from(self.m_pes) * self.replica_entries as u64 * CPU_MERGE_CYCLES_PER_ENTRY;

        let ctx = engine.context_mut();
        let mut iter = states.iter().map(|&id| ctx.take_state(id));
        let mut first = iter.next().expect("at least one PE");
        for other in iter {
            app.merge(&mut first, &other);
        }
        let output = app.finalize(vec![first]);

        let per_pe: Vec<u64> = per_pe.iter().map(|&c| ctx.counter(c)).collect();
        let processed: u64 = per_pe.iter().sum();
        RunOutcome {
            output,
            report: ExecutionReport {
                label: format!("static-{}pe", self.m_pes),
                cycles: kernel_cycles + merge_cycles,
                tuples: processed,
                reschedules: 0,
                plans_generated: 0,
                per_pe_processed: per_pe,
                completed: true,
                channel_totals: ChannelTotals::aggregate(&channels),
                kernel_steps,
            },
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{UniformGenerator, ZipfGenerator};
    use ditto_core::apps::CountPerKey;

    #[test]
    fn static_dispatch_is_skew_immune() {
        let design = StaticReplicationDesign::new(4, 8, 1);
        let uniform = UniformGenerator::new(1 << 16, 1).take_vec(8_000);
        let skewed = ZipfGenerator::new(3.0, 1 << 16, 1).take_vec(8_000);
        let u = design.run(CountPerKey::new(1), uniform);
        let s = design.run(CountPerKey::new(1), skewed);
        let ratio = u.report.tuples_per_cycle() / s.report.tuples_per_cycle();
        assert!(
            (0.8..1.25).contains(&ratio),
            "static design should not care about skew: {ratio}"
        );
    }

    #[test]
    fn workload_is_balanced_by_construction() {
        let design = StaticReplicationDesign::new(4, 8, 1);
        let skewed = ZipfGenerator::new(3.0, 1 << 16, 7).take_vec(8_000);
        let out = design.run(CountPerKey::new(1), skewed);
        assert!(out.report.imbalance(8) < 1.1, "{}", out.report.imbalance(8));
    }

    #[test]
    fn cpu_merge_cost_is_charged() {
        let small = StaticReplicationDesign::new(4, 8, 1);
        let big = StaticReplicationDesign::new(4, 8, 100_000);
        let data = UniformGenerator::new(1 << 16, 2).take_vec(2_000);
        let a = small.run(CountPerKey::new(1), data.clone());
        let b = big.run(CountPerKey::new(1), data);
        assert!(
            b.report.cycles > a.report.cycles + 500_000,
            "large replicas must cost CPU merge time: {} vs {}",
            b.report.cycles,
            a.report.cycles
        );
    }

    #[test]
    fn counts_are_preserved() {
        let design = StaticReplicationDesign::new(4, 8, 1);
        let data = ZipfGenerator::new(1.0, 1 << 12, 9).take_vec(5_000);
        let out = design.run(CountPerKey::new(1), data);
        assert_eq!(out.output.iter().sum::<u64>(), 5_000);
    }
}
