//! Atomic work-stealing baseline (Ramanathan et al. [11], related work).
//!
//! The paper's Challenge 1 argues that classic load balancing — idle PEs
//! stealing work through OpenCL atomics — "will not pay off" for
//! data-intensive applications, because the computation per tuple is a
//! couple of cycles while every steal costs an atomic round-trip that
//! stalls the pipeline. This model makes that argument quantitative: a
//! shared queue guarded by an atomic whose access costs
//! `atomic_latency_cycles`, consumed by M otherwise-identical PEs.
//!
//! The steady-state throughput ceiling is `M / (II + atomic)` tuples/cycle
//! — with the paper's II = 2 and a realistic ~20-cycle OpenCL atomic, 16
//! PEs reach at most 16/22 ≈ 0.73 tuples/cycle, an order of magnitude under
//! the 8/cycle the routing fabric sustains. Work stealing balances load
//! perfectly; it is the *per-tuple synchronisation* that kills it.

use std::collections::VecDeque;
use std::sync::Arc;

use datagen::Tuple;
use ditto_core::{ChannelTotals, DittoApp, ExecutionReport, RunOutcome};
use hls_sim::{
    CounterId, Cycle, Engine, Kernel, MemoryModel, Progress, SimContext, SliceSource, StateId,
    StreamSource,
};

/// Shared work queue with an atomic access cost and a two-phase
/// round-robin arbiter: PEs *request* during their step, and the arbiter
/// grants one request per free atomic slot to the requester closest to a
/// rotating priority cursor — the standard fair-arbiter structure, which
/// prevents the first PE in step order from starving the rest.
///
/// The queue sits outside the *channel* arena (it models an OpenCL global
/// atomic, not a `cl_channel`), so the kernels touching it never park:
/// there is no channel event to wake them on. It lives in the *state*
/// arena instead — one register every PE and the filler address through
/// the same `StateId`, plain data with no locks.
struct SharedQueue {
    items: VecDeque<Tuple>,
    /// The cycle until which the queue's atomic is held by some PE.
    locked_until: u64,
    /// PE holding grant priority (advances past each winner).
    cursor: u32,
    /// Requests raised during the previous cycle's PE steps.
    requests: Vec<u32>,
    /// One-deep grant mailbox per PE.
    mailbox: Vec<Option<Tuple>>,
    m_pes: u32,
}

impl SharedQueue {
    /// Raises PE `pe`'s steal request for the next arbitration round.
    fn request(&mut self, pe: u32) {
        self.requests.push(pe);
    }

    /// Grants at most one pending request (arbiter step, once per cycle).
    fn grant(&mut self, cy: Cycle, atomic_latency: u64) {
        if cy < self.locked_until {
            self.requests.clear();
            return;
        }
        let cursor = self.cursor;
        let winner = self
            .requests
            .iter()
            .copied()
            .min_by_key(|&pe| (pe + self.m_pes - cursor) % self.m_pes);
        self.requests.clear();
        let Some(pe) = winner else { return };
        let Some(item) = self.items.pop_front() else {
            return;
        };
        self.mailbox[pe as usize] = Some(item);
        self.locked_until = cy + atomic_latency;
        self.cursor = (pe + 1) % self.m_pes;
    }
}

/// Work-stealing design: M PEs pull tuples from one atomic-guarded queue.
///
/// # Example
///
/// ```
/// use ditto_baselines::WorkStealingDesign;
/// use ditto_core::apps::CountPerKey;
/// use datagen::ZipfGenerator;
///
/// let data = ZipfGenerator::new(3.0, 1 << 16, 5).take_vec(4_000);
/// let out = WorkStealingDesign::new(16, 20).run(CountPerKey::new(1), data);
/// // Perfectly balanced under any skew...
/// assert!(out.report.imbalance(16) < 1.3);
/// // ...but the atomic serialises the PEs far below the 8/cycle interface.
/// assert!(out.report.tuples_per_cycle() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct WorkStealingDesign {
    m_pes: u32,
    atomic_latency_cycles: u64,
}

struct StealingPe<A: DittoApp> {
    name: String,
    id: u32,
    app: Arc<A>,
    queue: StateId<SharedQueue>,
    state: StateId<A::State>,
    processed: CounterId,
    busy_until: Cycle,
}

impl<A: DittoApp + 'static> Kernel for StealingPe<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        if let Some(tuple) = ctx.state_mut(self.queue).mailbox[self.id as usize].take() {
            let routed = self.app.preprocess(tuple, 1);
            self.app.process(ctx.state_mut(self.state), &routed.value);
            ctx.counter_incr(self.processed);
            self.busy_until = cy + Cycle::from(self.app.ii_pri());
            return Progress::Busy;
        }
        if cy >= self.busy_until {
            ctx.state_mut(self.queue).request(self.id);
        }
        Progress::Busy
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        let queue = ctx.state(self.queue);
        queue.items.is_empty() && queue.mailbox[self.id as usize].is_none()
    }
}

/// Feeds the shared queue from the memory interface.
struct QueueFiller {
    source: Box<dyn StreamSource<Tuple>>,
    queue: StateId<SharedQueue>,
    cap: usize,
    atomic_latency: u64,
    buf: Vec<Tuple>,
}

impl Kernel for QueueFiller {
    fn name(&self) -> &str {
        "queue-filler"
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        // Arbiter phase: grant one of last cycle's requests.
        let queue = ctx.state_mut(self.queue);
        queue.grant(cy, self.atomic_latency);
        let len = queue.items.len();
        if len >= self.cap || self.source.exhausted() {
            return Progress::Busy;
        }
        self.buf.clear();
        self.source.pull(cy, self.cap - len, &mut self.buf);
        ctx.state_mut(self.queue)
            .items
            .extend(self.buf.iter().copied());
        Progress::Busy
    }

    fn is_idle(&self, _ctx: &SimContext) -> bool {
        self.source.exhausted()
    }

    fn is_quiescence_gate(&self) -> bool {
        true
    }
}

impl WorkStealingDesign {
    /// Creates a design with `m_pes` PEs and the given atomic access cost
    /// (OpenCL global atomics are ~tens of cycles).
    ///
    /// # Panics
    ///
    /// Panics if `m_pes` is zero.
    pub fn new(m_pes: u32, atomic_latency_cycles: u64) -> Self {
        assert!(m_pes > 0, "need at least one PE");
        WorkStealingDesign {
            m_pes,
            atomic_latency_cycles,
        }
    }

    /// Structural throughput ceiling in tuples/cycle: the atomic section
    /// admits one grant per `atomic_latency` cycles system-wide, so the
    /// design cannot exceed `min(M / II, 1 / atomic_latency)`.
    pub fn ceiling_tuples_per_cycle(&self, ii: u32) -> f64 {
        let serial = 1.0 / self.atomic_latency_cycles.max(1) as f64;
        let parallel = f64::from(self.m_pes) / f64::from(ii.max(1));
        serial.min(parallel)
    }

    /// Runs the design over `data` (app built with M = 1 semantics: every
    /// PE can process any tuple against a replicated state).
    pub fn run<A: DittoApp + 'static>(&self, app: A, data: Vec<Tuple>) -> RunOutcome<A::Output> {
        let app = Arc::new(app);
        let tuples = data.len() as u64;
        let budget = tuples * (self.atomic_latency_cycles + 4) + 500_000;
        let source: Box<dyn StreamSource<Tuple>> = Box::new(SliceSource::new(
            data,
            Tuple::PAPER_WIDTH_BYTES,
            MemoryModel::new(64, 16),
        ));
        let mut engine = Engine::new();
        let queue = engine.state(SharedQueue {
            items: VecDeque::new(),
            locked_until: 0,
            cursor: 0,
            requests: Vec::new(),
            mailbox: (0..self.m_pes).map(|_| None).collect(),
            m_pes: self.m_pes,
        });
        let states: Vec<StateId<A::State>> = (0..self.m_pes)
            .map(|_| engine.state(app.new_state(1024)))
            .collect();
        let per_pe: Vec<CounterId> = (0..self.m_pes).map(|_| engine.counter()).collect();

        engine.add_kernel(QueueFiller {
            source,
            queue,
            cap: 64,
            atomic_latency: self.atomic_latency_cycles,
            buf: Vec::new(),
        });
        for (i, &state) in states.iter().enumerate() {
            engine.add_kernel(StealingPe {
                name: format!("steal-pe#{i}"),
                id: i as u32,
                app: Arc::clone(&app),
                queue,
                state,
                processed: per_pe[i],
                busy_until: 0,
            });
        }
        let rep = engine.run_until_quiescent(budget);
        assert!(rep.completed, "work-stealing pipeline failed to drain");
        let cycles = engine.cycle();
        let kernel_steps = engine.steps_executed();

        let ctx = engine.context_mut();
        let mut iter = states.iter().map(|&id| ctx.take_state(id));
        let mut first = iter.next().expect("at least one PE");
        for other in iter {
            app.merge(&mut first, &other);
        }
        let output = app.finalize(vec![first]);
        let per_pe: Vec<u64> = per_pe.iter().map(|&c| ctx.counter(c)).collect();
        let processed: u64 = per_pe.iter().sum();
        RunOutcome {
            output,
            report: ExecutionReport {
                label: format!("steal-{}pe", self.m_pes),
                cycles,
                tuples: processed,
                reschedules: 0,
                plans_generated: 0,
                per_pe_processed: per_pe,
                completed: true,
                channel_totals: ChannelTotals::default(),
                kernel_steps,
            },
            channels: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{UniformGenerator, ZipfGenerator};
    use ditto_core::apps::CountPerKey;

    #[test]
    fn atomic_serialises_throughput() {
        let data = UniformGenerator::new(1 << 16, 1).take_vec(4_000);
        let out = WorkStealingDesign::new(16, 20).run(CountPerKey::new(1), data);
        let tpc = out.report.tuples_per_cycle();
        // One steal per 20 cycles: ~0.05/cycle, far below the interface's 8.
        assert!(tpc < 0.1, "tpc {tpc}");
        assert_eq!(out.output.iter().sum::<u64>(), 4_000);
    }

    #[test]
    fn cheap_atomic_recovers_parallelism() {
        let data = UniformGenerator::new(1 << 16, 2).take_vec(4_000);
        let out = WorkStealingDesign::new(16, 1).run(CountPerKey::new(1), data);
        assert!(
            out.report.tuples_per_cycle() > 0.8,
            "{}",
            out.report.tuples_per_cycle()
        );
    }

    #[test]
    fn perfectly_balanced_under_skew() {
        let data = ZipfGenerator::new(3.0, 1 << 16, 3).take_vec(4_000);
        let out = WorkStealingDesign::new(8, 10).run(CountPerKey::new(1), data);
        assert!(out.report.imbalance(8) < 1.3, "{}", out.report.imbalance(8));
    }

    #[test]
    fn skew_immune_but_slower_than_routing() {
        // The paper's argument in one assertion: even under extreme skew,
        // Ditto's routed design outruns atomic work stealing.
        let data = ZipfGenerator::new(3.0, 1 << 16, 5).take_vec(6_000);
        let steal = WorkStealingDesign::new(16, 20).run(CountPerKey::new(1), data.clone());
        let cfg = ditto_core::ArchConfig::paper(15).with_pe_entries(8);
        let ditto =
            ditto_core::SkewObliviousPipeline::run_dataset(CountPerKey::new(16), data, &cfg);
        assert!(
            ditto.report.tuples_per_cycle() > 5.0 * steal.report.tuples_per_cycle(),
            "ditto {} vs steal {}",
            ditto.report.tuples_per_cycle(),
            steal.report.tuples_per_cycle()
        );
    }
}
