//! The single-PE RTL baseline (Tong et al. [19] style).

use std::sync::Arc;

use datagen::Tuple;
use ditto_core::reader::MemoryReaderKernel;
use ditto_core::{ChannelTotals, DittoApp, ExecutionReport, RunOutcome};
use hls_sim::{
    CounterId, Cycle, Engine, Kernel, MemoryModel, Progress, ReceiverId, SimContext, SliceSource,
    StateId, StreamSource, WakeSet,
};

/// A single deeply pipelined PE, as in RTL sketch accelerators: II = 1
/// (hand-written RTL hides the read-modify-write), but only one tuple can
/// enter per cycle regardless of how wide the memory interface is.
///
/// The paper's HHD comparison ("our HHD outperforms work [19] which only
/// has one PE") reduces to exactly this structural limit: Ditto processes
/// `Wmem/Wtuple` tuples per cycle, the single PE one.
///
/// # Example
///
/// ```
/// use ditto_baselines::SinglePeDesign;
/// use ditto_core::apps::CountPerKey;
/// use datagen::UniformGenerator;
///
/// let data = UniformGenerator::new(1 << 16, 1).take_vec(4_000);
/// let out = SinglePeDesign::new(1).run(CountPerKey::new(1), data);
/// assert_eq!(out.output.iter().sum::<u64>(), 4_000);
/// // Structural ceiling: one tuple per cycle.
/// assert!(out.report.tuples_per_cycle() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SinglePeDesign {
    ii: u32,
    state_entries: usize,
}

struct OnePe<A: DittoApp> {
    app: Arc<A>,
    ii: u32,
    input: ReceiverId<Tuple>,
    state: StateId<A::State>,
    processed: CounterId,
    busy_until: Cycle,
}

impl<A: DittoApp + 'static> Kernel for OnePe<A> {
    fn name(&self) -> &str {
        "single-pe"
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        if cy < self.busy_until {
            return Progress::Busy;
        }
        if let Some(tuple) = ctx.try_recv(cy, self.input) {
            let routed = self.app.preprocess(tuple, 1);
            self.app.process(ctx.state_mut(self.state), &routed.value);
            ctx.counter_incr(self.processed);
            self.busy_until = cy + Cycle::from(self.ii);
            Progress::Busy
        } else if ctx.is_empty(self.input) {
            Progress::Sleep
        } else {
            Progress::Busy
        }
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        ctx.is_empty(self.input)
    }

    fn wake_set(&self) -> WakeSet {
        WakeSet::new().after_push_on(self.input)
    }
}

impl SinglePeDesign {
    /// Creates the design with the given initiation interval (RTL designs
    /// typically reach II = 1) and a default state size.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn new(ii: u32) -> Self {
        assert!(ii > 0, "II must be nonzero");
        SinglePeDesign {
            ii,
            state_entries: 1024,
        }
    }

    /// Sets the PE's state size in entries.
    pub fn with_state_entries(mut self, entries: usize) -> Self {
        self.state_entries = entries;
        self
    }

    /// Runs the design over `data` (the app must be built with M = 1).
    pub fn run<A: DittoApp + 'static>(&self, app: A, data: Vec<Tuple>) -> RunOutcome<A::Output> {
        let app = Arc::new(app);
        let tuples = data.len() as u64;
        let budget = tuples * (u64::from(self.ii) + 2) + 500_000;
        let source: Box<dyn StreamSource<Tuple>> = Box::new(SliceSource::new(
            data,
            Tuple::PAPER_WIDTH_BYTES,
            MemoryModel::new(64, 16),
        ));
        let mut engine = Engine::new();
        let (lane_tx, lane_rx) = engine.channel::<Tuple>("lane", 8);
        let state = engine.state(app.new_state(self.state_entries));
        let processed = engine.counter();
        let issued = engine.counter();

        engine.add_kernel(MemoryReaderKernel::new(source, vec![lane_tx], issued));
        engine.add_kernel(OnePe {
            app: Arc::clone(&app),
            ii: self.ii,
            input: lane_rx,
            state,
            processed,
            busy_until: 0,
        });
        let rep = engine.run_until_quiescent(budget);
        assert!(rep.completed, "single-PE pipeline failed to drain");
        let cycles = engine.cycle();
        let kernel_steps = engine.steps_executed();
        let channels = engine.channel_stats();

        let ctx = engine.context_mut();
        let done = ctx.counter(processed);
        let final_state = ctx.take_state(state);
        let output = app.finalize(vec![final_state]);
        RunOutcome {
            output,
            report: ExecutionReport {
                label: "single-pe".to_owned(),
                cycles,
                tuples: done,
                reschedules: 0,
                plans_generated: 0,
                per_pe_processed: vec![done],
                completed: true,
                channel_totals: ChannelTotals::aggregate(&channels),
                kernel_steps,
            },
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{UniformGenerator, ZipfGenerator};
    use ditto_core::apps::CountPerKey;

    #[test]
    fn one_tuple_per_cycle_ceiling() {
        let data = UniformGenerator::new(1 << 16, 3).take_vec(10_000);
        let out = SinglePeDesign::new(1).run(CountPerKey::new(1), data);
        let tpc = out.report.tuples_per_cycle();
        assert!(tpc > 0.9 && tpc <= 1.0, "tpc {tpc}");
    }

    #[test]
    fn skew_does_not_matter_for_one_pe() {
        let u = UniformGenerator::new(1 << 16, 3).take_vec(5_000);
        let s = ZipfGenerator::new(3.0, 1 << 16, 3).take_vec(5_000);
        let a = SinglePeDesign::new(1).run(CountPerKey::new(1), u);
        let b = SinglePeDesign::new(1).run(CountPerKey::new(1), s);
        let ratio = a.report.tuples_per_cycle() / b.report.tuples_per_cycle();
        assert!((0.9..1.1).contains(&ratio), "{ratio}");
    }

    #[test]
    fn ii_two_halves_throughput() {
        let data = UniformGenerator::new(1 << 16, 4).take_vec(5_000);
        let fast = SinglePeDesign::new(1).run(CountPerKey::new(1), data.clone());
        let slow = SinglePeDesign::new(2).run(CountPerKey::new(1), data);
        let ratio = fast.report.tuples_per_cycle() / slow.report.tuples_per_cycle();
        assert!((1.8..2.2).contains(&ratio), "{ratio}");
    }
}
