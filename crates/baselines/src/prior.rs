//! Analytic models of the prior designs whose artifacts are not public.
//!
//! Table II marks four rows "Original": their numbers were collected from
//! the papers rather than re-run. We model each design's architecture —
//! dispatch scheme, PE count, II, clock, buffering — and derive throughput
//! under the normalised bandwidth, documenting the parameters per design.

/// Dispatch scheme of a prior design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Static assignment with fully replicated buffers (CPU merge after).
    StaticReplicated,
    /// Dynamic data routing with range-partitioned buffers.
    DataRouting,
    /// One monolithic pipeline.
    SinglePipeline,
}

/// An analytically modelled prior design (a Table II comparison row).
#[derive(Debug, Clone)]
pub struct PriorDesign {
    /// Design name (first author, as in Table II).
    pub name: &'static str,
    /// Application it accelerates.
    pub app: &'static str,
    /// HLS or RTL (Table II's P.L. column).
    pub language: &'static str,
    /// Dispatch scheme.
    pub dispatch: Dispatch,
    /// Parallel PEs.
    pub pes: u32,
    /// Initiation interval per PE.
    pub ii: u32,
    /// Clock, MHz.
    pub freq_mhz: f64,
    /// Buffer replicas each PE keeps, relative to a Ditto PE's single
    /// range-partitioned slice (drives the B.U.-saving column).
    pub buffer_replication: u32,
}

impl PriorDesign {
    /// Jiang et al. [12] — HLS HISTO, static dispatch, replicated bins,
    /// double-buffered (hence 2M× per-PE BRAM vs Ditto's interleaved bins).
    pub fn jiang_histo() -> Self {
        PriorDesign {
            name: "Jiang et al.",
            app: "HISTO",
            language: "HLS",
            dispatch: Dispatch::StaticReplicated,
            pes: 16,
            ii: 2,
            freq_mhz: 242.0,
            buffer_replication: 32,
        }
    }

    /// Wang et al. [18] — HLS multikernel DP with channels; run-time data
    /// dependency forces II ≈ 2.4 per kernel on skew-free input.
    pub fn wang_dp() -> Self {
        PriorDesign {
            name: "Wang et al.",
            app: "DP",
            language: "HLS",
            dispatch: Dispatch::StaticReplicated,
            pes: 8,
            ii: 2,
            freq_mhz: 200.0,
            buffer_replication: 16,
        }
    }

    /// Kara et al. [17] — RTL partitioner on a memory system with different
    /// random-access performance (Table II does not normalise it); 16
    /// cache-line writers at II = 1.
    pub fn kara_dp() -> Self {
        PriorDesign {
            name: "Kara et al.",
            app: "DP",
            language: "RTL",
            dispatch: Dispatch::DataRouting,
            pes: 16,
            ii: 1,
            freq_mhz: 200.0,
            buffer_replication: 8,
        }
    }

    /// Zhou et al. [21] — HitGraph, RTL edge-centric PR: partition-at-a-time
    /// processing with full edge streaming.
    pub fn zhou_pr() -> Self {
        PriorDesign {
            name: "Zhou et al.",
            app: "PR",
            language: "RTL",
            dispatch: Dispatch::DataRouting,
            pes: 8,
            ii: 2,
            freq_mhz: 200.0,
            buffer_replication: 1,
        }
    }

    /// Kulkarni et al. [20] — RTL HLL: fully unrolled murmur pipelines that
    /// already saturate the memory interface, at the higher clock RTL
    /// closes (hence Ditto's 0.9×).
    pub fn kulkarni_hll() -> Self {
        PriorDesign {
            name: "Kulkami et al.",
            app: "HLL",
            language: "RTL",
            dispatch: Dispatch::SinglePipeline,
            pes: 8,
            ii: 1,
            freq_mhz: 280.0,
            buffer_replication: 10,
        }
    }

    /// Tong et al. [19] — RTL sketch design: a few replicated pipelines,
    /// each II = 1, merged in hardware; cannot scale to the full interface
    /// width because the sketch is not range-partitioned.
    pub fn tong_hhd() -> Self {
        PriorDesign {
            name: "Tong et al.",
            app: "HHD",
            language: "RTL",
            dispatch: Dispatch::SinglePipeline,
            pes: 4,
            ii: 1,
            freq_mhz: 250.0,
            buffer_replication: 1,
        }
    }

    /// All Table II rows in paper order.
    pub fn table2_rows() -> Vec<PriorDesign> {
        vec![
            Self::jiang_histo(),
            Self::wang_dp(),
            Self::kara_dp(),
            Self::zhou_pr(),
            Self::kulkarni_hll(),
            Self::tong_hhd(),
        ]
    }

    /// Structural tuples-per-cycle ceiling: PEs/II capped by the memory
    /// interface's words per cycle.
    pub fn tuples_per_cycle(&self, interface_words_per_cycle: f64) -> f64 {
        let compute = f64::from(self.pes) / f64::from(self.ii);
        compute.min(interface_words_per_cycle)
    }

    /// Million tuples per second under the normalised bandwidth.
    pub fn throughput_mtps(&self, interface_words_per_cycle: f64) -> f64 {
        self.tuples_per_cycle(interface_words_per_cycle) * self.freq_mhz
    }

    /// CPU post-processing overhead factor on total runtime (replication
    /// designs must aggregate M partial results on the host).
    pub fn post_processing_factor(&self) -> f64 {
        match self.dispatch {
            Dispatch::StaticReplicated => 1.2,
            Dispatch::DataRouting | Dispatch::SinglePipeline => 1.0,
        }
    }

    /// Effective throughput including post-processing.
    pub fn effective_mtps(&self, interface_words_per_cycle: f64) -> f64 {
        self.throughput_mtps(interface_words_per_cycle) / self.post_processing_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_count_caps_throughput() {
        let tong = PriorDesign::tong_hhd();
        assert_eq!(tong.tuples_per_cycle(8.0), 4.0);
    }

    #[test]
    fn replication_pays_post_processing() {
        let jiang = PriorDesign::jiang_histo();
        assert!(jiang.effective_mtps(8.0) < jiang.throughput_mtps(8.0));
    }

    #[test]
    fn bandwidth_caps_wide_designs() {
        let jiang = PriorDesign::jiang_histo();
        // 16 PEs / II 2 = 8/cycle, equal to the interface: fully fed.
        assert_eq!(jiang.tuples_per_cycle(8.0), 8.0);
        // Narrower interface caps it.
        assert_eq!(jiang.tuples_per_cycle(4.0), 4.0);
    }

    #[test]
    fn table2_has_six_prior_rows() {
        let rows = PriorDesign::table2_rows();
        assert_eq!(rows.len(), 6);
        let apps: Vec<_> = rows.iter().map(|r| r.app).collect();
        assert_eq!(apps, vec!["HISTO", "DP", "DP", "PR", "HLL", "HHD"]);
    }
}
