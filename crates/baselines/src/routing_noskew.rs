//! Plain data routing without skew handling (Chen et al. [8]).
//!
//! The Fig. 8 baseline and the `16P` bar of Fig. 7: the Ditto pipeline with
//! X = 0 SecPEs. Provided as helpers so the experiment harness names the
//! baseline explicitly rather than passing a magic configuration around.

use datagen::Tuple;
use ditto_core::{ArchConfig, DittoApp, RunOutcome, SkewObliviousPipeline};

/// The baseline configuration: same N and M as `config`, no SecPEs, no
/// profiler.
pub fn baseline_config(config: &ArchConfig) -> ArchConfig {
    let mut cfg = ArchConfig::new(config.n_pre, config.m_pri, 0);
    cfg.pe_entries = config.pe_entries;
    cfg.pe_queue_depth = config.pe_queue_depth;
    cfg.word_queue_depth = config.word_queue_depth;
    cfg.lane_queue_depth = config.lane_queue_depth;
    cfg
}

/// Runs the no-skew-handling data-routing design (Chen et al. [8]) over a
/// dataset: the architecture the paper's §IV extends.
///
/// # Example
///
/// ```
/// use ditto_baselines::routing_noskew;
/// use ditto_core::{ArchConfig, apps::CountPerKey};
/// use datagen::UniformGenerator;
///
/// let data = UniformGenerator::new(1 << 16, 2).take_vec(4_000);
/// let out = routing_noskew::run(CountPerKey::new(8), data, &ArchConfig::new(4, 8, 5));
/// assert_eq!(out.report.label, "8P"); // X forced to zero
/// ```
pub fn run<A: DittoApp + 'static>(
    app: A,
    data: Vec<Tuple>,
    config: &ArchConfig,
) -> RunOutcome<A::Output> {
    SkewObliviousPipeline::run_dataset(app, data, &baseline_config(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_core::apps::CountPerKey;

    #[test]
    fn strips_secpes_only() {
        let cfg = ArchConfig::new(8, 16, 9)
            .with_pe_entries(77)
            .with_pe_queue_depth(33);
        let base = baseline_config(&cfg);
        assert_eq!(base.x_sec, 0);
        assert_eq!(base.n_pre, 8);
        assert_eq!(base.m_pri, 16);
        assert_eq!(base.pe_entries, 77);
        assert_eq!(base.pe_queue_depth, 33);
    }

    #[test]
    fn runs_with_same_semantics() {
        let data = datagen::ZipfGenerator::new(1.0, 1 << 12, 5).take_vec(3_000);
        let out = run(CountPerKey::new(8), data, &ArchConfig::new(4, 8, 7));
        assert_eq!(out.output.iter().sum::<u64>(), 3_000);
    }
}
