//! # ditto-baselines — the designs Ditto is compared against
//!
//! Table II compares Ditto-generated implementations with seven prior
//! designs; Fig. 7 adds the `32P` more-PriPEs strawman and Fig. 8 the
//! routing-without-skew-handling design of Chen et al. [8]. This crate
//! provides behavioural models of each comparison point:
//!
//! * [`StaticReplicationDesign`] — the Fig. 1a architecture (Jiang et al.
//!   [12] HISTO, and the general static-dispatch + replicated-buffer
//!   pattern): tuples statically assigned to PEs, every PE keeps a full
//!   replica of the buffered state, partial results aggregated by the CPU
//!   afterwards. Simulated on the same `hls-sim` substrate.
//! * [`SinglePeDesign`] — one deeply pipelined RTL PE (Tong et al. [19]
//!   HHD): II = 1 but only one tuple lane. Simulated.
//! * [`routing_noskew`] — plain data routing without SecPEs (Chen et al.
//!   [8]): exactly the `ditto-core` pipeline with X = 0.
//! * [`PriorDesign`] — analytic throughput/BRAM models for the rows whose
//!   artifacts are not public ("Original" source in Table II), with the
//!   architecture parameters documented per design.
//! * [`WorkStealingDesign`] — the atomic work-stealing alternative of
//!   Ramanathan et al. [11] (related work), quantifying the paper's
//!   Challenge 1 argument that per-tuple synchronisation cannot keep up
//!   with cycle-level routing.
//!
//! All models consume the same datasets and the same bandwidth budget as
//! the Ditto pipeline, matching the paper's "bandwidth is normalized for a
//! fair comparison".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod prior;
pub mod routing_noskew;
mod single_pe;
mod static_replication;
mod work_stealing;

pub use prior::PriorDesign;
pub use single_pe::SinglePeDesign;
pub use static_replication::StaticReplicationDesign;
pub use work_stealing::WorkStealingDesign;
